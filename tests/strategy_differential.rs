//! Strategy-parametrized differential suite: every [`MatchStrategy`] the
//! redesigned matcher API exposes is run through the full pipeline over
//! the fixture corpus and seeded randomized workloads, and each run must
//! satisfy the paper's end-to-end contract — replaying the edit script on
//! `T1` reproduces a tree isomorphic to `T2`, and the stage-boundary
//! audit (matching one-to-one/label/ancestor checks, script conformance,
//! delta projections) is clean.
//!
//! The property tests at the bottom target the GumTree matcher directly:
//! across random parameter settings its matchings must be injective,
//! label-preserving, and ancestor-consistent (the invariants `A012`–`A014`
//! audit, re-derived here from first principles so the suite does not
//! depend on the audit crate agreeing with itself).

use std::collections::HashSet;

use proptest::prelude::*;

use hierdiff::tree::{isomorphic, Label, NodeValue, Tree};
use hierdiff::workload::{generate_document, perturb, DocProfile, EditMix};
use hierdiff::{Audit, DiffResult, Differ, GumTreeParams, MatchStrategy};
use hierdiff_doc::DocValue;

/// Every strategy the API exposes, plus GumTree parameter corners: recovery
/// disabled (pure two-phase matching) and a permissive/strict variant.
fn strategies() -> Vec<(&'static str, MatchStrategy)> {
    vec![
        ("fastmatch", MatchStrategy::fast()),
        ("fastmatch+prune", MatchStrategy::fast_pruned()),
        ("simple", MatchStrategy::Simple),
        ("gumtree", MatchStrategy::gumtree()),
        (
            "gumtree-no-recovery",
            MatchStrategy::GumTree(GumTreeParams::default().with_max_recovery_size(0)),
        ),
        (
            "gumtree-tall-permissive",
            MatchStrategy::GumTree(
                GumTreeParams::default()
                    .with_min_height(2)
                    .with_sim_threshold(0.2),
            ),
        ),
    ]
}

/// `T2` itself, or the dummy-wrapped `T2` when EditScript wrapped both
/// trees because the roots were unmatched (Section 3.2's reduction).
fn conformance_target<V: NodeValue>(r: &DiffResult<V>, new: &Tree<V>) -> Tree<V> {
    let mut target = new.clone();
    if r.mces.wrapped {
        target.wrap_root(Label::intern(hierdiff::edit::DUMMY_ROOT_LABEL), V::null());
    }
    target
}

/// Runs one strategy over one pair and asserts the full contract.
fn assert_sound<V: NodeValue>(
    case: &str,
    variant: &str,
    strategy: MatchStrategy,
    old: &Tree<V>,
    new: &Tree<V>,
) {
    let r = Differ::new()
        .strategy(strategy)
        .audit(Audit::On)
        .diff(old, new)
        .unwrap_or_else(|e| panic!("{case}/{variant}: pipeline failed: {e}"));
    let replayed = r
        .mces
        .replay_on(old)
        .unwrap_or_else(|e| panic!("{case}/{variant}: replay failed: {e}"));
    assert!(
        isomorphic(&replayed, &r.mces.edited),
        "{case}/{variant}: replay diverged from the edited tree"
    );
    assert!(
        isomorphic(&r.mces.edited, &conformance_target(&r, new)),
        "{case}/{variant}: edited tree does not conform to T2"
    );
    let report = r.audit.as_ref().expect("audit was requested");
    assert!(
        report.is_clean(),
        "{case}/{variant}: audit findings: {report}"
    );
}

const FIXTURE_PAIRS: [(&str, &str, &str); 5] = [
    ("fig1", "fixtures/fig1_old.sexpr", "fixtures/fig1_new.sexpr"),
    ("fig4", "fixtures/fig4_old.sexpr", "fixtures/fig4_new.sexpr"),
    (
        "adversarial_identical",
        "fixtures/adversarial_identical_old.sexpr",
        "fixtures/adversarial_identical_new.sexpr",
    ),
    (
        "adversarial_chain",
        "fixtures/adversarial_chain_old.sexpr",
        "fixtures/adversarial_chain_new.sexpr",
    ),
    (
        "adversarial_shuffle",
        "fixtures/adversarial_shuffle_old.sexpr",
        "fixtures/adversarial_shuffle_new.sexpr",
    ),
];

fn load_fixture(path: &str) -> Tree<String> {
    let src = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    Tree::parse_sexpr(&src).unwrap_or_else(|e| panic!("parse {path}: {e}"))
}

#[test]
fn fixtures_replay_and_audit_clean_under_every_strategy() {
    for (case, old_path, new_path) in FIXTURE_PAIRS {
        let old = load_fixture(old_path);
        let new = load_fixture(new_path);
        for (variant, strategy) in strategies() {
            assert_sound(case, variant, strategy, &old, &new);
        }
    }
}

#[test]
fn seeded_workloads_replay_and_audit_clean_under_every_strategy() {
    let small = DocProfile {
        sections: 2,
        paragraphs_per_section: (2, 3),
        sentences_per_paragraph: (2, 3),
        ..DocProfile::default()
    };
    let medium = DocProfile {
        sections: 5,
        ..DocProfile::default()
    };
    for (tag, profile, edits) in [
        ("small", &small, 6usize),
        ("small-heavy", &small, 14),
        ("medium", &medium, 10),
    ] {
        for seed in 0..4u64 {
            let t1 = generate_document(1700 + seed, profile);
            let mix = if seed % 2 == 0 {
                EditMix::default()
            } else {
                EditMix::revision()
            };
            let (t2, _) = perturb(&t1, 1750 + seed, edits, &mix, profile);
            let case = format!("rand-{tag}-{seed}");
            for (variant, strategy) in strategies() {
                assert_sound(&case, variant, strategy, &t1, &t2);
            }
        }
    }
}

/// Swapping the pair direction must stay sound too (the bottom-up phase's
/// dice statistics are asymmetric in the traversal side).
#[test]
fn reversed_pairs_stay_sound_under_gumtree() {
    let profile = DocProfile {
        sections: 3,
        ..DocProfile::default()
    };
    for seed in 0..3u64 {
        let t1 = generate_document(4100 + seed, &profile);
        let (t2, _) = perturb(&t1, 4150 + seed, 9, &EditMix::revision(), &profile);
        assert_sound(
            &format!("rev-{seed}"),
            "gumtree",
            MatchStrategy::gumtree(),
            &t2,
            &t1,
        );
    }
}

/// Re-derives the matching invariants for one GumTree run: one-to-one in
/// both directions (`A013`), label-preserving (`A012`), and
/// ancestor-consistent (`A014`): for any two pairs `(x, y)` and `(u, v)`,
/// `x` is an ancestor of `u` in `T1` iff `y` is an ancestor of `v` in `T2`.
fn check_gumtree_invariants(t1: &Tree<DocValue>, t2: &Tree<DocValue>, params: GumTreeParams) {
    let m = hierdiff::matching::gumtree_match(t1, t2, params)
        .expect("unguarded gumtree match cannot trip a budget")
        .matching;
    let mut seen1 = HashSet::new();
    let mut seen2 = HashSet::new();
    for (x, y) in m.iter() {
        assert!(seen1.insert(x), "node {x:?} matched twice on the T1 side");
        assert!(seen2.insert(y), "node {y:?} matched twice on the T2 side");
        assert_eq!(
            t1.label(x),
            t2.label(y),
            "matched pair with differing labels"
        );
    }
    let pairs: Vec<(_, _)> = m.iter().collect();
    for (i, &(x, y)) in pairs.iter().enumerate() {
        for &(u, v) in &pairs[i + 1..] {
            assert_eq!(
                t1.is_ancestor(x, u),
                t2.is_ancestor(y, v),
                "ancestor inversion: ({x:?},{y:?}) vs ({u:?},{v:?})"
            );
            assert_eq!(
                t1.is_ancestor(u, x),
                t2.is_ancestor(v, y),
                "ancestor inversion: ({u:?},{v:?}) vs ({x:?},{y:?})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// GumTree matchings are injective, label-preserving, and
    /// ancestor-consistent across random documents, perturbations, and
    /// parameter settings — including recovery both on and off.
    #[test]
    fn gumtree_matchings_injective_and_ancestor_consistent(
        seed in 0u64..10_000,
        edits in 1usize..14,
        min_height in 0u32..3,
        sim_pct in 10u32..90,
        recovery in prop_oneof![Just(0usize), Just(6), Just(100)],
    ) {
        let profile = DocProfile {
            sections: 2,
            paragraphs_per_section: (2, 3),
            sentences_per_paragraph: (2, 3),
            ..DocProfile::default()
        };
        let t1 = generate_document(seed, &profile);
        let mix = if seed % 2 == 0 { EditMix::default() } else { EditMix::revision() };
        let (t2, _) = perturb(&t1, seed ^ 0x5eed, edits, &mix, &profile);
        let params = GumTreeParams::default()
            .with_min_height(min_height)
            .with_sim_threshold(f64::from(sim_pct) / 100.0)
            .with_max_recovery_size(recovery);
        check_gumtree_invariants(&t1, &t2, params);
    }
}
