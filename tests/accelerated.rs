//! Integration tests for the fingerprint pre-matching accelerator across
//! workload corpora: correctness equivalence with plain FastMatch, savings
//! on real document shapes, and end-to-end pipeline validity.

use hierdiff::edit::edit_script;
use hierdiff::matching::{
    fast_match, fast_match_accelerated, prematch_unique_identical, MatchParams,
};
use hierdiff::tree::{isomorphic, subtree_hashes};
use hierdiff::workload::{generate_document, perturb, DocProfile, EditMix};

#[test]
fn accelerated_pipeline_end_to_end() {
    let profile = DocProfile::large();
    for seed in 0..4u64 {
        let t1 = generate_document(5_000 + seed, &profile);
        let (t2, _) = perturb(&t1, 5_100 + seed, 15, &EditMix::revision(), &profile);
        let accel = fast_match_accelerated(&t1, &t2, MatchParams::default()).unwrap();
        let res = edit_script(&t1, &t2, &accel.matching).unwrap();
        let replayed = res.replay_on(&t1).unwrap();
        assert!(isomorphic(&replayed, &res.edited), "seed {seed}");
    }
}

#[test]
fn prematch_is_always_a_valid_seed() {
    // The pre-matching alone (no content pass) must already be a valid
    // conforming input to EditScript.
    let profile = DocProfile::default();
    for seed in 0..4u64 {
        let t1 = generate_document(5_200 + seed, &profile);
        let (t2, _) = perturb(&t1, 5_300 + seed, 10, &EditMix::default(), &profile);
        let seed_m = prematch_unique_identical(&t1, &t2).unwrap();
        let res = edit_script(&t1, &t2, &seed_m).unwrap();
        let replayed = res.replay_on(&t1).unwrap();
        assert!(isomorphic(&replayed, &res.edited), "seed {seed}");
        // Pre-matched pairs are value-identical by construction.
        for (x, y) in seed_m.iter() {
            assert_eq!(t1.label(x), t2.label(y));
            assert_eq!(t1.value(x), t2.value(y));
        }
    }
}

#[test]
fn fingerprints_respect_isomorphism_on_corpora() {
    // Hash-equal subtrees across a perturbed pair are genuinely isomorphic
    // (spot-checking the no-collision assumption the accelerator verifies
    // per use).
    let profile = DocProfile::small();
    let t1 = generate_document(5_400, &profile);
    let (t2, _) = perturb(&t1, 5_401, 6, &EditMix::default(), &profile);
    let h1 = subtree_hashes(&t1);
    let h2 = subtree_hashes(&t2);
    let mut checked = 0;
    for a in t1.preorder() {
        for b in t2.preorder() {
            if h1[a.index()] == h2[b.index()] {
                assert!(
                    hierdiff::tree::isomorphic_subtrees(&t1, a, &t2, b),
                    "hash-equal but not isomorphic: {a} vs {b}"
                );
                checked += 1;
            }
        }
    }
    assert!(checked > 0, "no hash agreements at all?");
}

#[test]
fn savings_grow_with_document_size_at_fixed_churn() {
    let edits = 6;
    let mut ratios = Vec::new();
    for &sections in &[4usize, 16] {
        let profile = DocProfile {
            sections,
            ..DocProfile::default()
        };
        let t1 = generate_document(5_500 + sections as u64, &profile);
        let (t2, _) = perturb(
            &t1,
            5_600 + sections as u64,
            edits,
            &EditMix::default(),
            &profile,
        );
        let plain = fast_match(&t1, &t2, MatchParams::default()).unwrap();
        let accel = fast_match_accelerated(&t1, &t2, MatchParams::default()).unwrap();
        assert_eq!(plain.matching.len(), accel.matching.len());
        ratios.push(accel.counters.total() as f64 / plain.counters.total().max(1) as f64);
    }
    assert!(
        ratios[1] <= ratios[0] + 0.2,
        "relative accelerated cost should not grow with size: {ratios:?}"
    );
}
