//! Integration tests for the Section 9 extensions: script inversion, delta
//! queries, delta-script extraction, the A(k) hybrid matcher, keyed
//! matching, and HTML output — exercised together over workload corpora.

use hierdiff::delta::{build_delta_tree, extract_script, ChangeKind};
use hierdiff::edit::{apply, edit_script, invert_script};
use hierdiff::matching::{fast_match, match_by_key, match_quality, MatchParams};
use hierdiff::tree::{isomorphic, Label, Tree};
use hierdiff::workload::{generate_document, ground_truth_matching, perturb, DocProfile, EditMix};
use hierdiff::{match_with_optimality, Differ};

/// Forward + inverse across many random corpora: the undo loop of the
/// version-management scenario.
#[test]
fn invert_roundtrips_on_corpora() {
    let profile = DocProfile::small();
    for seed in 0..8u64 {
        let t1 = generate_document(900 + seed, &profile);
        let (t2, _) = perturb(&t1, 950 + seed, 10, &EditMix::default(), &profile);
        let matched = fast_match(&t1, &t2, MatchParams::default()).unwrap();
        let res = edit_script(&t1, &t2, &matched.matching).unwrap();
        if res.wrapped {
            continue; // inverse is defined against the wrapped tree
        }
        let inverse = invert_script(&t1, &res.script).unwrap();
        let mut tree = t1.clone();
        apply(&mut tree, &res.script).unwrap();
        apply(&mut tree, &inverse).unwrap();
        assert!(isomorphic(&tree, &t1), "seed {seed}");
    }
}

/// Delta queries agree with annotation counts, and extraction reproduces a
/// script whose counts mirror the annotations, corpus-wide.
#[test]
fn delta_query_and_extract_consistency() {
    let profile = DocProfile::small();
    for seed in 0..8u64 {
        let t1 = generate_document(800 + seed, &profile);
        let (t2, _) = perturb(&t1, 850 + seed, 8, &EditMix::default(), &profile);
        let matched = fast_match(&t1, &t2, MatchParams::default()).unwrap();
        let res = edit_script(&t1, &t2, &matched.matching).unwrap();
        let delta = build_delta_tree(&t1, &t2, &matched.matching, &res);

        let counts = delta.annotation_counts();
        assert_eq!(
            delta.query().kind(ChangeKind::Inserted).count(),
            counts.inserted
        );
        assert_eq!(
            delta.query().kind(ChangeKind::Deleted).count(),
            counts.deleted
        );
        assert_eq!(delta.query().kind(ChangeKind::Moved).count(), counts.moved);
        assert_eq!(
            delta.query().kind(ChangeKind::Markers).count(),
            counts.markers
        );
        assert_eq!(
            counts.moved, counts.markers,
            "every MOV has exactly one MRK"
        );

        let x = extract_script(&delta).unwrap();
        let mut replay = x.old.clone();
        apply(&mut replay, &x.script).unwrap();
        assert!(isomorphic(&replay, &x.new), "seed {seed}");
        let ops = x.script.op_counts();
        assert_eq!(ops.inserts, counts.inserted, "seed {seed}");
        assert_eq!(ops.deletes, counts.deleted, "seed {seed}");
        assert_eq!(ops.moves, counts.moved, "seed {seed}");
    }
}

/// Every query path resolves to a real node (path syntax sanity).
#[test]
fn delta_paths_resolve() {
    let t1 = generate_document(123, &DocProfile::small());
    let (t2, _) = perturb(&t1, 124, 6, &EditMix::default(), &DocProfile::small());
    let r = Differ::new().diff(&t1, &t2).unwrap();
    let delta = r.delta.unwrap();
    for id in delta.query().changed().collect() {
        let path = delta.path_of(id);
        assert!(path.starts_with("Document"), "{path}");
        assert!(path.contains('['), "{path}");
    }
}

/// A(k) never degrades matching quality against the ground truth, and the
/// diff it feeds stays correct.
#[test]
fn hybrid_levels_monotone_quality() {
    let profile = DocProfile {
        duplicate_rate: 0.2,
        ..DocProfile::small()
    };
    for seed in 0..5u64 {
        let t1 = generate_document(700 + seed, &profile);
        let (t2, _) = perturb(&t1, 750 + seed, 8, &EditMix::default(), &profile);
        let truth = ground_truth_matching(&t1, &t2);
        let mut last_f1 = 0.0;
        for k in 0..3u32 {
            let h = match_with_optimality(&t1, &t2, MatchParams::default(), k).unwrap();
            let q = match_quality(&h.matching, &truth);
            assert!(
                q.f1() + 0.05 >= last_f1,
                "seed {seed}, k {k}: f1 regressed {last_f1} -> {}",
                q.f1()
            );
            last_f1 = last_f1.max(q.f1());
            let res = edit_script(&t1, &t2, &h.matching).unwrap();
            assert!(isomorphic(&res.replay_on(&t1).unwrap(), &res.edited));
        }
    }
}

/// Keyed matching against ground truth: with unique keys, it IS the ground
/// truth for surviving keyed nodes.
#[test]
fn keyed_matching_exact_on_keyed_data() {
    // Build a "database dump" tree where every record's value embeds its id.
    let mut t1: Tree<String> = Tree::new(Label::intern("Dump"), String::new());
    let root = t1.root();
    for table in 0..3 {
        let tb = t1.push_child(root, Label::intern("Table"), format!("id=t{table}"));
        for row in 0..8 {
            t1.push_child(
                tb,
                Label::intern("Row"),
                format!("id=t{table}r{row} payload{row}"),
            );
        }
    }
    // New version: shuffle rows between tables, update payloads.
    let mut t2 = t1.clone();
    let tables: Vec<_> = t2.children(t2.root()).to_vec();
    let row = t2.children(tables[0])[2];
    t2.move_subtree(row, tables[1], 0).unwrap();
    let row2 = t2.children(tables[1])[3];
    t2.update(row2, "id=t1r2 payload-updated".to_string())
        .unwrap();

    let key = |t: &Tree<String>, n: hierdiff::tree::NodeId| {
        t.value(n)
            .strip_prefix("id=")
            .map(|r| r.split(' ').next().unwrap_or(r).to_string())
    };
    let keyed = match_by_key(&t1, &t2, key).unwrap();
    // Every keyed node survives, so the matching is total minus the root.
    assert_eq!(keyed.len(), t1.len() - 1);
    let res = edit_script(&t1, &t2, &{
        let mut m = keyed.clone();
        m.insert(t1.root(), t2.root()).unwrap();
        m
    })
    .unwrap();
    let c = res.script.op_counts();
    assert_eq!(c.moves, 1);
    assert_eq!(c.updates, 1);
    assert_eq!(c.inserts + c.deletes, 0);
}

/// The HTML renderer stays well-formed-ish on corpora: every opened `<ins>`
/// closes, anchors pair up.
#[test]
fn html_output_structurally_sane() {
    use hierdiff::doc::{diff_trees, render_html, LaDiffOptions};
    let profile = DocProfile::small();
    for seed in 0..5u64 {
        let t1 = generate_document(600 + seed, &profile);
        let (t2, _) = perturb(&t1, 650 + seed, 10, &EditMix::default(), &profile);
        let out = diff_trees(t1, t2, &LaDiffOptions::default()).unwrap();
        let html = render_html(&out.delta);
        for tag in ["ins", "del", "em", "span", "p", "h1", "ul", "li"] {
            let opens = html.matches(&format!("<{tag}")).count();
            let closes = html.matches(&format!("</{tag}>")).count();
            assert_eq!(opens, closes, "seed {seed}: unbalanced <{tag}>:\n{html}");
        }
        let anchors = html.matches("id=\"mov").count();
        let refs = html.matches("href=\"#mov").count();
        assert_eq!(anchors, refs, "seed {seed}: move anchor/ref mismatch");
    }
}
