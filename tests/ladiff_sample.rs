//! E4 integration test: the Appendix A sample run. The condensed TeXbook
//! documents exercise every Table 2 mark-up convention; this test pins the
//! detected operations and the conventions that must appear in the output.

use hierdiff::doc::{ladiff, Engine, LaDiffOptions};
use hierdiff_bench::experiments::{SAMPLE_NEW, SAMPLE_OLD};

#[test]
fn sample_run_detects_all_change_kinds() {
    let out = ladiff(SAMPLE_OLD, SAMPLE_NEW, &LaDiffOptions::default()).unwrap();
    let ops = out.stats.ops;
    assert!(ops.inserts >= 1, "expected inserted sentences: {ops:?}");
    assert!(ops.deletes >= 1, "expected deleted sentences: {ops:?}");
    assert!(ops.updates >= 1, "expected updated sentences: {ops:?}");
    assert!(ops.moves >= 1, "expected moved sentences: {ops:?}");
}

#[test]
fn sample_markup_uses_table2_conventions() {
    let out = ladiff(SAMPLE_OLD, SAMPLE_NEW, &LaDiffOptions::default()).unwrap();
    let mk = &out.markup;
    // Sentence conventions.
    assert!(mk.contains("\\textbf{"), "inserted sentence in bold:\n{mk}");
    assert!(
        mk.contains("{\\small "),
        "deleted/moved-source sentence in small:\n{mk}"
    );
    assert!(
        mk.contains("\\textit{"),
        "updated sentence in italics:\n{mk}"
    );
    assert!(
        mk.contains("\\footnote{Moved from S"),
        "move footnote at the new position:\n{mk}"
    );
    assert!(
        mk.contains("S1:["),
        "labeled old position of the move:\n{mk}"
    );
    // Section renames annotated in the heading.
    assert!(
        mk.contains("(upd)") || mk.contains("(ins)"),
        "heading annotations:\n{mk}"
    );
}

/// The TeXbook sample's signature change: the conclusion's first sentence
/// moved to the introduction (and was reworded) — a move+update that must
/// be rendered as italics + footnote, exactly like Figure 16's first
/// sentence.
#[test]
fn sample_move_plus_update_sentence() {
    let out = ladiff(SAMPLE_OLD, SAMPLE_NEW, &LaDiffOptions::default()).unwrap();
    let mk = &out.markup;
    assert!(
        mk.contains("}\\footnote{Moved from S"),
        "a moved sentence with footnote:\n{mk}"
    );
    // The moved + updated one renders italic with footnote.
    assert!(
        mk.contains("\\textit{The TeX language described in this book is quite similar"),
        "the moved+updated opener in italics:\n{mk}"
    );
}

#[test]
fn sample_agrees_across_engines() {
    let fast = ladiff(SAMPLE_OLD, SAMPLE_NEW, &LaDiffOptions::default()).unwrap();
    let simple = ladiff(
        SAMPLE_OLD,
        SAMPLE_NEW,
        &LaDiffOptions {
            engine: Engine::Simple,
            ..LaDiffOptions::default()
        },
    )
    .unwrap();
    assert_eq!(fast.stats.ops, simple.stats.ops);
    assert_eq!(fast.markup, simple.markup);
}

#[test]
fn sample_roundtrips_via_delta() {
    let out = ladiff(SAMPLE_OLD, SAMPLE_NEW, &LaDiffOptions::default()).unwrap();
    assert!(hierdiff::tree::isomorphic(
        &out.delta.project_new(),
        &out.new_tree
    ));
    assert!(hierdiff::tree::isomorphic(
        &out.delta.project_old(),
        &out.old_tree
    ));
}
