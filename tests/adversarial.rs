//! Adversarial-input robustness: property tests over pathological tree
//! shapes — all-identical leaves (Criterion 3 has no canonical answer and
//! the quadratic pass has maximal work), single chains of depth N, and
//! maximal-D sibling shuffles. Under any budget the pipeline must either
//! complete (possibly degraded, always conforming and audit-clean) or
//! return a typed [`DiffError::BudgetExhausted`] — and it must never
//! panic.
//!
//! The worst cases live on as regression fixtures in
//! `fixtures/adversarial_*.sexpr`, replayed by the tests at the bottom.

use proptest::prelude::*;

use hierdiff::tree::{isomorphic, Label, NodeValue, Tree};
use hierdiff::{Audit, Budget, Budgets, DiffError, DiffResult, Differ};

/// The conformance target: `T2` itself, or the dummy-wrapped `T2` when the
/// roots were unmatched and EditScript wrapped both trees (Section 3.2's
/// reduction to the matched-roots case).
fn conformance_target(r: &DiffResult<String>, new: &Tree<String>) -> Tree<String> {
    let mut target = new.clone();
    if r.mces.wrapped {
        target.wrap_root(
            Label::intern(hierdiff::edit::DUMMY_ROOT_LABEL),
            String::null(),
        );
    }
    target
}

/// A flat tree of `n` leaves whose values all compare equal — every cross
/// pair passes Criterion 1, so nothing prunes the candidate space.
fn identical_leaves(n: usize) -> Tree<String> {
    let leaves: Vec<String> = (0..n).map(|_| r#"(S "same words here")"#.into()).collect();
    Tree::parse_sexpr(&format!("(D {})", leaves.join(" "))).unwrap()
}

/// A single chain of `depth` nested `N` nodes with one sentence at the
/// bottom.
fn chain(depth: usize, bottom: &str) -> Tree<String> {
    let mut s = String::new();
    for _ in 0..depth {
        s.push_str("(N ");
    }
    s.push_str(&format!("(S \"{bottom}\")"));
    s.push_str(&")".repeat(depth));
    Tree::parse_sexpr(&s).unwrap()
}

/// A flat tree of `n` distinct leaves in the order given by `perm`.
fn shuffled(n: usize, perm: &[usize]) -> Tree<String> {
    let leaves: Vec<String> = perm
        .iter()
        .map(|&i| format!("(S \"unit {} payload\")", i % n))
        .collect();
    Tree::parse_sexpr(&format!("(D {})", leaves.join(" "))).unwrap()
}

/// Asserts the two acceptance-grade outcomes of a governed run: a typed
/// budget error, or a (possibly degraded) result that still conforms —
/// replaying the script on `old` reproduces the edited tree, the edited
/// tree is isomorphic to `new`, and the stage-boundary audit is clean.
fn governed_outcome_is_sound(
    result: Result<DiffResult<String>, DiffError>,
    old: &Tree<String>,
    new: &Tree<String>,
) {
    match result {
        Ok(r) => {
            let replayed = r.mces.replay_on(old).unwrap();
            assert!(isomorphic(&replayed, &r.mces.edited), "replay != edited");
            assert!(
                isomorphic(&r.mces.edited, &conformance_target(&r, new)),
                "not conforming to T2"
            );
            if let Some(report) = &r.audit {
                assert!(report.is_clean(), "audit findings: {report}");
            }
        }
        Err(DiffError::BudgetExhausted(_)) => {}
        Err(other) => panic!("unexpected error: {other}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All-identical leaf soup: with a tiny LCS-cell budget the run must
    /// complete degraded-but-conforming or exhaust a budget — never panic,
    /// never produce a non-conforming script.
    #[test]
    fn identical_leaf_soup_completes_or_exhausts(
        n1 in 1usize..60,
        n2 in 1usize..60,
        lcs_cells in prop_oneof![Just(1u64), Just(64), Just(u64::MAX)],
    ) {
        let old = identical_leaves(n1);
        let new = identical_leaves(n2);
        let r = Differ::new()
            .audit(Audit::On)
            .budget(Budgets::unlimited().with_max_lcs_cells(lcs_cells))
            .diff(&old, &new);
        governed_outcome_is_sound(r, &old, &new);
    }

    /// Deep single chains: depth-N nesting diffs cleanly under governance
    /// at any budget tier.
    #[test]
    fn deep_chains_complete_or_exhaust(
        depth in 1usize..200,
        lcs_cells in prop_oneof![Just(1u64), Just(u64::MAX)],
    ) {
        // Similar enough to pass Criterion 1, so all `depth` levels match
        // and every level runs a (tiny) alignment.
        let old = chain(depth, "bottom of the well");
        let new = chain(depth, "bottom of the deep well");
        let r = Differ::new()
            .audit(Audit::On)
            .budget(Budgets::unlimited().with_max_lcs_cells(lcs_cells))
            .diff(&old, &new);
        governed_outcome_is_sound(r, &old, &new);
    }

    /// Maximal-D shuffles: random permutations of distinct siblings (the
    /// LCS worst case) stay sound under the full degradation ladder.
    #[test]
    fn sibling_shuffles_complete_or_exhaust(
        n in 2usize..50,
        perm in proptest::collection::vec(any::<usize>(), 2..50),
        lcs_cells in prop_oneof![Just(1u64), Just(256), Just(u64::MAX)],
    ) {
        let old = shuffled(n, &(0..n).collect::<Vec<_>>());
        let new = shuffled(n, &perm);
        let r = Differ::new()
            .audit(Audit::On)
            .budget(Budgets::unlimited().with_max_lcs_cells(lcs_cells))
            .diff(&old, &new);
        governed_outcome_is_sound(r, &old, &new);
    }

    /// A node budget below the input size is always the typed admission
    /// error, regardless of shape.
    #[test]
    fn undersized_node_budget_is_typed(
        n in 2usize..40,
    ) {
        let old = identical_leaves(n);
        let new = identical_leaves(n);
        let r = Differ::new()
            .budget(Budgets::unlimited().with_max_nodes(n)) // < 2n + 2
            .diff(&old, &new);
        prop_assert!(matches!(r, Err(DiffError::BudgetExhausted(Budget::Nodes))));
    }
}

/// Loads a fixture pair from `fixtures/`.
fn fixture_pair(stem: &str) -> (Tree<String>, Tree<String>) {
    let load = |suffix: &str| {
        let path = format!(
            "{}/fixtures/adversarial_{stem}_{suffix}.sexpr",
            env!("CARGO_MANIFEST_DIR")
        );
        let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
        Tree::parse_sexpr(&src).unwrap()
    };
    (load("old"), load("new"))
}

/// The recorded worst cases replay deterministically: every fixture pair
/// diffs conformingly without budgets, and under a 1-cell LCS budget
/// produces a degraded result that STILL replays `T1` into `T2` and
/// audits clean (the acceptance criterion for the degradation ladder).
#[test]
fn adversarial_fixtures_replay_to_t2() {
    let mut any_degraded = false;
    for stem in ["identical", "chain", "shuffle"] {
        let (old, new) = fixture_pair(stem);

        let plain = Differ::new().audit(Audit::On).diff(&old, &new).unwrap();
        assert!(!plain.degraded.any(), "{stem}: ungoverned run degraded");
        assert!(
            isomorphic(&plain.mces.edited, &conformance_target(&plain, &new)),
            "{stem}: ungoverned run not conforming"
        );

        let governed = Differ::new()
            .audit(Audit::On)
            .budget(Budgets::unlimited().with_max_lcs_cells(1))
            .diff(&old, &new)
            .unwrap_or_else(|e| panic!("{stem}: governed run failed: {e}"));
        any_degraded |= governed.degraded.any();
        let replayed = governed.mces.replay_on(&old).unwrap();
        assert!(
            isomorphic(&replayed, &governed.mces.edited),
            "{stem}: degraded replay != edited"
        );
        assert!(
            isomorphic(&governed.mces.edited, &conformance_target(&governed, &new)),
            "{stem}: degraded result not conforming to T2"
        );
        assert!(
            governed.audit.expect("audit on").is_clean(),
            "{stem}: degraded result has audit findings"
        );
    }
    assert!(
        any_degraded,
        "the fixture corpus no longer exercises the degraded tiers"
    );
}

/// The fixtures stay pathological: under a small-but-positive cell budget
/// the shuffle fixture visibly degrades the matching tier (it reaches the
/// LCS at all, unlike a 1-cell budget tripping at the first round).
#[test]
fn shuffle_fixture_degrades_matching_tier() {
    let (old, new) = fixture_pair("shuffle");
    let r = Differ::new()
        .budget(Budgets::unlimited().with_max_lcs_cells(100))
        .diff(&old, &new)
        .unwrap();
    assert!(
        r.degraded.matching,
        "shuffle stopped tripping the LCS budget"
    );
    assert!(isomorphic(&r.mces.edited, &new));
}

/// Guard-budget exhaustion *inside* GumTree's bounded Zhang–Shasha
/// recovery pass: the LCS-cell budget runs dry mid-recovery, the pass is
/// truncated (not errored), the degradation ladder flags the matching
/// tier, and the result still replays `T1` into `T2` and audits clean —
/// deterministically across replays.
#[test]
fn gumtree_recovery_budget_exhaustion_degrades_cleanly() {
    use hierdiff::MatchStrategy;
    // Similar containers with disjoint leaf multisets force the
    // bottom-up phase to adopt containers whose children only the
    // recovery pass could match; a tiny cell budget truncates it there.
    let leaves = |prefix: &str| -> String {
        (0..24)
            .map(|i| format!("(S \"{prefix}{i}\")"))
            .collect::<Vec<_>>()
            .join(" ")
    };
    let old = Tree::parse_sexpr(&format!(
        "(D (P {}) (P (S \"anchor one\") (S \"anchor two\")))",
        leaves("left ")
    ))
    .unwrap();
    let new = Tree::parse_sexpr(&format!(
        "(D (P {}) (P (S \"anchor one\") (S \"anchor two\")))",
        leaves("right ")
    ))
    .unwrap();

    let run = || {
        Differ::new()
            .strategy(MatchStrategy::gumtree())
            .audit(Audit::On)
            .budget(Budgets::unlimited().with_max_lcs_cells(1))
            .diff(&old, &new)
            .unwrap()
    };
    let r = run();
    assert!(r.degraded.matching, "the ladder must engage");
    let replayed = r.mces.replay_on(&old).unwrap();
    assert!(isomorphic(&replayed, &r.mces.edited), "replay != edited");
    assert!(
        isomorphic(&r.mces.edited, &conformance_target(&r, &new)),
        "truncated recovery still conforms to T2"
    );
    assert!(r.audit.expect("audit on").is_clean());
    let again = run();
    assert_eq!(r.script, again.script, "truncation is deterministic");
    // An ungoverned run completes the recovery and does not degrade.
    let full = Differ::new()
        .strategy(MatchStrategy::gumtree())
        .diff(&old, &new)
        .unwrap();
    assert!(!full.degraded.matching);
}
