//! Storage-format round trips: trees, edit scripts, and delta trees
//! serialize to JSON and come back semantically identical — the contract
//! that lets deltas be shipped between processes (the warehouse scenario's
//! "sequence of data snapshots or dumps").

use hierdiff::delta::{build_delta_tree, DeltaTree};
use hierdiff::doc::DocValue;
use hierdiff::edit::{apply, edit_script, EditScript};
use hierdiff::matching::{fast_match, MatchParams};
use hierdiff::tree::{isomorphic, Tree};
use hierdiff::workload::{generate_document, perturb, DocProfile, EditMix};

fn corpus() -> (Tree<DocValue>, Tree<DocValue>) {
    let t1 = generate_document(42_000, &DocProfile::small());
    let (t2, _) = perturb(&t1, 42_001, 8, &EditMix::default(), &DocProfile::small());
    (t1, t2)
}

#[test]
fn tree_json_roundtrip() {
    let (t1, _) = corpus();
    let json = serde_json::to_string(&t1).unwrap();
    let back: Tree<DocValue> = serde_json::from_str(&json).unwrap();
    back.validate().unwrap();
    assert!(isomorphic(&t1, &back));
    // Ids survive exactly (arena serialization is positional).
    for id in t1.preorder() {
        assert_eq!(t1.label(id), back.label(id));
        assert_eq!(t1.value(id), back.value(id));
    }
}

#[test]
fn script_json_roundtrip_and_replay() {
    let (t1, t2) = corpus();
    let m = fast_match(&t1, &t2, MatchParams::default()).unwrap();
    let res = edit_script(&t1, &t2, &m.matching).unwrap();
    let json = serde_json::to_string(&res.script).unwrap();
    let back: EditScript<DocValue> = serde_json::from_str(&json).unwrap();
    assert_eq!(back, res.script);
    // A deserialized script replays identically: ship the old tree and the
    // script, reconstruct the new tree on the other side.
    if !res.wrapped {
        let mut replayed = t1.clone();
        apply(&mut replayed, &back).unwrap();
        assert!(isomorphic(&replayed, &res.edited));
    }
}

#[test]
fn delta_tree_json_roundtrip() {
    let (t1, t2) = corpus();
    let m = fast_match(&t1, &t2, MatchParams::default()).unwrap();
    let res = edit_script(&t1, &t2, &m.matching).unwrap();
    let delta = build_delta_tree(&t1, &t2, &m.matching, &res);
    let json = serde_json::to_string(&delta).unwrap();
    let back: DeltaTree<DocValue> = serde_json::from_str(&json).unwrap();
    assert_eq!(back.len(), delta.len());
    assert_eq!(back.annotation_counts(), delta.annotation_counts());
    assert!(isomorphic(&back.project_new(), &delta.project_new()));
    assert!(isomorphic(&back.project_old(), &delta.project_old()));
}

#[test]
fn shipped_delta_reconstructs_remote_snapshot() {
    // Full warehouse loop: site A has old+new, ships (old-id-space) script
    // JSON to site B which holds only the old snapshot JSON.
    let (t1, t2) = corpus();
    let m = fast_match(&t1, &t2, MatchParams::default()).unwrap();
    let res = edit_script(&t1, &t2, &m.matching).unwrap();
    if res.wrapped {
        return;
    }
    let wire_old = serde_json::to_string(&t1).unwrap();
    let wire_script = serde_json::to_string(&res.script).unwrap();

    // "Site B":
    let mut remote: Tree<DocValue> = serde_json::from_str(&wire_old).unwrap();
    let script: EditScript<DocValue> = serde_json::from_str(&wire_script).unwrap();
    apply(&mut remote, &script).unwrap();
    assert!(isomorphic(&remote, &t2));
}
