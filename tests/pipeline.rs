//! Cross-crate integration: workload generator → matcher → edit script →
//! delta tree, verified end to end over many seeds.

use hierdiff::delta::build_delta_tree;
use hierdiff::edit::{conforms_to, edit_script, verify_result};
use hierdiff::matching::{fast_match, match_simple, postprocess, MatchParams};
use hierdiff::tree::{isomorphic, Label};
use hierdiff::workload::{
    generate_docset, generate_document, perturb, DocProfile, DocSetProfile, EditMix,
};

/// The core correctness loop of the whole system: for many random document
/// pairs, the detected script conforms to the matching, replays on T1, and
/// reproduces T2; the delta tree projects onto both versions.
#[test]
fn random_documents_full_verification() {
    let profile = DocProfile::default();
    for seed in 0..12u64 {
        let t1 = generate_document(seed, &profile);
        let edits = 3 + (seed as usize * 7) % 40;
        let (t2, _) = perturb(&t1, seed + 1000, edits, &EditMix::default(), &profile);

        let matched = fast_match(&t1, &t2, MatchParams::default()).unwrap();
        let res = edit_script(&t1, &t2, &matched.matching).unwrap();

        verify_result(&t1, &t2, &matched.matching, &res)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(conforms_to(&res.script, &matched.matching));

        let delta = build_delta_tree(&t1, &t2, &matched.matching, &res);
        let wrap = |t: &hierdiff::tree::Tree<hierdiff::doc::DocValue>| {
            let mut w = t.clone();
            if res.wrapped {
                w.wrap_root(
                    Label::intern(hierdiff::edit::DUMMY_ROOT_LABEL),
                    hierdiff::doc::DocValue::None,
                );
            }
            w
        };
        assert!(
            isomorphic(&delta.project_new(), &wrap(&t2)),
            "seed {seed}: delta project_new mismatch"
        );
        assert!(
            isomorphic(&delta.project_old(), &wrap(&t1)),
            "seed {seed}: delta project_old mismatch"
        );
    }
}

/// Both matchers must produce verified results; on clean (duplicate-free)
/// corpora they produce the same matching (Theorem 5.2 uniqueness).
#[test]
fn matchers_agree_on_clean_corpora() {
    let profile = DocProfile {
        vocabulary: 50_000,
        ..DocProfile::default()
    };
    for seed in 0..6u64 {
        let t1 = generate_document(100 + seed, &profile);
        let (t2, _) = perturb(&t1, 200 + seed, 10, &EditMix::default(), &profile);
        let fast = fast_match(&t1, &t2, MatchParams::default()).unwrap();
        let simple = match_simple(&t1, &t2, MatchParams::default()).unwrap();
        assert_eq!(fast.matching.len(), simple.matching.len(), "seed {seed}");
        for (x, y) in simple.matching.iter() {
            assert!(fast.matching.contains(x, y), "seed {seed}: ({x}, {y})");
        }
    }
}

/// Post-processing must never break correctness, and never materially
/// lengthen scripts, on duplicate-heavy corpora.
#[test]
fn postprocess_preserves_correctness() {
    let profile = DocProfile {
        duplicate_rate: 0.3,
        ..DocProfile::small()
    };
    for seed in 0..8u64 {
        let t1 = generate_document(300 + seed, &profile);
        let (t2, _) = perturb(&t1, 400 + seed, 8, &EditMix::default(), &profile);
        let mut matched = fast_match(&t1, &t2, MatchParams::default()).unwrap();
        let before = edit_script(&t1, &t2, &matched.matching).unwrap();
        postprocess(&t1, &t2, MatchParams::default(), &mut matched.matching).unwrap();
        let after = edit_script(&t1, &t2, &matched.matching).unwrap();
        verify_result(&t1, &t2, &matched.matching, &after)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(
            after.script.len() <= before.script.len() + 2,
            "seed {seed}: post-processing ballooned the script ({} -> {})",
            before.script.len(),
            after.script.len()
        );
    }
}

/// Diffing version chains transitively: applying the v0→v1 script then
/// diffing against v2 etc. keeps every intermediate isomorphic.
#[test]
fn version_chain_replays() {
    let set = generate_docset(&DocSetProfile::paper_sets()[0]);
    for w in set.versions.windows(2) {
        let matched = fast_match(&w[0], &w[1], MatchParams::default()).unwrap();
        let res = edit_script(&w[0], &w[1], &matched.matching).unwrap();
        let replayed = res.replay_on(&w[0]).unwrap();
        assert!(isomorphic(&replayed, &res.edited));
    }
}

/// The detected edit count tracks the applied edit count across a scale
/// sweep (sanity of the whole measurement chain used in the experiments).
#[test]
fn detected_distance_tracks_applied_edits() {
    let profile = DocProfile::default();
    let t1 = generate_document(777, &profile);
    let mut last_d = 0usize;
    for &edits in &[2usize, 10, 40] {
        let (t2, _) = perturb(&t1, 888, edits, &EditMix::updates_only(), &profile);
        let matched = fast_match(&t1, &t2, MatchParams::default()).unwrap();
        let res = edit_script(&t1, &t2, &matched.matching).unwrap();
        let d = res.stats.unweighted_distance();
        assert!(d >= last_d, "distance should grow with edits");
        last_d = d;
    }
    assert!(last_d > 0);
}
