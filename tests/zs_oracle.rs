//! Cross-validation against the Zhang–Shasha baseline (the paper's [ZS89]
//! comparator): on small trees, the Chawathe pipeline's script cost should
//! sit close to the ZS optimum when Criterion 3 holds, and the ZS-derived
//! matching ([Zha95]'s "best matching") fed into EditScript always yields a
//! correct script.

use hierdiff::edit::{edit_script, CostModel, Matching};
use hierdiff::matching::{check_criterion3, fast_match, fast_match_accelerated, MatchParams};
use hierdiff::tree::{isomorphic, Tree};
use hierdiff::workload::{generate_document, perturb, DocProfile, EditMix};
use hierdiff::zs::{tree_distance, tree_mapping, UnitCost};

fn small_profile() -> DocProfile {
    DocProfile {
        sections: 2,
        paragraphs_per_section: (2, 3),
        sentences_per_paragraph: (2, 3),
        ..DocProfile::default()
    }
}

/// The ZS mapping, restricted to label-preserving pairs, is a valid input
/// matching for EditScript on arbitrary small document pairs.
#[test]
fn zs_mapping_drives_editscript() {
    let profile = small_profile();
    for seed in 0..10u64 {
        let t1 = generate_document(seed, &profile);
        let (t2, _) = perturb(&t1, seed + 50, 5, &EditMix::default(), &profile);
        let zs = tree_mapping(&t1, &t2, &UnitCost);
        let mut m = Matching::with_capacity(t1.arena_len(), t2.arena_len());
        for (x, y) in zs.iter() {
            if t1.label(x) == t2.label(y) {
                m.insert(x, y).unwrap();
            }
        }
        let res = edit_script(&t1, &t2, &m).unwrap();
        let replayed = res.replay_on(&t1).unwrap();
        assert!(isomorphic(&replayed, &res.edited), "seed {seed}");
    }
}

/// When Criterion 3 holds (no duplicate sentences), the FastMatch-driven
/// script cost stays within a small factor of the ZS optimum. The operation
/// sets differ (moves vs child-promoting deletes), so exact equality is not
/// expected — but the paper's claim is that the fast algorithm's deltas are
/// near-minimal in practice.
#[test]
fn fastmatch_cost_near_zs_optimum_under_criterion3() {
    let profile = DocProfile {
        vocabulary: 100_000, // unique sentences: Criterion 3 holds
        ..small_profile()
    };
    let mut total_chawathe = 0.0;
    let mut total_zs = 0.0;
    for seed in 0..10u64 {
        let t1 = generate_document(100 + seed, &profile);
        let (t2, _) = perturb(&t1, 150 + seed, 4, &EditMix::default(), &profile);
        assert!(check_criterion3(&t1, &t2).holds(), "seed {seed}");
        let matched = fast_match(&t1, &t2, MatchParams::default()).unwrap();
        let res = edit_script(&t1, &t2, &matched.matching).unwrap();
        let cost = res.cost_on(&t1, &CostModel::paper()).unwrap();
        let zs = tree_distance(&t1, &t2, &UnitCost);
        total_chawathe += cost;
        total_zs += zs;
        assert!(
            cost <= zs * 3.0 + 4.0,
            "seed {seed}: cost {cost} vs ZS {zs} — too far from optimal"
        );
    }
    // Aggregate: same ballpark (the move operation often makes Chawathe
    // *cheaper* than ZS, which must delete + insert to express a move).
    assert!(
        total_chawathe <= total_zs * 2.0,
        "aggregate {total_chawathe} vs ZS {total_zs}"
    );
}

/// Randomized differential suite: across many seeds and perturbation
/// intensities, the conforming script produced by the full pipeline stays
/// within the documented `3·ZS + 4` bound of the Zhang–Shasha optimum —
/// with the identical-subtree pruning pre-pass both off and on — and
/// pruning never changes the script cost. This is the strongest evidence
/// that the fingerprint pre-pass is a pure acceleration: every matching it
/// seeds is one the criteria would have produced anyway.
#[test]
fn randomized_differential_vs_zs_with_and_without_pruning() {
    let profile = DocProfile {
        vocabulary: 100_000, // unique sentences: Criterion 3 holds
        ..small_profile()
    };
    let mut cases = 0usize;
    let mut pruned_anything = 0usize;
    for seed in 0..15u64 {
        for edits in [1usize, 3, 6] {
            let t1 = generate_document(700 + seed, &profile);
            let (t2, _) = perturb(
                &t1,
                900 + seed * 7 + edits as u64,
                edits,
                &EditMix::default(),
                &profile,
            );
            if !check_criterion3(&t1, &t2).holds() {
                continue; // bound only documented under Criterion 3
            }
            cases += 1;
            let zs = tree_distance(&t1, &t2, &UnitCost);

            let plain = fast_match(&t1, &t2, MatchParams::default()).unwrap();
            let plain_res = edit_script(&t1, &t2, &plain.matching).unwrap();
            let plain_cost = plain_res.cost_on(&t1, &CostModel::paper()).unwrap();

            let accel = fast_match_accelerated(&t1, &t2, MatchParams::default()).unwrap();
            let accel_res = edit_script(&t1, &t2, &accel.matching).unwrap();
            let accel_cost = accel_res.cost_on(&t1, &CostModel::paper()).unwrap();

            // Both scripts are conforming: replaying them on T1 yields the
            // edited tree, which is isomorphic to T2.
            assert!(isomorphic(&plain_res.edited, &t2), "seed {seed}/{edits}");
            assert!(isomorphic(&accel_res.edited, &t2), "seed {seed}/{edits}");

            // Documented bound (see fastmatch_cost_near_zs_optimum_...):
            // within a small multiplicative factor of the ZS optimum.
            assert!(
                plain_cost <= zs * 3.0 + 4.0,
                "seed {seed}/{edits}: plain cost {plain_cost} vs ZS {zs}"
            );
            assert!(
                accel_cost <= zs * 3.0 + 4.0,
                "seed {seed}/{edits}: pruned cost {accel_cost} vs ZS {zs}"
            );
            // Pruning is cost-neutral.
            assert_eq!(
                plain_cost, accel_cost,
                "seed {seed}/{edits}: pruning changed script cost"
            );
            if accel.counters.nodes_pruned > 0 {
                pruned_anything += 1;
            }
        }
    }
    assert!(cases >= 30, "suite too small: only {cases} cases ran");
    // The pre-pass actually fires on these lightly-edited documents.
    assert!(
        pruned_anything * 2 > cases,
        "pruning fired on only {pruned_anything}/{cases} cases"
    );
}

/// Moves are where Chawathe beats ZS on cost: a single subtree move costs 1
/// here but `2·|subtree|`-ish there.
#[test]
fn moves_cheaper_than_zs_reinsertion() {
    let t1 = Tree::parse_sexpr(r#"(D (Q (P (S "a") (S "b") (S "c") (S "d"))) (Q))"#).unwrap();
    let t2 = Tree::parse_sexpr(r#"(D (Q) (Q (P (S "a") (S "b") (S "c") (S "d"))))"#).unwrap();
    let matched = fast_match(&t1, &t2, MatchParams::default()).unwrap();
    let res = edit_script(&t1, &t2, &matched.matching).unwrap();
    let cost = res.cost_on(&t1, &CostModel::paper()).unwrap();
    let zs = tree_distance(&t1, &t2, &UnitCost);
    assert_eq!(cost, 1.0, "one move: {}", res.script);
    assert!(zs > cost, "ZS must pay for the move: {zs}");
}

/// ZS, in turn, wins where its child-promoting delete is the natural
/// operation: removing one interior level.
#[test]
fn zs_cheaper_when_promoting_children() {
    let t1 = Tree::parse_sexpr(r#"(D (Wrapper (S "a") (S "b") (S "c")))"#).unwrap();
    let t2 = Tree::parse_sexpr(r#"(D (S "a") (S "b") (S "c"))"#).unwrap();
    let zs = tree_distance(&t1, &t2, &UnitCost);
    assert_eq!(zs, 1.0, "one child-promoting delete");
    let matched = fast_match(&t1, &t2, MatchParams::default()).unwrap();
    let res = edit_script(&t1, &t2, &matched.matching).unwrap();
    let cost = res.cost_on(&t1, &CostModel::paper()).unwrap();
    // Chawathe must move the three sentences out and delete the wrapper.
    assert!(cost >= 4.0, "leaf-only deletes cost more here: {cost}");
}
