//! Differential migration suite for the flat preorder-contiguous tree
//! arena: the full pipeline (match → edit script → delta → audit, with and
//! without the identical-subtree prune pass) is run over the fixture corpus
//! and a seeded randomized document corpus, and every observable output —
//! rendered edit script, `DiffProfile` cost-model counters, audit finding
//! codes, matching size, delta size — is compared byte-for-byte against
//! goldens recorded on the pre-refactor linked arena.
//!
//! Regenerate the goldens (only legitimate when the *algorithms* change,
//! never for a layout refactor) with:
//!
//! ```text
//! ARENA_GOLDEN_RECORD=1 cargo test --test arena_differential
//! ```

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use hierdiff::tree::Tree;
use hierdiff::workload::{generate_document, perturb, DocProfile, EditMix};
use hierdiff::{Audit, DiffResult, Differ, MatchStrategy};
use hierdiff_doc::DocValue;

const GOLDEN_PATH: &str = "fixtures/goldens/arena_differential.txt";

/// The five recorded fixture pairs: the paper's running examples and the
/// adversarial corpus from the guard PR.
const FIXTURE_PAIRS: [(&str, &str, &str); 5] = [
    ("fig1", "fixtures/fig1_old.sexpr", "fixtures/fig1_new.sexpr"),
    ("fig4", "fixtures/fig4_old.sexpr", "fixtures/fig4_new.sexpr"),
    (
        "adversarial_identical",
        "fixtures/adversarial_identical_old.sexpr",
        "fixtures/adversarial_identical_new.sexpr",
    ),
    (
        "adversarial_chain",
        "fixtures/adversarial_chain_old.sexpr",
        "fixtures/adversarial_chain_new.sexpr",
    ),
    (
        "adversarial_shuffle",
        "fixtures/adversarial_shuffle_old.sexpr",
        "fixtures/adversarial_shuffle_new.sexpr",
    ),
];

/// Renders everything observable about one diff run into a stable textual
/// form. Wall-clock phase timings are deliberately excluded — everything
/// else (script, counters, audit codes, sizes) must be invariant under the
/// arena refactor.
fn render_result<V: hierdiff::tree::NodeValue>(out: &mut String, r: &DiffResult<V>) {
    writeln!(out, "  matching: {}", r.matching.len()).unwrap();
    writeln!(out, "  rematched: {}", r.rematched).unwrap();
    writeln!(
        out,
        "  degraded: matching={} alignment={}",
        r.degraded.matching, r.degraded.alignment
    )
    .unwrap();
    writeln!(out, "  weighted_distance: {}", r.weighted_distance()).unwrap();
    writeln!(out, "  script[{}]:", r.script.len()).unwrap();
    for op in r.script.iter() {
        writeln!(out, "    {op}").unwrap();
    }
    if let Some(delta) = &r.delta {
        writeln!(out, "  delta_nodes: {}", delta.len()).unwrap();
    }
    if let Some(profile) = &r.profile {
        let mut counters: Vec<(String, u64)> = profile
            .counters
            .iter()
            .map(|c| (c.name.clone(), c.value))
            .collect();
        counters.sort();
        for (name, value) in counters {
            writeln!(out, "  counter {name} = {value}").unwrap();
        }
    }
    if let Some(report) = &r.audit {
        let mut findings: Vec<String> =
            report.diagnostics().iter().map(|d| d.to_string()).collect();
        findings.sort();
        writeln!(out, "  audit_checks_nonzero: {}", report.checks_run > 0).unwrap();
        writeln!(out, "  audit_findings[{}]:", findings.len()).unwrap();
        for f in findings {
            writeln!(out, "    {f}").unwrap();
        }
    }
}

fn run_case<V: hierdiff::tree::NodeValue>(
    out: &mut String,
    name: &str,
    t1: &Tree<V>,
    t2: &Tree<V>,
) {
    for (variant, strategy) in [
        ("fast", MatchStrategy::fast()),
        ("fast+prune", MatchStrategy::fast_pruned()),
        ("simple", MatchStrategy::Simple),
    ] {
        let r = Differ::new()
            .strategy(strategy)
            .audit(Audit::On)
            .profile(true)
            .diff(t1, t2)
            .unwrap_or_else(|e| panic!("case {name}/{variant} failed: {e}"));
        writeln!(
            out,
            "case {name} [{variant}] n1={} n2={}",
            t1.len(),
            t2.len()
        )
        .unwrap();
        render_result(out, &r);
    }
}

fn load_fixture(path: &str) -> Tree<String> {
    let src = fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    Tree::parse_sexpr(&src).unwrap_or_else(|e| panic!("parse {path}: {e}"))
}

/// The randomized ZS-oracle-style corpus: seeded document generation plus
/// seeded perturbation at several intensities, exactly the flow of
/// `tests/zs_oracle.rs` — deterministic by construction.
fn random_corpus() -> Vec<(String, Tree<DocValue>, Tree<DocValue>)> {
    let mut corpus = Vec::new();
    let small = DocProfile {
        sections: 2,
        paragraphs_per_section: (2, 3),
        sentences_per_paragraph: (2, 3),
        ..DocProfile::default()
    };
    let medium = DocProfile {
        sections: 6,
        ..DocProfile::default()
    };
    for (tag, profile, edits) in [
        ("small", &small, 5usize),
        ("small-heavy", &small, 12),
        ("medium", &medium, 8),
        ("medium-rev", &medium, 20),
    ] {
        for seed in 0..5u64 {
            let t1 = generate_document(900 + seed, profile);
            let mix = if seed % 2 == 0 {
                EditMix::default()
            } else {
                EditMix::revision()
            };
            let (t2, _) = perturb(&t1, 950 + seed, edits, &mix, profile);
            corpus.push((format!("rand-{tag}-{seed}"), t1, t2));
        }
    }
    corpus
}

fn compute_transcript() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "# arena differential goldens — recorded on the pre-refactor linked arena."
    )
    .unwrap();
    writeln!(
        out,
        "# One block per (case, variant); see tests/arena_differential.rs."
    )
    .unwrap();
    for (name, old, new) in FIXTURE_PAIRS {
        let t1 = load_fixture(old);
        let t2 = load_fixture(new);
        run_case(&mut out, name, &t1, &t2);
    }
    for (name, t1, t2) in random_corpus() {
        run_case(&mut out, &name, &t1, &t2);
    }
    out
}

#[test]
fn pipeline_outputs_identical_to_pre_refactor_goldens() {
    let transcript = compute_transcript();
    let golden_path = Path::new(GOLDEN_PATH);
    if std::env::var_os("ARENA_GOLDEN_RECORD").is_some() {
        fs::create_dir_all(golden_path.parent().unwrap()).unwrap();
        fs::write(golden_path, &transcript).unwrap();
        eprintln!("recorded {} bytes to {GOLDEN_PATH}", transcript.len());
        return;
    }
    let golden = fs::read_to_string(golden_path).unwrap_or_else(|e| {
        panic!("missing goldens at {GOLDEN_PATH} ({e}); record with ARENA_GOLDEN_RECORD=1")
    });
    if transcript != golden {
        // Pinpoint the first divergence for a readable failure.
        for (line, (a, b)) in (1usize..).zip(golden.lines().zip(transcript.lines())) {
            if a != b {
                panic!(
                    "arena differential diverged from pre-refactor goldens at line {line}:\n\
                     golden:  {a}\n  actual:  {b}"
                );
            }
        }
        panic!(
            "arena differential transcript length changed: golden {} lines, actual {} lines",
            golden.lines().count(),
            transcript.lines().count()
        );
    }
}

/// The transcript itself is deterministic: two in-process computations are
/// byte-identical (guards against nondeterministic iteration sneaking into
/// the recorded surface).
#[test]
fn transcript_is_deterministic() {
    assert_eq!(compute_transcript(), compute_transcript());
}
