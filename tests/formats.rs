//! Cross-format consistency: the same logical document authored in LaTeX,
//! Markdown, and HTML parses to isomorphic trees (same schema, same
//! segmentation), so diffs — and therefore change reports — agree across
//! authoring formats.

use hierdiff::doc::{
    diff_trees, parse_html, parse_latex, parse_markdown, parse_xml, render_markdown, LaDiffOptions,
};
use hierdiff::tree::isomorphic;

const LATEX: &str = "\\section{Release notes}\nAlpha sentence here. Beta sentence here.\n\nGamma paragraph starts. Delta continues it.\n\\subsection{Details}\nEpsilon closes things.\n";
const MARKDOWN: &str = "# Release notes\n\nAlpha sentence here. Beta sentence here.\n\nGamma paragraph starts. Delta continues it.\n\n## Details\n\nEpsilon closes things.\n";
const HTML: &str = "<h1>Release notes</h1><p>Alpha sentence here. Beta sentence here.</p><p>Gamma paragraph starts. Delta continues it.</p><h2>Details</h2><p>Epsilon closes things.</p>";

#[test]
fn latex_markdown_html_parse_isomorphically() {
    let from_latex = parse_latex(LATEX);
    let from_md = parse_markdown(MARKDOWN);
    let from_html = parse_html(HTML);
    assert!(
        isomorphic(&from_latex, &from_md),
        "latex:\n{from_latex:?}\nmarkdown:\n{from_md:?}"
    );
    assert!(
        isomorphic(&from_latex, &from_html),
        "latex:\n{from_latex:?}\nhtml:\n{from_html:?}"
    );
}

#[test]
fn cross_format_diff_agrees() {
    // Author the old version in LaTeX and the new in Markdown: the diff is
    // identical to the single-format diffs because the trees are.
    let new_markdown = "# Release notes\n\nAlpha sentence here. Beta sentence here. Zeta is brand new.\n\nGamma paragraph starts. Delta continues it.\n\n## Details\n\nEpsilon closes things.\n";
    let out = diff_trees(
        parse_latex(LATEX),
        parse_markdown(new_markdown),
        &LaDiffOptions::default(),
    )
    .unwrap();
    assert_eq!(out.stats.ops.inserts, 1);
    assert_eq!(out.stats.ops.total(), 1);
    // And the report can come out in a third format entirely.
    let report = render_markdown(&out.delta);
    assert!(report.contains("**Zeta is brand new.**"), "{report}");
}

#[test]
fn lists_agree_across_formats() {
    let latex =
        "\\begin{itemize}\n\\item First point here.\n\\item Second point here.\n\\end{itemize}\n";
    let markdown = "- First point here.\n- Second point here.\n";
    let html = "<ul><li>First point here.</li><li>Second point here.</li></ul>";
    let a = parse_latex(latex);
    let b = parse_markdown(markdown);
    let c = parse_html(html);
    assert!(isomorphic(&a, &b), "{a:?}\n{b:?}");
    assert!(isomorphic(&a, &c), "{a:?}\n{c:?}");
}

#[test]
fn xml_remains_distinct_but_diffable_against_itself() {
    // XML maps to its own schema (element names as labels), so it is not
    // isomorphic to the document formats — but the same machinery diffs it.
    let a = parse_xml("<notes><p>Alpha stays.</p><p>Beta stays.</p><p>Gamma stays.</p></notes>")
        .unwrap();
    let b = parse_xml(
        "<notes><p>Alpha stays.</p><p>Beta stays.</p><p>Gamma stays.</p><p>Delta arrives.</p></notes>",
    )
    .unwrap();
    let out = diff_trees(a, b, &LaDiffOptions::default()).unwrap();
    assert_eq!(out.stats.ops.inserts, 2); // <p> element + its #text
}
