//! The serve-layer chaos soak: ≥1000 seeded requests against
//! [`DiffService`] instances with faults injected at every
//! [`ServeBoundary`], asserting the acceptance criteria of the serving
//! layer:
//!
//! * the process never aborts — every request returns `Ok` or a typed
//!   [`ServeError`], even with panics firing inside workers;
//! * no lock is poisoned — reports, cache sweeps, and chaos snapshots
//!   all remain readable after every fault;
//! * post-soak, every cached entry re-validates against a fresh
//!   derivation (index rebuild in-service, plus an end-to-end check
//!   against a freshly regenerated version chain);
//! * injected-fault coverage spans all six serve boundaries.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;
use std::time::Duration;

use hierdiff::guard::{ChaosObserver, Fault, ServeBoundary, ServeChaosPanic};
use hierdiff::serve::{DiffService, ServeConfig, ServeError};
use hierdiff::tree::FingerprintIndex;
use hierdiff::workload::{generate_docset, generate_trace, DocSetProfile, TraceProfile};
use hierdiff::{CancelToken, RetryPolicy};

/// Keeps injected worker panics (typed [`ServeChaosPanic`] payloads) from
/// spamming the test output; genuine panics still print.
fn silence_injected_panics() {
    static QUIET: Once = Once::new();
    QUIET.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<ServeChaosPanic>().is_none() {
                default(info);
            }
        }));
    });
}

const SEEDS: u64 = 130;
const REQUESTS_PER_SEED: usize = 8;

fn fault_for(seed: u64, abandon: &CancelToken) -> Fault {
    match seed % 3 {
        0 => Fault::Panic,
        1 => Fault::Delay(Duration::from_millis(2)),
        _ => Fault::Cancel(abandon.clone()),
    }
}

#[test]
fn thousand_request_soak_stays_typed_and_uncorrupted() {
    silence_injected_panics();
    let set = generate_docset(&DocSetProfile::paper_sets()[0]);
    let chain_len = set.versions.len();
    let mut total_requests = 0u64;
    let mut injected_boundaries = Vec::new();
    let mut outcomes = [0u64; 3]; // ok / typed error / (would-be) panics

    for seed in 0..SEEDS {
        let abandon = CancelToken::new();
        let chaos = ChaosObserver::seeded_serve(seed, fault_for(seed, &abandon));
        injected_boundaries.extend(chaos.serve_injections().iter().map(|i| i.boundary));
        let config = ServeConfig::default()
            .with_workers(2)
            .with_audit(true)
            .with_retry(RetryPolicy::retries(1).with_base_backoff(Duration::ZERO))
            .with_deadline(Duration::from_millis(500));
        let service = DiffService::with_chaos(config, chaos);
        service.ingest("paper", set.versions.clone());

        let trace = generate_trace(
            &TraceProfile {
                seed,
                requests: REQUESTS_PER_SEED,
                adjacent_pct: 70,
            },
            &[chain_len],
        );
        for req in &trace {
            total_requests += 1;
            // The service API must never unwind into the caller.
            let outcome =
                catch_unwind(AssertUnwindSafe(|| service.diff("paper", req.old, req.new)));
            match outcome {
                Ok(Ok(resp)) => {
                    outcomes[0] += 1;
                    assert_ne!(
                        resp.audit_clean,
                        Some(false),
                        "seed {seed}: degraded response failed its audit"
                    );
                }
                Ok(Err(e)) => {
                    outcomes[1] += 1;
                    // Every failure is one of the typed variants — by
                    // construction of the enum, but assert the ones this
                    // soak can legally produce.
                    assert!(
                        matches!(
                            e,
                            ServeError::Panicked { .. }
                                | ServeError::Cancelled
                                | ServeError::DeadlineExceeded
                                | ServeError::Overloaded(_)
                                | ServeError::Diff(_)
                        ),
                        "seed {seed}: unexpected error {e:?}"
                    );
                }
                Err(_) => outcomes[2] += 1,
            }
        }

        // No poisoned locks: every observability surface still answers.
        let report = service.report();
        assert_eq!(report.requests, trace.len() as u64, "seed {seed}");
        let snapshot = service.chaos_snapshot().expect("chaos attached");
        assert!(
            !snapshot.serve_seen().is_empty(),
            "seed {seed}: no boundary was ever observed"
        );
        // Post-soak: every cached entry re-validates against a fresh
        // index rebuild, quarantined or not.
        let validation = service.validate_cache();
        assert!(
            validation.is_clean(),
            "seed {seed}: cache corruption survived the soak: {validation:?}"
        );
        drop(service); // join workers; must not hang
    }

    assert!(
        total_requests >= 1000,
        "soak too small: {total_requests} requests"
    );
    assert_eq!(outcomes[2], 0, "a panic escaped the service API");
    assert!(outcomes[0] > 0, "soak never succeeded at anything");
    assert!(outcomes[1] > 0, "soak never exercised a failure path");
    // Injection coverage: the seeded chooser hit every serve boundary.
    for boundary in ServeBoundary::ALL {
        assert!(
            injected_boundaries.contains(&boundary),
            "no seed injected at {boundary:?}"
        );
    }
}

/// End-to-end freshness: after a panic-heavy soak, the surviving cache
/// must agree with a *freshly generated* copy of the same version chain
/// (the workload generator is the corpus's source of truth, so
/// regeneration is the serving layer's "fresh parse").
#[test]
fn post_soak_cache_agrees_with_fresh_generation() {
    silence_injected_panics();
    let profile = DocSetProfile::paper_sets()[0];
    let set = generate_docset(&profile);
    let chaos = ChaosObserver::new().inject_serve(ServeBoundary::DiffStart, Fault::Panic);
    let service = DiffService::with_chaos(
        ServeConfig::default().with_retry(RetryPolicy::retries(2)),
        chaos,
    );
    service.ingest("paper", set.versions.clone());
    for w in 0..set.versions.len() - 1 {
        let err = service.diff("paper", w, w + 1).map(|_| ()).unwrap_err();
        assert!(matches!(err, ServeError::Panicked { .. }), "{err:?}");
    }
    let report = service.report();
    assert!(report.quarantined > 0, "panics quarantined nothing");
    assert!(service.validate_cache().is_clean());
    // Fresh generation of the same chain fingerprints identically to
    // what the service still holds.
    let fresh = generate_docset(&profile);
    for (v, (cached, regenerated)) in set.versions.iter().zip(&fresh.versions).enumerate() {
        assert_eq!(
            FingerprintIndex::build(cached).dense_hashes(),
            FingerprintIndex::build(regenerated).dense_hashes(),
            "version {v} drifted from its source"
        );
    }
}
