//! Integration tests reproducing the paper's worked examples through the
//! public API (the crate facade, not crate internals).

use hierdiff::edit::{edit_script, EditOp, Matching};
use hierdiff::matching::{fast_match, MatchParams};
use hierdiff::tree::{isomorphic, Label, Tree};
use hierdiff::Differ;

/// Figure 1 / Example 5.1 / Section 4.1: the running example. T1's three
/// paragraphs hold (a), (b c d), (e); T2 reorders the last two paragraphs
/// and appends a sentence g. Expected: FastMatch reproduces the dashed
/// matching, EditScript emits exactly one move and one insert.
#[test]
fn running_example_end_to_end() {
    let t1 =
        Tree::parse_sexpr(r#"(D (P (S "a")) (P (S "b") (S "c") (S "d")) (P (S "e")))"#).unwrap();
    let t2 =
        Tree::parse_sexpr(r#"(D (P (S "a")) (P (S "e")) (P (S "b") (S "c") (S "d") (S "g")))"#)
            .unwrap();

    // The matching of Example 5.1: all five old sentences, paragraphs by
    // content, the roots.
    let matched = fast_match(&t1, &t2, MatchParams::default()).unwrap();
    assert_eq!(matched.matching.len(), 9);
    let p_bcd = t1.children(t1.root())[1];
    let q_bcdg = t2.children(t2.root())[2];
    assert_eq!(matched.matching.partner1(p_bcd), Some(q_bcdg));

    // Section 4.1: "we append MOV(4,1,2)" then "INS((21,S,g),3,3)" — one
    // intra-parent move, one insert, nothing else.
    let result = Differ::new().diff(&t1, &t2).unwrap();
    let counts = result.script.op_counts();
    assert_eq!(counts.moves, 1, "script: {}", result.script);
    assert_eq!(counts.inserts, 1);
    assert_eq!(counts.total(), 2);
    assert!(isomorphic(&result.mces.edited, &t2));

    // The delta tree mirrors the script: one MOV/MRK pair, one INS.
    let delta = result.delta.unwrap();
    let c = delta.annotation_counts();
    assert_eq!(c.moved, 1);
    assert_eq!(c.markers, 1);
    assert_eq!(c.inserted, 1);
    assert_eq!(c.deleted, 0);
}

fn fixture(name: &str) -> Tree<String> {
    let path = format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    Tree::parse_sexpr(&text).unwrap()
}

/// The observability layer's work counters on the Figure 1 fixture are
/// exact and stable: the paper's cost model (`r1` leaf compares, Myers LCS
/// cells, misaligned nodes `D`, weighted distance `e`) is deterministic,
/// so any drift here is an algorithm change, not noise.
#[test]
fn figure1_profile_counters_are_deterministic() {
    let t1 = fixture("fig1_old.sexpr");
    let t2 = fixture("fig1_new.sexpr");
    let run = || {
        Differ::new()
            .profile(true)
            .diff(&t1, &t2)
            .unwrap()
            .profile
            .unwrap()
    };
    let p = run();
    assert_eq!(p.counter("leaf_compares"), 9);
    assert_eq!(p.counter("internal_compares"), 6);
    assert_eq!(p.counter("chain_scans"), 3);
    assert_eq!(p.counter("lcs_cells"), 22);
    assert_eq!(p.counter("inserts"), 1);
    assert_eq!(
        p.counter("misaligned_nodes"),
        1,
        "the one intra-parent move"
    );
    assert_eq!(p.counter("weighted_distance"), 4);
    assert_eq!(p.counter("delta_nodes"), 11);
    assert_eq!(p.counters, run().counters, "counters must not wobble");
}

/// Same contract on the Figure 4 fixture (the MCES example with inserts
/// and deletes but no moves).
#[test]
fn figure4_profile_counters_are_deterministic() {
    let t1 = fixture("fig4_old.sexpr");
    let t2 = fixture("fig4_new.sexpr");
    let run = || {
        Differ::new()
            .profile(true)
            .diff(&t1, &t2)
            .unwrap()
            .profile
            .unwrap()
    };
    let p = run();
    assert_eq!(p.counter("leaf_compares"), 5);
    assert_eq!(p.counter("lcs_cells"), 14);
    assert_eq!(p.counter("inserts"), 2);
    assert_eq!(p.counter("deletes"), 2);
    assert_eq!(p.counter("misaligned_nodes"), 0, "no moves in Figure 4");
    assert_eq!(p.counter("weighted_distance"), 4);
    assert_eq!(p.counter("delta_nodes"), 9);
    assert_eq!(p.counters, run().counters, "counters must not wobble");
    // Every phase of the in-memory pipeline was entered exactly once
    // (audit spans several boundaries; parse happens outside the library).
    for phase in ["prune", "match", "edit_script", "delta"] {
        let timing = p.phase(phase);
        if phase == "prune" {
            assert!(timing.is_none(), "prune off by default");
        } else {
            assert_eq!(timing.unwrap().entries, 1, "{phase}");
        }
    }
}

/// Example 3.1 / Figure 3: applying the script
/// `INS((11, Sec, foo), 1, 4), MOV(5, 11, 1), DEL(2), UPD(9, baz)` to the
/// initial tree produces the final tree of the figure.
#[test]
fn example_3_1_script_application() {
    let t1 = Tree::parse_sexpr(r#"(Doc (P) (Sec (P (S "a") (S "b"))) (S "bar"))"#).unwrap();
    let root = t1.root();
    let kids: Vec<_> = t1.children(root).to_vec();
    let p5 = t1.children(kids[1])[0];

    let fresh = hierdiff::tree::NodeId::from_index(999);
    let script = hierdiff::edit::EditScript::from_ops(vec![
        EditOp::Insert {
            node: fresh,
            label: Label::intern("Sec"),
            value: "foo".to_string(),
            parent: root,
            pos: 3, // the paper's k = 4, 1-based
        },
        EditOp::Move {
            node: p5,
            parent: fresh,
            pos: 0,
        },
        EditOp::Delete { node: kids[0] },
        EditOp::Update {
            node: kids[2],
            value: "baz".to_string(),
        },
    ]);

    let mut t = t1.clone();
    hierdiff::edit::apply(&mut t, &script).unwrap();
    t.validate().unwrap();

    // Final shape: Doc -> [Sec (now empty), S "baz", Sec "foo" -> P -> a b].
    let kids: Vec<_> = t.children(t.root()).to_vec();
    assert_eq!(kids.len(), 3);
    assert_eq!(t.label(kids[0]), Label::intern("Sec"));
    assert!(t.is_leaf(kids[0]));
    assert_eq!(t.value(kids[1]), "baz");
    assert_eq!(t.value(kids[2]), "foo");
    let p = t.children(kids[2])[0];
    assert_eq!(t.arity(p), 2);
}

/// Section 3.2's "more work than necessary" alternative script: the
/// delete/insert version of Example 3.1 costs 7 while the move version
/// costs ≈ 4 — the cost model must rank them accordingly.
#[test]
fn cost_model_prefers_moves_over_reinsertion() {
    use hierdiff::edit::{script_cost, CostModel, EditScript};
    let t1 = Tree::parse_sexpr(r#"(Doc (P) (Sec (P (S "a") (S "b"))) (S "bar"))"#).unwrap();
    let root = t1.root();
    let kids: Vec<_> = t1.children(root).to_vec();
    let p5 = t1.children(kids[1])[0];
    let (s6, s7) = (t1.children(p5)[0], t1.children(p5)[1]);
    let fresh = hierdiff::tree::NodeId::from_index(999);

    let with_move = EditScript::from_ops(vec![
        EditOp::Insert {
            node: fresh,
            label: Label::intern("Sec"),
            value: "foo".to_string(),
            parent: root,
            pos: 3,
        },
        EditOp::Move {
            node: p5,
            parent: fresh,
            pos: 0,
        },
        EditOp::Delete { node: kids[0] },
        EditOp::Update {
            node: kids[2],
            value: "baz".to_string(),
        },
    ]);
    // The paper's alternative: delete the subtree leaf-by-leaf and insert
    // fresh copies.
    let f2 = hierdiff::tree::NodeId::from_index(1000);
    let without_move = EditScript::from_ops(vec![
        EditOp::Insert {
            node: fresh,
            label: Label::intern("Sec"),
            value: "foo".to_string(),
            parent: root,
            pos: 3,
        },
        EditOp::Delete { node: s6 },
        EditOp::Delete { node: s7 },
        EditOp::Delete { node: p5 },
        EditOp::Insert {
            node: f2,
            label: Label::intern("P"),
            value: String::new(),
            parent: fresh,
            pos: 0,
        },
        EditOp::Insert {
            node: hierdiff::tree::NodeId::from_index(1001),
            label: Label::intern("S"),
            value: "a".to_string(),
            parent: f2,
            pos: 0,
        },
        EditOp::Insert {
            node: hierdiff::tree::NodeId::from_index(1002),
            label: Label::intern("S"),
            value: "b".to_string(),
            parent: f2,
            pos: 1,
        },
        EditOp::Delete { node: kids[0] },
        EditOp::Update {
            node: kids[2],
            value: "baz".to_string(),
        },
    ]);

    let model = CostModel::paper();
    let cheap = script_cost(&t1, &with_move, &model).unwrap();
    let pricey = script_cost(&t1, &without_move, &model).unwrap();
    assert!(cheap < pricey, "{cheap} !< {pricey}");

    // Both scripts produce isomorphic results.
    let mut a = t1.clone();
    hierdiff::edit::apply(&mut a, &with_move).unwrap();
    let mut b = t1.clone();
    hierdiff::edit::apply(&mut b, &without_move).unwrap();
    assert!(isomorphic(&a, &b));
}

/// Figure 2: the three edit operations illustrated on the example tree.
#[test]
fn figure_2_operations() {
    let mut t = Tree::parse_sexpr(r#"(A (B (S "x") (A "foo")) (C) (C))"#).unwrap();
    let root = t.root();
    let b = t.children(root)[0];
    let c1 = t.children(root)[1];
    let foo = t.children(b)[1];

    // INS((7, C), 3, 2): insert a C as second child of node 3 (here c1).
    let ins = t.insert(c1, 0, Label::intern("C"), String::new()).unwrap();
    assert_eq!(t.parent(ins), Some(c1));

    // UPD(6, bar).
    t.update(foo, "bar".to_string()).unwrap();
    assert_eq!(t.value(foo), "bar");

    // MOV(2, 3, 1): move node 2 (B subtree) under 3.
    t.move_subtree(b, c1, 0).unwrap();
    assert_eq!(t.parent(b), Some(c1));
    assert_eq!(t.arity(b), 2, "subtree moved intact");
    t.validate().unwrap();
}

/// Section 2's library example: deleting a "book" object must not promote
/// its author/title into the "library" — the paper's delete is leaf-only.
#[test]
fn leaf_only_delete_semantics() {
    let mut t = Tree::parse_sexpr(
        r#"(Library (Book (Author "knuth") (Title "taocp")) (Book (Author "aho") (Title "dragon")))"#,
    )
    .unwrap();
    let book1 = t.children(t.root())[0];
    let err = t.delete_leaf(book1).unwrap_err();
    assert!(matches!(err, hierdiff::tree::StructureError::NotALeaf(_)));
    // The subtree delete (a composite of leaf deletes) removes everything.
    t.delete_subtree(book1).unwrap();
    assert_eq!(t.arity(t.root()), 1);
    assert_eq!(t.len(), 4);
}

/// Lemma 5.1: a larger matching (under Criterion 1) never yields a more
/// expensive minimum conforming script.
#[test]
fn larger_matchings_are_no_worse() {
    use hierdiff::edit::{script_cost, CostModel};
    let t1 = Tree::parse_sexpr(r#"(D (P (S "aa bb cc") (S "dd ee ff")))"#).unwrap();
    let t2 = Tree::parse_sexpr(r#"(D (P (S "aa bb cc") (S "dd ee gg")))"#).unwrap();
    let mut small = Matching::new();
    small.insert(t1.root(), t2.root()).unwrap();
    let p1 = t1.children(t1.root())[0];
    let p2 = t2.children(t2.root())[0];
    small.insert(p1, p2).unwrap();
    small
        .insert(t1.children(p1)[0], t2.children(p2)[0])
        .unwrap();

    let mut large = small.clone();
    large
        .insert(t1.children(p1)[1], t2.children(p2)[1])
        .unwrap();

    let r_small = edit_script(&t1, &t2, &small).unwrap();
    let r_large = edit_script(&t1, &t2, &large).unwrap();
    let c_small = script_cost(&t1, &r_small.script, &CostModel::paper()).unwrap();
    let c_large = script_cost(&t1, &r_large.script, &CostModel::paper()).unwrap();
    assert!(c_large <= c_small, "{c_large} !<= {c_small}");
}
