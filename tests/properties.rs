//! Property-based tests over randomly generated trees and edits: the
//! system-level invariants of the paper, checked with proptest.

use proptest::prelude::*;

use hierdiff::edit::{edit_script, weighted_edit_distance, CostModel, Matching};
use hierdiff::matching::{fast_match, fast_match_accelerated, MatchParams};
use hierdiff::tree::{isomorphic, Label, NodeId, NodeValue, Tree};
use hierdiff::Differ;

/// A generated tree description: parent links + labels + values, decoded
/// into a `Tree<String>`.
fn arb_tree(
    max_nodes: usize,
    labels: &'static [&'static str],
) -> impl Strategy<Value = Tree<String>> {
    let labels_owned: Vec<&'static str> = labels.to_vec();
    proptest::collection::vec((any::<u32>(), 0..labels.len(), 0..50u32), 0..max_nodes).prop_map(
        move |nodes| {
            let mut t = Tree::new(Label::intern(labels_owned[0]), String::null());
            let mut ids = vec![t.root()];
            for (parent_sel, label_idx, value_sel) in nodes {
                let parent = ids[(parent_sel as usize) % ids.len()];
                let pos = (parent_sel as usize / 7) % (t.arity(parent) + 1);
                let id = t
                    .insert(
                        parent,
                        pos,
                        Label::intern(labels_owned[label_idx]),
                        format!("v{value_sel}"),
                    )
                    .expect("valid position");
                ids.push(id);
            }
            t
        },
    )
}

/// Random edits applied to a clone of `t`, returning the result.
fn apply_random_edits(t: &Tree<String>, ops: &[(u8, u32, u32)]) -> Tree<String> {
    let mut out = t.clone();
    for &(kind, a, b) in ops {
        let nodes: Vec<NodeId> = out.preorder().collect();
        let pick = |sel: u32| nodes[(sel as usize) % nodes.len()];
        match kind % 4 {
            0 => {
                // insert a leaf somewhere
                let parent = pick(a);
                let pos = (b as usize) % (out.arity(parent) + 1);
                out.insert(parent, pos, Label::intern("X"), format!("n{b}"))
                    .expect("valid insert");
            }
            1 => {
                // delete a random leaf (skip the root)
                let leaves: Vec<NodeId> = out.leaves().filter(|&l| l != out.root()).collect();
                if !leaves.is_empty() {
                    out.delete_leaf(leaves[(a as usize) % leaves.len()])
                        .unwrap();
                }
            }
            2 => {
                // update
                let n = pick(a);
                out.update(n, format!("u{b}")).unwrap();
            }
            _ => {
                // move, when legal
                let node = pick(a);
                let target = pick(b);
                if node != out.root() && !out.is_ancestor(node, target) {
                    let pos = (a as usize) % (out.arity(target) + 1);
                    let arity_after =
                        out.arity(target) - usize::from(out.parent(node) == Some(target));
                    let pos = pos.min(arity_after);
                    out.move_subtree(node, target, pos).unwrap();
                }
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Central theorem (C.2, first half): for ANY pair of trees and ANY
    /// (valid) matching — here: the empty matching plus the root pair —
    /// EditScript transforms T1 into a tree isomorphic to T2.
    #[test]
    fn editscript_always_transforms(
        t1 in arb_tree(20, &["D", "P", "S"]),
        t2 in arb_tree(20, &["D", "P", "S"]),
    ) {
        let mut m = Matching::new();
        m.insert(t1.root(), t2.root()).unwrap();
        let res = edit_script(&t1, &t2, &m).unwrap();
        let replayed = res.replay_on(&t1).unwrap();
        prop_assert!(isomorphic(&replayed, &res.edited));
    }

    /// With the FastMatch matching, the same holds, and the script length
    /// is bounded by the trivial rebuild (delete everything + insert
    /// everything).
    #[test]
    fn fastmatch_script_bounded(
        t1 in arb_tree(24, &["D", "P", "S"]),
        t2 in arb_tree(24, &["D", "P", "S"]),
    ) {
        let matched = fast_match(&t1, &t2, MatchParams::default()).unwrap();
        let res = edit_script(&t1, &t2, &matched.matching).unwrap();
        prop_assert!(res.script.len() <= t1.len() + t2.len() + 2);
        let replayed = res.replay_on(&t1).unwrap();
        prop_assert!(isomorphic(&replayed, &res.edited));
    }

    /// Self-diff is empty: matching a tree against itself finds the
    /// identity and the script has no operations.
    #[test]
    fn self_diff_is_empty(t in arb_tree(24, &["D", "P", "S"])) {
        let matched = fast_match(&t, &t.clone(), MatchParams::default()).unwrap();
        prop_assert_eq!(matched.matching.len(), t.len());
        let res = edit_script(&t, &t.clone(), &matched.matching).unwrap();
        prop_assert!(res.script.is_empty(), "script: {}", res.script);
    }

    /// Perturb-and-recover: applying random edits and diffing yields a
    /// script no longer than a constant factor of the edit count, and the
    /// reported weighted distance matches an independent replay
    /// computation.
    #[test]
    fn perturb_and_recover(
        t1 in arb_tree(20, &["D", "P", "S"]),
        ops in proptest::collection::vec((any::<u8>(), any::<u32>(), any::<u32>()), 0..10),
    ) {
        let t2 = apply_random_edits(&t1, &ops);
        let matched = fast_match(&t1, &t2, MatchParams::default()).unwrap();
        let res = edit_script(&t1, &t2, &matched.matching).unwrap();
        let replayed = res.replay_on(&t1).unwrap();
        prop_assert!(isomorphic(&replayed, &res.edited));

        // Weighted distance recomputed by replay agrees with the stats.
        if !res.wrapped {
            let e = weighted_edit_distance(&t1, &res.script).unwrap();
            prop_assert_eq!(e, res.stats.weighted_distance);
        }
    }

    /// The matching always satisfies the criteria: matched leaves share
    /// labels and values within f; matched pairs are one-to-one.
    #[test]
    fn matching_respects_criteria(
        t1 in arb_tree(20, &["D", "P", "S"]),
        t2 in arb_tree(20, &["D", "P", "S"]),
    ) {
        let matched = fast_match(&t1, &t2, MatchParams::default()).unwrap();
        let classes = hierdiff::matching::LabelClasses::classify(&t1, &t2);
        for (x, y) in matched.matching.iter() {
            prop_assert_eq!(t1.label(x), t2.label(y));
            // Criterion 1 applies to leaf-classified labels (a label the
            // generator happened to use on internal nodes falls under
            // Criterion 2 instead).
            if classes.is_leaf_label(t1.label(x)) {
                prop_assert!(
                    t1.value(x).compare(t2.value(y)) <= 0.5,
                    "criterion 1 violated"
                );
            }
            prop_assert_eq!(matched.matching.partner2(y), Some(x));
        }
    }

    /// The strongest MCES fuzz: for ANY label-respecting random partial
    /// matching between ANY two random trees, EditScript produces a
    /// conforming script that transforms T1 into T2 (Theorem C.2 with no
    /// help from the matching algorithms at all).
    #[test]
    fn editscript_handles_arbitrary_matchings(
        t1 in arb_tree(18, &["D", "P", "S"]),
        t2 in arb_tree(18, &["D", "P", "S"]),
        picks in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..30),
    ) {
        // Build a random one-to-one, label-respecting matching.
        let nodes1: Vec<NodeId> = t1.preorder().collect();
        let nodes2: Vec<NodeId> = t2.preorder().collect();
        let mut m = Matching::with_capacity(t1.arena_len(), t2.arena_len());
        for (a, b) in picks {
            let x = nodes1[(a as usize) % nodes1.len()];
            let y = nodes2[(b as usize) % nodes2.len()];
            if t1.label(x) == t2.label(y) && !m.is_matched1(x) && !m.is_matched2(y) {
                m.insert(x, y).unwrap();
            }
        }
        let res = edit_script(&t1, &t2, &m).unwrap();
        let replayed = res.replay_on(&t1).unwrap();
        prop_assert!(isomorphic(&replayed, &res.edited));
        prop_assert!(hierdiff::edit::conforms_to(&res.script, &m));
        prop_assert!(m.is_subset_of(&res.total_matching));
    }

    /// Pruning is a pure acceleration: with the identical-subtree pre-pass
    /// on or off, the resulting conforming scripts have equal cost (and
    /// equal length) on random workload documents under random perturbation
    /// mixes that include subtree moves. (On degenerate trees full of
    /// duplicated values the matchings may legitimately differ — Criterion 3
    /// fails there and neither matching is canonical — so the property is
    /// stated over realistic document content, matching the paper's setting.)
    #[test]
    fn pruning_preserves_script_cost(
        seed in any::<u16>(),
        edits in 0usize..12,
    ) {
        use hierdiff::workload::{generate_document, perturb, DocProfile, EditMix};
        let profile = DocProfile::small();
        let t1 = generate_document(20_000 + seed as u64, &profile);
        let (t2, _) = perturb(&t1, 30_000 + seed as u64, edits, &EditMix::revision(), &profile);
        let plain = fast_match(&t1, &t2, MatchParams::default()).unwrap();
        let accel = fast_match_accelerated(&t1, &t2, MatchParams::default()).unwrap();
        prop_assert_eq!(plain.matching.len(), accel.matching.len());
        let r1 = edit_script(&t1, &t2, &plain.matching).unwrap();
        let r2 = edit_script(&t1, &t2, &accel.matching).unwrap();
        prop_assert_eq!(r1.script.len(), r2.script.len());
        let c1 = r1.cost_on(&t1, &CostModel::paper()).unwrap();
        let c2 = r2.cost_on(&t1, &CostModel::paper()).unwrap();
        prop_assert_eq!(c1, c2, "pruning changed script cost");
    }

    /// Applying the pruned pipeline's script to T1 yields a tree isomorphic
    /// to T2, for random perturbations including subtree moves — the
    /// conformance theorem survives the accelerator.
    #[test]
    fn pruned_script_applies_to_t2(
        t1 in arb_tree(20, &["D", "P", "S"]),
        ops in proptest::collection::vec((any::<u8>(), any::<u32>(), any::<u32>()), 1..12),
    ) {
        let t2 = apply_random_edits(&t1, &ops);
        let r = Differ::new().delta(false).prune(true).diff(&t1, &t2).unwrap();
        let replayed = r.mces.replay_on(&t1).unwrap();
        prop_assert!(isomorphic(&replayed, &r.mces.edited));
        if !r.mces.wrapped {
            prop_assert!(isomorphic(&replayed, &t2), "apply(script, T1) != T2");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Observability is inert: attaching a recording observer (and the
    /// profile recorder) to the pipeline never changes the edit script,
    /// the matching, or the delta projections — and the recorded work
    /// counters are identical run to run.
    #[test]
    fn recording_observer_never_changes_the_diff(
        t1 in arb_tree(20, &["D", "P", "S"]),
        ops in proptest::collection::vec((any::<u8>(), any::<u32>(), any::<u32>()), 0..10),
        prune in any::<bool>(),
    ) {
        let t2 = apply_random_edits(&t1, &ops);
        let plain = Differ::new().prune(prune).diff(&t1, &t2).unwrap();

        let mut recorder = hierdiff::Recorder::new();
        let observed = Differ::new()
            .prune(prune)
            .profile(true)
            .observer(&mut recorder)
            .diff(&t1, &t2)
            .unwrap();

        prop_assert_eq!(&plain.script, &observed.script, "script changed");
        prop_assert_eq!(plain.matching.len(), observed.matching.len());
        prop_assert_eq!(plain.weighted_distance(), observed.weighted_distance());
        let (d1, d2) = (plain.delta.as_ref().unwrap(), observed.delta.as_ref().unwrap());
        prop_assert!(isomorphic(&d1.project_new(), &d2.project_new()));
        prop_assert!(isomorphic(&d1.project_old(), &d2.project_old()));

        // The Tee'd user observer and the internal profile recorder saw
        // the same counter stream…
        let user_profile = recorder.profile();
        let profile = observed.profile.unwrap();
        prop_assert_eq!(&profile.counters, &user_profile.counters);
        // …and a repeat run reproduces the counters exactly.
        let again = Differ::new()
            .prune(prune)
            .profile(true)
            .diff(&t1, &t2)
            .unwrap()
            .profile
            .unwrap();
        prop_assert_eq!(&profile.counters, &again.counters);
        prop_assert_eq!(
            profile.counter("weighted_distance") as usize,
            plain.weighted_distance()
        );
    }
}

proptest! {
    // Each case spins up threads and diffs several pairs; keep the count low.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Batch equivalence: `diff_batch` (and the streaming variant at worker
    /// counts 1, 2, and `available_parallelism`) produces exactly the
    /// sequential `diff` result for every pair, in input order.
    #[test]
    fn batch_equals_sequential_for_any_worker_count(
        trees in proptest::collection::vec(
            (
                arb_tree(12, &["D", "P", "S"]),
                proptest::collection::vec((any::<u8>(), any::<u32>(), any::<u32>()), 0..6),
            ),
            1..6,
        ),
    ) {
        let pairs_owned: Vec<(Tree<String>, Tree<String>)> = trees
            .into_iter()
            .map(|(t1, ops)| {
                let t2 = apply_random_edits(&t1, &ops);
                (t1, t2)
            })
            .collect();
        let pairs: Vec<(&Tree<String>, &Tree<String>)> =
            pairs_owned.iter().map(|(a, b)| (a, b)).collect();
        let sequential: Vec<_> = pairs
            .iter()
            .map(|(a, b)| Differ::new().diff(a, b).unwrap())
            .collect();

        // Default scheduling.
        let batch = Differ::new().diff_batch(&pairs).results;
        for (i, r) in batch.iter().enumerate() {
            prop_assert_eq!(&r.as_ref().unwrap().script, &sequential[i].script);
        }

        // Forced worker counts, streaming API.
        let parallelism = std::thread::available_parallelism().map_or(4, usize::from);
        for workers in [1usize, 2, parallelism] {
            let mut slots: Vec<Option<hierdiff::DiffResult<String>>> =
                (0..pairs.len()).map(|_| None).collect();
            let report = Differ::new()
                .workers(workers)
                .diff_batch_with(&pairs, |i, r| slots[i] = Some(r.unwrap()));
            prop_assert_eq!(report.completed(), pairs.len());
            for (i, slot) in slots.iter().enumerate() {
                let r = slot.as_ref().expect("pair visited");
                prop_assert_eq!(&r.script, &sequential[i].script, "workers={}", workers);
                prop_assert_eq!(
                    r.matching.len(),
                    sequential[i].matching.len(),
                    "workers={}", workers
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Delta trees project onto both versions for arbitrary pairs.
    #[test]
    fn delta_projections_roundtrip(
        t1 in arb_tree(16, &["D", "P", "S"]),
        ops in proptest::collection::vec((any::<u8>(), any::<u32>(), any::<u32>()), 0..8),
    ) {
        let t2 = apply_random_edits(&t1, &ops);
        let matched = fast_match(&t1, &t2, MatchParams::default()).unwrap();
        let res = edit_script(&t1, &t2, &matched.matching).unwrap();
        let delta = hierdiff::delta::build_delta_tree(&t1, &t2, &matched.matching, &res);
        let wrap = |t: &Tree<String>| {
            let mut w = t.clone();
            if res.wrapped {
                w.wrap_root(Label::intern(hierdiff::edit::DUMMY_ROOT_LABEL), String::null());
            }
            w
        };
        prop_assert!(isomorphic(&delta.project_new(), &wrap(&t2)));
        prop_assert!(isomorphic(&delta.project_old(), &wrap(&t1)));
    }
}
