//! Fault-injection hardening tests: a [`ChaosObserver`] attacks every
//! phase boundary of the pipeline with panics, stalls, and cancellations,
//! and every fault must surface as a typed [`DiffError`] or a
//! degraded-but-audit-clean result — never a hang, never a poisoned lock,
//! never an untyped crash.
//!
//! The suite also covers the batch layer (worker kills via a panicking
//! sink, cancelled batches) and the cancellation-latency guarantee on a
//! pathological 100k-node input.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, Once};
use std::time::{Duration, Instant};

use hierdiff::guard::{Boundary, ChaosPanic};
use hierdiff::tree::{isomorphic, Tree};
use hierdiff::{
    Audit, Budget, Budgets, CancelToken, ChaosObserver, DiffError, DiffResult, Differ, Fault, Phase,
};

fn doc(s: &str) -> Tree<String> {
    Tree::parse_sexpr(s).unwrap()
}

/// A pair with enough structure to exercise every phase: identical
/// paragraphs for the pruner, a reversal for the LCS passes, a value edit
/// for the update path.
fn workload() -> (Tree<String>, Tree<String>) {
    let old = doc(r#"(D (P (S "stable one") (S "stable two"))
              (P (S "a") (S "b") (S "c") (S "d"))
              (P (S "old text")))"#);
    let new = doc(r#"(D (P (S "stable one") (S "stable two"))
              (P (S "d") (S "c") (S "b") (S "a"))
              (P (S "new text")))"#);
    (old, new)
}

/// Silences the default panic hook for panics this suite injects on
/// purpose (typed [`ChaosPanic`] payloads and the batch tests' exploding
/// sinks); every other panic still prints through the default hook.
fn silence_injected_panics() {
    static QUIET: Once = Once::new();
    QUIET.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info.payload().downcast_ref::<ChaosPanic>().is_some()
                || info
                    .payload()
                    .downcast_ref::<&str>()
                    .is_some_and(|s| s.contains("sink exploded"));
            if !injected {
                default(info);
            }
        }));
    });
}

/// Runs the full pipeline (prune + audit + delta) with `obs` attached.
fn diff_with(
    obs: &mut ChaosObserver,
    budgets: Budgets,
    old: &Tree<String>,
    new: &Tree<String>,
) -> Result<DiffResult<String>, DiffError> {
    Differ::new()
        .prune(true)
        .audit(Audit::On)
        .budget(budgets)
        .observer(obs)
        .diff(old, new)
}

/// A panic injected at ANY phase boundary unwinds with its typed payload
/// (or never fires because the boundary is not part of a library run) —
/// and the pipeline stays usable afterwards.
#[test]
fn panic_at_every_boundary_is_typed_and_leaves_no_poisoned_state() {
    silence_injected_panics();
    let (old, new) = workload();
    for phase in Phase::ALL {
        for boundary in [Boundary::Start, Boundary::End] {
            let mut obs = ChaosObserver::new().inject(phase, boundary, Fault::Panic);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                diff_with(&mut obs, Budgets::unlimited(), &old, &new)
            }));
            match outcome {
                Err(payload) => {
                    let p = payload
                        .downcast_ref::<ChaosPanic>()
                        .unwrap_or_else(|| panic!("{phase:?}/{boundary:?}: untyped panic"));
                    assert_eq!((p.phase, p.boundary), (phase, boundary));
                }
                Ok(result) => {
                    // The fault never had a chance to fire: that boundary
                    // is not part of a library diff (Parse belongs to the
                    // document front end).
                    assert!(
                        !obs.seen().contains(&(phase, boundary)),
                        "{phase:?}/{boundary:?} fired yet the run survived"
                    );
                    assert!(result.is_ok(), "faultless run must succeed");
                }
            }
            // No poisoned global state: an ungoverned rerun still works.
            let clean = Differ::new().prune(true).audit(Audit::On).diff(&old, &new);
            assert!(
                clean.is_ok(),
                "{phase:?}/{boundary:?} poisoned the pipeline"
            );
        }
    }
}

/// A cancellation injected at any pre-delta boundary surfaces as
/// `DiffError::Cancelled` at the next guard check; past the last
/// checkpoint the (already computed) result is returned. Either way the
/// run terminates promptly with a well-typed outcome.
#[test]
fn cancel_at_every_boundary_is_cancelled_or_complete() {
    let (old, new) = workload();
    for phase in Phase::ALL {
        for boundary in [Boundary::Start, Boundary::End] {
            let token = CancelToken::new();
            let mut obs =
                ChaosObserver::new().inject(phase, boundary, Fault::Cancel(token.clone()));
            let result = Differ::new()
                .prune(true)
                .audit(Audit::On)
                .cancel(&token)
                .observer(&mut obs)
                .diff(&old, &new);
            let fired = obs.seen().contains(&(phase, boundary));
            match (phase, fired) {
                // Delta is the last governed stage: a token fired at its
                // boundaries (or never fired at all) lets the finished
                // result through. Everything earlier must be cut short.
                (Phase::Delta, _) | (_, false) => {
                    assert!(
                        matches!(&result, Ok(_) | Err(DiffError::Cancelled)),
                        "{phase:?}/{boundary:?}: {result:?}"
                    );
                }
                _ => {
                    assert!(
                        matches!(&result, Err(DiffError::Cancelled)),
                        "{phase:?}/{boundary:?}: expected Cancelled, got {result:?}"
                    );
                }
            }
        }
    }
}

/// A stall injected mid-run (here: after matching) drives a
/// deadline-governed diff past `max_wall_time`, and the overrun surfaces
/// as the typed wall-time budget error at the next checkpoint.
#[test]
fn delay_fault_trips_the_wall_time_budget() {
    let (old, new) = workload();
    let mut obs = ChaosObserver::new().inject(
        Phase::Match,
        Boundary::End,
        Fault::Delay(Duration::from_millis(40)),
    );
    let budgets = Budgets::unlimited().with_max_wall_time(Duration::from_millis(5));
    let result = diff_with(&mut obs, budgets, &old, &new);
    assert!(
        matches!(result, Err(DiffError::BudgetExhausted(Budget::WallTime))),
        "{result:?}"
    );
    // The same stall without a deadline is harmless.
    let mut obs = ChaosObserver::new().inject(
        Phase::Match,
        Boundary::End,
        Fault::Delay(Duration::from_millis(40)),
    );
    assert!(diff_with(&mut obs, Budgets::unlimited(), &old, &new).is_ok());
}

/// Seeded chaos is reproducible: the same seed injects the same fault at
/// the same boundary and produces the same outcome, run after run — a
/// failing chaos run can always be replayed from its seed.
#[test]
fn seeded_chaos_is_deterministic() {
    silence_injected_panics();
    let (old, new) = workload();
    let run = |seed: u64| -> Result<(), ChaosPanic> {
        let mut obs = ChaosObserver::seeded(seed, Fault::Panic);
        match catch_unwind(AssertUnwindSafe(|| {
            diff_with(&mut obs, Budgets::unlimited(), &old, &new)
        })) {
            Ok(r) => {
                assert!(r.is_ok(), "seed {seed}: faultless run failed: {r:?}");
                Ok(())
            }
            Err(payload) => Err(*payload
                .downcast_ref::<ChaosPanic>()
                .unwrap_or_else(|| panic!("seed {seed}: untyped panic"))),
        }
    };
    for seed in 0..24 {
        assert_eq!(run(seed), run(seed), "seed {seed} not reproducible");
    }
}

/// The degraded tier keeps working with chaos instrumentation attached:
/// exhausting the LCS-cell budget under an observer still produces a
/// conforming, audit-clean (flagged) result.
#[test]
fn lcs_exhaustion_with_observer_degrades_audit_clean() {
    let n = 30;
    let fwd: Vec<String> = (0..n).map(|i| format!("(S \"v{i}\")")).collect();
    let rev: Vec<String> = (0..n).rev().map(|i| format!("(S \"v{i}\")")).collect();
    let old = doc(&format!("(D {})", fwd.join(" ")));
    let new = doc(&format!("(D {})", rev.join(" ")));
    let mut obs = ChaosObserver::new(); // pure boundary logger
                                        // Prune stays off: the pruner would wholesale-match the identical
                                        // leaves and the LCS passes would never run at all.
    let r = Differ::new()
        .audit(Audit::On)
        .budget(Budgets::unlimited().with_max_lcs_cells(1))
        .observer(&mut obs)
        .diff(&old, &new)
        .unwrap();
    assert!(
        r.degraded.matching,
        "LCS budget must have degraded the match"
    );
    assert!(isomorphic(&r.mces.edited, &new), "degraded yet conforming");
    assert!(r.audit.expect("audit on").is_clean());
    assert!(
        obs.seen().contains(&(Phase::Match, Boundary::End)),
        "observer saw the degraded phase: {:?}",
        obs.seen()
    );
}

/// Worker kill: a sink that panics on its first delivery takes its worker
/// down; the batch still terminates, reports the typed worker failure,
/// retries the undelivered pairs on the calling thread, and the batch
/// layer remains usable afterwards (no poisoned sink lock).
#[test]
fn batch_worker_kill_is_reported_and_retried() {
    silence_injected_panics();
    let (old, new) = workload();
    let pairs = vec![(&old, &new); 4];
    type Slots = Mutex<Vec<Option<Result<DiffResult<String>, DiffError>>>>;
    let slots: Slots = Mutex::new((0..pairs.len()).map(|_| None).collect());
    let mut first = true;
    let report = Differ::new().workers(1).diff_batch_with(&pairs, |i, r| {
        if first {
            first = false;
            panic!("sink exploded");
        }
        slots.lock().unwrap_or_else(|e| e.into_inner())[i] = Some(r);
    });
    assert_eq!(report.failures, vec![DiffError::WorkerPanicked(0)]);
    assert_eq!(report.retries, 3, "undelivered pairs re-run once");
    let delivered = slots.into_inner().unwrap_or_else(|e| e.into_inner());
    assert_eq!(
        delivered.iter().flatten().filter(|r| r.is_ok()).count(),
        3,
        "retried pairs deliver real results"
    );
    // The batch layer shrugged the panic off entirely.
    let run = Differ::new().workers(2).diff_batch(&pairs);
    assert!(run.report.failures.is_empty());
    assert!(run.results.iter().all(Result::is_ok));
}

/// Cancelling a batch is a typed per-pair error, not a worker failure,
/// and a subsequent batch with a fresh token completes normally.
#[test]
fn cancelled_batch_carries_typed_errors() {
    let (old, new) = workload();
    let pairs = vec![(&old, &new); 6];
    let token = CancelToken::new();
    token.cancel();
    let run = Differ::new().cancel(&token).workers(2).diff_batch(&pairs);
    assert!(
        run.report.failures.is_empty(),
        "cancellation is not a panic"
    );
    for r in &run.results {
        assert!(matches!(r, Err(DiffError::Cancelled)), "{r:?}");
    }
    let fresh = Differ::new().workers(2).diff_batch(&pairs);
    assert!(fresh.results.iter().all(Result::is_ok));
}

/// The cancellation-latency guarantee: on a pathological ~100k-node input
/// whose ungoverned diff would grind through billions of LCS cells, firing
/// the token mid-run returns `DiffError::Cancelled` within 50 ms — the
/// strided guard checks inside the hot loops keep the reaction time
/// bounded regardless of input size.
#[test]
fn cancel_on_100k_node_input_returns_within_50ms() {
    // Two flat trees with completely disjoint leaf values: the chain LCS
    // has no common symbols, so Myers runs to maximal D and the quadratic
    // unmatched pass would grind for minutes if left alone.
    let n = 50_000;
    let olds: Vec<String> = (0..n).map(|i| format!("(S \"a{i}\")")).collect();
    let news: Vec<String> = (0..n).map(|i| format!("(S \"b{i}\")")).collect();
    let old = doc(&format!("(D {})", olds.join(" ")));
    let new = doc(&format!("(D {})", news.join(" ")));
    assert!(old.len() + new.len() >= 100_000);

    // Retry for CI scheduling noise; one in-budget reaction passes.
    let mut latencies = Vec::new();
    for _ in 0..3 {
        let token = CancelToken::new();
        let fired: Mutex<Option<Instant>> = Mutex::new(None);
        let latency = std::thread::scope(|s| {
            s.spawn(|| {
                std::thread::sleep(Duration::from_millis(25));
                token.cancel();
                *fired.lock().unwrap() = Some(Instant::now());
            });
            let result = Differ::new()
                .delta(false)
                .audit(Audit::Off)
                .cancel(&token)
                .diff(&old, &new);
            let returned = Instant::now();
            assert!(
                matches!(result, Err(DiffError::Cancelled)),
                "pathological diff finished before the cancel? {result:?}"
            );
            let fired_at = fired.lock().unwrap().expect("token was fired");
            returned.saturating_duration_since(fired_at)
        });
        if latency < Duration::from_millis(50) {
            return;
        }
        latencies.push(latency);
    }
    panic!("cancel latency exceeded 50ms in all attempts: {latencies:?}");
}
