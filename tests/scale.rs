//! Scale tests: the paper's "High Performance" design goal ("can be used on
//! very large structures", Section 1) exercised on documents far beyond the
//! unit-test sizes — checking both correctness and the comparison-count
//! asymptotics at scale.

use std::time::Instant;

use hierdiff::edit::edit_script;
use hierdiff::matching::{fast_match, fastmatch_bound, BoundInputs, MatchParams};
use hierdiff::tree::isomorphic;
use hierdiff::workload::{generate_document, perturb, DocProfile, EditMix};

fn big_profile() -> DocProfile {
    DocProfile {
        sections: 40,
        paragraphs_per_section: (5, 8),
        sentences_per_paragraph: (4, 7),
        ..DocProfile::default()
    }
}

/// ~5000 sentences, 30 edits: the full pipeline stays correct and the
/// comparison count stays within the analytic bound.
#[test]
fn large_document_pipeline() {
    let profile = big_profile();
    let t1 = generate_document(424_242, &profile);
    assert!(
        t1.leaves().count() > 1_000,
        "corpus too small for a scale test"
    );
    let (t2, _) = perturb(&t1, 424_243, 30, &EditMix::default(), &profile);

    let start = Instant::now();
    let matched = fast_match(&t1, &t2, MatchParams::default()).unwrap();
    let res = edit_script(&t1, &t2, &matched.matching).unwrap();
    let elapsed = start.elapsed();

    // Correctness at scale.
    let replayed = res.replay_on(&t1).unwrap();
    assert!(isomorphic(&replayed, &res.edited));

    // The measured comparisons respect the Appendix B bound.
    let inputs = BoundInputs {
        leaves: t1.leaves().count() + t2.leaves().count(),
        internal: 0,
        internal_labels: 3,
        weighted_distance: res.stats.weighted_distance,
        unweighted_distance: res.stats.unweighted_distance(),
    };
    let bound = fastmatch_bound(&inputs).total();
    assert!(
        (matched.counters.total() as f64) < bound,
        "comparisons {} exceed bound {bound}",
        matched.counters.total()
    );

    // Loose wall-clock sanity even in debug builds.
    assert!(
        elapsed.as_secs() < 60,
        "pipeline took {elapsed:?} on ~{} nodes",
        t1.len()
    );
}

/// Near-linear comparison scaling: doubling the document size at a fixed
/// edit count must not quadruple FastMatch's comparisons (that would be
/// the O(n²) Match behaviour, not the O(ne + e²) FastMatch bound).
#[test]
fn comparisons_scale_subquadratically() {
    let edits = 12;
    let mut counts = Vec::new();
    for &sections in &[10usize, 20, 40] {
        let profile = DocProfile {
            sections,
            ..DocProfile::default()
        };
        let t1 = generate_document(555_000 + sections as u64, &profile);
        let (t2, _) = perturb(
            &t1,
            555_500 + sections as u64,
            edits,
            &EditMix::default(),
            &profile,
        );
        let matched = fast_match(&t1, &t2, MatchParams::default()).unwrap();
        counts.push((t1.leaves().count(), matched.counters.total()));
    }
    for w in counts.windows(2) {
        let (n1, c1) = w[0];
        let (n2, c2) = w[1];
        let size_ratio = n2 as f64 / n1 as f64;
        let comp_ratio = c2 as f64 / c1 as f64;
        assert!(
            comp_ratio < size_ratio * size_ratio * 0.75,
            "comparisons grew quadratically: sizes {n1}->{n2}, comps {c1}->{c2}"
        );
    }
}

/// Deep documents: a pathological 2000-level chain must not overflow the
/// stack anywhere in the pipeline (traversals, matching, script
/// generation, delta construction are all iterative).
#[test]
fn deep_chain_no_stack_overflow() {
    use hierdiff::doc::DocValue;
    use hierdiff::tree::{Label, Tree};
    let mut t1: Tree<DocValue> = Tree::new(Label::intern("Document"), DocValue::None);
    let mut cur = t1.root();
    for i in 0..2_000 {
        cur = t1.push_child(
            cur,
            Label::intern(if i % 2 == 0 { "A" } else { "B" }),
            DocValue::None,
        );
    }
    t1.push_child(
        cur,
        Label::intern("Sentence"),
        DocValue::text("the anchor sentence at the bottom"),
    );
    let mut t2 = t1.clone();
    let leaf = t2.leaves().next().unwrap();
    // A small rewording (compare ≈ 0.3 ≤ f), so the whole chain stays
    // matched and the diff is a single update at depth 2001.
    t2.update(
        leaf,
        DocValue::text("the anchor sentence at the very bottom"),
    )
    .unwrap();

    let matched = fast_match(&t1, &t2, MatchParams::default()).unwrap();
    let res = edit_script(&t1, &t2, &matched.matching).unwrap();
    assert_eq!(res.script.op_counts().updates, 1, "script: {}", res.script);
    let replayed = res.replay_on(&t1).unwrap();
    assert!(isomorphic(&replayed, &res.edited));
}

/// Wide trees: one paragraph with 20k sentences, a handful of edits.
#[test]
fn very_wide_parent() {
    use hierdiff::doc::DocValue;
    use hierdiff::tree::{Label, Tree};
    let mut t1: Tree<DocValue> = Tree::new(Label::intern("Document"), DocValue::None);
    let root = t1.root();
    let p = t1.push_child(root, Label::intern("Paragraph"), DocValue::None);
    for i in 0..20_000 {
        t1.push_child(
            p,
            Label::intern("Sentence"),
            DocValue::text(format!("s{i}")),
        );
    }
    let mut t2 = t1.clone();
    let kids: Vec<_> = t2.children(t2.children(t2.root())[0]).to_vec();
    t2.delete_leaf(kids[77]).unwrap();
    t2.move_subtree(kids[500], t2.children(t2.root())[0], 3)
        .unwrap();

    let matched = fast_match(&t1, &t2, MatchParams::default()).unwrap();
    let res = edit_script(&t1, &t2, &matched.matching).unwrap();
    let c = res.script.op_counts();
    assert_eq!(c.deletes, 1);
    assert_eq!(c.moves, 1, "script has {} moves", c.moves);
    assert!(isomorphic(&res.replay_on(&t1).unwrap(), &res.edited));
}
