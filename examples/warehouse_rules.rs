//! Data warehousing with active rules — the paper's warehouse motivation
//! (Section 1) plus its C³ "active rule languages" direction (Section 9):
//! periodically snapshot an uncooperative source, diff the snapshots, and
//! let declarative rules decide which downstream actions fire.
//!
//! Run with: `cargo run --example warehouse_rules`

use hierdiff::delta::{ChangeKind, Rule, RuleSet};
use hierdiff::tree::{Label, TreeStats};
use hierdiff::workload::{generate_document, perturb, DocProfile, EditMix};
use hierdiff::Differ;

fn main() {
    // The "source database dump": a catalog-like hierarchical snapshot.
    let profile = DocProfile::default();
    let monday = generate_document(77, &profile);
    println!("Monday snapshot: {}", TreeStats::of(&monday));

    // Tuesday's dump, after a day of upstream edits.
    let (tuesday, _) = perturb(&monday, 78, 20, &EditMix::default(), &profile);
    println!("Tuesday snapshot: {}", TreeStats::of(&tuesday));

    // Warehouse maintenance policy, declaratively.
    let sentence = Label::intern("Sentence");
    let paragraph = Label::intern("Paragraph");
    let section = Label::intern("Section");
    let rules = RuleSet::new()
        .rule(Rule::on("refresh-fulltext-index", ChangeKind::Inserted).with_label(sentence))
        .rule(Rule::on("refresh-fulltext-index-deletes", ChangeKind::Deleted).with_label(sentence))
        .rule(
            Rule::on("recluster-storage", ChangeKind::Moved)
                .with_label(paragraph)
                .min_count(2),
        )
        .rule(Rule::on("rebuild-toc", ChangeKind::Moved).with_label(section))
        .rule(Rule::on_any_change("audit-log").min_count(1));

    // Nightly job: diff + evaluate.
    let result = Differ::new()
        .diff(&monday, &tuesday)
        .expect("snapshots diff");
    let delta = result.delta.as_ref().expect("delta built");
    println!(
        "\ndetected {} operations ({} ins, {} del, {} upd, {} mov)",
        result.script.len(),
        result.script.op_counts().inserts,
        result.script.op_counts().deletes,
        result.script.op_counts().updates,
        result.script.op_counts().moves,
    );

    let firings = rules.evaluate(delta);
    println!("\n=== maintenance actions triggered ===");
    for firing in &firings {
        println!("  {} ({} matching nodes)", firing.rule, firing.nodes.len());
        for &node in firing.nodes.iter().take(3) {
            println!("      at {}", delta.path_of(node));
        }
        if firing.nodes.len() > 3 {
            println!("      ... and {} more", firing.nodes.len() - 3);
        }
    }
    assert!(
        firings.iter().any(|f| f.rule == "audit-log"),
        "20 edits must trip the audit log"
    );
    println!("\n{} of {} rules fired.", firings.len(), rules.len());
}
