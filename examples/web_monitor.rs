//! The paper's introductory motivating scenario: "a user may visit certain
//! (HTML) documents repeatedly and is interested in knowing how each
//! document has changed since the last visit ... a paragraph that has moved
//! could be marked with a 'tombstone' in its old position and be
//! highlighted in its new position."
//!
//! Run with: `cargo run --example web_monitor`
//!
//! We diff two snapshots of a small HTML page and print a change report:
//! the delta tree with tombstones/highlights, plus a per-kind summary.

use hierdiff::delta::{render_text, Annotation};
use hierdiff::doc::{ladiff, DocFormat, LaDiffOptions};
use hierdiff::matching::MatchParams;

const SNAPSHOT_MONDAY: &str = r#"<!DOCTYPE html>
<html><body>
<h1>Release notes</h1>
<p>Version 2.1 shipped on Monday morning. It contains several fixes.
The installer was rebuilt from scratch.</p>
<h1>Known issues</h1>
<p>The search index rebuild is slow on large repositories.
Dark mode flickers on some monitors.</p>
<ul>
  <li>Workaround: disable animations in settings.</li>
  <li>Workaround: rebuild the index overnight.</li>
</ul>
</body></html>"#;

const SNAPSHOT_TUESDAY: &str = r#"<!DOCTYPE html>
<html><body>
<h1>Release notes</h1>
<p>Version 2.2 shipped on Tuesday evening. It contains several fixes.
The installer was rebuilt from scratch. Checksums are now published.</p>
<h1>Known issues</h1>
<p>Dark mode flickers on some monitors.
The search index rebuild is slow on large repositories.</p>
<ul>
  <li>Workaround: rebuild the index overnight.</li>
  <li>Workaround: disable animations in settings.</li>
</ul>
</body></html>"#;

fn main() {
    let options = LaDiffOptions {
        format: DocFormat::Html,
        // Release-notes sentences get reworded heavily between snapshots
        // ("Version 2.1 shipped on Monday morning" → "Version 2.2 shipped
        // on Tuesday evening" shares only 4 of 7 words); raising Criterion
        // 1's f from the 0.5 default lets such rewrites match as *updates*
        // instead of delete+insert pairs.
        params: MatchParams::default().with_leaf_threshold(0.9),
        ..LaDiffOptions::default()
    };
    let out =
        ladiff(SNAPSHOT_MONDAY, SNAPSHOT_TUESDAY, &options).expect("snapshots parse and diff");

    println!("=== what changed since your last visit ===\n");
    let delta = &out.delta;
    println!("{}", render_text(delta));

    // A digest like a notifier would send: one line per changed sentence.
    println!("=== digest ===");
    for id in delta.preorder() {
        let text = delta.value(id).as_text().unwrap_or("");
        if text.is_empty() {
            continue;
        }
        match delta.annotation(id) {
            Annotation::Updated { old } => {
                println!("~ updated: {:?}", text);
                println!("           (was {:?})", old.as_text().unwrap_or(""));
            }
            Annotation::Inserted => println!("+ added:   {text:?}"),
            Annotation::Deleted => println!("- removed: {text:?}"),
            Annotation::Moved { .. } => println!("> moved:   {text:?}"),
            _ => {}
        }
    }
    println!(
        "\n{} changes detected ({} ops in the edit script).",
        out.stats.annotations.changes(),
        out.stats.ops.total()
    );
}
