//! The paper's Appendix A scenario: LaDiff on two versions of a LaTeX
//! document (a condensed take on the TeXbook excerpt of Figures 14–16).
//!
//! Run with: `cargo run --example latex_diff`
//!
//! Output: the marked-up LaTeX document using the Table 2 conventions —
//! inserted sentences bold, deleted sentences small, updated sentences
//! italic, moves labeled and footnoted, paragraph changes as marginal
//! notes, section changes annotated in headings.

use hierdiff::doc::{ladiff, LaDiffOptions};

const OLD: &str = r#"\section{First things first}
Computer system manuals usually make dull reading, but take heart: this one
contains jokes every once in a while. Most of the jokes can only be
appreciated properly if you understand a technical point that is being made.

Another noteworthy characteristic of this manual is that it doesn't always
tell the truth. When certain concepts of TeX are introduced informally,
general rules will be stated. In general, the later chapters contain more
reliable information than the earlier ones do. The author feels that this
technique of deliberate lying will actually make it easier for you to learn
the ideas.

\section{Another way to look at it}
In order to help you internalize what you're reading, exercises are
sprinkled through this manual. It is generally intended that every reader
should try every exercise. If you can't solve a problem, you can always look
up the answer.

\section{Conclusion}
The TeX language described in this book is similar to the author's first
attempt at a document formatting language. Both languages have been called
TeX. Let's keep the name TeX for the language described here, since it is so
much better.
"#;

const NEW: &str = r#"\section{Introduction}
The TeX language described in this book is quite similar to the author's
first attempt at a document formatting language. Computer system manuals
usually make dull reading, but take heart: this one contains jokes every
once in a while. Most of the jokes can only be appreciated properly if you
understand a technical point that is being made.

\section{The details}
English words like technology stem from a Greek root beginning with letters
tau epsilon chi. Hence the name TeX, which is an uppercase form of that
root.

Another noteworthy characteristic of this manual is that it doesn't always
tell the truth. This feature may seem strange, but it isn't. When certain
concepts of TeX are introduced informally, general rules will be stated.
The author feels that this technique of deliberate lying will actually make
it easier for you to learn the ideas.

\section{Moving on}
It is generally intended that every reader should try every exercise. If
you can't solve a problem, you can always look up the answer. In order to
help you better internalize what you read, exercises are sprinkled through
this manual.

\section{Conclusion}
Both languages have been called TeX. Let's keep the name TeX for the
language described here, since it is so much better.
"#;

fn main() {
    let out = ladiff(OLD, NEW, &LaDiffOptions::default()).expect("documents parse and diff");

    println!("=== LaDiff marked-up output (Table 2 conventions) ===\n");
    println!("{}", out.markup);

    let s = &out.stats;
    println!("=== statistics ===");
    println!(
        "old: {} nodes, new: {} nodes, matched: {}",
        s.old_nodes, s.new_nodes, s.matched
    );
    println!(
        "edit script: {} ops — {} inserts, {} deletes, {} updates, {} moves",
        s.ops.total(),
        s.ops.inserts,
        s.ops.deletes,
        s.ops.updates,
        s.ops.moves
    );
    println!(
        "annotations: {} unchanged, {} updated, {} inserted, {} deleted, {} moved",
        s.annotations.identical,
        s.annotations.updated,
        s.annotations.inserted,
        s.annotations.deleted,
        s.annotations.moved
    );
    println!(
        "matching cost: {} sentence compares + {} partner checks",
        s.counters.leaf_compares, s.counters.partner_checks
    );
}
