//! Version management (Section 1's "version and configuration management"
//! motivation): store a document's history as *deltas* instead of full
//! snapshots, using forward edit scripts and their inverses.
//!
//! Run with: `cargo run --example version_store`
//!
//! The store keeps only the latest version plus backward deltas: each older
//! version is reconstructed by applying inverse scripts. This is the
//! classic RCS layout, built from the paper's machinery: `diff` detects
//! the delta, `invert_script` turns it into an undo script.

use std::collections::HashMap;

use hierdiff::doc::DocValue;
use hierdiff::edit::{apply_script, invert_script, EditScript};
use hierdiff::tree::{isomorphic, Tree};
use hierdiff::workload::{generate_document, perturb, DocProfile, EditMix};
use hierdiff::Differ;

/// A delta-compressed version store: latest snapshot + backward deltas.
struct VersionStore {
    latest: Tree<DocValue>,
    /// `backward[i]` turns version `i+1` into version `i`.
    backward: Vec<EditScript<DocValue>>,
}

impl VersionStore {
    fn new(initial: Tree<DocValue>) -> VersionStore {
        VersionStore {
            latest: initial,
            backward: Vec::new(),
        }
    }

    /// Commits a new version: detect the delta, store its inverse, advance.
    ///
    /// The stored head is the *edited* tree from the diff (isomorphic to
    /// `next`), so the backward script's node ids line up with the head.
    fn commit(&mut self, next: Tree<DocValue>) -> usize {
        let result = Differ::new()
            .delta(false)
            .diff(&self.latest, &next)
            .expect("document versions share the Document root");
        assert!(!result.mces.wrapped, "document roots always match");
        let backward =
            invert_script(&self.latest, &result.script).expect("generated scripts replay");
        self.backward.push(backward);
        self.latest = result.mces.edited;
        result.script.len()
    }

    /// Latest version number (0-based).
    fn head(&self) -> usize {
        self.backward.len()
    }

    /// Reconstructs version `v` by walking backward deltas from the head.
    ///
    /// Nodes a backward delta re-inserts receive fresh ids, so older deltas
    /// referencing those nodes are rewritten through an accumulated id
    /// translation (`EditScript::map_ids`), chasing chains in case a node
    /// is re-inserted more than once along the walk.
    fn checkout(&self, v: usize) -> Tree<DocValue> {
        let mut tree = self.latest.clone();
        let mut translation: HashMap<hierdiff::tree::NodeId, hierdiff::tree::NodeId> =
            HashMap::new();
        for back in self.backward.iter().skip(v).rev() {
            let resolved = back.map_ids(|mut id| {
                while let Some(&next) = translation.get(&id) {
                    id = next;
                }
                id
            });
            let remap =
                apply_script(&mut tree, &resolved, |_, _| ()).expect("backward deltas replay");
            translation.extend(remap);
        }
        tree
    }
}

fn main() {
    let profile = DocProfile::default();
    let v0 = generate_document(2026, &profile);
    println!(
        "base document: {} nodes, {} sentences",
        v0.len(),
        v0.leaves().count()
    );

    // Simulate a revision history.
    let mut versions = vec![v0.clone()];
    let mut store = VersionStore::new(v0);
    for step in 0..5u64 {
        let (next, report) = perturb(
            versions.last().unwrap(),
            3000 + step,
            6 + step as usize * 3,
            &EditMix::revision(),
            &profile,
        );
        let ops = store.commit(next.clone());
        println!(
            "commit v{}: {} applied edits detected as {} script ops",
            step + 1,
            report.total(),
            ops
        );
        versions.push(next);
    }

    // Every historical version reconstructs exactly.
    for (v, expected) in versions.iter().enumerate() {
        let got = store.checkout(v);
        assert!(
            isomorphic(&got, expected),
            "checkout of v{v} does not match the original"
        );
        println!("checkout v{v}: {} nodes ✓", got.len());
    }
    println!(
        "\nstore keeps 1 snapshot + {} backward deltas instead of {} snapshots",
        store.head(),
        versions.len()
    );
}
