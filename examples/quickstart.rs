//! Quickstart: detect changes between two hierarchical data trees.
//!
//! Run with: `cargo run --example quickstart`
//!
//! This walks the paper's pipeline end to end on a small tree pair: find
//! the good matching, generate the minimum conforming edit script, build
//! the delta tree, and print everything.

use hierdiff::delta::render_text;
use hierdiff::tree::Tree;
use hierdiff::Differ;

fn main() {
    // Trees in the library's s-expression notation: (Label children...),
    // leaves carry quoted values. This pair reorders two paragraphs,
    // inserts a sentence, and deletes another.
    let old = Tree::parse_sexpr(
        r#"(Doc
             (Para (Sent "The quick brown fox.") (Sent "It jumped over the dog."))
             (Para (Sent "A second paragraph here.") (Sent "Soon to be deleted.")))"#,
    )
    .expect("valid s-expression");
    let new = Tree::parse_sexpr(
        r#"(Doc
             (Para (Sent "A second paragraph here.") (Sent "Brand new sentence."))
             (Para (Sent "The quick brown fox.") (Sent "It jumped over the dog.")))"#,
    )
    .expect("valid s-expression");

    println!("== old tree ==\n{}", hierdiff::tree::ascii_tree(&old));
    println!("== new tree ==\n{}", hierdiff::tree::ascii_tree(&new));

    let result = Differ::new().diff(&old, &new).expect("diff succeeds");

    println!("== matching: {} node pairs ==", result.matching.len());
    println!(
        "== minimum conforming edit script ({} ops, e = {}, d = {}) ==",
        result.script.len(),
        result.weighted_distance(),
        result.unweighted_distance()
    );
    println!("{}\n", result.script);

    let delta = result.delta.as_ref().expect("delta built by default");
    println!("== delta tree ==\n{}", render_text(delta));

    // The delta tree is self-checking: it projects back onto both versions.
    assert!(hierdiff::tree::isomorphic(&delta.project_new(), &new));
    assert!(hierdiff::tree::isomorphic(&delta.project_old(), &old));
    println!("delta tree projections verified against both versions ✓");
}
