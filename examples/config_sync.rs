//! The paper's configuration-management scenario (Section 1): correlating
//! an architect's and an electrician's view of the same building project,
//! "computing the deltas with respect to the last configuration and
//! highlighting any conflicts".
//!
//! Run with: `cargo run --example config_sync`
//!
//! Two twists over the document examples:
//!
//! 1. **Keys.** Design objects carry identifiers, so we skip the Good
//!    Matching problem entirely and hand `diff` a key-derived matching —
//!    the paper's "if the information we are comparing does have unique
//!    identifiers, then our algorithms can take advantage of them" path.
//!    But ids "may not be valid across versions" (the pillar that was
//!    record 778899 and is now 12345), so unkeyed objects fall back to
//!    value matching.
//! 2. **Object hierarchies.** The leaf-only delete matters here: deleting a
//!    room must not promote its fixtures into the building (the paper's
//!    library/book argument against the ZS delete).

use std::collections::HashMap;

use hierdiff::edit::Matching;
use hierdiff::tree::{Label, NodeId, NodeValue, Tree};
use hierdiff::Differ;

/// Builds a configuration snapshot: Building > Floor > Room > Fixture.
/// Values are "key=K props..." strings; keys simulate database ids.
fn snapshot(rows: &[(&str, &str)]) -> Tree<String> {
    // rows: (path like "f1/r101/light-a", props)
    let mut t = Tree::new(Label::intern("Building"), String::null());
    let mut by_path: HashMap<String, NodeId> = HashMap::new();
    for (path, props) in rows {
        let mut parent = t.root();
        let mut full = String::new();
        let parts: Vec<&str> = path.split('/').collect();
        for (depth, part) in parts.iter().enumerate() {
            if !full.is_empty() {
                full.push('/');
            }
            full.push_str(part);
            let label = match depth {
                0 => Label::intern("Floor"),
                1 => Label::intern("Room"),
                _ => Label::intern("Fixture"),
            };
            parent = *by_path.entry(full.clone()).or_insert_with(|| {
                let value = if depth == parts.len() - 1 {
                    format!("key={part} {props}")
                } else {
                    format!("key={part}")
                };
                t.push_child(parent, label, value)
            });
        }
    }
    t
}

/// Extracts the `key=...` prefix of a node value.
fn key_of(v: &str) -> Option<&str> {
    v.strip_prefix("key=")
        .map(|rest| rest.split(' ').next().unwrap_or(rest))
}

/// Matches nodes of two snapshots by their keys (same label required).
fn match_by_keys(old: &Tree<String>, new: &Tree<String>) -> Matching {
    let mut by_key: HashMap<(Label, String), NodeId> = HashMap::new();
    for x in old.preorder() {
        if let Some(k) = key_of(old.value(x)) {
            by_key.insert((old.label(x), k.to_string()), x);
        }
    }
    let mut m = Matching::with_capacity(old.arena_len(), new.arena_len());
    m.insert(old.root(), new.root()).expect("roots unmatched");
    for y in new.preorder() {
        if let Some(k) = key_of(new.value(y)) {
            if let Some(&x) = by_key.get(&(new.label(y), k.to_string())) {
                let _ = m.insert(x, y); // ignore duplicate keys, keep first
            }
        }
    }
    m
}

fn main() {
    // The architect's baseline configuration.
    let baseline = snapshot(&[
        ("f1/r101/light-a", "wattage=60 circuit=3"),
        ("f1/r101/outlet-a", "amps=15 circuit=3"),
        ("f1/r102/light-b", "wattage=40 circuit=4"),
        ("f2/r201/light-c", "wattage=60 circuit=7"),
        ("f2/r201/outlet-b", "amps=20 circuit=7"),
    ]);
    // The electrician's current state: light-b rewired (update), outlet-a
    // moved to room 102, light-c removed, a new fixture added.
    let current = snapshot(&[
        ("f1/r101/light-a", "wattage=60 circuit=3"),
        ("f1/r102/light-b", "wattage=40 circuit=9"),
        ("f1/r102/outlet-a", "amps=15 circuit=3"),
        ("f2/r201/outlet-b", "amps=20 circuit=7"),
        ("f2/r201/heater-a", "watts=1500 circuit=8"),
    ]);

    let keyed = match_by_keys(&baseline, &current);
    println!(
        "matched {} of {} baseline objects by key (no content comparisons needed)",
        keyed.len(),
        baseline.len()
    );

    let result = Differ::new()
        .matching(keyed)
        .diff(&baseline, &current)
        .expect("keyed diff succeeds");

    println!("\n=== configuration delta ===");
    for op in result.script.iter() {
        println!("  {op}");
    }
    println!(
        "\n{} changes: {} inserts, {} deletes, {} updates, {} moves",
        result.script.len(),
        result.script.op_counts().inserts,
        result.script.op_counts().deletes,
        result.script.op_counts().updates,
        result.script.op_counts().moves,
    );

    // The moved outlet is reported as a MOV, not delete+insert — the point
    // of having moves in the operation set.
    assert_eq!(result.script.op_counts().moves, 1);
    // Deleting light-c is a leaf delete; room r201 keeps its other fixtures.
    assert!(result.script.op_counts().deletes >= 1);
    println!("\nmove detected as MOV (not delete+insert) ✓");
}
