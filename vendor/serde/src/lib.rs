// Vendored stub: keep clippy focused on first-party crates.
#![allow(clippy::all)]
//! Offline stand-in for `serde`, backing the workspace's JSON round-trips.
//!
//! The real serde's streaming data model is replaced by a tree model: a
//! [`Serialize`] impl renders to a [`value::Value`] and a [`Deserialize`]
//! impl decodes from one. The trait *signatures* mirror upstream closely
//! enough that hand-written impls (`Label`'s string interning) and the
//! vendored `serde_derive` both compile unchanged, and `serde_json` (also
//! vendored) provides the usual `to_string` / `from_str` front-end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod de;
pub mod ser;
pub mod value;

pub use de::{Deserialize, DeserializeOwned, Deserializer};
pub use ser::{Serialize, Serializer};
// The derive macros, as `serde = { features = ["derive"] }` exposes them.
pub use serde_derive::{Deserialize, Serialize};
