//! Serialization: types render themselves to a [`Value`].

use crate::value::{Number, Value};

/// A sink for one serialized value. The one method that matters here is
/// [`Serializer::serialize_value`]; the named primitives exist so that
/// hand-written impls in upstream style (`serializer.serialize_str(...)`)
/// compile unchanged.
pub trait Serializer: Sized {
    /// Output of a successful serialization.
    type Ok;
    /// Serialization error.
    type Error;

    /// Consumes a fully built value tree.
    fn serialize_value(self, v: Value) -> Result<Self::Ok, Self::Error>;

    /// Serializes a string.
    fn serialize_str(self, s: &str) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::String(s.to_owned()))
    }

    /// Serializes a bool.
    fn serialize_bool(self, b: bool) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Bool(b))
    }

    /// Serializes an unsigned integer.
    fn serialize_u64(self, u: u64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Number(Number::U(u)))
    }

    /// Serializes a signed integer.
    fn serialize_i64(self, i: i64) -> Result<Self::Ok, Self::Error> {
        let v = match u64::try_from(i) {
            Ok(u) => Value::Number(Number::U(u)),
            Err(_) => Value::Number(Number::I(i)),
        };
        self.serialize_value(v)
    }

    /// Serializes a float.
    fn serialize_f64(self, f: f64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Number(Number::F(f)))
    }

    /// Serializes a unit/null.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Null)
    }
}

/// A serializable type.
pub trait Serialize {
    /// Renders `self` into `serializer`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// The canonical [`Serializer`]: produces the [`Value`] itself, infallibly.
pub struct ValueSerializer;

/// Error type of [`ValueSerializer`] — uninhabited.
#[derive(Debug)]
pub enum Never {}

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = Never;

    fn serialize_value(self, v: Value) -> Result<Value, Never> {
        Ok(v)
    }
}

/// Renders any serializable value to a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(t: &T) -> Value {
    match t.serialize(ValueSerializer) {
        Ok(v) => v,
    }
}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_u64(*self as u64)
            }
        }
    )*};
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_i64(*self as i64)
            }
        }
    )*};
}

impl_ser_uint!(u8, u16, u32, u64, usize);
impl_ser_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(f64::from(*self))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            None => serializer.serialize_value(Value::Null),
            Some(t) => serializer.serialize_value(to_value(t)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Array(self.iter().map(to_value).collect()))
    }
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.clone())
    }
}
