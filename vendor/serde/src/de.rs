//! Deserialization: types rebuild themselves from a [`Value`].

use crate::value::{Number, Value};
use std::fmt;

/// Errors a [`Deserializer`] may produce.
pub trait Error: Sized + fmt::Display {
    /// Builds an error from an arbitrary message.
    fn custom<T: fmt::Display>(msg: T) -> Self;
}

/// The concrete error used by [`ValueDeserializer`] (and re-used by the
/// vendored `serde_json`).
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

impl Error for DeError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        DeError(msg.to_string())
    }
}

/// A source of one decoded value. In this tree model a deserializer simply
/// surrenders the [`Value`] it holds; `Deserialize` impls pattern-match it.
pub trait Deserializer<'de>: Sized {
    /// Deserialization error.
    type Error: Error;

    /// Takes the underlying value out of the deserializer.
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// A deserializable type.
pub trait Deserialize<'de>: Sized {
    /// Rebuilds `Self` from `deserializer`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A type deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// The canonical [`Deserializer`]: wraps an owned [`Value`].
pub struct ValueDeserializer(pub Value);

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = DeError;

    fn take_value(self) -> Result<Value, DeError> {
        Ok(self.0)
    }
}

/// Rebuilds a `T` from a [`Value`] tree.
pub fn from_value<T: DeserializeOwned>(v: Value) -> Result<T, DeError> {
    T::deserialize(ValueDeserializer(v))
}

/// Decodes field `name` of an object's field list; missing fields decode as
/// `Null` (so `Option` fields tolerate omission). Used by derived impls.
pub fn field<T: DeserializeOwned>(fields: &[(String, Value)], name: &str) -> Result<T, DeError> {
    let v = fields
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.clone())
        .unwrap_or(Value::Null);
    from_value(v).map_err(|e| DeError(format!("field `{name}`: {e}")))
}

fn type_name(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Number(_) => "number",
        Value::String(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    }
}

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let v = deserializer.take_value()?;
                let n = match v {
                    Value::Number(n) => n,
                    other => {
                        return Err(D::Error::custom(format_args!(
                            "expected integer, found {}",
                            type_name(&other)
                        )))
                    }
                };
                let wide: i128 = match n {
                    Number::U(u) => i128::from(u),
                    Number::I(i) => i128::from(i),
                    Number::F(_) => {
                        return Err(D::Error::custom("expected integer, found float"))
                    }
                };
                <$t>::try_from(wide).map_err(|_| {
                    D::Error::custom(format_args!(
                        "integer {wide} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(D::Error::custom(format_args!(
                "expected bool, found {}",
                type_name(&other)
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Number(n) => Ok(n.as_f64()),
            other => Err(D::Error::custom(format_args!(
                "expected number, found {}",
                type_name(&other)
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        f64::deserialize(deserializer).map(|f| f as f32)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::String(s) => Ok(s),
            other => Err(D::Error::custom(format_args!(
                "expected string, found {}",
                type_name(&other)
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Null => Ok(()),
            other => Err(D::Error::custom(format_args!(
                "expected null, found {}",
                type_name(&other)
            ))),
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Null => Ok(None),
            v => from_value(v).map(Some).map_err(|e| D::Error::custom(e)),
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Array(items) => items
                .into_iter()
                .map(|v| from_value(v).map_err(|e| D::Error::custom(e)))
                .collect(),
            other => Err(D::Error::custom(format_args!(
                "expected array, found {}",
                type_name(&other)
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.take_value()
    }
}
