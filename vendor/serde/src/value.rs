//! The self-describing tree every (de)serialization passes through —
//! structurally the JSON data model. `serde_json` re-exports [`Value`].

use std::fmt;

/// A JSON-model value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (integer or float).
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion-ordered.
    Object(Vec<(String, Value)>),
}

/// A JSON number, preserving integer-ness for exact round-trips.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    /// Non-negative integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Float.
    F(f64),
}

impl PartialEq for Number {
    fn eq(&self, other: &Number) -> bool {
        self.as_f64() == other.as_f64()
            && match (self, other) {
                (Number::F(_), Number::F(_)) => true,
                (Number::F(_), _) | (_, Number::F(_)) => false,
                _ => true,
            }
    }
}

impl Number {
    /// The number as an `f64`.
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U(u) => u as f64,
            Number::I(i) => i as f64,
            Number::F(f) => f,
        }
    }

    /// The number as a `u64`, if it is a non-negative integer.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::U(u) => Some(u),
            Number::I(i) => u64::try_from(i).ok(),
            Number::F(_) => None,
        }
    }

    /// The number as an `i64`, if it is an integer in range.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::U(u) => i64::try_from(u).ok(),
            Number::I(i) => Some(i),
            Number::F(_) => None,
        }
    }
}

impl Value {
    /// Object field lookup (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// `true` iff this is `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// String content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean content, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// `u64` content, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// `i64` content, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// `f64` content, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Array content, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object fields, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }
}

/// `v["key"]`; yields `Null` for non-objects / missing keys, like
/// `serde_json`.
impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        const NULL: &Value = &Value::Null;
        self.get(key).unwrap_or(NULL)
    }
}

/// `v[i]`; yields `Null` out of bounds, like `serde_json`.
impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, index: usize) -> &Value {
        const NULL: &Value = &Value::Null;
        match self {
            Value::Array(a) => a.get(index).unwrap_or(NULL),
            _ => NULL,
        }
    }
}

macro_rules! impl_value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match self {
                    Value::Number(Number::U(u)) => i128::from(*u) == *other as i128,
                    Value::Number(Number::I(i)) => i128::from(*i) == *other as i128,
                    _ => false,
                }
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

impl_value_eq_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::U(u) => write!(f, "{u}"),
            Number::I(i) => write!(f, "{i}"),
            Number::F(x) => {
                if x.is_finite() {
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        write!(f, "{x:.1}")
                    } else {
                        write!(f, "{x}")
                    }
                } else {
                    // JSON has no Inf/NaN; serde_json writes null.
                    write!(f, "null")
                }
            }
        }
    }
}
