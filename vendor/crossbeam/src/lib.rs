// Vendored stub: keep clippy focused on first-party crates.
#![allow(clippy::all)]
//! Offline stand-in for the `crossbeam` facade crate, covering the two
//! modules this workspace uses:
//!
//! * [`thread`] — `crossbeam::thread::scope`, implemented over
//!   `std::thread::scope` (std has had scoped threads since 1.63). One
//!   behavioral difference: a panicking child propagates the panic out of
//!   [`thread::scope`] instead of surfacing it as an `Err`, which is
//!   equivalent for callers that `.expect()` the result.
//! * [`deque`] — `Worker` / `Stealer` / `Injector` work-stealing deques with
//!   the upstream API, backed by `Mutex<VecDeque>` rather than lock-free
//!   buffers. Contention behavior differs; semantics do not.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod thread {
    //! Scoped threads in the crossbeam 0.8 style.

    use std::any::Any;

    /// Handle for spawning scoped threads; passed to the closure given to
    /// [`scope`] and to every spawned child.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Owned permission to join a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result (`Err` holds
        /// the panic payload if it panicked).
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope again so
        /// children can spawn siblings, as in crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let child_scope = Scope { inner: self.inner };
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&child_scope)),
            }
        }
    }

    /// Creates a scope in which threads borrowing local data can be spawned;
    /// all children are joined before this returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = vec![1u64, 2, 3, 4];
            let total: u64 = super::scope(|scope| {
                let handles: Vec<_> = data
                    .chunks(2)
                    .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u64>()))
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            })
            .expect("crossbeam scope");
            assert_eq!(total, 10);
        }
    }
}

pub mod deque {
    //! Work-stealing deques in the crossbeam-deque 0.8 style.

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Outcome of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The operation lost a race and may be retried.
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }

        /// `true` iff this is [`Steal::Success`].
        pub fn is_success(&self) -> bool {
            matches!(self, Steal::Success(_))
        }

        /// `true` iff this is [`Steal::Empty`].
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    #[derive(Clone, Copy)]
    enum Flavor {
        Fifo,
        Lifo,
    }

    /// A deque owned by a single worker thread. The owner pushes and pops at
    /// one end; [`Stealer`]s take from the other.
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
        flavor: Flavor,
    }

    /// A handle for stealing tasks from a [`Worker`]'s deque.
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    impl<T> Worker<T> {
        /// A FIFO worker: `pop` takes the oldest task.
        pub fn new_fifo() -> Self {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
                flavor: Flavor::Fifo,
            }
        }

        /// A LIFO worker: `pop` takes the most recently pushed task.
        pub fn new_lifo() -> Self {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
                flavor: Flavor::Lifo,
            }
        }

        /// Adds a task to the deque.
        pub fn push(&self, task: T) {
            self.queue.lock().expect("deque poisoned").push_back(task);
        }

        /// Takes a task from the owner's end of the deque.
        pub fn pop(&self) -> Option<T> {
            let mut q = self.queue.lock().expect("deque poisoned");
            match self.flavor {
                Flavor::Fifo => q.pop_front(),
                Flavor::Lifo => q.pop_back(),
            }
        }

        /// Creates a stealer for this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }

        /// `true` iff the deque is empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("deque poisoned").is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            self.queue.lock().expect("deque poisoned").len()
        }
    }

    impl<T> Stealer<T> {
        /// Steals a task from the opposite end to the owner's pops.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("deque poisoned").pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// `true` iff the deque is empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("deque poisoned").is_empty()
        }
    }

    /// A global FIFO queue any worker may push to or steal from.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        /// An empty injector.
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Adds a task to the back of the queue.
        pub fn push(&self, task: T) {
            self.queue
                .lock()
                .expect("injector poisoned")
                .push_back(task);
        }

        /// Steals the task at the front of the queue.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("injector poisoned").pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// `true` iff the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("injector poisoned").is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            self.queue.lock().expect("injector poisoned").len()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn worker_pop_order_and_steal_end() {
            let fifo = Worker::new_fifo();
            fifo.push(1);
            fifo.push(2);
            assert_eq!(fifo.pop(), Some(1));

            let lifo = Worker::new_lifo();
            lifo.push(1);
            lifo.push(2);
            assert_eq!(lifo.pop(), Some(2));
            // The stealer takes from the cold end.
            assert_eq!(lifo.stealer().steal(), Steal::Success(1));
            assert_eq!(lifo.stealer().steal(), Steal::Empty);
        }

        #[test]
        fn injector_is_shared_fifo() {
            let inj = Injector::new();
            inj.push("a");
            inj.push("b");
            assert_eq!(inj.steal().success(), Some("a"));
            assert_eq!(inj.len(), 1);
        }
    }
}
