// Vendored stub: keep clippy focused on first-party crates.
#![allow(clippy::all)]
//! Offline stand-in for `criterion`, implementing the harness subset the
//! workspace's benches use: `Criterion`, `benchmark_group` /
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `sample_size`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is a deliberately simple adaptive loop (warm up, then time
//! enough iterations to fill a sampling window and report the mean per
//! iteration) — no outlier analysis, no plots, no saved baselines. Results
//! print as `bench <name> ... <time>/iter (<iters> iters)` lines.
//!
//! `cargo bench -- <filter>` filtering is honored by substring match, and
//! `--test` runs each benchmark exactly once (this is what `cargo test`
//! passes to bench targets).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// An opaque-to-the-optimizer pass-through, as `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new<P: fmt::Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter (for single-function sweeps).
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name: `&str` or [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The rendered benchmark name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    mode: &'a Mode,
    sample_size: u64,
    name: String,
}

#[derive(Clone)]
enum Mode {
    /// Full measurement (normal `cargo bench`).
    Measure,
    /// Run each body once and report nothing (`cargo bench -- --test`).
    TestOnce,
}

impl Bencher<'_> {
    /// Times `routine`, first warming up, then sampling.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if matches!(self.mode, Mode::TestOnce) {
            black_box(routine());
            return;
        }
        // Warm-up: find an iteration count that fills ~25ms.
        let mut iters: u64 = 1;
        let warm_target = Duration::from_millis(25);
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= warm_target || iters >= u64::MAX / 2 {
                break elapsed / u32::try_from(iters.max(1)).unwrap_or(u32::MAX);
            }
            iters = iters.saturating_mul(2);
        };
        // Measure: `sample_size` samples of roughly 10ms each (bounded).
        let sample_iters = if per_iter.is_zero() {
            iters.max(1)
        } else {
            (Duration::from_millis(10).as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24)
                as u64
        };
        let mut best = Duration::MAX;
        let mut total = Duration::ZERO;
        let mut total_iters = 0u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..sample_iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            let mean = elapsed / u32::try_from(sample_iters).unwrap_or(u32::MAX);
            best = best.min(mean);
            total += elapsed;
            total_iters += sample_iters;
        }
        let mean = total / u32::try_from(total_iters.max(1)).unwrap_or(u32::MAX);
        println!(
            "bench {:<58} {:>12}/iter (best {:>12}, {} iters)",
            self.name,
            format_duration(mean),
            format_duration(best),
            total_iters,
        );
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut mode = Mode::Measure;
        let mut filter = None;
        // Args after `--bench`/`--test` flags: a bare string is a filter.
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => mode = Mode::TestOnce,
                "--bench" => {}
                s if s.starts_with('-') => {}
                s => filter = Some(s.to_string()),
            }
        }
        Criterion { mode, filter }
    }
}

impl Criterion {
    /// Upstream parses CLI options here; ours are parsed in `default()`.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        self.run_one(id.into_id(), 10, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher<'_>)>(&self, name: String, sample_size: u64, mut f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            mode: &self.mode,
            sample_size,
            name,
        };
        f(&mut b);
    }

    /// Runs registered groups; upstream prints a summary here.
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Upstream bounds wall-clock per benchmark; accepted and ignored here.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks a function within this group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into_id());
        self.criterion.run_one(name, self.sample_size, f);
        self
    }

    /// Benchmarks a function parameterized by an input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher<'_>, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into_id());
        self.criterion
            .run_one(name, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (upstream emits the group summary).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given group runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("myers", 32).into_id(), "myers/32");
        assert_eq!(BenchmarkId::from_parameter(100).into_id(), "100");
    }

    #[test]
    fn test_mode_runs_body_once() {
        let criterion = Criterion {
            mode: Mode::TestOnce,
            filter: None,
        };
        let mut runs = 0;
        criterion.run_one("t".into(), 10, |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }
}
