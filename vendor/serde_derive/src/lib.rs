// Vendored stub: keep clippy focused on first-party crates.
#![allow(clippy::all)]
//! Offline `#[derive(Serialize, Deserialize)]` for the vendored `serde`.
//!
//! Implemented without `syn`/`quote` (unavailable offline): the derive input
//! is parsed directly from the `proc_macro::TokenStream` into a minimal
//! struct/enum model, and the generated impl is rendered as source text and
//! re-parsed. Supports the shapes this workspace derives on:
//!
//! * named-field structs (generic over plain type params),
//! * one-field tuple ("newtype") structs,
//! * enums with unit, newtype-tuple, and named-field ("struct") variants.
//!
//! The wire shape matches serde's externally-tagged default: structs become
//! objects, newtypes their inner value, unit variants a string, data-carrying
//! variants a single-key object.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Input {
    name: String,
    generics: Vec<String>,
    body: Body,
}

enum Body {
    /// Named-field struct (field names, in declaration order).
    Named(Vec<String>),
    /// Tuple struct with the given arity.
    Tuple(usize),
    /// Enum.
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    gen_serialize(&input)
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    gen_deserialize(&input)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------- parsing

fn parse_input(ts: TokenStream) -> Input {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0usize;

    // Skip outer attributes and visibility, find `struct` / `enum`.
    let kind = loop {
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2, // `#` + `[...]`
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // `pub(crate)` etc.
                    }
                }
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                i += 1;
                if s == "struct" || s == "enum" {
                    break s;
                }
            }
            Some(_) => i += 1,
            None => panic!("derive input has no struct/enum keyword"),
        }
    };

    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name after `{kind}`, found {other:?}"),
    };
    i += 1;

    // Generic parameter names (`<V, W>`; bounds and defaults are skipped).
    let mut generics = Vec::new();
    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        let mut depth = 1i32;
        let mut expect_param = true;
        i += 1;
        while depth > 0 {
            match toks.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 1 => {
                    expect_param = true;
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '\'' || p.as_char() == ':' => {
                    expect_param = false; // lifetimes / bounds are not type params
                }
                Some(TokenTree::Ident(id)) if depth == 1 && expect_param => {
                    generics.push(id.to_string());
                    expect_param = false;
                }
                Some(_) => {}
                None => panic!("unbalanced generics on `{name}`"),
            }
            i += 1;
        }
    }

    let body = if kind == "struct" {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Named(field_names(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Tuple(split_top_commas(g.stream()).len())
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Named(Vec::new()),
            other => panic!("unsupported struct body on `{name}`: {other:?}"),
        }
    } else {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("unsupported enum body on `{name}`: {other:?}"),
        }
    };

    Input {
        name,
        generics,
        body,
    }
}

/// Splits a group's stream on commas outside `<...>` nesting (delimited
/// groups are single trees, so only angle brackets need depth tracking).
fn split_top_commas(ts: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut depth = 0i32;
    for t in ts {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                out.push(Vec::new());
                continue;
            }
            _ => {}
        }
        out.last_mut().unwrap().push(t);
    }
    if out.last().is_some_and(Vec::is_empty) {
        out.pop();
    }
    out
}

/// Skips leading `#[...]` attributes and `pub` visibility in a token chunk,
/// returning the index of the first token after them.
fn skip_attrs_and_vis(chunk: &[TokenTree]) -> usize {
    let mut i = 0;
    loop {
        match chunk.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = chunk.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

fn field_names(ts: TokenStream) -> Vec<String> {
    split_top_commas(ts)
        .iter()
        .map(|chunk| {
            let i = skip_attrs_and_vis(chunk);
            match chunk.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("expected field name, found {other:?}"),
            }
        })
        .collect()
}

fn parse_variants(ts: TokenStream) -> Vec<Variant> {
    split_top_commas(ts)
        .iter()
        .map(|chunk| {
            let i = skip_attrs_and_vis(chunk);
            let name = match chunk.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("expected variant name, found {other:?}"),
            };
            let kind = match chunk.get(i + 1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantKind::Tuple(split_top_commas(g.stream()).len())
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantKind::Named(field_names(g.stream()))
                }
                _ => VariantKind::Unit,
            };
            Variant { name, kind }
        })
        .collect()
}

// ---------------------------------------------------------------- codegen

fn generics_split(input: &Input, bound: &str) -> (String, String) {
    if input.generics.is_empty() {
        (String::new(), String::new())
    } else {
        let impl_g = input
            .generics
            .iter()
            .map(|g| format!("{g}: {bound}"))
            .collect::<Vec<_>>()
            .join(", ");
        let ty_g = input.generics.join(", ");
        (impl_g, format!("<{ty_g}>"))
    }
}

const VALUE: &str = "::serde::value::Value";
const TO_VALUE: &str = "::serde::ser::to_value";

fn gen_serialize(input: &Input) -> String {
    let (impl_g, ty_g) = generics_split(input, "::serde::ser::Serialize");
    let impl_g = if impl_g.is_empty() {
        String::new()
    } else {
        format!("<{impl_g}>")
    };
    let name = &input.name;

    let body = match &input.body {
        Body::Named(fields) => {
            let mut s = format!("let mut __fields: Vec<(String, {VALUE})> = Vec::new();\n");
            for f in fields {
                s += &format!("__fields.push((\"{f}\".to_string(), {TO_VALUE}(&self.{f})));\n");
            }
            s += &format!(
                "::serde::ser::Serializer::serialize_value(serializer, {VALUE}::Object(__fields))"
            );
            s
        }
        Body::Tuple(1) => "::serde::ser::Serialize::serialize(&self.0, serializer)".to_string(),
        Body::Tuple(n) => {
            let mut s = format!("let mut __items: Vec<{VALUE}> = Vec::new();\n");
            for i in 0..*n {
                s += &format!("__items.push({TO_VALUE}(&self.{i}));\n");
            }
            s += &format!(
                "::serde::ser::Serializer::serialize_value(serializer, {VALUE}::Array(__items))"
            );
            s
        }
        Body::Enum(variants) => {
            let mut s = String::from("match self {\n");
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        s += &format!(
                            "{name}::{vname} => ::serde::ser::Serializer::serialize_value(\
                             serializer, {VALUE}::String(\"{vname}\".to_string())),\n"
                        );
                    }
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let pat = binds.join(", ");
                        let inner = if *n == 1 {
                            format!("{TO_VALUE}(__f0)")
                        } else {
                            let items = binds
                                .iter()
                                .map(|b| format!("{TO_VALUE}({b})"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!("{VALUE}::Array(vec![{items}])")
                        };
                        s += &format!(
                            "{name}::{vname}({pat}) => \
                             ::serde::ser::Serializer::serialize_value(serializer, \
                             {VALUE}::Object(vec![(\"{vname}\".to_string(), {inner})])),\n"
                        );
                    }
                    VariantKind::Named(fields) => {
                        let pat = fields.join(", ");
                        let pushes = fields
                            .iter()
                            .map(|f| {
                                format!("__inner.push((\"{f}\".to_string(), {TO_VALUE}({f})));")
                            })
                            .collect::<Vec<_>>()
                            .join("\n");
                        s += &format!(
                            "{name}::{vname} {{ {pat} }} => {{\n\
                             let mut __inner: Vec<(String, {VALUE})> = Vec::new();\n\
                             {pushes}\n\
                             ::serde::ser::Serializer::serialize_value(serializer, \
                             {VALUE}::Object(vec![(\"{vname}\".to_string(), \
                             {VALUE}::Object(__inner))]))\n}}\n"
                        );
                    }
                }
            }
            s += "}";
            s
        }
    };

    format!(
        "#[automatically_derived]\n\
         impl{impl_g} ::serde::ser::Serialize for {name}{ty_g} {{\n\
         fn serialize<__S: ::serde::ser::Serializer>(&self, serializer: __S) \
         -> Result<__S::Ok, __S::Error> {{\n{body}\n}}\n}}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let (impl_g, ty_g) = generics_split(input, "::serde::de::DeserializeOwned");
    let impl_g = if impl_g.is_empty() {
        "<'de>".to_string()
    } else {
        format!("<'de, {impl_g}>")
    };
    let name = &input.name;
    // Converts the concrete `DeError` from helpers into `__D::Error`.
    let err = "|__e| <__D::Error as ::serde::de::Error>::custom(__e)";
    let custom = "<__D::Error as ::serde::de::Error>::custom";

    let body = match &input.body {
        Body::Named(fields) => {
            let mut s = format!(
                "let __fields = match __v {{\n\
                 {VALUE}::Object(__f) => __f,\n\
                 _ => return Err({custom}(\"{name}: expected object\")),\n}};\n"
            );
            let inits = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de::field(&__fields, \"{f}\").map_err({err})?,"))
                .collect::<Vec<_>>()
                .join("\n");
            s += &format!("Ok({name} {{\n{inits}\n}})");
            s
        }
        Body::Tuple(1) => {
            format!("Ok({name}(::serde::de::from_value(__v).map_err({err})?))")
        }
        Body::Tuple(n) => {
            let mut s = format!(
                "let __items = match __v {{\n\
                 {VALUE}::Array(__a) => __a,\n\
                 _ => return Err({custom}(\"{name}: expected array\")),\n}};\n\
                 if __items.len() != {n} {{\n\
                 return Err({custom}(\"{name}: wrong tuple arity\"));\n}}\n\
                 let mut __it = __items.into_iter();\n"
            );
            let inits = (0..*n)
                .map(|_| format!("::serde::de::from_value(__it.next().unwrap()).map_err({err})?"))
                .collect::<Vec<_>>()
                .join(", ");
            s += &format!("Ok({name}({inits}))");
            s
        }
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms += &format!("\"{vname}\" => Ok({name}::{vname}),\n");
                    }
                    VariantKind::Tuple(1) => {
                        data_arms += &format!(
                            "\"{vname}\" => Ok({name}::{vname}(\
                             ::serde::de::from_value(__inner).map_err({err})?)),\n"
                        );
                    }
                    VariantKind::Tuple(n) => {
                        let inits = (0..*n)
                            .map(|_| {
                                format!(
                                    "::serde::de::from_value(__it.next().unwrap())\
                                     .map_err({err})?"
                                )
                            })
                            .collect::<Vec<_>>()
                            .join(", ");
                        data_arms += &format!(
                            "\"{vname}\" => {{\n\
                             let __items = match __inner {{\n\
                             {VALUE}::Array(__a) => __a,\n\
                             _ => return Err({custom}(\"{name}::{vname}: expected array\")),\n\
                             }};\n\
                             if __items.len() != {n} {{\n\
                             return Err({custom}(\"{name}::{vname}: wrong arity\"));\n}}\n\
                             let mut __it = __items.into_iter();\n\
                             Ok({name}::{vname}({inits}))\n}}\n"
                        );
                    }
                    VariantKind::Named(fields) => {
                        let inits = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::de::field(&__vf, \"{f}\")\
                                     .map_err({err})?,"
                                )
                            })
                            .collect::<Vec<_>>()
                            .join("\n");
                        data_arms += &format!(
                            "\"{vname}\" => {{\n\
                             let __vf = match __inner {{\n\
                             {VALUE}::Object(__f) => __f,\n\
                             _ => return Err({custom}(\"{name}::{vname}: expected object\")),\n\
                             }};\n\
                             Ok({name}::{vname} {{\n{inits}\n}})\n}}\n"
                        );
                    }
                }
            }
            format!(
                "match __v {{\n\
                 {VALUE}::String(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => Err({custom}(format!(\
                 \"unknown unit variant `{{__other}}` of {name}\"))),\n}},\n\
                 {VALUE}::Object(__fields) => {{\n\
                 if __fields.len() != 1 {{\n\
                 return Err({custom}(\"{name}: expected single-key variant object\"));\n}}\n\
                 let (__tag, __inner) = __fields.into_iter().next().unwrap();\n\
                 match __tag.as_str() {{\n\
                 {data_arms}\
                 __other => Err({custom}(format!(\
                 \"unknown variant `{{__other}}` of {name}\"))),\n}}\n}}\n\
                 _ => Err({custom}(\"{name}: expected string or object\")),\n}}"
            )
        }
    };

    format!(
        "#[automatically_derived]\n\
         impl{impl_g} ::serde::de::Deserialize<'de> for {name}{ty_g} {{\n\
         fn deserialize<__D: ::serde::de::Deserializer<'de>>(deserializer: __D) \
         -> Result<Self, __D::Error> {{\n\
         #[allow(unused_variables)]\n\
         let __v = ::serde::de::Deserializer::take_value(deserializer)?;\n\
         {body}\n}}\n}}"
    )
}
