// Vendored stub: keep clippy focused on first-party crates.
#![allow(clippy::all)]
//! Offline stand-in for the `rand` crate, exposing exactly the API surface
//! this workspace uses: [`Rng::gen_range`] / [`Rng::gen_bool`], seedable
//! [`rngs::StdRng`] / [`rngs::SmallRng`], and slice shuffling.
//!
//! The build environment has no crates.io access, so the real `rand` cannot
//! be fetched; this crate keeps the workspace self-contained. The generator
//! is xoshiro256** seeded through SplitMix64 — high-quality for simulation
//! and test workloads, **not** cryptographically secure. Streams are stable
//! across runs and platforms for a given seed (the property the seeded
//! workload generators rely on), though they differ from upstream `rand`'s
//! streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset: [`SeedableRng::seed_from_u64`]).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed. Deterministic.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from OS-provided entropy. This offline stand-in
    /// derives the seed from the system clock instead.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(nanos)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive integer ranges,
    /// half-open float ranges). Panics on empty ranges, like `rand`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        // 53 uniform mantissa bits, the standard [0, 1) construction.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Lemire-style unbiased bounded sampling on u64.
fn bounded_u64<R: RngCore>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection sampling over the top zone to avoid modulo bias.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full domain of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — the "standard" generator of this stand-in. Replaces
    /// `rand`'s ChaCha12-based `StdRng` (different stream, same API).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Alias of [`StdRng`]; the real crate's `SmallRng` is also a xoshiro
    /// variant.
    pub type SmallRng = StdRng;

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, per the xoshiro authors' recommendation.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5..=5u8);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        use super::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
