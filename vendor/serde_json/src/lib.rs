// Vendored stub: keep clippy focused on first-party crates.
#![allow(clippy::all)]
//! Offline stand-in for `serde_json`: JSON text ⇄ the vendored serde's
//! [`Value`] tree, plus the [`json!`] literal macro. Covers the subset the
//! workspace uses: `to_string`, `to_string_pretty`, `from_str`, `from_slice`,
//! `Value` indexing/`as_*` accessors, and `json!` objects with expression
//! values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod parse;
mod write;

use std::fmt;

pub use serde::value::{Number, Value};

/// Re-exported so `json!` and callers can render any `Serialize` type.
pub use serde::ser::to_value;

/// A JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error(pub(crate) String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::DeError> for Error {
    fn from(e: serde::de::DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes a value to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write::compact(&mut out, &to_value(value));
    Ok(out)
}

/// Serializes a value to two-space-indented JSON text.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write::pretty(&mut out, &to_value(value), 0);
    Ok(out)
}

/// Deserializes a value from JSON text.
pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T, Error> {
    let value = parse::parse(s)?;
    Ok(serde::de::from_value(value)?)
}

/// Deserializes a value from JSON bytes.
pub fn from_slice<T: serde::de::DeserializeOwned>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Builds a [`Value`] from JSON-ish syntax. Keys are string literals;
/// values are nested `{...}`/`[...]` literals or any `Serialize` expression.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($body:tt)* }) => {{
        #[allow(unused_mut)]
        let mut __obj: Vec<(String, $crate::Value)> = Vec::new();
        $crate::json_internal_object!(__obj; $($body)*);
        $crate::Value::Object(__obj)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Implementation detail of [`json!`]: munches `"key": value` pairs.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal_object {
    ($obj:ident;) => {};
    ($obj:ident; $key:literal : { $($inner:tt)* } , $($rest:tt)*) => {
        $obj.push(($key.to_string(), $crate::json!({ $($inner)* })));
        $crate::json_internal_object!($obj; $($rest)*);
    };
    ($obj:ident; $key:literal : { $($inner:tt)* }) => {
        $obj.push(($key.to_string(), $crate::json!({ $($inner)* })));
    };
    ($obj:ident; $key:literal : [ $($inner:tt)* ] , $($rest:tt)*) => {
        $obj.push(($key.to_string(), $crate::json!([ $($inner)* ])));
        $crate::json_internal_object!($obj; $($rest)*);
    };
    ($obj:ident; $key:literal : [ $($inner:tt)* ]) => {
        $obj.push(($key.to_string(), $crate::json!([ $($inner)* ])));
    };
    ($obj:ident; $key:literal : $value:expr , $($rest:tt)*) => {
        $obj.push(($key.to_string(), $crate::json!($value)));
        $crate::json_internal_object!($obj; $($rest)*);
    };
    ($obj:ident; $key:literal : $value:expr) => {
        $obj.push(($key.to_string(), $crate::json!($value)));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        for text in ["null", "true", "false", "0", "-7", "3.5", "\"hi\\n\""] {
            let v: Value = from_str(text).unwrap();
            assert_eq!(to_string(&v).unwrap(), text);
        }
    }

    #[test]
    fn round_trip_nested() {
        let text = r#"{"a":[1,2,{"b":null}],"c":"x"}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(to_string(&v).unwrap(), text);
    }

    #[test]
    fn json_macro_shapes() {
        let ops = 3u32;
        let v = json!({
            "n": 1,
            "ops": { "insert": ops, "nested": { "deep": "yes" } },
            "list": [1, 2],
            "s": format!("x{}", 7),
        });
        assert_eq!(v["n"], 1);
        assert_eq!(v["ops"]["insert"], 3);
        assert_eq!(v["ops"]["nested"]["deep"], "yes");
        assert_eq!(v["list"][1], 2);
        assert_eq!(v["s"], "x7");
        assert!(v["missing"].is_null());
    }

    #[test]
    fn pretty_prints_indented() {
        let v = json!({ "a": [1], "b": "x" });
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "{\n  \"a\": [\n    1\n  ],\n  \"b\": \"x\"\n}");
    }

    #[test]
    fn unicode_and_escape_round_trip() {
        let v: Value = from_str(r#""é\t\"\\ 😀""#).unwrap();
        assert_eq!(v, "é\t\"\\ 😀");
        let back = to_string(&v).unwrap();
        let v2: Value = from_str(&back).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
