//! Recursive-descent JSON parser producing a [`Value`].

use crate::Error;
use serde::value::{Number, Value};

pub(crate) fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal (expected `{word}`)")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy unescaped runs wholesale (keeps multi-byte UTF-8 intact).
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), Error> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{0008}'),
            b'f' => out.push('\u{000C}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: require a trailing \uXXXX low surrogate.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        0x10000 + ((u32::from(hi) - 0xD800) << 10) + (u32::from(lo) - 0xDC00)
                    } else {
                        return Err(self.err("unpaired surrogate"));
                    }
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.err("unpaired low surrogate"));
                } else {
                    u32::from(hi)
                };
                out.push(char::from_u32(code).ok_or_else(|| self.err("invalid codepoint"))?);
            }
            _ => return Err(self.err("invalid escape character")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u16, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let v = u16::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number spans are ASCII");
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F(f)))
            .map_err(|_| self.err("invalid number"))
    }
}
