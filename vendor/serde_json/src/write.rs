//! JSON text rendering (compact and two-space pretty).

use serde::value::Value;

pub(crate) fn compact(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                compact(out, item);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(out, k);
                out.push(':');
                compact(out, val);
            }
            out.push('}');
        }
    }
}

pub(crate) fn pretty(out: &mut String, v: &Value, indent: usize) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                escape_into(out, k);
                out.push_str(": ");
                pretty(out, val, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => compact(out, other),
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
