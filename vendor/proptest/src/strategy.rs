//! The [`Strategy`] trait and the strategy combinators this workspace uses.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A generator of values for property tests.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// simply draws a value from the RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy yielding a constant.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice among strategies of a common value type; built by
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T> {
    arms: Vec<(u32, Box<dyn Fn(&mut TestRng) -> T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union from weighted generator arms.
    pub fn new(arms: Vec<(u32, Box<dyn Fn(&mut TestRng) -> T>)>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|&(w, _)| u64::from(w)).sum();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, arm) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return arm(rng);
            }
            pick -= w;
        }
        unreachable!("weights exhausted")
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// String pattern strategies. Upstream proptest interprets `&str` as a
/// regex; this subset understands the one pattern family the workspace
/// uses — `\PC{lo,hi}`, "`lo` to `hi` printable characters" — and treats
/// any other pattern as a literal.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        // Printable pool: mostly ASCII (including specials the parsers
        // care about), salted with multi-byte code points.
        const POOL: &[char] = &[
            'a', 'b', 'c', 'x', 'y', 'z', 'A', 'Z', '0', '9', ' ', ' ', '.', ',', '!', '?', '{',
            '}', '\\', '%', '&', ';', '<', '>', '/', '-', '_', '"', '\'', '(', ')', '[', ']', '#',
            '$', '~', '^', 'é', 'ß', '中', '←', '𝄞',
        ];
        if let Some(rest) = self.strip_prefix("\\PC{") {
            if let Some(body) = rest.strip_suffix('}') {
                if let Some((lo, hi)) = body.split_once(',') {
                    let lo: u64 = lo.trim().parse().expect("\\PC{lo,hi} bound");
                    let hi: u64 = hi.trim().parse().expect("\\PC{lo,hi} bound");
                    let len = lo + rng.below(hi - lo + 1);
                    return (0..len)
                        .map(|_| POOL[rng.below(POOL.len() as u64) as usize])
                        .collect();
                }
            }
        }
        (*self).to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_in_bounds() {
        let mut rng = TestRng::for_case("ranges_in_bounds", 0);
        for _ in 0..1000 {
            let v = (3..9u32).generate(&mut rng);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn union_respects_weights() {
        let u = crate::prop_oneof![9 => Just(1u8), 1 => Just(2u8)];
        let mut rng = TestRng::for_case("union_respects_weights", 0);
        let ones = (0..1000).filter(|_| u.generate(&mut rng) == 1).count();
        assert!(ones > 700, "weighted arm drawn only {ones}/1000 times");
    }

    #[test]
    fn pc_pattern_lengths() {
        let mut rng = TestRng::for_case("pc_pattern_lengths", 0);
        for _ in 0..200 {
            let s = "\\PC{2,5}".generate(&mut rng);
            let n = s.chars().count();
            assert!((2..=5).contains(&n), "length {n}");
        }
    }
}
