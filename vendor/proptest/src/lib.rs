// Vendored stub: keep clippy focused on first-party crates.
#![allow(clippy::all)]
//! Offline stand-in for the `proptest` crate, implementing the subset this
//! workspace uses: the [`proptest!`] runner macro, `prop_assert*` macros,
//! [`prop_oneof!`], integer-range / tuple / [`Just`](strategy::Just) /
//! mapped / collection strategies, `any::<T>()` for integers, and the
//! `\PC{lo,hi}` printable-string pattern.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its generated inputs via the
//!   assertion message (strategies here feed `Debug`-printable values into
//!   plain `assert!`s) but is not minimized.
//! * **Deterministic.** Case `i` of test `t` always sees the same inputs
//!   (seeded from the test's module path and the case index), so CI runs
//!   are reproducible. `.proptest-regressions` files are ignored.
//! * `prop_assert!` panics instead of returning `Err`, which is equivalent
//!   under this runner.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The commonly used names, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests. Each `#[test] fn name(arg in strategy, ...)`
/// item expands to a normal test running `Config::cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    (@munch ($cfg:expr)) => {};
    (@munch ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::Config = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                { $body }
            }
        }
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Picks among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {{
        let mut __arms: Vec<(u32, Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>)> =
            Vec::new();
        $(
            let __s = $strat;
            __arms.push((
                $weight as u32,
                Box::new(move |__rng: &mut $crate::test_runner::TestRng| {
                    $crate::strategy::Strategy::generate(&__s, __rng)
                }),
            ));
        )+
        $crate::strategy::Union::new(__arms)
    }};
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof!($(1 => $strat),+)
    };
}
