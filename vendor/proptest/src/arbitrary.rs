//! `any::<T>()` for the types the workspace draws unconstrained.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;

    /// The full-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// A strategy over the full domain of `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-domain integer strategy.
#[derive(Clone, Copy, Debug)]
pub struct AnyInt<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyInt<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyInt<$t>;

            fn arbitrary() -> AnyInt<$t> {
                AnyInt(std::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Full-domain bool strategy.
#[derive(Clone, Copy, Debug)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}
