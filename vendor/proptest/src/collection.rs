//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Acceptable size arguments for [`vec`].
pub trait SizeRange {
    /// Draws a length.
    fn draw(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for Range<usize> {
    fn draw(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty size range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn draw(&self, rng: &mut TestRng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty size range");
        lo + rng.below((hi - lo + 1) as u64) as usize
    }
}

impl SizeRange for usize {
    fn draw(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.draw(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates vectors of `element` values with lengths in `size`.
pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
    VecStrategy { element, size }
}
