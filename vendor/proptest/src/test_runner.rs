//! The test runner configuration and deterministic per-case RNG.

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 64 }
    }
}

/// Deterministic generator: xoshiro256** seeded from the test name and case
/// index, so every run (and every CI machine) sees the same inputs.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// The RNG for case `case` of the test identified by `name`.
    pub fn for_case(name: &str, case: u32) -> TestRng {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        let mut x = h ^ (u64::from(case).wrapping_mul(0x9e3779b97f4a7c15));
        let mut next = || {
            x = x.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw below `bound` (> 0), without modulo bias.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }
}
