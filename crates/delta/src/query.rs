//! A small query API over delta trees — the direction the paper lists as
//! ongoing work (Section 9: "designing and implementing query, browsing,
//! and active rule languages for hierarchical data based on our edit
//! scripts and delta trees").
//!
//! [`DeltaQuery`] is a filter-combinator builder over the delta tree's
//! nodes: select by change kind, label, value predicate, or containment,
//! then iterate or count. Paths ([`DeltaTree::path_of`]) give positional
//! addresses for reporting, since delta trees deliberately carry no node
//! identifiers.

use hierdiff_tree::{Label, NodeValue};

use crate::{Annotation, DeltaNodeId, DeltaTree};

/// Which change kinds a query selects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChangeKind {
    /// `IDN` nodes.
    Identical,
    /// `UPD` nodes.
    Updated,
    /// `INS` nodes.
    Inserted,
    /// `DEL` nodes.
    Deleted,
    /// `MOV` nodes (at their new position).
    Moved,
    /// `MRK` markers (old positions of moves).
    Markers,
}

impl ChangeKind {
    fn matches<V>(self, a: &Annotation<V>) -> bool {
        matches!(
            (self, a),
            (ChangeKind::Identical, Annotation::Identical)
                | (ChangeKind::Updated, Annotation::Updated { .. })
                | (ChangeKind::Inserted, Annotation::Inserted)
                | (ChangeKind::Deleted, Annotation::Deleted)
                | (ChangeKind::Moved, Annotation::Moved { .. })
                | (ChangeKind::Markers, Annotation::Marker { .. })
        )
    }
}

/// A lazily evaluated selection over a delta tree's nodes.
pub struct DeltaQuery<'d, V: NodeValue> {
    delta: &'d DeltaTree<V>,
    kinds: Option<Vec<ChangeKind>>,
    label: Option<Label>,
    under: Option<DeltaNodeId>,
}

impl<V: NodeValue> DeltaTree<V> {
    /// Starts a query over all nodes of this delta tree.
    pub fn query(&self) -> DeltaQuery<'_, V> {
        DeltaQuery {
            delta: self,
            kinds: None,
            label: None,
            under: None,
        }
    }

    /// The positional path of `id` from the root, as `Label[child-index]`
    /// segments: e.g. `Document/Section[2]/Paragraph[0]/Sentence[3]`.
    pub fn path_of(&self, id: DeltaNodeId) -> String {
        // Walk up by scanning (delta trees store no parent pointers; paths
        // are a reporting device, not a hot path).
        let mut segments = Vec::new();
        let mut target = id;
        'outer: loop {
            if target == self.root() {
                segments.push(self.label(self.root()).to_string());
                break;
            }
            // Find the parent of `target`.
            for candidate in self.preorder() {
                if let Some(pos) = self.children(candidate).iter().position(|&c| c == target) {
                    segments.push(format!("{}[{}]", self.label(target), pos));
                    target = candidate;
                    continue 'outer;
                }
            }
            unreachable!("every non-root delta node has a parent");
        }
        segments.reverse();
        segments.join("/")
    }
}

impl<'d, V: NodeValue> DeltaQuery<'d, V> {
    /// Restricts to the given change kind (may be called repeatedly to
    /// accumulate kinds).
    pub fn kind(mut self, kind: ChangeKind) -> Self {
        self.kinds.get_or_insert_with(Vec::new).push(kind);
        self
    }

    /// Restricts to changed nodes (everything but `IDN` and `MRK`).
    pub fn changed(self) -> Self {
        self.kind(ChangeKind::Updated)
            .kind(ChangeKind::Inserted)
            .kind(ChangeKind::Deleted)
            .kind(ChangeKind::Moved)
    }

    /// Restricts to nodes with the given label.
    pub fn with_label(mut self, label: Label) -> Self {
        self.label = Some(label);
        self
    }

    /// Restricts to (strict) descendants of `ancestor`.
    pub fn under(mut self, ancestor: DeltaNodeId) -> Self {
        self.under = Some(ancestor);
        self
    }

    /// Iterates the selected node ids in pre-order.
    pub fn iter(&self) -> impl Iterator<Item = DeltaNodeId> + '_ {
        let start = self.under.unwrap_or_else(|| self.delta.root());
        let skip_root = self.under.is_some();
        let mut stack = vec![start];
        let mut first = true;
        std::iter::from_fn(move || loop {
            let id = stack.pop()?;
            stack.extend(self.delta.children(id).iter().rev().copied());
            let is_start = first && id == start;
            first = false;
            if is_start && skip_root {
                continue;
            }
            if self.selects(id) {
                return Some(id);
            }
        })
    }

    /// Number of selected nodes.
    pub fn count(&self) -> usize {
        self.iter().count()
    }

    /// Collects the selected ids.
    pub fn collect(&self) -> Vec<DeltaNodeId> {
        self.iter().collect()
    }

    fn selects(&self, id: DeltaNodeId) -> bool {
        if let Some(label) = self.label {
            if self.delta.label(id) != label {
                return false;
            }
        }
        if let Some(kinds) = &self.kinds {
            if !kinds.iter().any(|k| k.matches(self.delta.annotation(id))) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierdiff_edit::edit_script;
    use hierdiff_matching::{fast_match, MatchParams};
    use hierdiff_tree::Tree;

    fn delta(t1: &str, t2: &str) -> DeltaTree<String> {
        let t1 = Tree::parse_sexpr(t1).unwrap();
        let t2 = Tree::parse_sexpr(t2).unwrap();
        let m = fast_match(&t1, &t2, MatchParams::default()).unwrap();
        let res = edit_script(&t1, &t2, &m.matching).unwrap();
        crate::build_delta_tree(&t1, &t2, &m.matching, &res)
    }

    fn sample() -> DeltaTree<String> {
        delta(
            r#"(D (P (S "k1") (S "k2") (S "k3") (S "k4") (S "gone") (S "mover"))
                  (P (S "tail1") (S "tail2")))"#,
            r#"(D (P (S "k1") (S "k2") (S "k3") (S "k4") (S "fresh"))
                  (P (S "tail1") (S "tail2") (S "mover")))"#,
        )
    }

    #[test]
    fn kind_filters() {
        let d = sample();
        assert_eq!(d.query().kind(ChangeKind::Inserted).count(), 1);
        assert_eq!(d.query().kind(ChangeKind::Deleted).count(), 1);
        assert_eq!(d.query().kind(ChangeKind::Moved).count(), 1);
        assert_eq!(d.query().kind(ChangeKind::Markers).count(), 1);
        assert_eq!(d.query().changed().count(), 3);
    }

    #[test]
    fn label_filter() {
        let d = sample();
        let sentences = d.query().with_label(Label::intern("S")).count();
        // 8 new-state sentences + 1 deleted tombstone + 1 marker = 10
        assert_eq!(sentences, 10);
        assert_eq!(d.query().with_label(Label::intern("P")).count(), 2);
    }

    #[test]
    fn under_scopes_to_subtree() {
        let d = sample();
        let first_p = d.children(d.root())[0];
        let changed_in_first = d.query().under(first_p).changed().count();
        // The insert and the delete live in the first paragraph; the MOV is
        // in the second.
        assert_eq!(changed_in_first, 2);
        // `under` excludes the anchor itself.
        let all_under_root = d.query().under(d.root()).count();
        assert_eq!(all_under_root, d.len() - 1);
    }

    #[test]
    fn combined_filters() {
        let d = sample();
        let n = d
            .query()
            .with_label(Label::intern("S"))
            .kind(ChangeKind::Inserted)
            .count();
        assert_eq!(n, 1);
        let none = d
            .query()
            .with_label(Label::intern("P"))
            .kind(ChangeKind::Inserted)
            .count();
        assert_eq!(none, 0);
    }

    #[test]
    fn paths_are_positional() {
        let d = sample();
        assert_eq!(d.path_of(d.root()), "D");
        let ins = d
            .query()
            .kind(ChangeKind::Inserted)
            .collect()
            .pop()
            .unwrap();
        let path = d.path_of(ins);
        assert!(path.starts_with("D/P[0]/S["), "{path}");
    }

    #[test]
    fn empty_selection() {
        let d = delta(r#"(D (S "a"))"#, r#"(D (S "a"))"#);
        assert_eq!(d.query().changed().count(), 0);
        assert_eq!(d.query().count(), 2);
    }
}
