//! Active rules over deltas — the `C³` direction the paper cites ([WU95]:
//! "Changes, consistency, and configurations in heterogeneous distributed
//! information systems") and lists as ongoing work (Section 9: "active rule
//! languages for hierarchical data based on our edit scripts and delta
//! trees").
//!
//! A [`Rule`] is a declarative condition over a delta tree — change kind,
//! label, minimum count, optional value substring — and a [`RuleSet`]
//! evaluates all of its rules against a delta, returning the
//! [`Firing`]s. The warehouse scenario of Section 1 is the intended use:
//! compute the delta between consecutive snapshots, then let rules decide
//! which downstream views must refresh or which conflicts need a human.

use hierdiff_tree::{Label, NodeValue};

use crate::query::ChangeKind;
use crate::{DeltaNodeId, DeltaTree};

/// A declarative condition over a delta tree.
#[derive(Clone, Debug)]
pub struct Rule {
    /// Name reported in firings.
    pub name: String,
    /// Change kinds that count (empty = any change, i.e. not `IDN`/`MRK`).
    pub kinds: Vec<ChangeKind>,
    /// Restrict to nodes with this label.
    pub label: Option<Label>,
    /// Fire only if at least this many nodes match (default 1).
    pub min_count: usize,
}

impl Rule {
    /// A rule matching any change of the given kind.
    pub fn on(name: impl Into<String>, kind: ChangeKind) -> Rule {
        Rule {
            name: name.into(),
            kinds: vec![kind],
            label: None,
            min_count: 1,
        }
    }

    /// A rule matching any change at all.
    pub fn on_any_change(name: impl Into<String>) -> Rule {
        Rule {
            name: name.into(),
            kinds: Vec::new(),
            label: None,
            min_count: 1,
        }
    }

    /// Restricts the rule to nodes with `label`.
    pub fn with_label(mut self, label: Label) -> Rule {
        self.label = Some(label);
        self
    }

    /// Requires at least `n` matching nodes before firing.
    pub fn min_count(mut self, n: usize) -> Rule {
        self.min_count = n;
        self
    }

    fn matches<V: NodeValue>(&self, delta: &DeltaTree<V>, id: DeltaNodeId) -> bool {
        if let Some(l) = self.label {
            if delta.label(id) != l {
                return false;
            }
        }
        let ann = delta.annotation(id);
        if self.kinds.is_empty() {
            !matches!(
                ann,
                crate::Annotation::Identical | crate::Annotation::Marker { .. }
            )
        } else {
            self.kinds.iter().any(|k| {
                matches!(
                    (k, ann),
                    (ChangeKind::Identical, crate::Annotation::Identical)
                        | (ChangeKind::Updated, crate::Annotation::Updated { .. })
                        | (ChangeKind::Inserted, crate::Annotation::Inserted)
                        | (ChangeKind::Deleted, crate::Annotation::Deleted)
                        | (ChangeKind::Moved, crate::Annotation::Moved { .. })
                        | (ChangeKind::Markers, crate::Annotation::Marker { .. })
                )
            })
        }
    }
}

/// A rule that fired: which rule, on which nodes.
#[derive(Clone, Debug)]
pub struct Firing {
    /// The rule's name.
    pub rule: String,
    /// The matching delta nodes (at least `min_count` of them).
    pub nodes: Vec<DeltaNodeId>,
}

/// An ordered collection of rules evaluated together.
#[derive(Clone, Debug, Default)]
pub struct RuleSet {
    rules: Vec<Rule>,
}

impl RuleSet {
    /// An empty rule set.
    pub fn new() -> RuleSet {
        RuleSet::default()
    }

    /// Adds a rule (builder style).
    pub fn rule(mut self, rule: Rule) -> RuleSet {
        self.rules.push(rule);
        self
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Evaluates every rule against `delta` in one pass; returns the
    /// firings in rule order.
    pub fn evaluate<V: NodeValue>(&self, delta: &DeltaTree<V>) -> Vec<Firing> {
        let mut hits: Vec<Vec<DeltaNodeId>> = vec![Vec::new(); self.rules.len()];
        for id in delta.preorder() {
            for (i, rule) in self.rules.iter().enumerate() {
                if rule.matches(delta, id) {
                    hits[i].push(id);
                }
            }
        }
        self.rules
            .iter()
            .zip(hits)
            .filter(|(rule, nodes)| nodes.len() >= rule.min_count)
            .map(|(rule, nodes)| Firing {
                rule: rule.name.clone(),
                nodes,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierdiff_edit::edit_script;
    use hierdiff_matching::{fast_match, MatchParams};
    use hierdiff_tree::Tree;

    fn delta(t1: &str, t2: &str) -> DeltaTree<String> {
        let t1 = Tree::parse_sexpr(t1).unwrap();
        let t2 = Tree::parse_sexpr(t2).unwrap();
        let m = fast_match(&t1, &t2, MatchParams::default()).unwrap();
        let res = edit_script(&t1, &t2, &m.matching).unwrap();
        crate::build_delta_tree(&t1, &t2, &m.matching, &res)
    }

    fn sample() -> DeltaTree<String> {
        delta(
            r#"(D (P (S "k1") (S "k2") (S "k3") (S "k4") (S "gone")) (P (S "t1") (S "t2")))"#,
            r#"(D (P (S "k1") (S "k2") (S "k3") (S "k4") (S "new1") (S "new2")) (P (S "t2") (S "t1")))"#,
        )
    }

    #[test]
    fn fires_on_matching_kind() {
        let d = sample();
        let rules = RuleSet::new()
            .rule(Rule::on("inserted-sentences", ChangeKind::Inserted))
            .rule(Rule::on("deleted-sentences", ChangeKind::Deleted))
            .rule(
                Rule::on("sections-changed", ChangeKind::Updated).with_label(Label::intern("Sec")),
            );
        let firings = rules.evaluate(&d);
        let names: Vec<&str> = firings.iter().map(|f| f.rule.as_str()).collect();
        assert!(names.contains(&"inserted-sentences"));
        assert!(names.contains(&"deleted-sentences"));
        assert!(!names.contains(&"sections-changed"), "no Sec nodes here");
        let ins = firings
            .iter()
            .find(|f| f.rule == "inserted-sentences")
            .unwrap();
        assert_eq!(ins.nodes.len(), 2);
    }

    #[test]
    fn min_count_gates_firing() {
        let d = sample();
        let rules = RuleSet::new()
            .rule(Rule::on("bulk-insert", ChangeKind::Inserted).min_count(3))
            .rule(Rule::on("some-insert", ChangeKind::Inserted).min_count(2));
        let firings = rules.evaluate(&d);
        assert_eq!(firings.len(), 1);
        assert_eq!(firings[0].rule, "some-insert");
    }

    #[test]
    fn any_change_rule() {
        let d = sample();
        let firings = RuleSet::new()
            .rule(Rule::on_any_change("anything"))
            .evaluate(&d);
        assert_eq!(firings.len(), 1);
        // inserts (2) + delete (1) + moves (1 of the swapped tail pair) ≥ 4.
        assert!(firings[0].nodes.len() >= 4, "{:?}", firings[0].nodes.len());
    }

    #[test]
    fn no_firings_on_identical_documents() {
        let d = delta(r#"(D (S "a"))"#, r#"(D (S "a"))"#);
        let rules = RuleSet::new()
            .rule(Rule::on_any_change("anything"))
            .rule(Rule::on("ins", ChangeKind::Inserted));
        assert!(rules.evaluate(&d).is_empty());
        assert_eq!(rules.len(), 2);
        assert!(!rules.is_empty());
    }

    #[test]
    fn label_scoping() {
        let d = sample();
        let s_moves = RuleSet::new()
            .rule(Rule::on("s-moves", ChangeKind::Moved).with_label(Label::intern("S")))
            .evaluate(&d);
        assert_eq!(s_moves.len(), 1);
        let p_moves = RuleSet::new()
            .rule(Rule::on("p-moves", ChangeKind::Moved).with_label(Label::intern("P")))
            .evaluate(&d);
        assert!(p_moves.is_empty());
    }
}
