//! # hierdiff-delta
//!
//! The **delta tree** representation of Section 6: "one can think of a delta
//! tree as 'overlaying' an edit script onto the data using node
//! annotations." Where an edit script is flat and id-based, a delta tree is
//! hierarchical and positional — the representation LaDiff renders from
//! (Section 7), and the natural shape for querying and browsing deltas.
//!
//! Each node carries exactly one [`Annotation`]:
//!
//! | paper | here | meaning |
//! |-------|------|---------|
//! | `IDN` | [`Annotation::Identical`] | unchanged node |
//! | `UPD(v)` | [`Annotation::Updated`] | value updated (old value kept) |
//! | `INS(l, v)` | [`Annotation::Inserted`] | node inserted |
//! | `DEL` | [`Annotation::Deleted`] | subtree deleted (kept, tombstoned, at its old position) |
//! | `MOV(x)` | [`Annotation::Moved`] | node at its *new* position, pointing at its marker |
//! | `MRK` | [`Annotation::Marker`] | tombstone at the *old* position of a moved node |
//!
//! A delta tree is *correct* when some ordering of its annotations yields an
//! edit script transforming `T1` to `T2`. We verify a stronger, two-sided
//! property: [`DeltaTree::project_new`] (drop `DEL`/`MRK`) reproduces `T2`,
//! and [`DeltaTree::project_old`] (drop `INS`, return moved subtrees to
//! their markers, restore old values) reproduces `T1`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod build;
mod extract;
mod feed;
mod query;
mod render;
mod rules;

pub use build::build_delta_tree;
pub use extract::{extract_script, ExtractedScript};
pub use feed::{change_feed, ChangeRecord, FeedKind};
pub use query::{ChangeKind, DeltaQuery};
pub use render::render_text;
pub use rules::{Firing, Rule, RuleSet};

use hierdiff_tree::{Label, NodeValue, Tree};
use serde::{Deserialize, Serialize};

/// Identifier of a node within a [`DeltaTree`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct DeltaNodeId(pub(crate) u32);

impl DeltaNodeId {
    /// Dense arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The per-node change annotation (Section 6).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Annotation<V> {
    /// `IDN` — corresponds to an unchanged node of the original tree.
    Identical,
    /// `UPD(v)` — the node's value was updated; `old` is the original value.
    Updated {
        /// The value before the update.
        old: V,
    },
    /// `INS(l, v)` — the node was inserted.
    Inserted,
    /// `DEL` — the subtree rooted here was deleted; it appears at its old
    /// position with its old content.
    Deleted,
    /// `MOV(x)` — the node moved here; `mark` is its tombstone at the old
    /// position. `old` is `Some` when the move was combined with a value
    /// update ("sentences ... may be moved and updated at the same time",
    /// Appendix A).
    Moved {
        /// The marker node at the old position.
        mark: DeltaNodeId,
        /// The pre-update value if the node was also updated.
        old: Option<V>,
    },
    /// `MRK` — the old position of `moved`; carries the node's old value.
    Marker {
        /// The moved node now living at its new position.
        moved: DeltaNodeId,
    },
}

impl<V> Annotation<V> {
    /// Short tag (`IDN`/`UPD`/`INS`/`DEL`/`MOV`/`MRK`).
    pub fn tag(&self) -> &'static str {
        match self {
            Annotation::Identical => "IDN",
            Annotation::Updated { .. } => "UPD",
            Annotation::Inserted => "INS",
            Annotation::Deleted => "DEL",
            Annotation::Moved { .. } => "MOV",
            Annotation::Marker { .. } => "MRK",
        }
    }
}

#[derive(Clone, Debug, Serialize, Deserialize)]
pub(crate) struct DeltaNode<V> {
    pub label: Label,
    /// New-state value for live nodes; old-state value for `DEL`/`MRK`.
    pub value: V,
    pub annotation: Annotation<V>,
    pub children: Vec<DeltaNodeId>,
}

/// An annotated overlay of the new tree, deleted subtrees, and move markers.
/// Build one with [`build_delta_tree`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DeltaTree<V> {
    pub(crate) nodes: Vec<DeltaNode<V>>,
    pub(crate) root: DeltaNodeId,
}

impl<V: NodeValue> DeltaTree<V> {
    /// The single raw-indexing point into the arena; every accessor below
    /// goes through it (keeps `L007` confined to one spot).
    fn node(&self, id: DeltaNodeId) -> &DeltaNode<V> {
        let arena: &[DeltaNode<V>] = &self.nodes;
        &arena[id.index()]
    }

    /// The root node.
    pub fn root(&self) -> DeltaNodeId {
        self.root
    }

    /// Number of nodes (new-state nodes + deleted subtrees + markers).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree consists of the root only.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// The label of `id`.
    pub fn label(&self, id: DeltaNodeId) -> Label {
        self.node(id).label
    }

    /// The value of `id` — new-state for live nodes, old-state for deleted
    /// nodes and markers.
    pub fn value(&self, id: DeltaNodeId) -> &V {
        &self.node(id).value
    }

    /// The annotation of `id`.
    pub fn annotation(&self, id: DeltaNodeId) -> &Annotation<V> {
        &self.node(id).annotation
    }

    /// The ordered children of `id`.
    pub fn children(&self, id: DeltaNodeId) -> &[DeltaNodeId] {
        &self.node(id).children
    }

    /// Pre-order traversal of the delta tree.
    pub fn preorder(&self) -> impl Iterator<Item = DeltaNodeId> + '_ {
        let mut stack = vec![self.root];
        std::iter::from_fn(move || {
            let id = stack.pop()?;
            stack.extend(self.children(id).iter().rev().copied());
            Some(id)
        })
    }

    /// Counts nodes per annotation tag.
    pub fn annotation_counts(&self) -> AnnotationCounts {
        let mut c = AnnotationCounts::default();
        for n in &self.nodes {
            match n.annotation {
                Annotation::Identical => c.identical += 1,
                Annotation::Updated { .. } => c.updated += 1,
                Annotation::Inserted => c.inserted += 1,
                Annotation::Deleted => c.deleted += 1,
                Annotation::Moved { .. } => c.moved += 1,
                Annotation::Marker { .. } => c.markers += 1,
            }
        }
        c
    }

    /// Projects the *new* state: drops `DEL` subtrees and `MRK` markers,
    /// keeps new values. The result is isomorphic to `T2` for a correct
    /// delta tree.
    pub fn project_new(&self) -> Tree<V> {
        let mut out = Tree::new(self.label(self.root), self.value(self.root).clone());
        let root = out.root();
        self.project_new_children(self.root, &mut out, root);
        out
    }

    fn project_new_children(
        &self,
        from: DeltaNodeId,
        out: &mut Tree<V>,
        into: hierdiff_tree::NodeId,
    ) {
        for &c in self.children(from) {
            match self.annotation(c) {
                Annotation::Deleted | Annotation::Marker { .. } => continue,
                _ => {}
            }
            let id = out.push_child(into, self.label(c), self.value(c).clone());
            self.project_new_children(c, out, id);
        }
    }

    /// Projects the *old* state: drops `INS` nodes, skips `MOV` nodes at
    /// their new positions and re-expands them at their `MRK` markers (with
    /// old values where updated). The result is isomorphic to `T1` for a
    /// correct delta tree.
    pub fn project_old(&self) -> Tree<V> {
        let (label, value) = self.old_label_value(self.root);
        let mut out = Tree::new(label, value);
        let root = out.root();
        self.project_old_children(self.root, &mut out, root);
        out
    }

    fn old_label_value(&self, id: DeltaNodeId) -> (Label, V) {
        let value = match self.annotation(id) {
            Annotation::Updated { old } => old.clone(),
            Annotation::Moved { old: Some(old), .. } => old.clone(),
            _ => self.value(id).clone(),
        };
        (self.label(id), value)
    }

    fn project_old_children(
        &self,
        from: DeltaNodeId,
        out: &mut Tree<V>,
        into: hierdiff_tree::NodeId,
    ) {
        for &c in self.children(from) {
            match self.annotation(c) {
                Annotation::Inserted => {
                    // New node: absent from the old state. Its subtree cannot
                    // contain markers (markers live under partners of old
                    // parents or inside deleted subtrees), so skipping the
                    // whole subtree is sound.
                    continue;
                }
                Annotation::Moved { .. } => {
                    // Rendered at its marker instead.
                    continue;
                }
                Annotation::Marker { moved } => {
                    let moved = *moved;
                    let (label, value) = self.old_label_value(moved);
                    let id = out.push_child(into, label, value);
                    self.project_old_children(moved, out, id);
                }
                Annotation::Identical | Annotation::Updated { .. } | Annotation::Deleted => {
                    let (label, value) = self.old_label_value(c);
                    let id = out.push_child(into, label, value);
                    self.project_old_children(c, out, id);
                }
            }
        }
    }
}

/// Per-annotation node counts of a delta tree.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AnnotationCounts {
    /// `IDN` nodes.
    pub identical: usize,
    /// `UPD` nodes.
    pub updated: usize,
    /// `INS` nodes.
    pub inserted: usize,
    /// `DEL` nodes.
    pub deleted: usize,
    /// `MOV` nodes.
    pub moved: usize,
    /// `MRK` markers.
    pub markers: usize,
}

impl AnnotationCounts {
    /// Nodes representing a change (everything but `IDN`; markers counted
    /// with their moves, i.e. excluded).
    pub fn changes(&self) -> usize {
        self.updated + self.inserted + self.deleted + self.moved
    }
}
