//! Extracting an edit script back out of a delta tree — the paper's
//! *correctness* condition for delta trees made executable.
//!
//! Section 6: a delta tree is correct when "there is at least one edit
//! script E such that (1) E transforms T1 to T2 [and] (2) there is a total
//! order over the nodes of ΔT such that outputting the edit operations
//! corresponding to the node annotations in this order yields edit
//! script E."
//!
//! [`extract_script`] constructs exactly such an `E`: it projects the delta
//! tree onto its old and new states (tracking which projected node each
//! delta node became), derives the matching *implied by the annotations*
//! (a delta node present in both states matches itself across them), and
//! hands that matching to Algorithm *EditScript*. The resulting script's
//! operations correspond one-to-one with the annotations — verified by the
//! tests — so the delta tree is correct by construction, with the proof
//! object returned to the caller.

use hierdiff_edit::{edit_script, EditScript, Matching, McesError};
use hierdiff_tree::{NodeId, NodeValue, Tree};

use crate::{Annotation, DeltaNodeId, DeltaTree};

/// The script extracted from a delta tree, together with the projections
/// and matching it was derived from.
pub struct ExtractedScript<V: NodeValue> {
    /// The old state (`project_old`).
    pub old: Tree<V>,
    /// The new state (`project_new`).
    pub new: Tree<V>,
    /// The matching implied by the annotations.
    pub matching: Matching,
    /// A minimum-cost script conforming to that matching, transforming
    /// `old` into `new`.
    pub script: EditScript<V>,
}

/// Projects both states of `delta`, derives the annotation-implied
/// matching, and generates the witnessing edit script.
pub fn extract_script<V: NodeValue>(delta: &DeltaTree<V>) -> Result<ExtractedScript<V>, McesError> {
    let mut old_map: Vec<Option<NodeId>> = vec![None; delta.len()];
    let mut new_map: Vec<Option<NodeId>> = vec![None; delta.len()];

    // Old projection (mirrors DeltaTree::project_old, recording the map).
    let (label, value) = old_label_value(delta, delta.root());
    let mut old = Tree::new(label, value);
    let old_root = old.root();
    old_map[delta.root().index()] = Some(old_root);
    project_old_rec(delta, delta.root(), &mut old, old_root, &mut old_map);

    // New projection.
    let mut new = Tree::new(delta.label(delta.root()), delta.value(delta.root()).clone());
    let new_root = new.root();
    new_map[delta.root().index()] = Some(new_root);
    project_new_rec(delta, delta.root(), &mut new, new_root, &mut new_map);

    // The implied matching: every delta node alive in both states.
    let mut matching = Matching::with_capacity(old.arena_len(), new.arena_len());
    for (idx, (o, n)) in old_map.iter().zip(&new_map).enumerate() {
        if let (Some(o), Some(n)) = (o, n) {
            let _ = idx;
            assert!(
                matching.insert(*o, *n).is_ok(),
                "projection maps are injective"
            );
        }
    }

    let result = edit_script(&old, &new, &matching)?;
    Ok(ExtractedScript {
        old,
        new,
        matching,
        script: result.script,
    })
}

fn old_label_value<V: NodeValue>(
    delta: &DeltaTree<V>,
    id: DeltaNodeId,
) -> (hierdiff_tree::Label, V) {
    let value = match delta.annotation(id) {
        Annotation::Updated { old } => old.clone(),
        Annotation::Moved { old: Some(old), .. } => old.clone(),
        _ => delta.value(id).clone(),
    };
    (delta.label(id), value)
}

fn project_old_rec<V: NodeValue>(
    delta: &DeltaTree<V>,
    from: DeltaNodeId,
    out: &mut Tree<V>,
    into: NodeId,
    map: &mut Vec<Option<NodeId>>,
) {
    for &c in delta.children(from) {
        match delta.annotation(c) {
            Annotation::Inserted | Annotation::Moved { .. } => continue,
            Annotation::Marker { moved } => {
                let moved = *moved;
                let (label, value) = old_label_value(delta, moved);
                let id = out.push_child(into, label, value);
                map[moved.index()] = Some(id);
                project_old_rec(delta, moved, out, id, map);
            }
            Annotation::Identical | Annotation::Updated { .. } | Annotation::Deleted => {
                let (label, value) = old_label_value(delta, c);
                let id = out.push_child(into, label, value);
                map[c.index()] = Some(id);
                project_old_rec(delta, c, out, id, map);
            }
        }
    }
}

fn project_new_rec<V: NodeValue>(
    delta: &DeltaTree<V>,
    from: DeltaNodeId,
    out: &mut Tree<V>,
    into: NodeId,
    map: &mut Vec<Option<NodeId>>,
) {
    for &c in delta.children(from) {
        match delta.annotation(c) {
            Annotation::Deleted | Annotation::Marker { .. } => continue,
            _ => {
                let id = out.push_child(into, delta.label(c), delta.value(c).clone());
                map[c.index()] = Some(id);
                project_new_rec(delta, c, out, id, map);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierdiff_matching::{fast_match, MatchParams};
    use hierdiff_tree::isomorphic;

    fn delta_of(t1: &str, t2: &str) -> (Tree<String>, Tree<String>, DeltaTree<String>) {
        let t1 = Tree::parse_sexpr(t1).unwrap();
        let t2 = Tree::parse_sexpr(t2).unwrap();
        let m = fast_match(&t1, &t2, MatchParams::default()).unwrap();
        let res = edit_script(&t1, &t2, &m.matching).unwrap();
        let d = crate::build_delta_tree(&t1, &t2, &m.matching, &res);
        (t1, t2, d)
    }

    #[test]
    fn extracted_script_transforms_old_into_new() {
        let (t1, t2, delta) = delta_of(
            r#"(D (P (S "k1") (S "k2") (S "k3") (S "k4") (S "gone") (S "mover"))
                  (P (S "t1") (S "t2")))"#,
            r#"(D (P (S "k1") (S "k2") (S "k3") (S "k4") (S "fresh"))
                  (P (S "t1") (S "t2") (S "mover")))"#,
        );
        let x = extract_script(&delta).unwrap();
        assert!(isomorphic(&x.old, &t1));
        assert!(isomorphic(&x.new, &t2));
        let mut replay = x.old.clone();
        hierdiff_edit::apply(&mut replay, &x.script).unwrap();
        assert!(isomorphic(&replay, &x.new));
    }

    #[test]
    fn op_counts_correspond_to_annotations() {
        let (_, _, delta) = delta_of(
            r#"(D (P (S "k1") (S "k2") (S "k3") (S "k4") (S "gone") (S "mover"))
                  (P (S "t1") (S "t2")))"#,
            r#"(D (P (S "k1") (S "k2") (S "k3") (S "k4") (S "fresh"))
                  (P (S "t1") (S "t2") (S "mover")))"#,
        );
        let ann = delta.annotation_counts();
        let ops = extract_script(&delta).unwrap().script.op_counts();
        assert_eq!(ops.inserts, ann.inserted);
        assert_eq!(ops.deletes, ann.deleted);
        assert_eq!(ops.moves, ann.moved);
        assert_eq!(ann.moved, ann.markers);
    }

    #[test]
    fn updates_extracted_including_move_plus_update() {
        use hierdiff_edit::Matching;
        let t1 = Tree::parse_sexpr(r#"(D (P (S "old words here")) (P))"#).unwrap();
        let t2 = Tree::parse_sexpr(r#"(D (P) (P (S "new words here")))"#).unwrap();
        let mut m = Matching::new();
        m.insert(t1.root(), t2.root()).unwrap();
        let p1 = t1.children(t1.root())[0];
        let p2 = t1.children(t1.root())[1];
        let q1 = t2.children(t2.root())[0];
        let q2 = t2.children(t2.root())[1];
        m.insert(p1, q1).unwrap();
        m.insert(p2, q2).unwrap();
        m.insert(t1.children(p1)[0], t2.children(q2)[0]).unwrap();
        let res = edit_script(&t1, &t2, &m).unwrap();
        let delta = crate::build_delta_tree(&t1, &t2, &m, &res);
        let x = extract_script(&delta).unwrap();
        let ops = x.script.op_counts();
        assert_eq!(ops.moves, 1);
        assert_eq!(ops.updates, 1, "the move+update splits back into both ops");
        assert!(isomorphic(&x.old, &t1));
        assert!(isomorphic(&x.new, &t2));
    }

    #[test]
    fn empty_delta_extracts_empty_script() {
        let (_, _, delta) = delta_of(r#"(D (S "a"))"#, r#"(D (S "a"))"#);
        let x = extract_script(&delta).unwrap();
        assert!(x.script.is_empty());
    }
}
