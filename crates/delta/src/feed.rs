//! A flat, serializable *change feed* derived from a delta tree — the
//! delta-relation analogy of Section 6 made literal: where relational
//! systems expose `inserted(R)` / `deleted(R)` / `old-updated(R)` /
//! `new-updated(R)` tables, a hierarchical delta flattens to one record per
//! change, addressed by positional path (delta trees deliberately carry no
//! node identifiers).
//!
//! Feeds serialize with serde, so they are the natural wire format for
//! downstream consumers — notification systems, audit logs, warehouse
//! maintenance queues.

use hierdiff_tree::NodeValue;
use serde::{Deserialize, Serialize};

use crate::{Annotation, DeltaTree};

/// Kind of one change record.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeedKind {
    /// Node inserted.
    Insert,
    /// Subtree deleted (one record per deleted node).
    Delete,
    /// Value updated.
    Update,
    /// Subtree moved.
    Move,
}

/// One flattened change.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChangeRecord<V> {
    /// What happened.
    pub kind: FeedKind,
    /// Positional path of the node in the delta tree (new position for
    /// inserts/updates/moves, old position for deletes).
    pub path: String,
    /// Node label.
    pub label: hierdiff_tree::Label,
    /// Value before the change (deletes, updates, updated moves).
    pub old_value: Option<V>,
    /// Value after the change (inserts, updates, moves).
    pub new_value: Option<V>,
    /// For moves: the positional path of the old position (the marker).
    pub moved_from: Option<String>,
}

/// Flattens `delta` into change records, in pre-order of the delta tree.
pub fn change_feed<V: NodeValue>(delta: &DeltaTree<V>) -> Vec<ChangeRecord<V>> {
    let mut out = Vec::new();
    for id in delta.preorder() {
        let label = delta.label(id);
        match delta.annotation(id) {
            Annotation::Identical | Annotation::Marker { .. } => {}
            Annotation::Inserted => out.push(ChangeRecord {
                kind: FeedKind::Insert,
                path: delta.path_of(id),
                label,
                old_value: None,
                new_value: Some(delta.value(id).clone()),
                moved_from: None,
            }),
            Annotation::Deleted => out.push(ChangeRecord {
                kind: FeedKind::Delete,
                path: delta.path_of(id),
                label,
                old_value: Some(delta.value(id).clone()),
                new_value: None,
                moved_from: None,
            }),
            Annotation::Updated { old } => out.push(ChangeRecord {
                kind: FeedKind::Update,
                path: delta.path_of(id),
                label,
                old_value: Some(old.clone()),
                new_value: Some(delta.value(id).clone()),
                moved_from: None,
            }),
            Annotation::Moved { mark, old } => out.push(ChangeRecord {
                kind: FeedKind::Move,
                path: delta.path_of(id),
                label,
                old_value: old.clone(),
                new_value: Some(delta.value(id).clone()),
                moved_from: Some(delta.path_of(*mark)),
            }),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierdiff_edit::edit_script;
    use hierdiff_matching::{fast_match, MatchParams};
    use hierdiff_tree::Tree;

    fn feed(t1: &str, t2: &str) -> Vec<ChangeRecord<String>> {
        let t1 = Tree::parse_sexpr(t1).unwrap();
        let t2 = Tree::parse_sexpr(t2).unwrap();
        let m = fast_match(&t1, &t2, MatchParams::default()).unwrap();
        let res = edit_script(&t1, &t2, &m.matching).unwrap();
        let delta = crate::build_delta_tree(&t1, &t2, &m.matching, &res);
        change_feed(&delta)
    }

    #[test]
    fn records_cover_all_change_kinds() {
        let records = feed(
            r#"(D (P (S "k1") (S "k2") (S "k3") (S "k4") (S "gone") (S "mover")))"#,
            r#"(D (P (S "mover") (S "k1") (S "k2") (S "k3") (S "k4") (S "fresh")))"#,
        );
        let kinds: Vec<FeedKind> = records.iter().map(|r| r.kind).collect();
        assert!(kinds.contains(&FeedKind::Insert));
        assert!(kinds.contains(&FeedKind::Delete));
        assert!(kinds.contains(&FeedKind::Move));
        let mv = records.iter().find(|r| r.kind == FeedKind::Move).unwrap();
        assert!(mv.moved_from.is_some());
        assert_ne!(mv.moved_from.as_deref(), Some(mv.path.as_str()));
        assert_eq!(mv.new_value.as_deref(), Some("mover"));
    }

    #[test]
    fn update_carries_both_values() {
        use hierdiff_edit::Matching;
        let t1 = Tree::parse_sexpr(r#"(D (S "before"))"#).unwrap();
        let t2 = Tree::parse_sexpr(r#"(D (S "after"))"#).unwrap();
        let mut m = Matching::new();
        m.insert(t1.root(), t2.root()).unwrap();
        m.insert(t1.children(t1.root())[0], t2.children(t2.root())[0])
            .unwrap();
        let res = edit_script(&t1, &t2, &m).unwrap();
        let delta = crate::build_delta_tree(&t1, &t2, &m, &res);
        let records = change_feed(&delta);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].kind, FeedKind::Update);
        assert_eq!(records[0].old_value.as_deref(), Some("before"));
        assert_eq!(records[0].new_value.as_deref(), Some("after"));
        assert!(records[0].path.starts_with("D/S"));
    }

    #[test]
    fn empty_feed_for_identical() {
        assert!(feed(r#"(D (S "a"))"#, r#"(D (S "a"))"#).is_empty());
    }

    #[test]
    fn feed_serializes() {
        let records = feed(
            r#"(D (S "a") (S "b") (S "c"))"#,
            r#"(D (S "a") (S "b") (S "c") (S "d"))"#,
        );
        let json = serde_json::to_string(&records).unwrap();
        let back: Vec<ChangeRecord<String>> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, records);
        assert!(json.contains("\"Insert\""));
    }

    #[test]
    fn deleted_subtrees_flatten_per_node() {
        let records = feed(
            r#"(D (P (S "x") (S "y")) (S "k1") (S "k2") (S "k3") (S "k4"))"#,
            r#"(D (S "k1") (S "k2") (S "k3") (S "k4"))"#,
        );
        let deletes = records
            .iter()
            .filter(|r| r.kind == FeedKind::Delete)
            .count();
        assert_eq!(deletes, 3, "P and its two sentences");
    }
}
