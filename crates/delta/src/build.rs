//! Delta-tree construction.
//!
//! Section 6: "In our implementation ... we construct the delta tree
//! directly as a side-effect of producing an edit script." We take the
//! equivalent route with cleaner layering: [`build_delta_tree`] consumes the
//! [`McesResult`] of Algorithm *EditScript* (which knows exactly which nodes
//! moved) together with the original trees and matching, and overlays:
//!
//! * the new tree's structure (annotated `IDN`/`UPD`/`INS`/`MOV`),
//! * deleted `T1` subtrees, tombstoned `DEL` at their old positions, and
//! * `MRK` markers at the old positions of moved nodes,
//!
//! interleaving old-position entries against the surviving children in
//! original `T1` order, so "the annotated nodes are at the appropriate
//! positions in the delta tree" and node identifiers are unnecessary.

use hierdiff_edit::{EditOp, Matching, McesResult, DUMMY_ROOT_LABEL};
use hierdiff_tree::{Label, NodeId, NodeValue, Tree};

use crate::{Annotation, DeltaNode, DeltaNodeId, DeltaTree};

const UNRESOLVED: DeltaNodeId = DeltaNodeId(u32::MAX);

/// Blessed indexing funnels (see DESIGN.md, "Static analysis"): every
/// arena/side-table access in the builder flows through these, keeping the
/// S004 panic-reachability audit to two waived sites. Indices are
/// `NodeId::index()` / `DeltaNodeId::index()` values bounded by the arena
/// lengths the tables were sized with.
#[inline(always)]
fn at<T: Copy>(v: &[T], i: usize) -> T {
    v[i] // analyze: allow(S004) the blessed funnel
}

#[inline(always)]
fn at_mut<T>(v: &mut [T], i: usize) -> &mut T {
    &mut v[i] // analyze: allow(S004) the blessed funnel
}

/// Builds the delta tree for `t1` with respect to `t2`, given the original
/// (partial) `matching` and the [`McesResult`] produced from it.
pub fn build_delta_tree<V: NodeValue>(
    t1: &Tree<V>,
    t2: &Tree<V>,
    matching: &Matching,
    result: &McesResult<V>,
) -> DeltaTree<V> {
    // Mirror the wrapping performed by `edit_script` so node ids line up.
    let mut t1c;
    let mut t2c;
    let mut m;
    let (t1, t2, matching) = if result.wrapped {
        t1c = t1.clone();
        t2c = t2.clone();
        m = matching.clone();
        let l = Label::intern(DUMMY_ROOT_LABEL);
        let d1 = t1c.wrap_root(l, V::null());
        let d2 = t2c.wrap_root(l, V::null());
        assert!(m.insert(d1, d2).is_ok(), "dummy roots fresh");
        (&t1c, &t2c, &m)
    } else {
        (t1, t2, matching)
    };

    // Which original-tree nodes the script moved (inserted nodes never
    // move — they are born in place).
    let mut moved = vec![false; t1.arena_len()];
    for op in result.script.iter() {
        if let EditOp::Move { node, .. } = op {
            if node.index() < moved.len() {
                *at_mut(&mut moved, node.index()) = true;
            }
        }
    }

    let mut b = Builder {
        t1,
        t2,
        m: matching,
        moved: &moved,
        arena: Vec::with_capacity(t1.len() + t2.len()),
        t2_to_delta: vec![None; t2.arena_len()],
        pending_marks: Vec::new(),
    };
    let root = b.emit_new(t2.root());

    // Resolve marker ↔ moved-node cross references. Both lookups hold by
    // construction (markers are pushed only for matched nodes, and the T2
    // walk covers every node); if they ever fail, the link stays UNRESOLVED
    // and the `audit_delta` checker reports it (A042) instead of panicking.
    for (mark, t1_node) in std::mem::take(&mut b.pending_marks) {
        let moved_delta =
            b.m.partner1(t1_node)
                .and_then(|y| at(&b.t2_to_delta, y.index()));
        let Some(moved_delta) = moved_delta else {
            debug_assert!(false, "marker for unmatched or unvisited node");
            continue;
        };
        at_mut(&mut b.arena, mark.index()).annotation = Annotation::Marker { moved: moved_delta };
        match &mut at_mut(&mut b.arena, moved_delta.index()).annotation {
            Annotation::Moved { mark: slot, .. } => *slot = mark,
            other => unreachable!("moved node annotated {}", other.tag()),
        }
    }
    debug_assert!(
        !b.arena.iter().any(|n| matches!(
            n.annotation,
            Annotation::Moved {
                mark: UNRESOLVED,
                ..
            } | Annotation::Marker { moved: UNRESOLVED }
        )),
        "unresolved move/marker links"
    );

    DeltaTree {
        nodes: b.arena,
        root,
    }
}

struct Builder<'a, V: NodeValue> {
    t1: &'a Tree<V>,
    t2: &'a Tree<V>,
    m: &'a Matching,
    moved: &'a [bool],
    arena: Vec<DeltaNode<V>>,
    t2_to_delta: Vec<Option<DeltaNodeId>>,
    pending_marks: Vec<(DeltaNodeId, NodeId)>,
}

impl<V: NodeValue> Builder<'_, V> {
    fn alloc(&mut self, label: Label, value: V, annotation: Annotation<V>) -> DeltaNodeId {
        assert!(
            self.arena.len() < u32::MAX as usize,
            "delta arena exhausted"
        );
        let id = DeltaNodeId(self.arena.len() as u32);
        self.arena.push(DeltaNode {
            label,
            value,
            annotation,
            children: Vec::new(),
        });
        id
    }

    /// Emits the delta node for `T2` node `x` and (recursively) its
    /// children, then interleaves old-position tombstones from `x`'s
    /// partner's original child list.
    fn emit_new(&mut self, x: NodeId) -> DeltaNodeId {
        let w = self.m.partner2(x);
        let annotation = match w {
            None => Annotation::Inserted,
            Some(w) => {
                let was_updated = self.t1.value(w) != self.t2.value(x);
                if at(self.moved, w.index()) {
                    Annotation::Moved {
                        mark: UNRESOLVED,
                        old: was_updated.then(|| self.t1.value(w).clone()),
                    }
                } else if was_updated {
                    Annotation::Updated {
                        old: self.t1.value(w).clone(),
                    }
                } else {
                    Annotation::Identical
                }
            }
        };
        let id = self.alloc(self.t2.label(x), self.t2.value(x).clone(), annotation);
        *at_mut(&mut self.t2_to_delta, x.index()) = Some(id);

        let mut children: Vec<DeltaNodeId> = self
            .t2
            .children(x)
            .to_vec()
            .into_iter()
            .map(|c| self.emit_new(c))
            .collect();

        // Interleave old-position entries (markers of moved-away children,
        // deleted subtrees) against the stable children, in T1 order.
        if let Some(w) = w {
            let mut cursor = 0usize;
            for c in self.t1.children(w).to_vec() {
                match self.m.partner1(c) {
                    Some(y) if !at(self.moved, c.index()) && self.t2.parent(y) == Some(x) => {
                        // `y` was emitted by the child walk above; if the
                        // lookup ever failed the cursor would merely not
                        // advance past it.
                        let dy = at(&self.t2_to_delta, y.index());
                        let pos = dy.and_then(|dy| children.iter().position(|&d| d == dy));
                        if let Some(pos) = pos {
                            cursor = pos + 1;
                        }
                    }
                    Some(_) => {
                        // Moved (within this parent or away): tombstone at
                        // the old position, carrying the old value.
                        let mk = self.alloc(
                            self.t1.label(c),
                            self.t1.value(c).clone(),
                            Annotation::Marker { moved: UNRESOLVED },
                        );
                        self.pending_marks.push((mk, c));
                        children.insert(cursor, mk);
                        cursor += 1;
                    }
                    None => {
                        let del = self.emit_old_deleted(c);
                        children.insert(cursor, del);
                        cursor += 1;
                    }
                }
            }
        }
        at_mut(&mut self.arena, id.index()).children = children;
        id
    }

    /// Emits the tombstoned copy of the deleted `T1` subtree rooted at `c`.
    /// Matched descendants (moved out of the deleted region) become markers.
    fn emit_old_deleted(&mut self, c: NodeId) -> DeltaNodeId {
        let id = self.alloc(
            self.t1.label(c),
            self.t1.value(c).clone(),
            Annotation::Deleted,
        );
        let children: Vec<DeltaNodeId> = self
            .t1
            .children(c)
            .to_vec()
            .into_iter()
            .map(|k| match self.m.partner1(k) {
                None => self.emit_old_deleted(k),
                Some(_) => {
                    let mk = self.alloc(
                        self.t1.label(k),
                        self.t1.value(k).clone(),
                        Annotation::Marker { moved: UNRESOLVED },
                    );
                    self.pending_marks.push((mk, k));
                    mk
                }
            })
            .collect();
        at_mut(&mut self.arena, id.index()).children = children;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierdiff_edit::edit_script;
    use hierdiff_matching::{fast_match, MatchParams};
    use hierdiff_tree::isomorphic;

    fn doc(s: &str) -> Tree<String> {
        Tree::parse_sexpr(s).unwrap()
    }

    /// End-to-end helper: match, script, delta; then verify both
    /// projections.
    fn delta_for(t1: &Tree<String>, t2: &Tree<String>) -> DeltaTree<String> {
        let matched = fast_match(t1, t2, MatchParams::default()).unwrap();
        let res = edit_script(t1, t2, &matched.matching).unwrap();
        let delta = build_delta_tree(t1, t2, &matched.matching, &res);
        let new = delta.project_new();
        let old = delta.project_old();
        if res.wrapped {
            // Projections carry the dummy root; compare against wrapped
            // inputs.
            let l = Label::intern(DUMMY_ROOT_LABEL);
            let mut t1w = t1.clone();
            t1w.wrap_root(l, String::new());
            let mut t2w = t2.clone();
            t2w.wrap_root(l, String::new());
            assert!(isomorphic(&new, &t2w), "project_new mismatch:\n{new:?}");
            assert!(isomorphic(&old, &t1w), "project_old mismatch:\n{old:?}");
        } else {
            assert!(isomorphic(&new, t2), "project_new mismatch:\n{new:?}");
            assert!(isomorphic(&old, t1), "project_old mismatch:\n{old:?}");
        }
        delta
    }

    #[test]
    fn identical_trees_all_idn() {
        let t = doc(r#"(D (P (S "a") (S "b")) (P (S "c")))"#);
        let delta = delta_for(&t, &t.clone());
        let c = delta.annotation_counts();
        assert_eq!(c.identical, t.len());
        assert_eq!(c.changes(), 0);
    }

    #[test]
    fn update_keeps_old_value() {
        let t1 = doc(r#"(D (S "old text"))"#);
        let t2 = doc(r#"(D (S "old text"))"#);
        // Force an update by exact-value matching failing: use a matching by
        // hand instead of fast_match.
        let mut m = Matching::new();
        m.insert(t1.root(), t2.root()).unwrap();
        m.insert(t1.children(t1.root())[0], t2.children(t2.root())[0])
            .unwrap();
        let t2 = doc(r#"(D (S "new text"))"#);
        let mut m2 = Matching::new();
        m2.insert(t1.root(), t2.root()).unwrap();
        m2.insert(t1.children(t1.root())[0], t2.children(t2.root())[0])
            .unwrap();
        let res = edit_script(&t1, &t2, &m2).unwrap();
        let delta = build_delta_tree(&t1, &t2, &m2, &res);
        let c = delta.annotation_counts();
        assert_eq!(c.updated, 1);
        let leaf = delta.children(delta.root())[0];
        match delta.annotation(leaf) {
            Annotation::Updated { old } => assert_eq!(old, "old text"),
            a => panic!("expected UPD, got {}", a.tag()),
        }
        assert_eq!(delta.value(leaf), "new text");
        assert!(isomorphic(&delta.project_old(), &t1));
        assert!(isomorphic(&delta.project_new(), &t2));
    }

    #[test]
    fn insert_annotated() {
        let t1 = doc(r#"(D (S "a") (S "c") (S "d"))"#);
        let t2 = doc(r#"(D (S "a") (S "b") (S "c") (S "d"))"#);
        let delta = delta_for(&t1, &t2);
        let c = delta.annotation_counts();
        assert_eq!(c.inserted, 1);
        assert_eq!(c.identical, 4);
        let ins = delta.children(delta.root())[1];
        assert_eq!(delta.annotation(ins).tag(), "INS");
        assert_eq!(delta.value(ins), "b");
    }

    #[test]
    fn delete_keeps_tombstone_at_old_position() {
        let t1 = doc(r#"(D (S "a") (S "gone") (S "b"))"#);
        let t2 = doc(r#"(D (S "a") (S "b"))"#);
        let delta = delta_for(&t1, &t2);
        let c = delta.annotation_counts();
        assert_eq!(c.deleted, 1);
        // The tombstone sits between "a" and "b".
        let kids = delta.children(delta.root());
        assert_eq!(kids.len(), 3);
        assert_eq!(delta.annotation(kids[1]).tag(), "DEL");
        assert_eq!(delta.value(kids[1]), "gone");
    }

    #[test]
    fn deleted_subtree_kept_whole() {
        let t1 = doc(r#"(D (P (S "x") (S "y")) (S "k1") (S "k2") (S "k3") (S "k4"))"#);
        let t2 = doc(r#"(D (S "k1") (S "k2") (S "k3") (S "k4"))"#);
        let delta = delta_for(&t1, &t2);
        let c = delta.annotation_counts();
        assert_eq!(c.deleted, 3, "P and both sentences tombstoned");
        let del_p = delta.children(delta.root())[0];
        assert_eq!(delta.annotation(del_p).tag(), "DEL");
        assert_eq!(delta.children(del_p).len(), 2);
    }

    #[test]
    fn move_produces_mov_and_mrk_pair() {
        let t1 = doc(r#"(D (P (S "m") (S "a1") (S "a2")) (P (S "b1") (S "b2")))"#);
        let t2 = doc(r#"(D (P (S "a1") (S "a2")) (P (S "b1") (S "b2") (S "m")))"#);
        let delta = delta_for(&t1, &t2);
        let c = delta.annotation_counts();
        assert_eq!(c.moved, 1);
        assert_eq!(c.markers, 1);
        // Cross-references resolve both ways.
        let (mov, mrk) = {
            let mut mov = None;
            let mut mrk = None;
            for id in delta.preorder() {
                match delta.annotation(id) {
                    Annotation::Moved { mark, .. } => mov = Some((id, *mark)),
                    Annotation::Marker { moved } => mrk = Some((id, *moved)),
                    _ => {}
                }
            }
            (mov.unwrap(), mrk.unwrap())
        };
        assert_eq!(mov.1, mrk.0);
        assert_eq!(mrk.1, mov.0);
        // Marker carries the old value at the old position (first paragraph).
        assert_eq!(delta.value(mrk.0), "m");
    }

    #[test]
    fn move_with_update_keeps_both() {
        let t1 = doc(r#"(D (P (S "draft words here")) (P))"#);
        let t2 = doc(r#"(D (P) (P (S "final words here")))"#);
        // Hand matching: sentence corresponds across paragraphs.
        let mut m = Matching::new();
        m.insert(t1.root(), t2.root()).unwrap();
        let p1 = t1.children(t1.root())[0];
        let p2 = t1.children(t1.root())[1];
        let q1 = t2.children(t2.root())[0];
        let q2 = t2.children(t2.root())[1];
        m.insert(p1, q1).unwrap();
        m.insert(p2, q2).unwrap();
        m.insert(t1.children(p1)[0], t2.children(q2)[0]).unwrap();
        let res = edit_script(&t1, &t2, &m).unwrap();
        let delta = build_delta_tree(&t1, &t2, &m, &res);
        let c = delta.annotation_counts();
        assert_eq!(c.moved, 1);
        assert_eq!(c.markers, 1);
        assert_eq!(c.updated, 0, "update folded into the move annotation");
        let mov = delta
            .preorder()
            .find(|&id| matches!(delta.annotation(id), Annotation::Moved { .. }))
            .unwrap();
        match delta.annotation(mov) {
            Annotation::Moved { old: Some(old), .. } => assert_eq!(old, "draft words here"),
            a => panic!("expected MOV with old value, got {:?}", a.tag()),
        }
        assert!(isomorphic(&delta.project_old(), &t1));
        assert!(isomorphic(&delta.project_new(), &t2));
    }

    #[test]
    fn moved_out_of_deleted_subtree() {
        // The paragraph is deleted but one sentence survives by moving out.
        let t1 = doc(r#"(D (P (S "survivor") (S "casualty")) (P (S "o1") (S "o2")))"#);
        let t2 = doc(r#"(D (P (S "o1") (S "o2") (S "survivor")))"#);
        let delta = delta_for(&t1, &t2);
        let c = delta.annotation_counts();
        assert_eq!(c.moved, 1);
        assert_eq!(c.markers, 1);
        assert!(c.deleted >= 2, "paragraph and casualty tombstoned");
        // The marker lives inside the deleted paragraph copy.
        let del_p = delta
            .preorder()
            .find(|&id| {
                matches!(delta.annotation(id), Annotation::Deleted)
                    && delta.label(id) == Label::intern("P")
            })
            .unwrap();
        let marker_inside = delta
            .children(del_p)
            .iter()
            .any(|&k| matches!(delta.annotation(k), Annotation::Marker { .. }));
        assert!(marker_inside);
    }

    #[test]
    fn example_3_1_delta_tree_shape() {
        // Figure 12: the delta tree for Example 3.1's script
        // INS((11,Sec,foo),1,4), MOV(5,11,1), DEL(2), UPD(9,baz).
        let t1 = doc(r#"(Doc (P) (Sec (P (S "a") (S "b"))) (S "bar"))"#);
        let t2_src = {
            // Apply the script mentally: insert Sec(foo) as 4th child, move
            // the P("a","b") under it, delete the empty P, update bar→baz.
            r#"(Doc (Sec) (S "baz") (Sec "foo"))"#
        };
        // t2 needs Sec "foo" to contain the moved P — the sexpr grammar
        // cannot put a value on an internal node, so build it directly.
        let mut t2 = doc(t2_src);
        let sec_foo = t2.children(t2.root())[2];
        let p = t2.push_child(sec_foo, Label::intern("P"), String::new());
        t2.push_child(p, Label::intern("S"), "a".to_string());
        t2.push_child(p, Label::intern("S"), "b".to_string());

        // Hand matching mirroring the example.
        let mut m = Matching::new();
        m.insert(t1.root(), t2.root()).unwrap();
        let t1_kids: Vec<_> = t1.children(t1.root()).to_vec();
        let t2_kids: Vec<_> = t2.children(t2.root()).to_vec();
        // Sec(empty)↔Sec(empty), bar↔baz; P(empty) of t1 deleted.
        m.insert(t1_kids[1], t2_kids[0]).unwrap();
        m.insert(t1_kids[2], t2_kids[1]).unwrap();
        // P("a","b") moves under the inserted Sec.
        let p1 = t1.children(t1_kids[1])[0];
        m.insert(p1, p).unwrap();
        for (a, b) in t1.children(p1).iter().zip(t2.children(p)) {
            m.insert(*a, *b).unwrap();
        }
        let res = edit_script(&t1, &t2, &m).unwrap();
        let counts = res.script.op_counts();
        assert_eq!(counts.inserts, 1, "script: {}", res.script);
        assert_eq!(counts.moves, 1);
        assert_eq!(counts.deletes, 1);
        assert_eq!(counts.updates, 1);

        let delta = build_delta_tree(&t1, &t2, &m, &res);
        let c = delta.annotation_counts();
        assert_eq!(c.inserted, 1);
        assert_eq!(c.moved, 1);
        assert_eq!(c.markers, 1);
        assert_eq!(c.deleted, 1);
        assert_eq!(c.updated, 1);
        assert!(isomorphic(&delta.project_new(), &t2));
        assert!(isomorphic(&delta.project_old(), &t1));
    }

    #[test]
    fn unmatched_roots_wrapped_delta() {
        let t1 = doc(r#"(A (S "x"))"#);
        let t2 = doc(r#"(B (S "y"))"#);
        let delta = delta_for(&t1, &t2);
        assert_eq!(delta.label(delta.root()), Label::intern(DUMMY_ROOT_LABEL));
        let c = delta.annotation_counts();
        assert_eq!(c.inserted, 2);
        assert_eq!(c.deleted, 2);
    }

    #[test]
    fn serde_roundtrip() {
        let t1 = doc(r#"(D (S "a") (S "b"))"#);
        let t2 = doc(r#"(D (S "b") (S "a"))"#);
        let delta = delta_for(&t1, &t2);
        let json = serde_json::to_string(&delta).unwrap();
        let back: DeltaTree<String> = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), delta.len());
        assert!(isomorphic(&back.project_new(), &t2));
    }
}
