//! Plain-text rendering of delta trees — a domain-neutral sibling of
//! LaDiff's LaTeX markup (which lives in `hierdiff-doc`), handy in
//! terminals, logs, and the examples.

use std::collections::HashMap;
use std::fmt::Write as _;

use hierdiff_tree::NodeValue;

use crate::{Annotation, DeltaNodeId, DeltaTree};

/// Renders `delta` as an indented text diagram. Each changed node is
/// prefixed with a change sigil, and move pairs are cross-referenced with
/// `#k` labels:
///
/// ```text
///   D
///     ~ S "new text" (was "old text")
///     + S "inserted"
///     - S "deleted"
///     → S "moved here" (from #1)
///     ⌫ S "moved away" (#1)
/// ```
pub fn render_text<V: NodeValue>(delta: &DeltaTree<V>) -> String {
    // Assign stable small numbers to move pairs (by marker visit order).
    let mut mark_no: HashMap<DeltaNodeId, usize> = HashMap::new();
    for id in delta.preorder() {
        if let Annotation::Marker { .. } = delta.annotation(id) {
            let n = mark_no.len() + 1;
            mark_no.insert(id, n);
        }
    }
    let mut out = String::new();
    render(delta, delta.root(), 0, &mark_no, &mut out);
    out
}

fn render<V: NodeValue>(
    delta: &DeltaTree<V>,
    id: DeltaNodeId,
    depth: usize,
    mark_no: &HashMap<DeltaNodeId, usize>,
    out: &mut String,
) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    let label = delta.label(id);
    match delta.annotation(id) {
        Annotation::Identical => {
            let _ = write!(out, "{label}");
        }
        Annotation::Updated { old } => {
            let _ = write!(out, "~ {label}");
            if !delta.value(id).is_null() {
                let _ = write!(out, " {:?} (was {:?})", delta.value(id), old);
            }
        }
        Annotation::Inserted => {
            let _ = write!(out, "+ {label}");
        }
        Annotation::Deleted => {
            let _ = write!(out, "- {label}");
        }
        Annotation::Moved { mark, old } => {
            let n = mark_no.get(mark).copied().unwrap_or(0);
            let _ = write!(out, "\u{2192} {label}");
            if let Some(old) = old {
                if !delta.value(id).is_null() {
                    let _ = write!(out, " {:?} (was {:?})", delta.value(id), old);
                }
            } else if !delta.value(id).is_null() {
                let _ = write!(out, " {:?}", delta.value(id));
            }
            let _ = write!(out, " (from #{n})");
            // Value printing handled above; skip the generic value print.
            out.push('\n');
            for &c in delta.children(id) {
                render(delta, c, depth + 1, mark_no, out);
            }
            return;
        }
        Annotation::Marker { .. } => {
            let n = mark_no.get(&id).copied().unwrap_or(0);
            let _ = write!(out, "\u{232B} {label}");
            if !delta.value(id).is_null() {
                let _ = write!(out, " {:?}", delta.value(id));
            }
            let _ = write!(out, " (#{n})");
            out.push('\n');
            return;
        }
    }
    // Generic value print for IDN/INS/DEL (UPD printed its own).
    if !matches!(delta.annotation(id), Annotation::Updated { .. }) && !delta.value(id).is_null() {
        let _ = write!(out, " {:?}", delta.value(id));
    }
    out.push('\n');
    for &c in delta.children(id) {
        render(delta, c, depth + 1, mark_no, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierdiff_edit::edit_script;
    use hierdiff_matching::{fast_match, MatchParams};
    use hierdiff_tree::Tree;

    fn delta(t1: &str, t2: &str) -> DeltaTree<String> {
        let t1 = Tree::parse_sexpr(t1).unwrap();
        let t2 = Tree::parse_sexpr(t2).unwrap();
        let m = fast_match(&t1, &t2, MatchParams::default()).unwrap();
        let res = edit_script(&t1, &t2, &m.matching).unwrap();
        crate::build_delta_tree(&t1, &t2, &m.matching, &res)
    }

    #[test]
    fn renders_all_sigils() {
        let d = delta(
            r#"(D (S "keep") (S "gone") (S "mover") (S "tail"))"#,
            r#"(D (S "keep") (S "fresh") (S "tail") (S "mover"))"#,
        );
        let text = render_text(&d);
        assert!(text.contains("+ S \"fresh\""), "{text}");
        assert!(text.contains("- S \"gone\""), "{text}");
        assert!(text.contains("\u{2192} S \"mover\" (from #1)"), "{text}");
        assert!(text.contains("\u{232B} S \"mover\" (#1)"), "{text}");
        assert!(text.contains("S \"keep\""), "{text}");
    }

    #[test]
    fn update_shows_old_and_new() {
        use hierdiff_edit::Matching;
        let t1 = Tree::parse_sexpr(r#"(D (S "before"))"#).unwrap();
        let t2 = Tree::parse_sexpr(r#"(D (S "after"))"#).unwrap();
        let mut m = Matching::new();
        m.insert(t1.root(), t2.root()).unwrap();
        m.insert(t1.children(t1.root())[0], t2.children(t2.root())[0])
            .unwrap();
        let res = edit_script(&t1, &t2, &m).unwrap();
        let d = crate::build_delta_tree(&t1, &t2, &m, &res);
        let text = render_text(&d);
        assert!(text.contains("~ S \"after\" (was \"before\")"), "{text}");
    }

    #[test]
    fn indentation_follows_depth() {
        let d = delta(r#"(D (P (S "a")))"#, r#"(D (P (S "a")))"#);
        let text = render_text(&d);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with('D'));
        assert!(lines[1].starts_with("  P"));
        assert!(lines[2].starts_with("    S"));
    }
}
