//! Behavioral tests for the serving layer: typed errors, admission
//! control, the degradation ladder, crash isolation, and cache
//! quarantine. The adversarial many-seed soak lives at the workspace
//! root (`tests/serve_soak.rs`); these are the deterministic single-shot
//! cases.

use std::time::Duration;

use hierdiff_guard::{CancelToken, ChaosObserver, Fault, RetryPolicy, ServeBoundary};
use hierdiff_serve::{DiffService, OverloadReason, Rung, ServeConfig, ServeError};
use hierdiff_workload::{generate_docset, DocSetProfile};

fn service_with_set(config: ServeConfig) -> DiffService {
    let service = DiffService::new(config);
    let set = generate_docset(&DocSetProfile::paper_sets()[0]);
    service.ingest("paper", set.versions);
    service
}

#[test]
fn serves_chain_and_skip_pairs() {
    let service = service_with_set(ServeConfig::default());
    let adj = service.diff("paper", 0, 1).unwrap();
    assert!(adj.script_len > 0);
    assert!(adj.cache_hit, "ingested indexes are intact");
    assert!(!adj.degraded && !adj.shed && adj.retried == 0);
    let skip = service.diff("paper", 0, 5).unwrap();
    assert!(skip.script_len >= adj.script_len / 8, "skips still answer");
    let report = service.report();
    assert_eq!(report.requests, 2);
    assert_eq!(report.ok, 2);
    assert_eq!(report.cache_hits, 4);
    assert!(report.diffs_per_sec() > 0.0);
}

#[test]
fn unknown_document_and_version_are_typed() {
    let service = service_with_set(ServeConfig::default());
    assert!(matches!(
        service.diff("nope", 0, 1),
        Err(ServeError::UnknownDocument(d)) if d == "nope"
    ));
    assert!(matches!(
        service.diff("paper", 0, 42),
        Err(ServeError::UnknownVersion {
            version: 42,
            versions: 6,
            ..
        })
    ));
    // Neither consumed a pool grant permanently.
    assert!(service.diff("paper", 0, 1).is_ok());
}

#[test]
fn pool_exhaustion_is_a_typed_rejection() {
    let service = service_with_set(ServeConfig::default().with_capacity_nodes(1));
    let err = service.diff("paper", 0, 1).map(|_| ()).unwrap_err();
    assert!(
        matches!(err, ServeError::Overloaded(OverloadReason::Pool(_))),
        "{err:?}"
    );
    assert_eq!(service.report().rejected, 1);
    assert_eq!(service.report().ok, 0);
}

#[test]
fn fastmatch_rung_reuses_cached_indexes() {
    let service = service_with_set(ServeConfig::default().with_ladder(vec![Rung::FastMatch]));
    let resp = service.diff("paper", 2, 3).unwrap();
    assert_eq!(resp.strategy, "fastmatch");
    assert!(!resp.degraded, "first rung is not a degradation");
}

#[test]
fn audited_responses_report_clean() {
    let service = service_with_set(ServeConfig::default().with_audit(true));
    let resp = service.diff("paper", 1, 4).unwrap();
    assert_eq!(resp.audit_clean, Some(true));
}

#[test]
fn deadline_pressure_walks_the_ladder_down() {
    // A Delay fault at Dequeue burns ~75% of the deadline before the
    // worker starts, so the ladder skips to a cheaper rung but still
    // answers within the deadline.
    let chaos = ChaosObserver::new().inject_serve(
        ServeBoundary::Dequeue,
        Fault::Delay(Duration::from_millis(900)),
    );
    let service = DiffService::with_chaos(
        ServeConfig::default().with_deadline(Duration::from_millis(1200)),
        chaos,
    );
    let set = generate_docset(&DocSetProfile::paper_sets()[0]);
    service.ingest("paper", set.versions);
    let resp = service.diff("paper", 0, 1).unwrap();
    assert_ne!(resp.strategy, "gumtree", "pressure skipped the top rung");
    assert!(resp.shed, "served under pressure is flagged");
    assert!(resp.degraded);
    assert_eq!(service.report().degraded, 1);
}

#[test]
fn expired_deadline_is_shed_as_deadline_exceeded() {
    let chaos = ChaosObserver::new().inject_serve(
        ServeBoundary::Dequeue,
        Fault::Delay(Duration::from_millis(120)),
    );
    let service = DiffService::with_chaos(
        ServeConfig::default().with_deadline(Duration::from_millis(40)),
        chaos,
    );
    let set = generate_docset(&DocSetProfile::paper_sets()[0]);
    service.ingest("paper", set.versions);
    let err = service.diff("paper", 0, 1).map(|_| ()).unwrap_err();
    assert_eq!(err, ServeError::DeadlineExceeded);
    assert_eq!(service.report().shed, 1);
}

#[test]
fn panicking_requests_quarantine_and_stay_typed() {
    // A permanent Panic fault at DiffStart makes every attempt crash:
    // the request must fail *typed*, consume the whole retry schedule,
    // and quarantine the touched entries — which rebuild cleanly.
    let chaos = ChaosObserver::new().inject_serve(ServeBoundary::DiffStart, Fault::Panic);
    let service = DiffService::with_chaos(
        ServeConfig::default().with_retry(RetryPolicy::retries(2)),
        chaos,
    );
    let set = generate_docset(&DocSetProfile::paper_sets()[0]);
    service.ingest("paper", set.versions);
    let err = service.diff("paper", 0, 1).map(|_| ()).unwrap_err();
    assert!(
        matches!(err, ServeError::Panicked { attempts: 3 }),
        "{err:?}"
    );
    let report = service.report();
    assert_eq!(report.retried, 2, "both retries consumed");
    assert!(report.quarantined >= 2, "both versions quarantined");
    let validation = service.validate_cache();
    assert!(validation.is_clean(), "{validation:?}");
    // The service survives: an un-attacked boundary path still works
    // (faults only fire at DiffStart, so lookups for other versions are
    // also affected... the panic is permanent; but the *service* must
    // keep answering typed errors rather than dying).
    let again = service.diff("paper", 2, 3).map(|_| ()).unwrap_err();
    assert!(matches!(again, ServeError::Panicked { .. }));
    let snapshot = service.chaos_snapshot().expect("chaos attached");
    assert!(snapshot.serve_seen().contains(&ServeBoundary::DiffStart));
}

#[test]
fn cancel_fault_surfaces_as_cancelled() {
    let victim = CancelToken::new();
    let chaos =
        ChaosObserver::new().inject_serve(ServeBoundary::DiffStart, Fault::Cancel(victim.clone()));
    let service = DiffService::with_chaos(ServeConfig::default(), chaos);
    let set = generate_docset(&DocSetProfile::paper_sets()[0]);
    service.ingest("paper", set.versions);
    let err = service.diff("paper", 0, 1).map(|_| ()).unwrap_err();
    assert_eq!(err, ServeError::Cancelled);
    assert!(victim.is_cancelled(), "embedded token fired too");
}

#[test]
fn shutdown_joins_workers_cleanly() {
    let service = service_with_set(ServeConfig::default().with_workers(4));
    for i in 0..4 {
        service.diff("paper", i, i + 1).unwrap();
    }
    drop(service); // must not hang or leak panicking threads
}
