//! # hierdiff-serve
//!
//! A fault-tolerant versioned diff service over the hierdiff pipeline.
//!
//! The paper's algorithms are one-shot: parse two trees, match, emit a
//! script. A serving layer amortizes that work across a *version chain*
//! (the paper's document sets, Section 8): parsed trees and their
//! subtree-fingerprint indexes stay resident, and each `diff(doc, vN,
//! vM)` request seeds the matcher from the cached indexes — the pruning
//! optimization of Section 4, hoisted out of the request path.
//!
//! Robustness model, in three layers:
//!
//! * **Admission control** — a lock-free service-level
//!   [`BudgetPool`](hierdiff_guard::BudgetPool) (memory estimate +
//!   concurrency) and a bounded queue shed excess load *before* any work
//!   happens, as typed [`ServeError::Overloaded`] rejections.
//! * **Crash isolation + retry** — every attempt runs under
//!   `catch_unwind` in a pool worker; a panic quarantines the cache
//!   entries it touched (rebuilt on next access) and consumes one
//!   attempt of the configured [`RetryPolicy`](hierdiff_guard::RetryPolicy)
//!   with deterministic jittered backoff.
//! * **Degradation ladder** — deadline pressure and repeated failures
//!   walk down [`ServeConfig::ladder`] (GumTree → FastMatch → Simple) so
//!   the service returns a cheaper, flagged answer before it returns
//!   none; every response carries `degraded` / `retried` / `shed` flags.
//!
//! The chaos soak (`tests/serve_soak.rs` at the workspace root) drives
//! thousands of seeded requests with faults injected at every
//! [`ServeBoundary`](hierdiff_guard::ServeBoundary) and asserts the
//! failure surface stays typed: no aborts, no poisoned locks, and a
//! post-soak [`CacheValidation`] sweep that re-derives every index.
//!
//! ```
//! use hierdiff_serve::{DiffService, ServeConfig};
//! use hierdiff_workload::{generate_docset, DocSetProfile};
//!
//! let service = DiffService::new(ServeConfig::default());
//! let set = generate_docset(&DocSetProfile::paper_sets()[0]);
//! service.ingest("paper", set.versions);
//!
//! let response = service.diff("paper", 0, 1).unwrap();
//! assert!(response.script_len > 0, "consecutive versions differ");
//! assert_eq!(response.retried, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;
mod error;
mod report;
mod service;

pub use cache::CacheValidation;
pub use config::{Rung, ServeConfig};
pub use error::{OverloadReason, ServeError};
pub use report::ServeReport;
pub use service::{DiffService, ServeResponse};
