//! Service configuration: worker pool shape, admission ceilings, retry
//! schedule, deadlines, and the degradation ladder.

use std::time::Duration;

use hierdiff_guard::{Budgets, RetryPolicy, NODE_MEM_ESTIMATE};

/// One rung of the service-level degradation ladder, cheapest last.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rung {
    /// GumTree matching (quality-first; has its own bounded-recovery
    /// degradation inside the pipeline).
    GumTree,
    /// FastMatch seeded from the cached fingerprint indexes — the chain
    /// reuse path, and the paper's recommended algorithm.
    FastMatch,
    /// Algorithm *Match* (Figure 10) — the last resort before rejection.
    Simple,
}

impl Rung {
    /// Stable lowercase name, mirrored in
    /// [`ServeResponse::strategy`](crate::ServeResponse::strategy).
    pub fn name(self) -> &'static str {
        match self {
            Rung::GumTree => "gumtree",
            Rung::FastMatch => "fastmatch",
            Rung::Simple => "simple",
        }
    }
}

/// Configuration for [`DiffService`](crate::DiffService). Start from
/// [`ServeConfig::default`] and override with the `with_*` builders.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Pool worker threads (clamped to ≥ 1).
    pub workers: usize,
    /// Bounded request-queue depth; a full queue sheds with
    /// [`OverloadReason::QueueFull`](crate::OverloadReason::QueueFull).
    pub queue_depth: usize,
    /// Service-level memory-estimate capacity for the
    /// [`BudgetPool`](hierdiff_guard::BudgetPool), in bytes.
    pub capacity_bytes: usize,
    /// Maximum requests holding pool grants at once.
    pub max_concurrent: usize,
    /// Per-request retry schedule for panicked attempts.
    pub retry: RetryPolicy,
    /// Default per-request deadline (None = wait forever). Deadline
    /// pressure drives the ladder down before the request is rejected.
    pub deadline: Option<Duration>,
    /// Per-request pipeline resource ceilings (each attempt gets its own
    /// guard over these; the wall-time ceiling is tightened to the
    /// remaining deadline).
    pub budgets: Budgets,
    /// The degradation ladder, tried in order; later attempts and
    /// deadline pressure move down it. Must not be empty (an empty
    /// ladder is treated as `[FastMatch]`).
    pub ladder: Vec<Rung>,
    /// Audit every response at stage boundaries (slower; the soak test
    /// turns this on to prove degraded responses stay sound).
    pub audit: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 2,
            queue_depth: 64,
            // Generous default: ~256 MiB of node estimates.
            capacity_bytes: 256 << 20,
            max_concurrent: 8,
            retry: RetryPolicy::default(),
            deadline: None,
            budgets: Budgets::unlimited(),
            ladder: vec![Rung::GumTree, Rung::FastMatch, Rung::Simple],
            audit: false,
        }
    }
}

impl ServeConfig {
    /// Overrides the worker-thread count.
    pub fn with_workers(mut self, workers: usize) -> ServeConfig {
        self.workers = workers.max(1);
        self
    }

    /// Overrides the bounded queue depth.
    pub fn with_queue_depth(mut self, depth: usize) -> ServeConfig {
        self.queue_depth = depth.max(1);
        self
    }

    /// Overrides the admission pool capacity, expressed in *nodes* (the
    /// pool charges [`NODE_MEM_ESTIMATE`] bytes per node).
    pub fn with_capacity_nodes(mut self, nodes: usize) -> ServeConfig {
        self.capacity_bytes = nodes.saturating_mul(NODE_MEM_ESTIMATE);
        self
    }

    /// Overrides the admission pool capacity in bytes.
    pub fn with_capacity_bytes(mut self, bytes: usize) -> ServeConfig {
        self.capacity_bytes = bytes;
        self
    }

    /// Overrides the concurrent-grant ceiling.
    pub fn with_max_concurrent(mut self, n: usize) -> ServeConfig {
        self.max_concurrent = n.max(1);
        self
    }

    /// Overrides the retry schedule.
    pub fn with_retry(mut self, retry: RetryPolicy) -> ServeConfig {
        self.retry = retry;
        self
    }

    /// Sets the default per-request deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> ServeConfig {
        self.deadline = Some(deadline);
        self
    }

    /// Overrides the per-request pipeline budgets.
    pub fn with_budgets(mut self, budgets: Budgets) -> ServeConfig {
        self.budgets = budgets;
        self
    }

    /// Overrides the degradation ladder.
    pub fn with_ladder(mut self, ladder: Vec<Rung>) -> ServeConfig {
        self.ladder = ladder;
        self
    }

    /// Enables stage-boundary auditing of every response.
    pub fn with_audit(mut self, audit: bool) -> ServeConfig {
        self.audit = audit;
        self
    }

    /// The ladder rung for `step` (attempt index + deadline pressure),
    /// clamped to the last rung.
    pub(crate) fn rung(&self, step: usize) -> Rung {
        let last = self.ladder.len().saturating_sub(1);
        self.ladder
            .get(step.min(last))
            .copied()
            .unwrap_or(Rung::FastMatch)
    }

    /// Number of rungs (≥ 1 even for an empty ladder).
    pub(crate) fn rungs(&self) -> usize {
        self.ladder.len().max(1)
    }
}
