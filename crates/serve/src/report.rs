//! Service-level observability: the [`ServeReport`] aggregate, wired
//! through `hierdiff-obs` (the [`DurationHistogram`] latency sketch and
//! the `serve_*` [`Counter`]s).

use serde::{Deserialize, Serialize};

use hierdiff_obs::{Counter, DurationHistogram, PipelineObserver};

/// Aggregate service statistics since construction (or the last
/// [`DiffService::report`](crate::DiffService::report) snapshot — the
/// report is cumulative, not windowed).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Requests that entered admission.
    pub requests: u64,
    /// Requests answered successfully (including degraded ones).
    pub ok: u64,
    /// Requests shed by admission control (queue full or pool exhausted).
    pub rejected: u64,
    /// Retry attempts consumed across all requests.
    pub retried: u64,
    /// Successful responses flagged degraded (ladder rung > first, or an
    /// in-pipeline degraded tier engaged).
    pub degraded: u64,
    /// Requests dropped for deadline reasons: timed out in queue,
    /// abandoned mid-compute, or rejected at the ladder's bottom.
    pub shed: u64,
    /// Version-entry lookups served from an intact cached index.
    pub cache_hits: u64,
    /// Lookups that had to rebuild a quarantined index first.
    pub cache_misses: u64,
    /// Cache entries quarantined by panicking requests.
    pub quarantined: u64,
    /// End-to-end request latency sketch (successful responses only).
    pub latency: DurationHistogram,
    /// Wall time covered by this report, nanoseconds.
    pub elapsed_nanos: u64,
}

impl ServeReport {
    /// Sustained successful-diff throughput over the report window.
    pub fn diffs_per_sec(&self) -> f64 {
        if self.elapsed_nanos == 0 {
            return 0.0;
        }
        self.ok as f64 * 1e9 / self.elapsed_nanos as f64
    }

    /// Approximate median request latency, nanoseconds.
    pub fn p50_nanos(&self) -> u64 {
        self.latency.approx_quantile(0.50)
    }

    /// Approximate 99th-percentile request latency, nanoseconds.
    pub fn p99_nanos(&self) -> u64 {
        self.latency.approx_quantile(0.99)
    }

    /// Flushes the aggregate into an observer's `serve_*` counters, so a
    /// [`Recorder`](hierdiff_obs::Recorder) profile (and everything
    /// downstream of one) carries service-level totals alongside the
    /// pipeline's.
    pub fn flush_counters(&self, obs: &mut dyn PipelineObserver) {
        obs.add(Counter::ServeRequests, self.requests);
        obs.add(Counter::ServeRejected, self.rejected);
        obs.add(Counter::ServeRetries, self.retried);
        obs.add(Counter::ServeDegraded, self.degraded);
        obs.add(Counter::ServeShed, self.shed);
        obs.add(Counter::ServeCacheHits, self.cache_hits);
        obs.add(Counter::ServeCacheMisses, self.cache_misses);
        obs.add(Counter::ServeQuarantined, self.quarantined);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierdiff_obs::Recorder;

    #[test]
    fn throughput_and_quantiles() {
        let mut r = ServeReport {
            ok: 10,
            elapsed_nanos: 2_000_000_000,
            ..ServeReport::default()
        };
        assert!((r.diffs_per_sec() - 5.0).abs() < 1e-9);
        for _ in 0..99 {
            r.latency.record(1_000);
        }
        r.latency.record(1_000_000);
        assert!(r.p50_nanos() <= 2_048);
        assert!(r.p99_nanos() <= 2_048, "p99 is the 100th of 101 below 1ms");
        r.latency.record(1_000_000);
        assert!(r.p99_nanos() > 2_048 || r.latency.count() < 100);
    }

    #[test]
    fn counters_flush_into_profiles() {
        let report = ServeReport {
            requests: 7,
            rejected: 2,
            cache_hits: 5,
            quarantined: 1,
            ..ServeReport::default()
        };
        let mut rec = Recorder::new();
        report.flush_counters(&mut rec);
        let profile = rec.profile();
        assert_eq!(profile.counter("serve_requests"), 7);
        assert_eq!(profile.counter("serve_rejected"), 2);
        assert_eq!(profile.counter("serve_cache_hits"), 5);
        assert_eq!(profile.counter("serve_quarantined"), 1);
        assert_eq!(profile.counter("serve_shed"), 0, "zeros present too");
    }

    #[test]
    fn report_roundtrips_through_json() {
        let mut report = ServeReport {
            requests: 3,
            ok: 2,
            ..ServeReport::default()
        };
        report.latency.record(500);
        let json = serde_json::to_string(&report).unwrap();
        let back: ServeReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }
}
