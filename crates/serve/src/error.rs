//! The typed failure surface of the service.
//!
//! Every way a request can fail maps to exactly one [`ServeError`]
//! variant — the chaos soak asserts that no fault, at any boundary,
//! escapes this type (no abort, no untyped panic reaching the caller,
//! no poisoned lock).

use std::fmt;

use hierdiff_core::DiffError;
use hierdiff_guard::PoolExhausted;

/// Why admission control turned a request away.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OverloadReason {
    /// The bounded request queue is full — workers are not keeping up.
    QueueFull,
    /// The service-level budget pool refused the reservation (concurrency
    /// or memory-estimate ceiling).
    Pool(PoolExhausted),
}

impl fmt::Display for OverloadReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OverloadReason::QueueFull => write!(f, "request queue full"),
            OverloadReason::Pool(e) => write!(f, "{e}"),
        }
    }
}

/// A typed request failure. See each variant for the retry contract.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// Admission control shed the request before any work was done.
    /// Always safe to retry later; the service did not touch the cache.
    Overloaded(OverloadReason),
    /// The named document was never ingested.
    UnknownDocument(String),
    /// The requested version index is outside the document's chain.
    UnknownVersion {
        /// The document whose chain was consulted.
        doc: String,
        /// The out-of-range version index.
        version: usize,
        /// The chain length at lookup time.
        versions: usize,
    },
    /// The request's deadline elapsed before a result was produced —
    /// either waiting in the queue or mid-computation after the
    /// degradation ladder ran out of cheaper rungs.
    DeadlineExceeded,
    /// The request was cancelled (caller abandonment, service shutdown,
    /// or an injected [`Fault::Cancel`](hierdiff_guard::Fault)).
    Cancelled,
    /// Every attempt the retry policy allowed panicked inside the crash
    /// isolation scope. The cache entries the request touched were
    /// quarantined and will be rebuilt on next access.
    Panicked {
        /// Attempts consumed (≥ 1).
        attempts: u32,
    },
    /// The pipeline returned a typed error that the ladder and retry
    /// policy could not absorb (e.g. a hard budget with no degraded tier).
    Diff(DiffError),
    /// The service is shutting down and no longer accepts work.
    ShuttingDown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded(why) => write!(f, "overloaded: {why}"),
            ServeError::UnknownDocument(doc) => write!(f, "unknown document {doc:?}"),
            ServeError::UnknownVersion {
                doc,
                version,
                versions,
            } => write!(
                f,
                "document {doc:?} has {versions} version(s); {version} is out of range"
            ),
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServeError::Cancelled => write!(f, "request cancelled"),
            ServeError::Panicked { attempts } => {
                write!(f, "all {attempts} attempt(s) panicked; cache quarantined")
            }
            ServeError::Diff(e) => write!(f, "diff failed: {e}"),
            ServeError::ShuttingDown => write!(f, "service shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<DiffError> for ServeError {
    fn from(e: DiffError) -> ServeError {
        match e {
            DiffError::Cancelled => ServeError::Cancelled,
            other => ServeError::Diff(other),
        }
    }
}
