//! The [`DiffService`]: a long-lived multi-worker diff server over
//! ingested version chains.
//!
//! Request lifecycle (each numbered point is a [`ServeBoundary`] the
//! chaos observer can attack):
//!
//! 1. **Admit** — the caller thread checks the request against the
//!    service-level [`BudgetPool`] (concurrency + memory estimate) and
//!    the bounded queue; failure is a typed
//!    [`ServeError::Overloaded`] with no work done.
//! 2. **Dequeue** — a pool worker picks the job up and drops it if its
//!    deadline already passed (shed).
//! 3. **CacheLookup** — trees and fingerprint indexes come from the
//!    [`DocCache`]; quarantined entries are rebuilt first.
//! 4. **DiffStart / DiffEnd** — the pipeline runs inside
//!    `catch_unwind`; a panic quarantines the touched cache entries and
//!    consumes one retry attempt.
//! 5. **Respond** — the result (always a `Result<_, ServeError>`)
//!    returns to the caller.
//!
//! The degradation ladder: each extra attempt and each band of deadline
//! pressure moves one rung down [`ServeConfig::ladder`] (GumTree →
//! FastMatch → Simple by default) before the request is rejected with
//! [`ServeError::DeadlineExceeded`]. The FastMatch rung is the chain
//! reuse path: it seeds the matcher from the cached per-version
//! fingerprint indexes instead of rebuilding them per request.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hierdiff_core::{Audit, DiffError, Differ, MatchStrategy};
use hierdiff_doc::DocValue;
use hierdiff_edit::OpCounts;
use hierdiff_guard::{
    BudgetPool, Budgets, CancelToken, ChaosObserver, Fault, PoolGrant, ServeBoundary,
};
use hierdiff_matching::prune_identical_indexed;
use hierdiff_tree::Tree;

use crate::cache::{CacheValidation, DocCache, VersionEntry};
use crate::config::{Rung, ServeConfig};
use crate::error::{OverloadReason, ServeError};
use crate::report::ServeReport;

/// A successful diff response, with the service-level flags the
/// degradation ladder and retry loop set along the way.
#[derive(Clone, Debug)]
pub struct ServeResponse {
    /// Edit-operation counts of the produced script.
    pub ops: OpCounts,
    /// Total edit operations.
    pub script_len: usize,
    /// The strategy rung that produced the answer
    /// ([`Rung::name`](crate::Rung::name)).
    pub strategy: &'static str,
    /// True when the answer came from a lower ladder rung than the
    /// first, or an in-pipeline degraded tier engaged.
    pub degraded: bool,
    /// Retry attempts consumed before this answer (0 = first try).
    pub retried: u32,
    /// True when deadline pressure forced a rung skip (the request was
    /// served, but at reduced quality to avoid shedding it).
    pub shed: bool,
    /// True when both version entries came from intact cached indexes
    /// (false when a quarantined entry had to be rebuilt).
    pub cache_hit: bool,
    /// Stage-boundary audit verdict, when [`ServeConfig::audit`] is on.
    pub audit_clean: Option<bool>,
    /// End-to-end latency observed by the caller thread.
    pub latency: Duration,
}

struct Job {
    doc: String,
    old: usize,
    new: usize,
    deadline: Option<(Instant, Duration)>,
    seq: u64,
    reply: mpsc::Sender<Result<ServeResponse, ServeError>>,
    #[allow(dead_code)] // held for its Drop: releases the pool reservation
    grant: PoolGrant,
}

struct Shared {
    config: ServeConfig,
    cache: DocCache,
    pool: BudgetPool,
    stats: Mutex<ServeReport>,
    chaos: Option<Mutex<ChaosObserver>>,
}

impl Shared {
    fn stats<R>(&self, f: impl FnOnce(&mut ServeReport) -> R) -> R {
        f(&mut self.stats.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Fires the chaos faults planned at `boundary`. The observer lock is
    /// released before any fault executes, so a panic fault can never
    /// poison it. A [`Fault::Cancel`] additionally fires the current
    /// request's own token, modeling caller abandonment of *this*
    /// request (the fault's embedded token is fired too, so tests can
    /// watch it).
    fn chaos_point(&self, boundary: ServeBoundary, request: Option<&CancelToken>) {
        let Some(chaos) = &self.chaos else { return };
        let faults = chaos
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .observe_serve(boundary);
        for fault in faults {
            if let (Fault::Cancel(_), Some(token)) = (&fault, request) {
                token.cancel();
            }
            ChaosObserver::execute_serve(boundary, &fault);
        }
    }

    fn quarantine_pair(&self, doc: &str, old: usize, new: usize) {
        let newly = self.cache.quarantine(doc, &[old, new]);
        self.stats(|s| s.quarantined += newly as u64);
    }
}

/// The versioned diff service. Construct with [`DiffService::new`] (or
/// [`with_chaos`](DiffService::with_chaos) under test), ingest version
/// chains, then call [`diff`](DiffService::diff) from any number of
/// threads. Dropping the service drains and joins its workers.
pub struct DiffService {
    shared: Arc<Shared>,
    tx: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
    seq: AtomicU64,
    started: Instant,
}

impl DiffService {
    /// Starts the worker pool per `config`.
    pub fn new(config: ServeConfig) -> DiffService {
        DiffService::build(config, None)
    }

    /// Starts the pool with a chaos observer attached: every
    /// [`ServeBoundary`] the service crosses is reported to (and may be
    /// attacked by) `chaos`.
    pub fn with_chaos(config: ServeConfig, chaos: ChaosObserver) -> DiffService {
        DiffService::build(config, Some(chaos))
    }

    fn build(config: ServeConfig, chaos: Option<ChaosObserver>) -> DiffService {
        let workers = config.workers.max(1);
        let pool = BudgetPool::new(config.capacity_bytes, config.max_concurrent);
        let (tx, rx) = mpsc::sync_channel::<Job>(config.queue_depth.max(1));
        let shared = Arc::new(Shared {
            config,
            cache: DocCache::new(),
            pool,
            stats: Mutex::new(ServeReport::default()),
            chaos: chaos.map(Mutex::new),
        });
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || worker_loop(&shared, &rx))
            })
            .collect();
        DiffService {
            shared,
            tx: Some(tx),
            workers: handles,
            seq: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// Ingests (or replaces) a document's version chain, building a
    /// fingerprint index per version. Returns the total node count.
    pub fn ingest(&self, doc: &str, versions: Vec<Tree<DocValue>>) -> usize {
        self.shared.cache.insert_chain(doc, versions)
    }

    /// Chain length of an ingested document.
    pub fn chain_len(&self, doc: &str) -> Option<usize> {
        self.shared.cache.chain_len(doc)
    }

    /// Diffs `versions[old]` against `versions[new]` of `doc` under the
    /// configured default deadline. Safe to call from many threads.
    pub fn diff(&self, doc: &str, old: usize, new: usize) -> Result<ServeResponse, ServeError> {
        self.request(doc, old, new, self.shared.config.deadline)
    }

    /// [`diff`](DiffService::diff) with an explicit per-request deadline
    /// override (`None` = wait forever).
    pub fn request(
        &self,
        doc: &str,
        old: usize,
        new: usize,
        deadline: Option<Duration>,
    ) -> Result<ServeResponse, ServeError> {
        let start = Instant::now();
        // The whole caller-side path is crash-isolated: chaos panics at
        // the Admit/Respond boundaries surface as typed errors, never as
        // an unwinding caller.
        let outcome = catch_unwind(AssertUnwindSafe(|| self.submit(doc, old, new, deadline)));
        let result = outcome.unwrap_or(Err(ServeError::Panicked { attempts: 0 }));
        self.shared.stats(|s| match &result {
            Ok(resp) => {
                s.ok += 1;
                s.latency.record(start.elapsed().as_nanos() as u64);
                if resp.degraded {
                    s.degraded += 1;
                }
            }
            Err(ServeError::Overloaded(_)) => s.rejected += 1,
            Err(ServeError::DeadlineExceeded) => s.shed += 1,
            Err(_) => {}
        });
        result.map(|mut resp| {
            resp.latency = start.elapsed();
            resp
        })
    }

    fn submit(
        &self,
        doc: &str,
        old: usize,
        new: usize,
        deadline: Option<Duration>,
    ) -> Result<ServeResponse, ServeError> {
        let shared = &self.shared;
        shared.stats(|s| s.requests += 1);
        shared.chaos_point(ServeBoundary::Admit, None);
        let nodes = shared.cache.pair_nodes(doc, old, new)?;
        let grant = shared
            .pool
            .try_admit(nodes)
            .map_err(|e| ServeError::Overloaded(OverloadReason::Pool(e)))?;
        let tx = self.tx.as_ref().ok_or(ServeError::ShuttingDown)?;
        let (reply_tx, reply_rx) = mpsc::channel();
        let now = Instant::now();
        let job = Job {
            doc: doc.to_string(),
            old,
            new,
            deadline: deadline.map(|d| (now + d, d)),
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            reply: reply_tx,
            grant,
        };
        match tx.try_send(job) {
            Ok(()) => {}
            // The rejected job (and its pool grant) is dropped here.
            Err(TrySendError::Full(_)) => {
                return Err(ServeError::Overloaded(OverloadReason::QueueFull))
            }
            Err(TrySendError::Disconnected(_)) => return Err(ServeError::ShuttingDown),
        }
        let result = match deadline {
            None => reply_rx
                .recv()
                .unwrap_or(Err(ServeError::Panicked { attempts: 1 })),
            Some(d) => {
                let remaining = d.saturating_sub(now.elapsed());
                match reply_rx.recv_timeout(remaining) {
                    Ok(r) => r,
                    Err(RecvTimeoutError::Timeout) => Err(ServeError::DeadlineExceeded),
                    Err(RecvTimeoutError::Disconnected) => {
                        Err(ServeError::Panicked { attempts: 1 })
                    }
                }
            }
        };
        shared.chaos_point(ServeBoundary::Respond, None);
        result
    }

    /// A cumulative statistics snapshot since service start.
    pub fn report(&self) -> ServeReport {
        let mut report = self.shared.stats(|s| s.clone());
        report.elapsed_nanos = self.started.elapsed().as_nanos() as u64;
        report
    }

    /// Re-validates every cached entry against a fresh index rebuild
    /// (see [`CacheValidation`]).
    pub fn validate_cache(&self) -> CacheValidation {
        self.shared.cache.validate()
    }

    /// A snapshot of the attached chaos observer (None when the service
    /// was built without one) — the soak test reads boundary coverage
    /// from here.
    pub fn chaos_snapshot(&self) -> Option<ChaosObserver> {
        self.shared
            .chaos
            .as_ref()
            .map(|m| m.lock().unwrap_or_else(PoisonError::into_inner).clone())
    }
}

impl Drop for DiffService {
    fn drop(&mut self) {
        self.tx = None; // close the queue; workers drain and exit
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, rx: &Mutex<Receiver<Job>>) {
    loop {
        // Hold the receiver lock only for the dequeue itself.
        // analyze: allow(S054) the receiver lock IS the dequeue discipline: `recv` must run under it, and nothing else ever holds it
        let job = match rx.lock().unwrap_or_else(PoisonError::into_inner).recv() {
            Ok(job) => job,
            Err(_) => return, // queue closed: shutdown
        };
        // Backstop isolation: chaos panics fired at the Dequeue or
        // CacheLookup boundaries unwind to here, not out of the thread.
        let outcome = catch_unwind(AssertUnwindSafe(|| process(shared, &job)));
        let result = outcome.unwrap_or_else(|_| {
            shared.quarantine_pair(&job.doc, job.old, job.new);
            Err(ServeError::Panicked { attempts: 1 })
        });
        // A caller that gave up (deadline) dropped its receiver; that is
        // its prerogative, not an error here.
        let _ = job.reply.send(result);
        drop(job); // releases the pool grant
    }
}

/// Deadline pressure: how many ladder rungs to skip (based on the
/// remaining fraction of the deadline) and the remaining wall time.
/// `None` means the deadline already passed.
fn pressure(
    deadline: Option<(Instant, Duration)>,
    rungs: usize,
) -> Option<(usize, Option<Duration>)> {
    let Some((at, total)) = deadline else {
        return Some((0, None));
    };
    let remaining = at.checked_duration_since(Instant::now())?;
    let frac = remaining.as_secs_f64() / total.as_secs_f64().max(1e-9);
    let skip = if frac > 0.5 {
        0
    } else if frac > 0.2 {
        1
    } else {
        2
    };
    Some((skip.min(rungs.saturating_sub(1)), Some(remaining)))
}

fn process(shared: &Shared, job: &Job) -> Result<ServeResponse, ServeError> {
    shared.chaos_point(ServeBoundary::Dequeue, None);
    if pressure(job.deadline, 1).is_none() {
        // Expired while queued: shed without touching the cache.
        return Err(ServeError::DeadlineExceeded);
    }
    shared.chaos_point(ServeBoundary::CacheLookup, None);
    let (mut entry_old, miss_old) = shared.cache.lookup(&job.doc, job.old)?;
    let (mut entry_new, miss_new) = shared.cache.lookup(&job.doc, job.new)?;
    let mut cache_hit = !(miss_old || miss_new);
    shared.stats(|s| {
        s.cache_hits += u64::from(!miss_old) + u64::from(!miss_new);
        s.cache_misses += u64::from(miss_old) + u64::from(miss_new);
    });
    let policy = shared.config.retry;
    let max_attempts = policy.max_attempts();
    let mut panics = 0u32;
    let mut last_error: Option<ServeError> = None;
    for attempt in 1..=max_attempts {
        if attempt > 1 {
            shared.stats(|s| s.retried += 1);
            std::thread::sleep(policy.backoff(attempt - 1, job.seq));
        }
        let Some((skip, remaining)) = pressure(job.deadline, shared.config.rungs()) else {
            return Err(last_error.unwrap_or(ServeError::DeadlineExceeded));
        };
        let step = (attempt - 1) as usize + skip;
        let rung = shared.config.rung(step);
        let token = CancelToken::new();
        let run = catch_unwind(AssertUnwindSafe(|| {
            run_attempt(shared, &entry_old, &entry_new, rung, remaining, &token)
        }));
        match run {
            Ok(Ok(mut resp)) => {
                resp.retried = attempt - 1;
                resp.shed = skip > 0;
                resp.degraded = resp.degraded || step > 0;
                resp.cache_hit = cache_hit;
                return Ok(resp);
            }
            Ok(Err(ServeError::Cancelled)) => return Err(ServeError::Cancelled),
            Ok(Err(e)) => last_error = Some(e),
            Err(_) => {
                // Crash isolation: quarantine what the attempt touched,
                // then re-fetch (rebuilding) for the next attempt.
                panics += 1;
                shared.quarantine_pair(&job.doc, job.old, job.new);
                let (o, _) = shared.cache.lookup(&job.doc, job.old)?;
                let (n, _) = shared.cache.lookup(&job.doc, job.new)?;
                entry_old = o;
                entry_new = n;
                cache_hit = false;
                shared.stats(|s| s.cache_misses += 2);
                last_error = None;
            }
        }
    }
    Err(match last_error {
        Some(e) => e,
        None => ServeError::Panicked {
            attempts: panics.max(1),
        },
    })
}

fn run_attempt(
    shared: &Shared,
    old: &VersionEntry,
    new: &VersionEntry,
    rung: Rung,
    remaining: Option<Duration>,
    token: &CancelToken,
) -> Result<ServeResponse, ServeError> {
    shared.chaos_point(ServeBoundary::DiffStart, Some(token));
    let mut budgets: Budgets = shared.config.budgets;
    if let Some(rem) = remaining {
        budgets = budgets.with_max_wall_time(rem);
    }
    let audit = if shared.config.audit {
        Audit::On
    } else {
        Audit::Off
    };
    let differ = Differ::new().budget(budgets).cancel(token).audit(audit);
    let differ = match rung {
        Rung::GumTree => differ.strategy(MatchStrategy::gumtree()),
        Rung::FastMatch => {
            // The chain-reuse path: seed the matcher from the cached
            // indexes instead of rebuilding either one.
            let (seed, _) = prune_identical_indexed(&old.tree, &old.index, &new.tree, &new.index)
                .map_err(|e| ServeError::Diff(DiffError::from(e)))?;
            differ.prune_seed(seed)
        }
        Rung::Simple => differ.strategy(MatchStrategy::Simple),
    };
    let result = differ
        .diff(&old.tree, &new.tree)
        .map_err(ServeError::from)?;
    shared.chaos_point(ServeBoundary::DiffEnd, Some(token));
    Ok(ServeResponse {
        ops: result.script.op_counts(),
        script_len: result.script.len(),
        strategy: rung.name(),
        degraded: result.degraded.any(),
        retried: 0,
        shed: false,
        cache_hit: false,
        audit_clean: result.audit.as_ref().map(|a| a.is_clean()),
        latency: Duration::ZERO,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierdiff_guard::RetryPolicy;
    use hierdiff_workload::{generate_docset, DocSetProfile};

    /// A panicking attempt must quarantine *exactly* the two cache
    /// entries it touched — not the rest of the chain, not other
    /// documents. The chaos soak only checks the aggregate count; this
    /// pins the per-entry effect through the private cache handle:
    /// `process` re-fetches quarantined entries right after the panic
    /// (rebuilding them for the next attempt), so a rebuilt entry holds a
    /// *fresh* index `Arc` while an untouched entry keeps its original.
    #[test]
    fn panic_quarantines_exactly_the_touched_entries() {
        let chaos = ChaosObserver::new().inject_serve(ServeBoundary::DiffStart, Fault::Panic);
        let service = DiffService::with_chaos(
            ServeConfig::default().with_retry(RetryPolicy::none()),
            chaos,
        );
        let set_a = generate_docset(&DocSetProfile::paper_sets()[0]);
        let set_b = generate_docset(&DocSetProfile::paper_sets()[1]);
        assert!(set_a.versions.len() >= 4, "profile grew 4+ versions");
        service.ingest("a", set_a.versions);
        service.ingest("b", set_b.versions);
        let index_of = |doc: &str, v: usize| {
            let (entry, miss) = service.shared.cache.lookup(doc, v).expect("cached");
            assert!(!miss, "{doc}/{v}: probe lookups never rebuild");
            entry.index
        };
        let before: Vec<_> = [("a", 0), ("a", 1), ("a", 2), ("a", 3), ("b", 0)]
            .map(|(d, v)| index_of(d, v))
            .into();

        let err = service.diff("a", 1, 2).map(|_| ()).unwrap_err();
        assert!(
            matches!(err, ServeError::Panicked { attempts: 1 }),
            "{err:?}"
        );
        assert_eq!(service.report().quarantined, 2, "exactly the pair");

        // Exactness: the attempt touched a/1 and a/2, so those two — and
        // only those two — were quarantined and rebuilt (fresh index).
        let rebuilt: Vec<bool> = [("a", 0), ("a", 1), ("a", 2), ("a", 3), ("b", 0)]
            .iter()
            .zip(&before)
            .map(|(&(d, v), old)| !Arc::ptr_eq(&index_of(d, v), old))
            .collect();
        assert_eq!(
            rebuilt,
            vec![false, true, true, false, false],
            "only a/1 and a/2 may be rebuilt by the panic path"
        );
        // And no quarantine flag lingers: the post-panic re-fetch already
        // cleared them, so every probe above reported a cache hit.
        assert!(service.validate_cache().is_clean());
    }
}
