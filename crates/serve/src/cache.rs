//! The version-chain cache: parsed trees plus their subtree-fingerprint
//! indexes, with quarantine-and-rebuild crash hygiene.
//!
//! Each ingested document is a chain of versions. For every version the
//! cache holds the parsed [`Tree`] and a prebuilt [`FingerprintIndex`],
//! so a `diff(doc, vN, vM)` request seeds the matcher from
//! [`prune_identical_indexed`](hierdiff_matching::prune_identical_indexed)
//! without rebuilding either index — the chain-reuse path the paper's
//! pruning optimization (Section 4) makes possible.
//!
//! When a request panics, the entries it touched are *quarantined*: the
//! index is assumed corrupt, and the next access rebuilds it from the
//! tree before use. [`DocCache::validate`] re-derives every index and
//! checks tree well-formedness, so a post-soak sweep can prove no
//! corruption survived.

use std::collections::HashMap;
use std::sync::{Arc, PoisonError, RwLock};

use hierdiff_doc::DocValue;
use hierdiff_tree::{FingerprintIndex, Tree};

use crate::error::ServeError;

/// One cached version: the parsed tree and its fingerprint index.
#[derive(Clone)]
pub(crate) struct VersionEntry {
    /// The parsed tree (shared with in-flight requests).
    pub tree: Arc<Tree<DocValue>>,
    /// Prebuilt subtree-fingerprint index over `tree`.
    pub index: Arc<FingerprintIndex>,
    /// Node count, for admission estimates without touching the tree.
    pub nodes: usize,
}

struct Chain {
    entries: Vec<VersionEntry>,
    quarantined: Vec<bool>,
}

/// Outcome of a [`DocCache::validate`] sweep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheValidation {
    /// Version entries checked.
    pub checked: usize,
    /// Entries whose cached index disagreed with a fresh rebuild, or
    /// whose tree failed well-formedness validation (0 = clean).
    pub corrupt: usize,
    /// Entries still flagged quarantined at sweep time (they validate
    /// against their tree like any other, but had not yet been rebuilt
    /// by an access).
    pub quarantined: usize,
}

impl CacheValidation {
    /// True when every entry checked out.
    pub fn is_clean(&self) -> bool {
        self.corrupt == 0
    }
}

/// Thread-safe document/version cache. Lookups clone `Arc`s out under a
/// read lock; no lock is held while diffing.
#[derive(Default)]
pub(crate) struct DocCache {
    chains: RwLock<HashMap<String, Chain>>,
}

impl DocCache {
    pub fn new() -> DocCache {
        DocCache::default()
    }

    /// Ingests (or replaces) a document's version chain, building one
    /// fingerprint index per version. Returns the total node count.
    pub fn insert_chain(&self, doc: &str, versions: Vec<Tree<DocValue>>) -> usize {
        let entries: Vec<VersionEntry> = versions
            .into_iter()
            .map(|tree| {
                let index = FingerprintIndex::build(&tree);
                let nodes = tree.len();
                VersionEntry {
                    tree: Arc::new(tree),
                    index: Arc::new(index),
                    nodes,
                }
            })
            .collect();
        let total: usize = entries.iter().map(|e| e.nodes).sum();
        let quarantined = vec![false; entries.len()];
        self.chains
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(
                doc.to_string(),
                Chain {
                    entries,
                    quarantined,
                },
            );
        total
    }

    /// Chain length of `doc`, if ingested.
    pub fn chain_len(&self, doc: &str) -> Option<usize> {
        self.chains
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(doc)
            .map(|c| c.entries.len())
    }

    /// Node counts for a version pair, for the admission estimate.
    /// Validates document and version indexes.
    pub fn pair_nodes(&self, doc: &str, old: usize, new: usize) -> Result<usize, ServeError> {
        let chains = self.chains.read().unwrap_or_else(PoisonError::into_inner);
        let chain = chains
            .get(doc)
            .ok_or_else(|| ServeError::UnknownDocument(doc.to_string()))?;
        let fetch = |v: usize| {
            chain
                .entries
                .get(v)
                .map(|e| e.nodes)
                .ok_or(ServeError::UnknownVersion {
                    doc: doc.to_string(),
                    version: v,
                    versions: chain.entries.len(),
                })
        };
        Ok(fetch(old)? + fetch(new)?)
    }

    /// Fetches a version entry for diffing. A quarantined entry is
    /// rebuilt from its tree first (fresh index, flag cleared); the
    /// returned bool reports whether a rebuild happened (a cache miss in
    /// the serve counters).
    pub fn lookup(&self, doc: &str, version: usize) -> Result<(VersionEntry, bool), ServeError> {
        {
            let chains = self.chains.read().unwrap_or_else(PoisonError::into_inner);
            let chain = chains
                .get(doc)
                .ok_or_else(|| ServeError::UnknownDocument(doc.to_string()))?;
            match (chain.entries.get(version), chain.quarantined.get(version)) {
                (Some(entry), Some(false)) => return Ok((entry.clone(), false)),
                (None, _) | (_, None) => {
                    return Err(ServeError::UnknownVersion {
                        doc: doc.to_string(),
                        version,
                        versions: chain.entries.len(),
                    })
                }
                (Some(_), Some(true)) => {} // fall through to rebuild
            }
        }
        let mut chains = self.chains.write().unwrap_or_else(PoisonError::into_inner);
        let chain = chains
            .get_mut(doc)
            .ok_or_else(|| ServeError::UnknownDocument(doc.to_string()))?;
        let (Some(entry), Some(flag)) = (
            chain.entries.get_mut(version),
            chain.quarantined.get_mut(version),
        ) else {
            return Err(ServeError::UnknownVersion {
                doc: doc.to_string(),
                version,
                versions: chain.entries.len(),
            });
        };
        if *flag {
            entry.index = Arc::new(FingerprintIndex::build(&entry.tree));
            *flag = false;
            Ok((entry.clone(), true))
        } else {
            // Another worker rebuilt it between our locks.
            Ok((entry.clone(), false))
        }
    }

    /// Quarantines the given versions of `doc` (out-of-range indexes are
    /// ignored: the panic may have been the lookup itself). Returns how
    /// many entries were newly quarantined.
    pub fn quarantine(&self, doc: &str, versions: &[usize]) -> usize {
        let mut chains = self.chains.write().unwrap_or_else(PoisonError::into_inner);
        let Some(chain) = chains.get_mut(doc) else {
            return 0;
        };
        let mut newly = 0;
        for &v in versions {
            if let Some(flag) = chain.quarantined.get_mut(v) {
                if !*flag {
                    *flag = true;
                    newly += 1;
                }
            }
        }
        newly
    }

    /// Re-validates every cached entry: the tree must pass structural
    /// validation and the cached index must equal a fresh rebuild
    /// (compared by dense hash vector). Read-only; does not clear
    /// quarantine flags.
    pub fn validate(&self) -> CacheValidation {
        let chains = self.chains.read().unwrap_or_else(PoisonError::into_inner);
        let mut out = CacheValidation::default();
        for chain in chains.values() {
            for (entry, &flag) in chain.entries.iter().zip(&chain.quarantined) {
                out.checked += 1;
                if flag {
                    out.quarantined += 1;
                }
                let fresh = FingerprintIndex::build(&entry.tree);
                // analyze: allow(S050) opaque-receiver fan: `tree.validate` is Tree::validate, not a DocCache::validate re-entry under `chains`
                let ok = entry.tree.validate().is_ok()
                    && fresh.dense_hashes() == entry.index.dense_hashes();
                if !ok {
                    out.corrupt += 1;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierdiff_workload::{generate_docset, DocSetProfile};

    fn cache_with_set() -> (DocCache, usize) {
        let set = generate_docset(&DocSetProfile::paper_sets()[0]);
        let n = set.versions.len();
        let cache = DocCache::new();
        cache.insert_chain("paper", set.versions);
        (cache, n)
    }

    #[test]
    fn lookup_unknowns_are_typed() {
        let (cache, n) = cache_with_set();
        assert!(matches!(
            cache.lookup("nope", 0),
            Err(ServeError::UnknownDocument(_))
        ));
        assert!(matches!(
            cache.lookup("paper", n),
            Err(ServeError::UnknownVersion { versions, .. }) if versions == n
        ));
        assert!(cache.lookup("paper", 0).is_ok());
    }

    #[test]
    fn quarantine_rebuilds_on_next_access() {
        let (cache, _) = cache_with_set();
        let (before, miss) = cache.lookup("paper", 1).unwrap();
        assert!(!miss);
        assert_eq!(cache.quarantine("paper", &[1, 99]), 1, "99 ignored");
        let (after, miss) = cache.lookup("paper", 1).unwrap();
        assert!(miss, "rebuild counts as a miss");
        assert_eq!(
            before.index.dense_hashes(),
            after.index.dense_hashes(),
            "rebuild from an intact tree reproduces the index"
        );
        let (_, miss) = cache.lookup("paper", 1).unwrap();
        assert!(!miss, "flag cleared after rebuild");
    }

    #[test]
    fn validation_sweep_is_clean_and_counts_quarantine() {
        let (cache, n) = cache_with_set();
        cache.quarantine("paper", &[0]);
        let v = cache.validate();
        assert_eq!(v.checked, n);
        assert_eq!(v.quarantined, 1);
        assert!(v.is_clean(), "{v:?}");
    }
}
