//! The paper's Appendix A sample run, reproduced in full: the old and new
//! documents below are the TeXbook excerpts of Figures 14 and 15, and the
//! assertions pin the changes Figure 16 displays.
//!
//! Figure 16's marked-up output shows:
//! * section 1 retitled "First things first" → "Introduction" — `(upd)` in
//!   the heading;
//! * the conclusion's opening sentence ("The TeX language described in this
//!   book...") moved to the top of the introduction *and* reworded —
//!   italics + "Moved from S1" footnote, `S1:[...]` label at the old spot;
//! * "Computer system manuals..." reworded in place — italics;
//! * a brand-new section 2 "The details" — `(ins)` heading — whose second
//!   paragraph is the old truth-telling paragraph *moved* from section 1
//!   ("Moved from P1" marginal note) with one sentence inserted ("This
//!   feature may seem strange...") and one deleted ("In general, the later
//!   chapters...");
//! * section 2 "Another way to look at it" retitled "Moving on", with the
//!   exercises sentence moved to the end and reworded (S2 label +
//!   footnote).

use hierdiff_doc::{ladiff, render_html, Engine, LaDiffOptions};
use hierdiff_matching::MatchParams;

const FIG14_OLD: &str = r#"\section{First things first}

Computer system manuals usually make dull reading, but take heart: This
one contains JOKES every once in a while, so you might actually enjoy
reading it. (However, most of the jokes can only be appreciated properly
if you understand a technical point that is being made -- so read
carefully.)

Another noteworthy characteristic of this manual is that it doesn't
always tell the truth. When certain concepts of TeX are introduced
informally, general rules will be stated; afterwards you will find that
the rules aren't strictly true. In general, the later chapters contain
more reliable information than the earlier ones do. The author feels
that this technique of deliberate lying will actually make it easier for
you to learn the ideas. Once you understand a simple but false rule, it
will not be hard to supplement that rule with its exceptions.

\section{Another way to look at it}

In order to help you internalize what you're reading, exercises are
sprinkled through this manual. It is generally intended that every
reader should try every exercise, except for questions that appear in
the "dangerous bend" areas. If you can't solve a problem, you can always
look up the answer. But please, try first to solve it by yourself; then
you'll learn more and you'll learn faster. Furthermore, if you think you
do know the solution, you should turn to Appendix A and check it out,
just to make sure.

\section{Conclusion}

The TeX language described in this book is similar to the author's first
attempt at a document formatting language, but the new system differs
from the old one in literally thousands of details. Both languages have
been called TeX; but henceforth the old language should be called TeX78,
and its use should rapidly fade away. Let's keep the name TeX for the
language described here, since it is so much better, and since it is not
going to change any more.
"#;

const FIG15_NEW: &str = r#"\section{Introduction}

The TeX language described in this book has a predecessor, but the new
system differs from the old one in literally thousands of details.
Computer manuals usually make extremely dull reading, but don't worry:
This one contains JOKES every once in a while, so you might actually
enjoy reading it. (However, most of the jokes can only be appreciated
properly if you understand a technical point that is being made -- so
read carefully.)

\section{The details}

English words like 'technology' stem from a Greek root beginning with
letters tau epsilon chi; and this same Greek work means art as well as
technology. Hence the name TeX, which is an uppercase of tau epsilon
chi.

Another noteworthy characteristic of this manual is that it doesn't
always tell the truth. This feature may seem strange, but it isn't. When
certain concepts of TeX are introduced informally, general rules will be
stated; afterwards you will find that the rules aren't strictly true.
The author feels that this technique of deliberate lying will actually
make it easier for you to learn the ideas. Once you understand a simple
but false rule, it will not be hard to supplement that rule with its
exceptions.

\section{Moving on}

It is generally intended that every reader should try every exercise,
except for questions that appear in the "dangerous bend" areas. If you
can't solve a problem, you can always look up the answer. But please,
try first to solve it by yourself; then you'll learn more and you'll
learn faster. Furthermore, if you think you do know the solution, you
should turn to Appendix A and check it out, just to make sure. In order
to help you better internalize what you read, exercises are sprinkled
through this manual.

\section{Conclusion}

Both languages have been called TeX; but henceforth the old language
should be called TeX78, and its use should rapidly fade away. Let's keep
the name TeX for the language described here, since it is so much
better, and since it is not going to change any more.
"#;

fn run() -> hierdiff_doc::LaDiffOutput {
    // The sample's rewordings are heavier than the default f = 0.5 allows
    // ("is similar to the author's first attempt at a document formatting
    // language" → "has a predecessor"); the paper's LaDiff matched them, so
    // we run with a generous leaf threshold.
    let options = LaDiffOptions {
        params: MatchParams::default().with_leaf_threshold(1.0),
        ..LaDiffOptions::default()
    };
    ladiff(FIG14_OLD, FIG15_NEW, &options).expect("appendix A sample diffs")
}

#[test]
fn detects_every_change_kind_of_figure_16() {
    let out = run();
    let ops = out.stats.ops;
    assert!(ops.inserts >= 3, "inserted section + sentences: {ops:?}");
    assert!(ops.deletes >= 1, "deleted sentence: {ops:?}");
    assert!(ops.updates >= 1, "updated sentences: {ops:?}");
    assert!(ops.moves >= 2, "moved sentences and paragraph: {ops:?}");
}

#[test]
fn section_headings_annotated_as_in_figure_16() {
    let out = run();
    let mk = &out.markup;
    // "2 (ins) The details" — exactly as in Figure 16.
    assert!(mk.contains("\\section{(ins) The details}"), "{mk}");
    // The conclusion heading is unchanged — as in Figure 16.
    assert!(mk.contains("\\section{Conclusion}"), "{mk}");
    // Figure 16 shows "1 (upd) Introduction", i.e. the old and new first
    // sections *matched*. Under the paper's own Criterion 2 they cannot:
    // after the truth paragraph moves out, the sections share 2 of
    // max(7, 3) sentences — a ratio of 2/7, below any legal t ≥ 1/2. Our
    // strict implementation therefore reports the retitled section as
    // delete + insert. (A reproduction finding: the published sample
    // output is inconsistent with the published matching criterion; the
    // 1996 implementation evidently used a laxer section rule.)
    assert!(mk.contains("\\section{(del) First things first}"), "{mk}");
    assert!(mk.contains("\\section{(ins) Introduction}"), "{mk}");
    // The "Moving on" section matches (5 of 5 common sentences) and its
    // retitle is annotated. (Figure 16 prints this heading without an
    // annotation — Table 2 says updated headings are annotated, so we
    // follow the table.)
    assert!(mk.contains("\\section{(upd) Moving on}"), "{mk}");
}

#[test]
fn opening_sentence_moved_from_conclusion() {
    let out = run();
    let mk = &out.markup;
    // New position: footnoted (and italic: it was also reworded).
    assert!(
        mk.contains("\\footnote{Moved from S"),
        "moved sentence footnote missing:\n{mk}"
    );
    // Old position: S-labeled small-font copy of the original text.
    assert!(
        mk.contains(":[{\\small The TeX language described in this book is similar"),
        "tombstone for the conclusion's opening sentence missing:\n{mk}"
    );
}

#[test]
fn truth_paragraph_moved_with_insert_and_delete() {
    let out = run();
    let mk = &out.markup;
    // The inserted sentence inside the moved paragraph is bold.
    assert!(
        mk.contains("\\textbf{This feature may seem strange, but it isn't.}"),
        "{mk}"
    );
    // The deleted sentence appears in small font.
    assert!(
        mk.contains("{\\small In general, the later chapters contain more reliable"),
        "{mk}"
    );
    // The paragraph-level move is marked with a marginal note, and the
    // old position carries the P label (Figure 16's "Moved from P1").
    assert!(mk.contains("\\marginpar{Moved from P"), "{mk}");
    assert!(mk.contains("\\noindent P"), "{mk}");
}

#[test]
fn exercises_sentence_moved_and_reworded() {
    let out = run();
    let mk = &out.markup;
    // Old form labeled at the old position...
    assert!(
        mk.contains(":[{\\small In order to help you internalize what you're reading"),
        "{mk}"
    );
    // ...new (reworded) form italic + footnoted at the end of the section.
    assert!(
        mk.contains("\\textit{In order to help you better internalize what you read"),
        "{mk}"
    );
}

#[test]
fn both_engines_agree_on_the_sample() {
    let options = LaDiffOptions {
        params: MatchParams::default().with_leaf_threshold(1.0),
        ..LaDiffOptions::default()
    };
    let fast = ladiff(FIG14_OLD, FIG15_NEW, &options).unwrap();
    let simple = ladiff(
        FIG14_OLD,
        FIG15_NEW,
        &LaDiffOptions {
            engine: Engine::Simple,
            ..options
        },
    )
    .unwrap();
    assert_eq!(fast.stats.ops, simple.stats.ops);
}

#[test]
fn delta_tree_roundtrips_and_html_renders() {
    let out = run();
    assert!(hierdiff_tree::isomorphic(
        &out.delta.project_new(),
        &out.new_tree
    ));
    assert!(hierdiff_tree::isomorphic(
        &out.delta.project_old(),
        &out.old_tree
    ));
    let html = render_html(&out.delta);
    assert!(html.contains("<h1>(ins) Introduction</h1>"), "{html}");
    assert!(html.contains("<ins>"), "{html}");
    assert!(html.contains("<del>"), "{html}");
}
