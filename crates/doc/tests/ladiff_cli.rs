//! End-to-end tests of the `ladiff` binary (invoked as a real process via
//! the `CARGO_BIN_EXE_ladiff` path Cargo provides to integration tests).

use std::io::Write as _;
use std::process::Command;

fn ladiff() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ladiff"))
}

fn write_temp(name: &str, content: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("hierdiff-ladiff-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(content.as_bytes()).unwrap();
    path
}

const OLD: &str = "\\section{Intro}\nStable sentence number one. Stable sentence number two. Doomed sentence goes away.\n";
const NEW: &str = "\\section{Intro}\nStable sentence number one. Freshly inserted sentence here. Stable sentence number two.\n";

#[test]
fn markup_output_default() {
    let old = write_temp("m_old.tex", OLD);
    let new = write_temp("m_new.tex", NEW);
    let out = ladiff().args([&old, &new]).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("\\textbf{Freshly inserted sentence here.}"),
        "{stdout}"
    );
    assert!(
        stdout.contains("{\\small Doomed sentence goes away.}"),
        "{stdout}"
    );
}

#[test]
fn stats_output() {
    let old = write_temp("s_old.tex", OLD);
    let new = write_temp("s_new.tex", NEW);
    let out = ladiff()
        .args(["--output", "stats"])
        .arg(&old)
        .arg(&new)
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("edit script:"), "{stdout}");
    assert!(stdout.contains("ins 1, del 1"), "{stdout}");
}

#[test]
fn json_output_parses() {
    let old = write_temp("j_old.tex", OLD);
    let new = write_temp("j_new.tex", NEW);
    let out = ladiff()
        .args(["--output", "json"])
        .arg(&old)
        .arg(&new)
        .output()
        .unwrap();
    assert!(out.status.success());
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    assert_eq!(v["ops"]["insert"], 1);
    assert_eq!(v["ops"]["delete"], 1);
}

#[test]
fn threshold_flag_accepted() {
    let old = write_temp("t_old.tex", OLD);
    let new = write_temp("t_new.tex", NEW);
    let out = ladiff()
        .args([
            "-t",
            "0.8",
            "-f",
            "0.7",
            "--engine",
            "simple",
            "--postprocess",
        ])
        .arg(&old)
        .arg(&new)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn strategy_flag_selects_gumtree() {
    let old = write_temp("g_old.tex", OLD);
    let new = write_temp("g_new.tex", NEW);
    let out = ladiff()
        .args(["--strategy", "gumtree", "--output", "stats"])
        .args([
            "--min-height",
            "1",
            "--sim-threshold",
            "0.4",
            "--max-recovery",
            "50",
        ])
        .arg(&old)
        .arg(&new)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("strategy:          gumtree"), "{stdout}");
    assert!(stdout.contains("edit script:"), "{stdout}");
}

#[test]
fn gumtree_knobs_compose_with_strategy_in_either_order() {
    let old = write_temp("go_old.tex", OLD);
    let new = write_temp("go_new.tex", NEW);
    let out = ladiff()
        .args(["--min-height", "2", "-s", "gumtree", "--output", "stats"])
        .arg(&old)
        .arg(&new)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn gumtree_knobs_rejected_without_gumtree() {
    let old = write_temp("gx_old.tex", OLD);
    let new = write_temp("gx_new.tex", NEW);
    for (flag, value) in [
        ("--min-height", "2"),
        ("--sim-threshold", "0.4"),
        ("--max-recovery", "10"),
    ] {
        let out = ladiff()
            .args([flag, value])
            .arg(&old)
            .arg(&new)
            .output()
            .unwrap();
        assert!(!out.status.success(), "{flag} should be rejected");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("applies to --strategy gumtree"), "{err}");
    }
}

#[test]
fn missing_file_fails_cleanly() {
    let out = ladiff()
        .args(["/nonexistent/a.tex", "/nonexistent/b.tex"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("a.tex"));
}

#[test]
fn bad_option_reports_usage() {
    let out = ladiff().args(["--bogus"]).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown option"), "{err}");
}

#[test]
fn markdown_format_flag_and_sniffing() {
    let old = write_temp("md_old.md", "# T\n\nAlpha stays here. Beta stays here.\n");
    let new = write_temp(
        "md_new.md",
        "# T\n\nAlpha stays here. Beta stays here. Gamma is new.\n",
    );
    // Explicit flag.
    let out = ladiff()
        .args(["--format", "markdown", "--output", "stats"])
        .arg(&old)
        .arg(&new)
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("ins 1"));
    // Auto-sniffed.
    let out = ladiff()
        .args(["--output", "stats"])
        .arg(&old)
        .arg(&new)
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("ins 1"));
}

#[test]
fn malformed_xml_exits_cleanly_with_one_line_diagnostic() {
    let old = write_temp("x_bad.xml", "<a><b></a>");
    let new = write_temp("x_ok.xml", "<a/>");
    let out = ladiff()
        .args(["--format", "xml"])
        .arg(&old)
        .arg(&new)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    // One line, no panic backtrace.
    assert_eq!(err.trim().lines().count(), 1, "{err}");
    assert!(err.contains("closing </a> while <b> is open"), "{err}");
    assert!(!err.contains("panicked"), "{err}");
}

#[test]
fn well_formed_xml_diffs() {
    let old = write_temp(
        "x_old.xml",
        r#"<?xml version="1.0"?><notes><p>Alpha stays put.</p><p>Beta stays put.</p></notes>"#,
    );
    let new = write_temp(
        "x_new.xml",
        r#"<?xml version="1.0"?><notes><p>Alpha stays put.</p><p>Beta stays put.</p><p>Gamma arrives.</p></notes>"#,
    );
    // Sniffed from the <?xml prolog, no flag needed.
    let out = ladiff()
        .args(["--output", "stats"])
        .arg(&old)
        .arg(&new)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("ins 2"));
}

#[test]
fn node_budget_exhaustion_exits_4() {
    let old = write_temp("b_old.tex", OLD);
    let new = write_temp("b_new.tex", NEW);
    let out = ladiff()
        .args(["--max-nodes", "2"])
        .arg(&old)
        .arg(&new)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(4));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("budget exhausted: max_nodes"), "{err}");
}

#[test]
fn zero_timeout_exits_4() {
    let old = write_temp("w_old.tex", OLD);
    let new = write_temp("w_new.tex", NEW);
    let out = ladiff()
        .args(["--timeout", "0"])
        .arg(&old)
        .arg(&new)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(4));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("budget exhausted: max_wall_time"), "{err}");
}

#[test]
fn max_depth_flag_is_configurable() {
    let mut deep = String::new();
    for _ in 0..300 {
        deep.push_str("\\begin{itemize}\n\\item x\n");
    }
    for _ in 0..300 {
        deep.push_str("\\end{itemize}\n");
    }
    let old = write_temp("d_old.tex", &deep);
    let new = write_temp("d_new.tex", &deep);
    let out = ladiff().arg(&old).arg(&new).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("document too deep"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = ladiff()
        .args(["--max-depth", "1000"])
        .arg(&old)
        .arg(&new)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn html_format_flag() {
    let old = write_temp("h_old.html", "<p>Alpha one stays. Beta two stays.</p>");
    let new = write_temp(
        "h_new.html",
        "<p>Alpha one stays. Beta two stays. Gamma three added.</p>",
    );
    let out = ladiff()
        .args(["--format", "html", "--output", "stats"])
        .arg(&old)
        .arg(&new)
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("ins 1"));
}
