//! Robustness: the document parsers must never panic and always produce
//! valid trees, whatever bytes they are fed (malformed LaTeX/HTML included).

use proptest::prelude::*;

use hierdiff_doc::{parse_html, parse_latex};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn latex_parser_total(src in "\\PC{0,400}") {
        let t = parse_latex(&src);
        prop_assert!(t.validate().is_ok());
    }

    #[test]
    fn latex_parser_structured_soup(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("\\section{T}".to_string()),
                Just("\\subsection{U}".to_string()),
                Just("\\begin{itemize}".to_string()),
                Just("\\end{itemize}".to_string()),
                Just("\\begin{enumerate}".to_string()),
                Just("\\end{enumerate}".to_string()),
                Just("\\item point".to_string()),
                Just("".to_string()),
                Just("Plain sentence here.".to_string()),
                Just("% comment".to_string()),
                Just("\\begin{document}".to_string()),
                Just("\\end{document}".to_string()),
                Just("\\section{unclosed".to_string()),
            ],
            0..30,
        )
    ) {
        let src = parts.join("\n");
        let t = parse_latex(&src);
        prop_assert!(t.validate().is_ok());
    }

    #[test]
    fn html_parser_total(src in "\\PC{0,400}") {
        let t = parse_html(&src);
        prop_assert!(t.validate().is_ok());
    }

    #[test]
    fn html_parser_tag_soup(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("<p>".to_string()),
                Just("</p>".to_string()),
                Just("<h1>".to_string()),
                Just("</h1>".to_string()),
                Just("<ul>".to_string()),
                Just("</ul>".to_string()),
                Just("<li>".to_string()),
                Just("</li>".to_string()),
                Just("<dl><dt>".to_string()),
                Just("text content. more text".to_string()),
                Just("<unclosed".to_string()),
                Just("<!-- comment -->".to_string()),
                Just("&amp;&bogus;".to_string()),
            ],
            0..30,
        )
    ) {
        let src = parts.join("");
        let t = parse_html(&src);
        prop_assert!(t.validate().is_ok());
    }

    /// Whatever the parsers produce must be diffable against itself
    /// (trivially) and against a mutated copy without panicking.
    #[test]
    fn parsed_soup_is_diffable(src in "\\PC{0,200}", src2 in "\\PC{0,200}") {
        use hierdiff_doc::{diff_trees, LaDiffOptions};
        let t1 = parse_latex(&src);
        let t2 = parse_latex(&src2);
        let out = diff_trees(t1, t2, &LaDiffOptions::default()).unwrap();
        // Markup rendering is total too.
        let _ = out.markup.len();
    }
}
