//! The typed error surface of the document layer.
//!
//! Every fallible entry point of this crate ([`ladiff`](crate::ladiff),
//! [`diff_trees`](crate::diff_trees), [`DocFormat::parse`](crate::DocFormat),
//! the `try_*` parser/renderer variants) reports through [`DocError`], which
//! joins the strict-parser [`XmlError`] with the resource-governance errors
//! of the core pipeline (`DiffError::{Cancelled, BudgetExhausted}`) and the
//! document-specific depth guard.

use std::fmt;

use hierdiff_core::DiffError;
use hierdiff_tree::{NodeValue, Tree};

use crate::xml::XmlError;

/// Default nesting-depth ceiling for document trees (parsing and
/// rendering). Deeply nested input beyond this returns
/// [`DocError::TooDeep`] instead of risking a stack overflow in the
/// recursive renderers downstream. Override per call via
/// [`try_parse_latex`](crate::try_parse_latex),
/// [`try_render_markdown`](crate::try_render_markdown), or
/// [`LaDiffOptions::max_depth`](crate::LaDiffOptions).
pub const DEFAULT_MAX_DEPTH: usize = 512;

/// Errors from the document pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DocError {
    /// Strict XML parsing failed (malformed markup).
    Xml(XmlError),
    /// A document tree exceeded the nesting-depth ceiling.
    TooDeep {
        /// Observed tree depth (root = 1).
        depth: usize,
        /// The configured ceiling.
        limit: usize,
    },
    /// The core diff pipeline failed (including cancellation and budget
    /// exhaustion when [`LaDiffOptions::budgets`](crate::LaDiffOptions)
    /// are set).
    Diff(DiffError),
}

impl fmt::Display for DocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DocError::Xml(e) => write!(f, "{e}"),
            DocError::TooDeep { depth, limit } => {
                write!(f, "document too deep: depth {depth} exceeds limit {limit}")
            }
            DocError::Diff(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DocError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DocError::Xml(e) => Some(e),
            DocError::TooDeep { .. } => None,
            DocError::Diff(e) => Some(e),
        }
    }
}

impl From<XmlError> for DocError {
    fn from(e: XmlError) -> DocError {
        DocError::Xml(e)
    }
}

impl From<DiffError> for DocError {
    fn from(e: DiffError) -> DocError {
        DocError::Diff(e)
    }
}

/// Maximum root-to-leaf depth of `tree` (root alone = 1), computed
/// iteratively so the check itself cannot overflow on pathological input.
pub(crate) fn tree_depth<V: NodeValue>(tree: &Tree<V>) -> usize {
    let mut max = 0usize;
    let mut stack = vec![(tree.root(), 1usize)];
    while let Some((node, depth)) = stack.pop() {
        max = max.max(depth);
        for &child in tree.children(node) {
            stack.push((child, depth + 1));
        }
    }
    max
}

/// Rejects trees nested deeper than `limit` with [`DocError::TooDeep`].
pub(crate) fn check_depth<V: NodeValue>(tree: &Tree<V>, limit: usize) -> Result<(), DocError> {
    let depth = tree_depth(tree);
    if depth > limit {
        return Err(DocError::TooDeep { depth, limit });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DocValue;
    use hierdiff_tree::Label;

    fn chain(depth: usize) -> Tree<DocValue> {
        let mut t = Tree::new(Label::intern("n"), DocValue::None);
        let mut cur = t.root();
        for _ in 1..depth {
            cur = t.push_child(cur, Label::intern("n"), DocValue::None);
        }
        t
    }

    #[test]
    fn depth_of_chain_is_exact() {
        assert_eq!(tree_depth(&chain(1)), 1);
        assert_eq!(tree_depth(&chain(7)), 7);
    }

    #[test]
    fn check_depth_boundary() {
        assert!(check_depth(&chain(512), 512).is_ok());
        assert_eq!(
            check_depth(&chain(513), 512),
            Err(DocError::TooDeep {
                depth: 513,
                limit: 512
            })
        );
    }

    #[test]
    fn depth_check_survives_10k_chain() {
        // The check itself is iterative: a 10_000-deep chain must produce a
        // typed error, not a stack overflow.
        let t = chain(10_000);
        match check_depth(&t, DEFAULT_MAX_DEPTH) {
            Err(DocError::TooDeep { depth, limit }) => {
                assert_eq!(depth, 10_000);
                assert_eq!(limit, 512);
            }
            other => panic!("expected TooDeep, got {other:?}"),
        }
    }

    #[test]
    fn display_and_source() {
        let e = DocError::TooDeep {
            depth: 600,
            limit: 512,
        };
        assert_eq!(
            e.to_string(),
            "document too deep: depth 600 exceeds limit 512"
        );
        let e: DocError = XmlError::NoRoot.into();
        assert!(e.to_string().contains("no root"));
        let e: DocError = DiffError::Cancelled.into();
        assert_eq!(e.to_string(), "diff cancelled");
        assert!(std::error::Error::source(&e).is_some());
    }
}
