//! `ladiff` — command-line front end for the LaDiff pipeline (Section 7 of
//! Chawathe et al., SIGMOD 1996).
//!
//! ```text
//! ladiff [OPTIONS] <OLD> <NEW>
//!
//!   -t, --threshold <0.5..1.0>   inner-node match threshold t  [default 0.6]
//!   -f, --leaf-threshold <0..1>  leaf compare threshold f      [default 0.5]
//!   -s, --strategy fastmatch|simple|gumtree
//!                                matching strategy             [default fastmatch]
//!       --engine fast|simple|gumtree   alias for --strategy
//!       --min-height <n>         gumtree top-down height floor    [default 1]
//!       --sim-threshold <0..1>   gumtree bottom-up dice threshold [default 0.5]
//!       --max-recovery <n>       gumtree TED recovery size bound  [default 100]
//!       --format latex|html|markdown|xml|auto input format     [default auto]
//!       --postprocess            run the Section 8 recovery pass
//!       --timeout <secs>         wall-clock budget for the diff
//!       --max-nodes <n>          reject inputs with more than n total nodes
//!       --max-depth <n>          reject documents nested deeper than n [default 512]
//!       --output markup|html|markdown|script|delta|stats|json
//!                                 what to print                [default markup]
//! ```
//!
//! Exit codes: 0 success, 1 usage/parse/pipeline error (malformed markup
//! prints a one-line diagnostic), 4 budget exhausted or cancelled.

#![forbid(unsafe_code)]

use std::process::ExitCode;
use std::time::Duration;

use hierdiff_core::{Budgets, DiffError, GumTreeParams};
use hierdiff_doc::{ladiff, DocError, DocFormat, Engine, LaDiffOptions};
use hierdiff_matching::MatchParams;

struct Args {
    old: String,
    new: String,
    t: f64,
    f: f64,
    engine: Engine,
    format: Option<DocFormat>,
    postprocess: bool,
    budgets: Budgets,
    max_depth: usize,
    output: Output,
}

#[derive(PartialEq, Clone, Copy)]
enum Output {
    Markup,
    Html,
    Markdown,
    Script,
    Delta,
    Stats,
    Json,
}

/// A failure with the exit code it maps to.
struct Failure {
    msg: String,
    code: u8,
}

impl From<String> for Failure {
    fn from(msg: String) -> Failure {
        Failure { msg, code: 1 }
    }
}

impl From<&str> for Failure {
    fn from(msg: &str) -> Failure {
        Failure {
            msg: msg.to_string(),
            code: 1,
        }
    }
}

/// Budget exhaustion and cancellation exit with code 4 so batch drivers can
/// tell resource-governed stops from genuine failures; everything else is 1.
fn fail_for(e: DocError) -> Failure {
    let code = match &e {
        DocError::Diff(DiffError::Cancelled | DiffError::BudgetExhausted(_)) => 4,
        _ => 1,
    };
    Failure {
        msg: e.to_string(),
        code,
    }
}

const USAGE: &str = "usage: ladiff [OPTIONS] <OLD> <NEW>\n\
  -t, --threshold <0.5..1.0>    inner-node match threshold t (default 0.6)\n\
  -f, --leaf-threshold <0..1>   leaf compare threshold f (default 0.5)\n\
  -s, --strategy fastmatch|simple|gumtree\n\
                                matching strategy (default fastmatch);\n\
                                --engine is accepted as an alias\n\
      --min-height <n>          gumtree: top-down anchoring height floor (default 1)\n\
      --sim-threshold <0..1>    gumtree: bottom-up dice threshold (default 0.5)\n\
      --max-recovery <n>        gumtree: TED recovery size bound, 0 disables (default 100)\n\
      --format latex|html|markdown|xml|auto  input format (default auto)\n\
      --postprocess             run the Section 8 recovery pass\n\
      --timeout <secs>          wall-clock budget for the diff\n\
      --max-nodes <n>           reject inputs with more than n total nodes\n\
      --max-depth <n>           reject documents nested deeper than n (default 512)\n\
      --output markup|html|markdown|script|delta|stats|json   what to print (default markup)\n\
  -h, --help                    show this help\n\
exit codes: 0 success, 1 error, 4 budget exhausted or cancelled";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        old: String::new(),
        new: String::new(),
        t: 0.6,
        f: 0.5,
        engine: Engine::Fast,
        format: None,
        postprocess: false,
        budgets: Budgets::unlimited(),
        max_depth: hierdiff_doc::DEFAULT_MAX_DEPTH,
        output: Output::Markup,
    };
    let mut min_height: Option<u32> = None;
    let mut sim_threshold: Option<f64> = None;
    let mut max_recovery: Option<usize> = None;
    let mut positional = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "-h" | "--help" => return Err(USAGE.to_string()),
            "-t" | "--threshold" => {
                args.t = take("--threshold")?
                    .parse()
                    .map_err(|e| format!("bad -t: {e}"))?
            }
            "-f" | "--leaf-threshold" => {
                args.f = take("--leaf-threshold")?
                    .parse()
                    .map_err(|e| format!("bad -f: {e}"))?
            }
            "-s" | "--strategy" | "--engine" => {
                args.engine = match take("--strategy")?.as_str() {
                    "fast" | "fastmatch" => Engine::Fast,
                    "simple" => Engine::Simple,
                    "gumtree" => Engine::GumTree(GumTreeParams::default()),
                    other => {
                        return Err(format!(
                            "unknown strategy {other:?} (expected fastmatch, simple, or gumtree)"
                        ))
                    }
                }
            }
            "--min-height" => {
                min_height = Some(
                    take("--min-height")?
                        .parse()
                        .map_err(|e| format!("bad --min-height: {e}"))?,
                )
            }
            "--sim-threshold" => {
                let s: f64 = take("--sim-threshold")?
                    .parse()
                    .map_err(|e| format!("bad --sim-threshold: {e}"))?;
                if !(0.0..=1.0).contains(&s) {
                    return Err("bad --sim-threshold: need a value in 0..=1".to_string());
                }
                sim_threshold = Some(s);
            }
            "--max-recovery" => {
                max_recovery = Some(
                    take("--max-recovery")?
                        .parse()
                        .map_err(|e| format!("bad --max-recovery: {e}"))?,
                )
            }
            "--format" => {
                args.format = match take("--format")?.as_str() {
                    "latex" => Some(DocFormat::Latex),
                    "html" => Some(DocFormat::Html),
                    "markdown" | "md" => Some(DocFormat::Markdown),
                    "xml" => Some(DocFormat::Xml),
                    "auto" => None,
                    other => return Err(format!("unknown format {other:?}")),
                }
            }
            "--postprocess" => args.postprocess = true,
            "--timeout" => {
                let secs: f64 = take("--timeout")?
                    .parse()
                    .map_err(|e| format!("bad --timeout: {e}"))?;
                if !secs.is_finite() || secs < 0.0 {
                    return Err(format!("bad --timeout: {secs} is not a duration"));
                }
                args.budgets = args
                    .budgets
                    .with_max_wall_time(Duration::from_secs_f64(secs));
            }
            "--max-nodes" => {
                let n: usize = take("--max-nodes")?
                    .parse()
                    .map_err(|e| format!("bad --max-nodes: {e}"))?;
                args.budgets = args.budgets.with_max_nodes(n);
            }
            "--max-depth" => {
                args.max_depth = take("--max-depth")?
                    .parse()
                    .map_err(|e| format!("bad --max-depth: {e}"))?
            }
            "--output" => {
                args.output = match take("--output")?.as_str() {
                    "markup" => Output::Markup,
                    "html" => Output::Html,
                    "markdown" | "md" => Output::Markdown,
                    "script" => Output::Script,
                    "delta" => Output::Delta,
                    "stats" => Output::Stats,
                    "json" => Output::Json,
                    other => return Err(format!("unknown output {other:?}")),
                }
            }
            other if other.starts_with('-') => return Err(format!("unknown option {other:?}")),
            other => positional.push(other.to_string()),
        }
    }
    // The gumtree knobs are applied after the loop so they compose with
    // `--strategy` in either order.
    if let Engine::GumTree(params) = &mut args.engine {
        if let Some(h) = min_height {
            *params = params.with_min_height(h);
        }
        if let Some(s) = sim_threshold {
            *params = params.with_sim_threshold(s);
        }
        if let Some(n) = max_recovery {
            *params = params.with_max_recovery_size(n);
        }
    } else if min_height.is_some() {
        return Err("--min-height applies to --strategy gumtree".to_string());
    } else if sim_threshold.is_some() {
        return Err("--sim-threshold applies to --strategy gumtree".to_string());
    } else if max_recovery.is_some() {
        return Err("--max-recovery applies to --strategy gumtree".to_string());
    }
    match positional.len() {
        2 => {
            args.old = positional.remove(0);
            args.new = positional.remove(0);
            Ok(args)
        }
        n => Err(format!("expected 2 input files, got {n}\n{USAGE}")),
    }
}

fn run() -> Result<(), Failure> {
    let args = parse_args()?;
    let old_src = std::fs::read_to_string(&args.old).map_err(|e| format!("{}: {e}", args.old))?;
    let new_src = std::fs::read_to_string(&args.new).map_err(|e| format!("{}: {e}", args.new))?;
    let format = args.format.unwrap_or_else(|| DocFormat::sniff(&old_src));
    let options = LaDiffOptions {
        params: MatchParams::with_inner_threshold(args.t).with_leaf_threshold(args.f),
        engine: args.engine,
        postprocess: args.postprocess,
        format,
        budgets: args.budgets,
        max_depth: args.max_depth,
    };
    let out = ladiff(&old_src, &new_src, &options).map_err(fail_for)?;
    match args.output {
        Output::Markup => println!("{}", out.markup),
        Output::Html => println!("{}", out.markup_html()),
        Output::Markdown => println!("{}", out.markup_markdown()),
        Output::Script => println!("{}", out.result.script),
        Output::Delta => println!("{}", hierdiff_delta::render_text(&out.delta)),
        Output::Stats => {
            let s = &out.stats;
            let strategy = match args.engine {
                Engine::Fast => "fastmatch",
                Engine::Simple => "simple",
                Engine::GumTree(_) => "gumtree",
            };
            println!("strategy:          {strategy}");
            println!("old nodes:         {}", s.old_nodes);
            println!("new nodes:         {}", s.new_nodes);
            println!("matched pairs:     {}", s.matched);
            println!("rematched (post):  {}", s.rematched);
            println!(
                "edit script:       {} ops (ins {}, del {}, upd {}, mov {})",
                s.ops.total(),
                s.ops.inserts,
                s.ops.deletes,
                s.ops.updates,
                s.ops.moves
            );
            println!("weighted distance: {}", s.weighted_distance);
            println!(
                "comparisons:       r1 = {} leaf compares, r2 = {} partner checks",
                s.counters.leaf_compares, s.counters.partner_checks
            );
        }
        Output::Json => {
            let json = serde_json::json!({
                "old_nodes": out.stats.old_nodes,
                "new_nodes": out.stats.new_nodes,
                "matched": out.stats.matched,
                "ops": {
                    "insert": out.stats.ops.inserts,
                    "delete": out.stats.ops.deletes,
                    "update": out.stats.ops.updates,
                    "move": out.stats.ops.moves,
                },
                "weighted_distance": out.stats.weighted_distance,
                "script": out.result.script,
            });
            println!(
                "{}",
                serde_json::to_string_pretty(&json).map_err(|e| format!("render json: {e}"))?
            );
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(f) => {
            eprintln!("{}", f.msg);
            ExitCode::from(f.code)
        }
    }
}
