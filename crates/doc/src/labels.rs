//! The document schema's labels (Section 5.1's running example schema):
//! `Sentence < Paragraph < Item < List < Subsection < Section < Document`.
//!
//! Per the paper, the three LaTeX list environments (`itemize`, `enumerate`,
//! `description`) are *merged into a single `List` label* to restore the
//! acyclic-labels condition.

use hierdiff_tree::Label;

/// Label of the document root.
pub fn document() -> Label {
    Label::intern("Document")
}

/// Label of `\section` nodes (value = heading text).
pub fn section() -> Label {
    Label::intern("Section")
}

/// Label of `\subsection` nodes (value = heading text).
pub fn subsection() -> Label {
    Label::intern("Subsection")
}

/// Label of paragraph nodes.
pub fn paragraph() -> Label {
    Label::intern("Paragraph")
}

/// Label of list nodes (`itemize` / `enumerate` / `description` merged).
pub fn list() -> Label {
    Label::intern("List")
}

/// Label of `\item` nodes.
pub fn item() -> Label {
    Label::intern("Item")
}

/// Label of sentence leaves (value = sentence text).
pub fn sentence() -> Label {
    Label::intern("Sentence")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_distinct_and_stable() {
        let all = [
            document(),
            section(),
            subsection(),
            paragraph(),
            list(),
            item(),
            sentence(),
        ];
        for (i, a) in all.iter().enumerate() {
            for (j, b) in all.iter().enumerate() {
                assert_eq!(i == j, a == b);
            }
        }
        assert_eq!(sentence(), sentence());
        assert_eq!(sentence().as_str(), "Sentence");
    }
}
