//! The end-to-end *LaDiff* pipeline (Section 7): parse two document
//! versions, find the good matching, generate the minimum conforming edit
//! script, build the delta tree, and render the marked-up output.

use hierdiff_core::{Audit, Budgets, Differ, GumTreeParams, MatchStrategy};
use hierdiff_delta::{AnnotationCounts, DeltaTree};
use hierdiff_edit::McesResult;
use hierdiff_matching::{MatchCounters, MatchParams};
use hierdiff_tree::Tree;

use crate::error::{check_depth, DocError, DEFAULT_MAX_DEPTH};
use crate::html::parse_html;
use crate::latex::parse_latex;
use crate::markdown::parse_markdown;
use crate::markup::render_latex;
use crate::value::DocValue;
use crate::xml::parse_xml;

/// Input document format.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DocFormat {
    /// LaTeX subset (Section 7).
    #[default]
    Latex,
    /// HTML subset (the Section 9 extension).
    Html,
    /// Markdown subset (modern analog of the LaTeX subset).
    Markdown,
    /// Generic XML (strict; malformed markup is a [`DocError::Xml`]).
    Xml,
}

impl DocFormat {
    /// Guesses the format from content: an `<?xml` prolog means XML; leading
    /// `<` (after whitespace) or an `<html>`/`<!doctype` marker means HTML;
    /// a LaTeX command prefix means LaTeX; `#`-style headings or list
    /// markers at line starts mean Markdown; plain prose defaults to LaTeX
    /// (whose body rules accept it).
    pub fn sniff(src: &str) -> DocFormat {
        let t = src.trim_start().to_ascii_lowercase();
        if t.starts_with("<?xml") {
            return DocFormat::Xml;
        }
        if t.starts_with('<') || t.contains("<html") || t.contains("<!doctype") {
            return DocFormat::Html;
        }
        if t.starts_with('\\') || src.contains("\\section{") || src.contains("\\begin{") {
            return DocFormat::Latex;
        }
        let markdownish = src.lines().any(|l| {
            let l = l.trim_start();
            (l.starts_with('#') && l.chars().find(|&c| c != '#') == Some(' '))
                || l.starts_with("- ")
                || l.starts_with("* ")
                || l.starts_with("```")
        });
        if markdownish {
            DocFormat::Markdown
        } else {
            DocFormat::Latex
        }
    }

    /// Parses `src` in this format. The lenient formats (LaTeX, HTML,
    /// Markdown) accept any input; strict XML reports malformed markup as
    /// [`DocError::Xml`].
    pub fn parse(self, src: &str) -> Result<Tree<DocValue>, DocError> {
        match self {
            DocFormat::Latex => Ok(parse_latex(src)),
            DocFormat::Html => Ok(parse_html(src)),
            DocFormat::Markdown => Ok(parse_markdown(src)),
            DocFormat::Xml => Ok(parse_xml(src)?),
        }
    }
}

/// Which matching algorithm drives the pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum Engine {
    /// Algorithm *FastMatch* (Figure 11) — the paper's recommendation.
    #[default]
    Fast,
    /// Algorithm *Match* (Figure 10) — the simple quadratic matcher.
    Simple,
    /// GumTree-style greedy top-down/bottom-up matching with bounded
    /// Zhang–Shasha recovery (Falleri et al., ASE 2014).
    GumTree(GumTreeParams),
}

/// Pipeline options.
#[derive(Clone, Copy, Debug)]
pub struct LaDiffOptions {
    /// Matching criteria parameters (`f`, `t`).
    pub params: MatchParams,
    /// Matching algorithm.
    pub engine: Engine,
    /// Whether to run the Section 8 post-processing pass.
    pub postprocess: bool,
    /// Input format (use [`DocFormat::sniff`] when unsure).
    pub format: DocFormat,
    /// Resource budgets for the core diff (unlimited by default).
    /// Exhaustion surfaces as [`DocError::Diff`] wrapping
    /// `DiffError::BudgetExhausted`.
    pub budgets: Budgets,
    /// Nesting-depth ceiling on the input trees
    /// ([`DEFAULT_MAX_DEPTH`] by default); deeper documents are rejected
    /// with [`DocError::TooDeep`] before the diff runs.
    pub max_depth: usize,
}

impl Default for LaDiffOptions {
    fn default() -> LaDiffOptions {
        LaDiffOptions {
            params: MatchParams::default(),
            engine: Engine::default(),
            postprocess: false,
            format: DocFormat::default(),
            budgets: Budgets::unlimited(),
            max_depth: DEFAULT_MAX_DEPTH,
        }
    }
}

/// Everything the pipeline produced.
#[derive(Debug)]
pub struct LaDiffOutput {
    /// The old document tree.
    pub old_tree: Tree<DocValue>,
    /// The new document tree.
    pub new_tree: Tree<DocValue>,
    /// The matching fed to the edit-script generator (post-processed if
    /// requested).
    pub matching: hierdiff_edit::Matching,
    /// The edit-script generation result.
    pub result: McesResult<DocValue>,
    /// The delta tree.
    pub delta: DeltaTree<DocValue>,
    /// The marked-up LaTeX output (Table 2 conventions).
    pub markup: String,
    /// Summary statistics.
    pub stats: LaDiffStats,
}

impl LaDiffOutput {
    /// Renders the delta as annotated HTML (see
    /// [`render_html`](crate::render_html)).
    pub fn markup_html(&self) -> String {
        crate::markup_html::render_html(&self.delta)
    }

    /// Renders the delta as annotated Markdown (see
    /// [`render_markdown`](crate::render_markdown)).
    pub fn markup_markdown(&self) -> String {
        crate::markup_md::render_markdown(&self.delta)
    }
}

/// Summary statistics of one run.
#[derive(Clone, Copy, Debug, Default)]
pub struct LaDiffStats {
    /// Nodes in the old tree.
    pub old_nodes: usize,
    /// Nodes in the new tree.
    pub new_nodes: usize,
    /// Matched pairs.
    pub matched: usize,
    /// Matching comparison counters (`r1`, `r2`).
    pub counters: MatchCounters,
    /// Nodes re-matched by post-processing (0 when disabled).
    pub rematched: usize,
    /// Edit-script operation counts.
    pub ops: hierdiff_edit::OpCounts,
    /// Weighted edit distance `e`.
    pub weighted_distance: usize,
    /// Delta-tree annotation counts.
    pub annotations: AnnotationCounts,
}

/// Runs the full LaDiff pipeline on two document sources.
pub fn ladiff(
    old_src: &str,
    new_src: &str,
    options: &LaDiffOptions,
) -> Result<LaDiffOutput, DocError> {
    let old_tree = options.format.parse(old_src)?;
    let new_tree = options.format.parse(new_src)?;
    diff_trees(old_tree, new_tree, options)
}

/// Runs matching + edit script + delta + markup on already-parsed trees.
///
/// This is a thin presentation layer over the [`Differ`] facade: the core
/// pipeline (matching, edit script, delta) runs there, and this function
/// adds the document-domain statistics and Table-2 markup. Inputs deeper
/// than [`LaDiffOptions::max_depth`] are rejected up front (the renderers
/// recurse per level); budget exhaustion and cancellation from
/// [`LaDiffOptions::budgets`] surface as [`DocError::Diff`].
pub fn diff_trees(
    old_tree: Tree<DocValue>,
    new_tree: Tree<DocValue>,
    options: &LaDiffOptions,
) -> Result<LaDiffOutput, DocError> {
    check_depth(&old_tree, options.max_depth)?;
    check_depth(&new_tree, options.max_depth)?;
    let strategy = match options.engine {
        Engine::Fast => MatchStrategy::fast(),
        Engine::Simple => MatchStrategy::Simple,
        Engine::GumTree(params) => MatchStrategy::GumTree(params),
    };
    let r = Differ::new()
        .params(options.params)
        .strategy(strategy)
        .postprocess(options.postprocess)
        .audit(Audit::Off)
        .budget(options.budgets)
        .diff(&old_tree, &new_tree)?;
    let Some(delta) = r.delta else {
        unreachable!("Differ::new() builds the delta tree by default")
    };
    let markup = render_latex(&delta);
    let stats = LaDiffStats {
        old_nodes: old_tree.len(),
        new_nodes: new_tree.len(),
        matched: r.matching.len(),
        counters: r.counters,
        rematched: r.rematched,
        ops: r.script.op_counts(),
        weighted_distance: r.mces.stats.weighted_distance,
        annotations: delta.annotation_counts(),
    };
    Ok(LaDiffOutput {
        old_tree,
        new_tree,
        matching: r.matching,
        result: r.mces,
        delta,
        markup,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierdiff_tree::isomorphic;

    const OLD: &str = "\\section{First things first}\nComputer system manuals usually make dull reading. \
        This one contains jokes every once in a while. Most jokes require understanding a technical point.\n\n\
        Another noteworthy characteristic of this manual is that it does not always tell the truth. \
        The author feels that this technique of deliberate lying will make it easier to learn the ideas.\n\
        \\section{Conclusion}\nBoth languages have been called TeX. Let us keep the name TeX for the new language.";

    const NEW: &str = "\\section{Introduction}\nComputer system manuals usually make dull reading. \
        This one contains jokes every once in a while. Most jokes require understanding a technical point.\n\n\
        Another noteworthy characteristic of this manual is that it does not always tell the truth. \
        This feature may seem strange but it is not. \
        The author feels that this technique of deliberate lying will make it easier to learn the ideas.\n\
        \\section{Conclusion}\nBoth languages have been called TeX. Let us keep the name TeX for the new language.";

    #[test]
    fn end_to_end_latex() {
        let out = ladiff(OLD, NEW, &LaDiffOptions::default()).unwrap();
        // The inserted sentence is bold in the markup.
        assert!(
            out.markup
                .contains("\\textbf{This feature may seem strange but it is not.}"),
            "{}",
            out.markup
        );
        // The renamed section is an update.
        assert!(out.markup.contains("(upd) Introduction"), "{}", out.markup);
        // The result tree is isomorphic to the new tree.
        assert!(isomorphic(&out.result.edited, &out.new_tree) || out.result.wrapped);
        assert!(out.stats.ops.inserts >= 1);
        assert!(out.stats.matched > 0);
        assert!(out.stats.counters.total() > 0);
    }

    #[test]
    fn engines_agree_on_clean_documents() {
        let fast = ladiff(OLD, NEW, &LaDiffOptions::default()).unwrap();
        let simple = ladiff(
            OLD,
            NEW,
            &LaDiffOptions {
                engine: Engine::Simple,
                ..LaDiffOptions::default()
            },
        )
        .unwrap();
        assert_eq!(fast.stats.matched, simple.stats.matched);
        assert_eq!(fast.stats.ops, simple.stats.ops);
    }

    #[test]
    fn gumtree_engine_end_to_end() {
        let out = ladiff(
            OLD,
            NEW,
            &LaDiffOptions {
                engine: Engine::GumTree(GumTreeParams::default()),
                ..LaDiffOptions::default()
            },
        )
        .unwrap();
        assert!(isomorphic(&out.result.edited, &out.new_tree) || out.result.wrapped);
        assert!(out.stats.matched > 0);
        // The unchanged Conclusion section survives as matches.
        assert!(out.markup.contains("Conclusion"), "{}", out.markup);
    }

    #[test]
    fn html_pipeline() {
        let old = "<h1>Title</h1><p>Alpha sentence one. Beta sentence two.</p>";
        let new =
            "<h1>Title</h1><p>Alpha sentence one. Beta sentence two. Gamma inserted three.</p>";
        let out = ladiff(
            old,
            new,
            &LaDiffOptions {
                format: DocFormat::Html,
                ..LaDiffOptions::default()
            },
        )
        .unwrap();
        assert_eq!(out.stats.ops.inserts, 1);
        assert!(out.markup.contains("\\textbf{Gamma inserted three.}"));
    }

    #[test]
    fn sniff_detects_formats() {
        assert_eq!(DocFormat::sniff("<html><p>x</p>"), DocFormat::Html);
        assert_eq!(DocFormat::sniff("  <!DOCTYPE html>"), DocFormat::Html);
        assert_eq!(
            DocFormat::sniff("<?xml version=\"1.0\"?><r/>"),
            DocFormat::Xml
        );
        assert_eq!(DocFormat::sniff("\\section{X}"), DocFormat::Latex);
        assert_eq!(DocFormat::sniff("plain prose text"), DocFormat::Latex);
        assert_eq!(DocFormat::sniff("# Title\n\nBody."), DocFormat::Markdown);
        assert_eq!(
            DocFormat::sniff("- item one\n- item two"),
            DocFormat::Markdown
        );
        assert_eq!(
            DocFormat::sniff("text\n\\begin{itemize}\n\\item x\n\\end{itemize}"),
            DocFormat::Latex
        );
    }

    #[test]
    fn markdown_pipeline() {
        let old = "# Doc\n\nAlpha stays here. Beta stays here.\n";
        let new = "# Doc\n\nAlpha stays here. Beta stays here. Gamma is new.\n";
        let out = ladiff(
            old,
            new,
            &LaDiffOptions {
                format: DocFormat::Markdown,
                ..LaDiffOptions::default()
            },
        )
        .unwrap();
        assert_eq!(out.stats.ops.inserts, 1);
    }

    #[test]
    fn identical_documents_produce_empty_script() {
        let out = ladiff(OLD, OLD, &LaDiffOptions::default()).unwrap();
        assert_eq!(out.stats.ops.total(), 0);
        assert_eq!(out.stats.annotations.changes(), 0);
    }

    #[test]
    fn xml_format_diffs_end_to_end() {
        let old =
            r#"<?xml version="1.0"?><notes><p>Alpha stays put.</p><p>Beta stays put.</p></notes>"#;
        let new = r#"<?xml version="1.0"?><notes><p>Alpha stays put.</p><p>Beta stays put.</p><p>Gamma arrives.</p></notes>"#;
        let options = LaDiffOptions {
            format: DocFormat::sniff(old),
            ..LaDiffOptions::default()
        };
        assert_eq!(options.format, DocFormat::Xml);
        let out = ladiff(old, new, &options).unwrap();
        assert_eq!(out.stats.ops.inserts, 2); // <p> element + its #text
    }

    #[test]
    fn malformed_xml_is_a_typed_error() {
        let options = LaDiffOptions {
            format: DocFormat::Xml,
            ..LaDiffOptions::default()
        };
        let err = ladiff("<a><b></a>", "<a/>", &options).unwrap_err();
        assert!(matches!(err, crate::DocError::Xml(_)), "{err:?}");
        // The diagnostic is a single line suitable for a CLI.
        assert!(!err.to_string().contains('\n'));
    }

    #[test]
    fn budget_exhaustion_propagates_through_pipeline() {
        use hierdiff_core::{Budget, DiffError};
        let options = LaDiffOptions {
            budgets: Budgets::unlimited().with_max_nodes(3),
            ..LaDiffOptions::default()
        };
        let err = ladiff(OLD, NEW, &options).unwrap_err();
        assert!(
            matches!(
                err,
                crate::DocError::Diff(DiffError::BudgetExhausted(Budget::Nodes))
            ),
            "{err:?}"
        );
        assert_eq!(err.to_string(), "budget exhausted: max_nodes");
    }

    #[test]
    fn depth_ceiling_rejects_before_diffing() {
        let mut src = String::new();
        for _ in 0..300 {
            src.push_str("\\begin{itemize}\n\\item x\n");
        }
        for _ in 0..300 {
            src.push_str("\\end{itemize}\n");
        }
        let err = ladiff(&src, &src, &LaDiffOptions::default()).unwrap_err();
        assert!(matches!(err, crate::DocError::TooDeep { .. }), "{err:?}");
        // Raising the configurable ceiling admits the same document.
        let options = LaDiffOptions {
            max_depth: 1_000,
            ..LaDiffOptions::default()
        };
        let out = ladiff(&src, &src, &options).unwrap();
        assert_eq!(out.stats.ops.total(), 0);
    }

    #[test]
    fn postprocess_runs_when_enabled() {
        let out = ladiff(
            OLD,
            NEW,
            &LaDiffOptions {
                postprocess: true,
                ..LaDiffOptions::default()
            },
        )
        .unwrap();
        // Clean documents: nothing to re-match, but the pass must not break
        // anything.
        assert_eq!(out.stats.rematched, 0);
        assert!(isomorphic(&out.result.edited, &out.new_tree) || out.result.wrapped);
    }
}
