//! The LaDiff mark-up emitter — Table 2 of the paper:
//!
//! | Textual unit | Insert | Delete | Update | Move |
//! |---|---|---|---|---|
//! | Sentence | bold font | small font | italic font | footnote + label |
//! | Paragraph | marginal note | marginal note | marginal note | marginal note + label |
//! | Item | marginal note | marginal note | marginal note | marginal note + label |
//! | Subsection / Section | annotation `(ins/del/upd/mov)` in heading ||||
//!
//! The emitter walks the delta tree in pre-order (Section 6: "a preorder
//! traversal of the delta tree is performed to produce an output Latex
//! document with annotations describing the changes") and renders a LaTeX
//! document. Moved units show their old content at the old position in
//! small font with a label (`S1:[...]` / `P1`), and a footnote or marginal
//! note "Moved from S1/P1" at the new position — exactly the conventions of
//! the Appendix A sample run. A unit that was moved *and* updated gets both
//! markings at once.

use std::collections::HashMap;
use std::fmt::Write as _;

use hierdiff_delta::{Annotation, DeltaNodeId, DeltaTree};

use crate::labels;
use crate::value::DocValue;

/// Renders the delta tree of a document pair as annotated LaTeX.
pub fn render_latex(delta: &DeltaTree<DocValue>) -> String {
    let mut marks = MarkNames::default();
    // Assign names in order of first appearance of either endpoint of a
    // move (the new position or the tombstone), matching Figure 16's
    // numbering where the intro's "Moved from S1" footnote precedes the S1
    // label near the end of the document.
    for id in delta.preorder() {
        match delta.annotation(id) {
            Annotation::Marker { .. } => marks.assign(delta, id),
            Annotation::Moved { mark, .. } => marks.assign(delta, *mark),
            _ => {}
        }
    }
    let mut out = String::new();
    let mut r = Renderer {
        delta,
        marks,
        out: &mut out,
    };
    r.children(delta.root());
    out
}

#[derive(Default)]
struct MarkNames {
    names: HashMap<DeltaNodeId, String>,
    sentence_count: usize,
    block_count: usize,
}

impl MarkNames {
    /// Names `marker` if it has no name yet (idempotent: the first-seen
    /// endpoint of a move wins).
    fn assign(&mut self, delta: &DeltaTree<DocValue>, marker: DeltaNodeId) {
        if self.names.contains_key(&marker) {
            return;
        }
        let name = if delta.label(marker) == labels::sentence() {
            self.sentence_count += 1;
            format!("S{}", self.sentence_count)
        } else {
            self.block_count += 1;
            format!("P{}", self.block_count)
        };
        self.names.insert(marker, name);
    }

    fn of(&self, marker: DeltaNodeId) -> &str {
        self.names.get(&marker).map(String::as_str).unwrap_or("?")
    }
}

struct Renderer<'a> {
    delta: &'a DeltaTree<DocValue>,
    marks: MarkNames,
    out: &'a mut String,
}

impl Renderer<'_> {
    fn children(&mut self, id: DeltaNodeId) {
        for &c in self.delta.children(id) {
            self.node(c);
        }
    }

    fn node(&mut self, id: DeltaNodeId) {
        let label = self.delta.label(id);
        if label == labels::sentence() {
            self.sentence(id);
        } else if label == labels::section() || label == labels::subsection() {
            self.heading(id);
        } else if label == labels::paragraph() || label == labels::item() {
            self.block(id);
        } else if label == labels::list() {
            self.list(id);
        } else {
            // Unknown structural node (e.g. a dummy root): recurse.
            self.children(id);
        }
    }

    fn text_of(&self, id: DeltaNodeId) -> &str {
        self.delta.value(id).as_text().unwrap_or("")
    }

    fn sentence(&mut self, id: DeltaNodeId) {
        let text = self.text_of(id).to_owned();
        match self.delta.annotation(id) {
            Annotation::Identical => {
                let _ = write!(self.out, "{text} ");
            }
            Annotation::Inserted => {
                let _ = write!(self.out, "\\textbf{{{text}}} ");
            }
            Annotation::Deleted => {
                let _ = write!(self.out, "{{\\small {text}}} ");
            }
            Annotation::Updated { .. } => {
                let _ = write!(self.out, "\\textit{{{text}}} ");
            }
            Annotation::Moved { mark, old } => {
                // New position: the (possibly updated) text with a footnote.
                let name = self.marks.of(*mark).to_owned();
                if old.is_some() {
                    let _ = write!(
                        self.out,
                        "\\textit{{{text}}}\\footnote{{Moved from {name}}} "
                    );
                } else {
                    let _ = write!(self.out, "{text}\\footnote{{Moved from {name}}} ");
                }
            }
            Annotation::Marker { .. } => {
                // Old position: small font, labeled.
                let name = self.marks.of(id).to_owned();
                let _ = write!(self.out, "{name}:[{{\\small {text}}}] ");
            }
        }
    }

    fn heading(&mut self, id: DeltaNodeId) {
        let cmd = if self.delta.label(id) == labels::section() {
            "section"
        } else {
            "subsection"
        };
        let title = self.text_of(id).to_owned();
        let ann = match self.delta.annotation(id) {
            Annotation::Identical => None,
            Annotation::Inserted => Some("ins".to_string()),
            Annotation::Deleted => Some("del".to_string()),
            Annotation::Updated { .. } => Some("upd".to_string()),
            Annotation::Moved { mark, .. } => Some(format!("mov from {}", self.marks.of(*mark))),
            Annotation::Marker { .. } => {
                // Old position of a moved section: emit only the label.
                let name = self.marks.of(id).to_owned();
                let _ = writeln!(self.out, "\\noindent {name}: [section moved]\n");
                return;
            }
        };
        match ann {
            None => {
                let _ = writeln!(self.out, "\\{cmd}{{{title}}}");
            }
            Some(a) => {
                let _ = writeln!(self.out, "\\{cmd}{{({a}) {title}}}");
            }
        }
        self.children(id);
    }

    fn block(&mut self, id: DeltaNodeId) {
        let item = self.delta.label(id) == labels::item();
        let (note, label_prefix): (Option<String>, Option<String>) = match self.delta.annotation(id)
        {
            Annotation::Identical | Annotation::Updated { .. } => (None, None),
            Annotation::Inserted => (
                Some(format!("Inserted {}", if item { "item" } else { "para" })),
                None,
            ),
            Annotation::Deleted => (
                Some(format!("Deleted {}", if item { "item" } else { "para" })),
                None,
            ),
            Annotation::Moved { mark, .. } => {
                (Some(format!("Moved from {}", self.marks.of(*mark))), None)
            }
            Annotation::Marker { .. } => {
                let name = self.marks.of(id).to_owned();
                (None, Some(name))
            }
        };
        if item {
            let _ = write!(self.out, "\\item ");
        }
        if let Some(name) = &label_prefix {
            // Old position of a moved block: show the label only.
            let _ = writeln!(self.out, "\\noindent {name}\n");
            return;
        }
        if let Some(note) = note {
            let _ = write!(self.out, "\\marginpar{{{note}}} ");
        }
        self.children(id);
        let _ = writeln!(self.out, "\n");
    }

    fn list(&mut self, id: DeltaNodeId) {
        let _ = writeln!(self.out, "\\begin{{itemize}}");
        self.children(id);
        let _ = writeln!(self.out, "\\end{{itemize}}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latex::parse_latex;
    use hierdiff_delta::build_delta_tree;
    use hierdiff_edit::edit_script;
    use hierdiff_matching::{fast_match, MatchParams};

    fn markup(old: &str, new: &str) -> String {
        let t1 = parse_latex(old);
        let t2 = parse_latex(new);
        let m = fast_match(&t1, &t2, MatchParams::default()).unwrap();
        let res = edit_script(&t1, &t2, &m.matching).unwrap();
        let delta = build_delta_tree(&t1, &t2, &m.matching, &res);
        render_latex(&delta)
    }

    #[test]
    fn inserted_sentence_bold() {
        let old = "One stays here. Two stays here. Three stays here.";
        let new = "One stays here. Two stays here. Brand new sentence. Three stays here.";
        let out = markup(old, new);
        assert!(out.contains("\\textbf{Brand new sentence.}"), "{out}");
        assert!(out.contains("One stays here."), "{out}");
    }

    #[test]
    fn deleted_sentence_small() {
        let old = "One stays here. Doomed sentence. Two stays here. Three stays here.";
        let new = "One stays here. Two stays here. Three stays here.";
        let out = markup(old, new);
        assert!(out.contains("{\\small Doomed sentence.}"), "{out}");
    }

    #[test]
    fn updated_sentence_italic() {
        let old = "The quick brown fox jumps over the dog. Second sentence stays.";
        let new = "The quick brown fox leaps over the dog. Second sentence stays.";
        let out = markup(old, new);
        assert!(
            out.contains("\\textit{The quick brown fox leaps over the dog.}"),
            "{out}"
        );
    }

    #[test]
    fn moved_sentence_footnote_and_label() {
        let old = "Mover goes last eventually. Anchor one stays. Anchor two stays.";
        let new = "Anchor one stays. Anchor two stays. Mover goes last eventually.";
        let out = markup(old, new);
        assert!(
            out.contains("S1:[{\\small Mover goes last eventually.}]"),
            "{out}"
        );
        assert!(
            out.contains("Mover goes last eventually.\\footnote{Moved from S1}"),
            "{out}"
        );
    }

    #[test]
    fn moved_and_updated_sentence_italic_with_footnote() {
        // Like the TeXbook example's first sentence: moved and updated.
        let old = "\\section{A}\nThe old form of the mover sentence here. Anchor a one. Anchor a two.\n\\section{B}\nAnchor b one. Anchor b two.";
        let new = "\\section{A}\nAnchor a one. Anchor a two.\n\\section{B}\nThe new form of the mover sentence here. Anchor b one. Anchor b two.";
        let out = markup(old, new);
        assert!(
            out.contains(
                "\\textit{The new form of the mover sentence here.}\\footnote{Moved from S1}"
            ),
            "{out}"
        );
        assert!(
            out.contains("S1:[{\\small The old form of the mover sentence here.}]"),
            "{out}"
        );
    }

    #[test]
    fn inserted_paragraph_marginal_note() {
        let old = "Stable paragraph sentence one. Stable paragraph sentence two.";
        let new = "Stable paragraph sentence one. Stable paragraph sentence two.\n\nEntirely fresh paragraph content here.";
        let out = markup(old, new);
        assert!(out.contains("\\marginpar{Inserted para}"), "{out}");
    }

    #[test]
    fn deleted_paragraph_marginal_note() {
        let old = "Stable paragraph sentence one. Stable paragraph sentence two.\n\nDoomed paragraph content entirely different.";
        let new = "Stable paragraph sentence one. Stable paragraph sentence two.";
        let out = markup(old, new);
        assert!(out.contains("\\marginpar{Deleted para}"), "{out}");
    }

    #[test]
    fn section_heading_annotations() {
        let old = "\\section{Old Title Words}\nShared body sentence one. Shared body sentence two. Shared three.";
        let new = "\\section{New Title Words}\nShared body sentence one. Shared body sentence two. Shared three.";
        let out = markup(old, new);
        assert!(out.contains("\\section{(upd) New Title Words}"), "{out}");
    }

    #[test]
    fn inserted_section_annotated() {
        let old = "\\section{Stable}\nBody one here. Body two here. Body three here.";
        let new = "\\section{Stable}\nBody one here. Body two here. Body three here.\n\\section{Fresh}\nCompletely new section body.";
        let out = markup(old, new);
        assert!(out.contains("\\section{(ins) Fresh}"), "{out}");
    }

    #[test]
    fn unchanged_document_has_no_annotations() {
        let src = "\\section{Title}\nSentence one here. Sentence two here.";
        let out = markup(src, src);
        assert!(!out.contains("\\textbf"), "{out}");
        assert!(!out.contains("\\textit"), "{out}");
        assert!(!out.contains("\\small"), "{out}");
        assert!(!out.contains("\\marginpar"), "{out}");
        assert!(!out.contains("(upd)"), "{out}");
    }

    #[test]
    fn items_render_in_lists() {
        let old = "\\begin{itemize}\n\\item First point stays here.\n\\item Second point stays here.\n\\end{itemize}";
        let new = "\\begin{itemize}\n\\item First point stays here.\n\\item Second point stays here.\n\\item Third point is new here.\n\\end{itemize}";
        let out = markup(old, new);
        assert!(out.contains("\\begin{itemize}"), "{out}");
        assert!(out.contains("\\end{itemize}"), "{out}");
        assert!(out.contains("\\item \\marginpar{Inserted item}"), "{out}");
    }
}
