//! A generic XML parser producing diffable trees — the paper's SGML
//! direction (Section 9) and the label-value model of its companion OEM
//! work \[PGMW95\] ("object exchange across heterogeneous information
//! sources"). This is the mapping later adopted by the Chawathe-lineage
//! XML differs (`xmldiff` et al.):
//!
//! * element → node labeled with the tag name, null value;
//! * attribute → child node labeled `@name` with the value as text
//!   (attributes participate in matching like keyed fields);
//! * text run → leaf labeled `#text` with the trimmed text as value.
//!
//! Unlike the lenient HTML parser, this one is strict: mismatched or
//! unclosed tags are errors. Note that generic XML need not satisfy the
//! acyclic-labels condition (elements nest recursively); matching remains
//! correct, only the uniqueness guarantee of Theorem 5.2 is forfeit —
//! exactly the trade-off Section 5.1 describes.

use std::fmt;

use hierdiff_tree::{Label, NodeId, Tree};

use crate::value::DocValue;

/// Label given to text-run leaves.
pub fn text_label() -> Label {
    Label::intern("#text")
}

/// Blessed slicing funnels: every byte and substring access in the
/// scanner flows through these three helpers, keeping the S004
/// panic-reachability audit to three waived sites. Every offset handed in
/// is the position of an ASCII delimiter (`<`, `>`, `=`, a quote), hence
/// always a char boundary.
#[inline(always)]
fn byte_at(bytes: &[u8], i: usize) -> u8 {
    bytes[i] // analyze: allow(S004) the blessed funnel
}

#[inline(always)]
fn tail(s: &str, from: usize) -> &str {
    &s[from..] // analyze: allow(S004) the blessed funnel
}

#[inline(always)]
fn slice(s: &str, from: usize, to: usize) -> &str {
    &s[from..to] // analyze: allow(S004) the blessed funnel
}

/// Errors from [`parse_xml`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// `</close>` did not match the open element.
    MismatchedClose {
        /// Tag that was open.
        expected: String,
        /// Tag that tried to close.
        found: String,
    },
    /// Input ended with unclosed elements.
    UnclosedElements(Vec<String>),
    /// A closing tag appeared with no element open.
    StrayClose(String),
    /// Malformed tag syntax at byte offset.
    Malformed(usize),
    /// The document has no root element.
    NoRoot,
    /// Content appeared after the root element closed.
    TrailingContent(usize),
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::MismatchedClose { expected, found } => {
                write!(f, "closing </{found}> while <{expected}> is open")
            }
            XmlError::UnclosedElements(stack) => {
                write!(f, "unclosed elements at end of input: {}", stack.join(", "))
            }
            XmlError::StrayClose(t) => write!(f, "closing </{t}> with nothing open"),
            XmlError::Malformed(at) => write!(f, "malformed tag at byte {at}"),
            XmlError::NoRoot => write!(f, "document has no root element"),
            XmlError::TrailingContent(at) => write!(f, "content after root element at byte {at}"),
        }
    }
}

impl std::error::Error for XmlError {}

/// Parses an XML document into the label-value tree model (see module
/// docs).
pub fn parse_xml(src: &str) -> Result<Tree<DocValue>, XmlError> {
    let mut tree: Option<Tree<DocValue>> = None;
    let mut stack: Vec<NodeId> = Vec::new();
    let mut open_names: Vec<String> = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut text_start = 0usize;

    let flush_text = |tree: &mut Option<Tree<DocValue>>,
                      stack: &[NodeId],
                      start: usize,
                      end: usize|
     -> Result<(), XmlError> {
        let raw = slice(src, start, end);
        let decoded = decode_entities(raw);
        let trimmed = decoded.trim();
        if trimmed.is_empty() {
            return Ok(());
        }
        match (tree.as_mut(), stack.last()) {
            (Some(t), Some(&parent)) => {
                t.push_child(parent, text_label(), DocValue::text(trimmed));
                Ok(())
            }
            _ => Err(XmlError::TrailingContent(start)),
        }
    };

    while i < bytes.len() {
        if byte_at(bytes, i) != b'<' {
            i += 1;
            continue;
        }
        flush_text(&mut tree, &stack, text_start, i)?;
        // Comments, PIs, doctype, CDATA.
        if tail(src, i).starts_with("<!--") {
            let end = tail(src, i).find("-->").ok_or(XmlError::Malformed(i))?;
            i += end + 3;
            text_start = i;
            continue;
        }
        if tail(src, i).starts_with("<![CDATA[") {
            let end = tail(src, i).find("]]>").ok_or(XmlError::Malformed(i))?;
            let content = slice(src, i + 9, i + end);
            if let (Some(t), Some(&parent)) = (tree.as_mut(), stack.last()) {
                if !content.trim().is_empty() {
                    t.push_child(parent, text_label(), DocValue::text(content.trim()));
                }
            }
            i += end + 3;
            text_start = i;
            continue;
        }
        if tail(src, i).starts_with("<?") || tail(src, i).starts_with("<!") {
            let end = tail(src, i).find('>').ok_or(XmlError::Malformed(i))?;
            i += end + 1;
            text_start = i;
            continue;
        }
        let close = tail(src, i).find('>').ok_or(XmlError::Malformed(i))?;
        let inner = slice(src, i + 1, i + close);
        let after = i + close + 1;
        if let Some(name) = inner.strip_prefix('/') {
            // Closing tag.
            let name = name.trim();
            let expected = open_names
                .pop()
                .ok_or_else(|| XmlError::StrayClose(name.into()))?;
            if expected != name {
                return Err(XmlError::MismatchedClose {
                    expected,
                    found: name.into(),
                });
            }
            stack.pop();
        } else {
            let self_closing = inner.ends_with('/');
            let inner = inner.trim_end_matches('/');
            let (name, attrs) = parse_tag(inner, i)?;
            if tree.is_some() && stack.is_empty() {
                return Err(XmlError::TrailingContent(i));
            }
            let parent = stack.last().copied();
            let t = tree.get_or_insert_with(|| Tree::new(Label::intern(&name), DocValue::None));
            let id = match parent {
                Some(parent) => t.push_child(parent, Label::intern(&name), DocValue::None),
                None => t.root(),
            };
            for (k, v) in attrs {
                t.push_child(id, Label::intern(&format!("@{k}")), DocValue::text(v));
            }
            if !self_closing {
                stack.push(id);
                open_names.push(name);
            }
        }
        i = after;
        text_start = i;
    }
    flush_text(&mut tree, &stack, text_start, src.len())?;
    if !open_names.is_empty() {
        return Err(XmlError::UnclosedElements(open_names));
    }
    tree.ok_or(XmlError::NoRoot)
}

/// Parses `name attr="v" ...` from a tag body.
fn parse_tag(inner: &str, at: usize) -> Result<(String, Vec<(String, String)>), XmlError> {
    let inner = inner.trim();
    let name_end = inner
        .find(|c: char| c.is_whitespace())
        .unwrap_or(inner.len());
    let name = slice(inner, 0, name_end);
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_alphanumeric() || c == '_' || c == '-' || c == ':' || c == '.')
    {
        return Err(XmlError::Malformed(at));
    }
    let mut attrs = Vec::new();
    let mut rest = tail(inner, name_end).trim_start();
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or(XmlError::Malformed(at))?;
        let key = slice(rest, 0, eq).trim().to_string();
        let after_eq = tail(rest, eq + 1).trim_start();
        let quote = after_eq.chars().next().ok_or(XmlError::Malformed(at))?;
        if quote != '"' && quote != '\'' {
            return Err(XmlError::Malformed(at));
        }
        let val_end = tail(after_eq, 1)
            .find(quote)
            .ok_or(XmlError::Malformed(at))?;
        let value = decode_entities(slice(after_eq, 1, 1 + val_end));
        attrs.push((key, value));
        rest = tail(after_eq, val_end + 2).trim_start();
    }
    Ok((name.to_string(), attrs))
}

fn decode_entities(s: &str) -> String {
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{diff_trees, LaDiffOptions};
    use hierdiff_matching::MatchParams;

    #[test]
    fn parses_elements_text_and_attributes() {
        let t = parse_xml(
            r#"<config version="2"><db host="localhost" port="5432">primary</db><cache/></config>"#,
        )
        .unwrap();
        t.validate().unwrap();
        assert_eq!(t.label(t.root()).as_str(), "config");
        let kids: Vec<_> = t.children(t.root()).to_vec();
        // @version, db, cache.
        assert_eq!(kids.len(), 3);
        assert_eq!(t.label(kids[0]).as_str(), "@version");
        assert_eq!(t.value(kids[0]).as_text(), Some("2"));
        let db = kids[1];
        assert_eq!(t.arity(db), 3); // @host, @port, #text
        let text = t.children(db)[2];
        assert_eq!(t.label(text), text_label());
        assert_eq!(t.value(text).as_text(), Some("primary"));
        assert_eq!(t.label(kids[2]).as_str(), "cache");
    }

    #[test]
    fn comments_pis_doctype_cdata() {
        let t =
            parse_xml("<?xml version=\"1.0\"?><!DOCTYPE r><r><!-- note --><![CDATA[a < b]]></r>")
                .unwrap();
        let leaf = t.children(t.root())[0];
        assert_eq!(t.value(leaf).as_text(), Some("a < b"));
    }

    #[test]
    fn entity_decoding() {
        let t = parse_xml(r#"<r a="x &amp; y">1 &lt; 2</r>"#).unwrap();
        let kids: Vec<_> = t.children(t.root()).to_vec();
        assert_eq!(t.value(kids[0]).as_text(), Some("x & y"));
        assert_eq!(t.value(kids[1]).as_text(), Some("1 < 2"));
    }

    #[test]
    fn strict_errors() {
        assert!(matches!(
            parse_xml("<a><b></a>"),
            Err(XmlError::MismatchedClose { .. })
        ));
        assert!(matches!(
            parse_xml("<a><b>"),
            Err(XmlError::UnclosedElements(_))
        ));
        assert!(matches!(parse_xml("</a>"), Err(XmlError::StrayClose(_))));
        assert!(matches!(parse_xml(""), Err(XmlError::NoRoot)));
        assert!(matches!(
            parse_xml("<a></a><b></b>"),
            Err(XmlError::TrailingContent(_))
        ));
        assert!(matches!(
            parse_xml("<a foo></a>"),
            Err(XmlError::Malformed(_))
        ));
    }

    #[test]
    fn recursive_nesting_allowed() {
        // Generic XML breaks the acyclic-labels condition; parsing and
        // diffing must still work.
        let t = parse_xml("<div><div><div>deep</div></div></div>").unwrap();
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn xml_config_diff_end_to_end() {
        use hierdiff_edit::edit_script;
        use hierdiff_matching::match_keyed_then_content;

        let old = parse_xml(
            r#"<config>
                 <db host="db1.internal" port="5432">primary connection</db>
                 <db host="db2.internal" port="5432">replica connection</db>
                 <cache ttl="300">memcached tier</cache>
               </config>"#,
        )
        .unwrap();
        let new = parse_xml(
            r#"<config>
                 <cache ttl="600">memcached tier</cache>
                 <db host="db1.internal" port="5432">primary connection</db>
                 <db host="db2.internal" port="5432">replica connection</db>
               </config>"#,
        )
        .unwrap();
        // Attribute rewrites ("300" → "600") share no words, so pure content
        // matching can never pair them (compare = 2 exceeds any f ≤ 1).
        // Attribute *names* are natural keys: pair `@name` nodes by label
        // when the name is unique, content-match everything else.
        let key = |t: &Tree<DocValue>, n: hierdiff_tree::NodeId| {
            let l = t.label(n);
            l.as_str().starts_with('@').then(|| l.as_str().to_string())
        };
        let matched = match_keyed_then_content(&old, &new, MatchParams::default(), key).unwrap();
        let res = edit_script(&old, &new, &matched.matching).unwrap();
        let ops = res.script.op_counts();
        // The cache block moved to the front (1 move) and its ttl changed
        // (1 update); the db blocks are untouched.
        assert_eq!(ops.moves, 1, "{}", res.script);
        assert_eq!(ops.updates, 1, "{}", res.script);
        assert_eq!(ops.inserts + ops.deletes, 0, "{}", res.script);
    }

    #[test]
    fn xml_pure_content_diff_detects_structure() {
        // Without keys: an added element and a text edit.
        let old = parse_xml(
            "<notes><item>buy milk today</item><item>call the plumber soon</item></notes>",
        )
        .unwrap();
        let new = parse_xml(
            "<notes><item>buy milk today</item><item>call the plumber soon</item><item>water the plants</item></notes>",
        )
        .unwrap();
        let out = diff_trees(old, new, &LaDiffOptions::default()).unwrap();
        assert_eq!(out.stats.ops.inserts, 2, "item + its #text");
        assert_eq!(out.stats.ops.deletes, 0);
    }
}
