//! The LaTeX-subset parser (Section 7).
//!
//! "Currently, we parse a subset of Latex consisting of sentences,
//! paragraphs, subsections, sections, lists, items, and document." This
//! parser handles exactly that subset:
//!
//! * an optional preamble up to `\begin{document}` (ignored) and
//!   `\end{document}` (stops parsing);
//! * `\section{...}` and `\subsection{...}` with brace-balanced headings;
//! * `\begin{itemize|enumerate|description}` ... `\end{...}` — all three
//!   merged into the single `List` label (Section 5.1) — containing
//!   `\item`s;
//! * blank-line paragraph breaks; `%` comments; other commands passed
//!   through as literal sentence text.

use hierdiff_tree::{NodeId, Tree};

use crate::error::{check_depth, DocError};
use crate::labels;
use crate::segment::{normalize_ws, split_sentences};
use crate::value::DocValue;

/// Parses a LaTeX document into its tree representation.
///
/// Imposes no nesting-depth ceiling; use [`try_parse_latex`] (or the
/// pipeline entry points, which default to
/// [`DEFAULT_MAX_DEPTH`](crate::DEFAULT_MAX_DEPTH)) when the input is
/// untrusted.
pub fn parse_latex(src: &str) -> Tree<DocValue> {
    Parser::new(src).run()
}

/// Parses a LaTeX document, rejecting trees nested deeper than
/// `max_depth` (root = depth 1) with [`DocError::TooDeep`].
///
/// The line-oriented parser itself never recurses — arbitrarily nested
/// list environments only grow a heap stack — so the guard runs as an
/// explicit iterative depth check on the finished tree, protecting the
/// recursive renderers and any other depth-bounded consumer downstream.
pub fn try_parse_latex(src: &str, max_depth: usize) -> Result<Tree<DocValue>, DocError> {
    let tree = Parser::new(src).run();
    check_depth(&tree, max_depth)?;
    Ok(tree)
}

struct Parser<'a> {
    lines: Vec<&'a str>,
    tree: Tree<DocValue>,
    /// Innermost structural container (Document, Section, Subsection, List,
    /// or Item) new content attaches to.
    section: NodeId,
    subsection: Option<NodeId>,
    list_stack: Vec<NodeId>, // List / Item nodes (items directly contain text)
    text: String,
    in_body: bool,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Parser<'a> {
        let tree = Tree::new(labels::document(), DocValue::None);
        let root = tree.root();
        let has_preamble = src.contains("\\begin{document}");
        Parser {
            lines: src.lines().collect(),
            tree,
            section: root,
            subsection: None,
            list_stack: Vec::new(),
            text: String::new(),
            in_body: !has_preamble,
        }
    }

    fn run(mut self) -> Tree<DocValue> {
        let lines = std::mem::take(&mut self.lines);
        for raw in lines {
            let line = strip_comment(raw);
            let trimmed = line.trim();
            if !self.in_body {
                if trimmed.starts_with("\\begin{document}") {
                    self.in_body = true;
                }
                continue;
            }
            if trimmed.starts_with("\\end{document}") {
                break;
            }
            if trimmed.is_empty() {
                self.flush_paragraph();
                continue;
            }
            if let Some(title) = command_arg(trimmed, "\\section") {
                self.flush_paragraph();
                self.close_lists();
                let root = self.tree.root();
                self.section = self.tree.push_child(
                    root,
                    labels::section(),
                    DocValue::text(normalize_ws(&title)),
                );
                self.subsection = None;
                continue;
            }
            if let Some(title) = command_arg(trimmed, "\\subsection") {
                self.flush_paragraph();
                self.close_lists();
                let sec = self.section;
                self.subsection = Some(self.tree.push_child(
                    sec,
                    labels::subsection(),
                    DocValue::text(normalize_ws(&title)),
                ));
                continue;
            }
            if let Some(env) = begin_env(trimmed) {
                if is_list_env(env) {
                    self.flush_paragraph();
                    let parent = self.container();
                    let list = self.tree.push_child(parent, labels::list(), DocValue::None);
                    self.list_stack.push(list);
                    continue;
                }
            }
            if let Some(env) = end_env(trimmed) {
                if is_list_env(env) {
                    self.flush_paragraph();
                    // Pop up to and including the innermost List node.
                    while let Some(top) = self.list_stack.pop() {
                        if self.tree.label(top) == labels::list() {
                            break;
                        }
                    }
                    continue;
                }
            }
            if let Some(rest) = trimmed.strip_prefix("\\item") {
                self.flush_paragraph();
                // An item belongs to the innermost List.
                while let Some(&top) = self.list_stack.last() {
                    if self.tree.label(top) == labels::list() {
                        break;
                    }
                    self.list_stack.pop();
                }
                if let Some(&list) = self.list_stack.last() {
                    let item = self.tree.push_child(list, labels::item(), DocValue::None);
                    self.list_stack.push(item);
                }
                let rest = rest.trim_start_matches(['[', ']']);
                if !rest.trim().is_empty() {
                    self.push_text(rest.trim());
                }
                continue;
            }
            self.push_text(trimmed);
        }
        self.flush_paragraph();
        self.tree
    }

    fn push_text(&mut self, t: &str) {
        if !self.text.is_empty() {
            self.text.push(' ');
        }
        self.text.push_str(t);
    }

    /// The node paragraphs currently attach to.
    fn container(&self) -> NodeId {
        if let Some(&top) = self.list_stack.last() {
            return top;
        }
        self.subsection.unwrap_or(self.section)
    }

    fn flush_paragraph(&mut self) {
        let text = std::mem::take(&mut self.text);
        if text.trim().is_empty() {
            return;
        }
        let sentences = split_sentences(&text);
        if sentences.is_empty() {
            return;
        }
        let container = self.container();
        // Inside an Item, sentences attach directly (items are the paper's
        // paragraph-level unit within lists); elsewhere they live under a
        // Paragraph node.
        let parent = if self.tree.label(container) == labels::item() {
            container
        } else {
            self.tree
                .push_child(container, labels::paragraph(), DocValue::None)
        };
        for s in sentences {
            self.tree
                .push_child(parent, labels::sentence(), DocValue::text(s));
        }
    }

    fn close_lists(&mut self) {
        self.list_stack.clear();
    }
}

/// Strips a trailing `%` comment (respecting `\%` escapes).
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && (i == 0 || bytes[i - 1] != b'\\') {
            return &line[..i];
        }
        i += 1;
    }
    line
}

/// If `line` starts with `cmd{...}` (ignoring a `*` variant), returns the
/// brace-balanced argument.
fn command_arg(line: &str, cmd: &str) -> Option<String> {
    let rest = line.strip_prefix(cmd)?;
    let rest = rest.strip_prefix('*').unwrap_or(rest);
    let rest = rest.trim_start();
    let rest = rest.strip_prefix('{')?;
    let mut depth = 1usize;
    let mut out = String::new();
    for c in rest.chars() {
        match c {
            '{' => {
                depth += 1;
                out.push(c);
            }
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(out);
                }
                out.push(c);
            }
            _ => out.push(c),
        }
    }
    None
}

fn begin_env(line: &str) -> Option<&str> {
    let rest = line.strip_prefix("\\begin{")?;
    rest.split('}').next()
}

fn end_env(line: &str) -> Option<&str> {
    let rest = line.strip_prefix("\\end{")?;
    rest.split('}').next()
}

fn is_list_env(env: &str) -> bool {
    matches!(env, "itemize" | "enumerate" | "description")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierdiff_tree::NodeValue;

    fn labels_of(tree: &Tree<DocValue>) -> Vec<&'static str> {
        tree.preorder().map(|n| tree.label(n).as_str()).collect()
    }

    #[test]
    fn plain_paragraphs() {
        let t = parse_latex("First sentence. Second sentence.\n\nNew paragraph here.");
        assert_eq!(
            labels_of(&t),
            vec![
                "Document",
                "Paragraph",
                "Sentence",
                "Sentence",
                "Paragraph",
                "Sentence"
            ]
        );
    }

    #[test]
    fn preamble_skipped() {
        let src = "\\documentclass{article}\n\\usepackage{x}\n\\begin{document}\nBody text here.\n\\end{document}\nAfter end ignored.";
        let t = parse_latex(src);
        assert_eq!(labels_of(&t), vec!["Document", "Paragraph", "Sentence"]);
        let s = t.leaves().next().unwrap();
        assert_eq!(t.value(s).as_text(), Some("Body text here."));
    }

    #[test]
    fn sections_and_subsections() {
        let src = "\\section{Intro}\nIntro text.\n\\subsection{Detail}\nDetail text.\n\\section{Next}\nMore.";
        let t = parse_latex(src);
        assert_eq!(
            labels_of(&t),
            vec![
                "Document",
                "Section",
                "Paragraph",
                "Sentence",
                "Subsection",
                "Paragraph",
                "Sentence",
                "Section",
                "Paragraph",
                "Sentence"
            ]
        );
        let sections: Vec<_> = t
            .preorder()
            .filter(|&n| t.label(n) == labels::section())
            .collect();
        assert_eq!(t.value(sections[0]).as_text(), Some("Intro"));
        assert_eq!(t.value(sections[1]).as_text(), Some("Next"));
    }

    #[test]
    fn all_three_list_envs_merge_to_list() {
        for env in ["itemize", "enumerate", "description"] {
            let src = format!(
                "\\begin{{{env}}}\n\\item First point.\n\\item Second point.\n\\end{{{env}}}"
            );
            let t = parse_latex(&src);
            assert_eq!(
                labels_of(&t),
                vec!["Document", "List", "Item", "Sentence", "Item", "Sentence"],
                "{env}"
            );
        }
    }

    #[test]
    fn nested_lists() {
        let src = "\\begin{itemize}\n\\item Outer.\n\\begin{enumerate}\n\\item Inner.\n\\end{enumerate}\n\\item Outer again.\n\\end{itemize}";
        let t = parse_latex(src);
        // Outer List > Item(Outer.) , nested List under the first item's
        // list? The inner list attaches to the innermost container (the
        // Item).
        let list_count = t
            .preorder()
            .filter(|&n| t.label(n) == labels::list())
            .count();
        assert_eq!(list_count, 2);
        t.validate().unwrap();
    }

    #[test]
    fn comments_stripped() {
        let t = parse_latex("Visible text. % hidden comment. more hidden\n\nNext.");
        let sentences: Vec<_> = t
            .leaves()
            .map(|n| t.value(n).as_text().unwrap().to_string())
            .collect();
        assert_eq!(sentences, vec!["Visible text.", "Next."]);
    }

    #[test]
    fn escaped_percent_kept() {
        let t = parse_latex("Fifty \\% of tests pass.");
        let s = t.leaves().next().unwrap();
        assert!(t.value(s).as_text().unwrap().contains("\\%"));
    }

    #[test]
    fn multiline_paragraph_joined() {
        let t = parse_latex("This sentence\nspans two lines. And another.");
        let sentences: Vec<_> = t
            .leaves()
            .map(|n| t.value(n).as_text().unwrap().to_string())
            .collect();
        assert_eq!(
            sentences,
            vec!["This sentence spans two lines.", "And another."]
        );
    }

    #[test]
    fn section_closes_open_list() {
        let src = "\\begin{itemize}\n\\item Point.\n\\end{itemize}\n\\section{After}\nText.";
        let t = parse_latex(src);
        // The section is a child of the document, not of the list.
        let sec = t
            .preorder()
            .find(|&n| t.label(n) == labels::section())
            .unwrap();
        assert_eq!(t.parent(sec), Some(t.root()));
    }

    #[test]
    fn braces_in_headings() {
        let t = parse_latex("\\section{The \\TeX{} book}\nText.");
        let sec = t
            .preorder()
            .find(|&n| t.label(n) == labels::section())
            .unwrap();
        assert_eq!(t.value(sec).as_text(), Some("The \\TeX{} book"));
    }

    #[test]
    fn empty_document() {
        let t = parse_latex("");
        assert_eq!(t.len(), 1);
        assert!(t.value(t.root()).is_null());
    }

    #[test]
    fn starred_sections() {
        let t = parse_latex("\\section*{Unnumbered}\nText.");
        let sec = t
            .preorder()
            .find(|&n| t.label(n) == labels::section())
            .unwrap();
        assert_eq!(t.value(sec).as_text(), Some("Unnumbered"));
    }

    #[test]
    fn depth_guard_rejects_10k_deep_document() {
        // 5000 nested list environments: each level adds a List and an Item
        // node, and the innermost item carries a Sentence leaf, so the tree
        // is 1 + 2*5000 + 1 = 10_002 levels deep.
        let n = 5_000;
        let mut src = String::new();
        for _ in 0..n {
            src.push_str("\\begin{itemize}\n\\item x\n");
        }
        for _ in 0..n {
            src.push_str("\\end{itemize}\n");
        }
        let err = try_parse_latex(&src, 512).unwrap_err();
        match err {
            DocError::TooDeep { depth, limit } => {
                assert_eq!(depth, 10_002);
                assert_eq!(limit, 512);
            }
            other => panic!("expected TooDeep, got {other:?}"),
        }
        // The guard is configurable: a forgiving ceiling admits the same
        // document.
        assert!(try_parse_latex(&src, 20_000).is_ok());
    }

    #[test]
    fn depth_guard_admits_ordinary_documents() {
        let t = try_parse_latex("\\section{A}\nSome text here.", 512).unwrap();
        assert!(t.len() > 1);
    }

    #[test]
    fn acyclic_schema_holds() {
        let src = "\\section{A}\nPara one. Two.\n\\begin{itemize}\n\\item Point one.\n\\item Point two.\n\\end{itemize}\n\\subsection{B}\nMore text.";
        let t = parse_latex(src);
        t.validate().unwrap();
        assert!(hierdiff_matching::check_acyclic(&t, &t).is_ok());
    }
}
