//! A Markdown-subset parser — the modern analog of the paper's LaTeX
//! subset. Section 7 notes the implementation "can easily handle other
//! kinds of structured documents ... by changing the parsing routines";
//! this module is that claim exercised a third time (after HTML and XML).
//!
//! Supported subset, mapped onto the shared document schema:
//!
//! * `# Heading` → Section (value = heading text), `## Heading` →
//!   Subsection; deeper heading levels fold into Subsection;
//! * `- item` / `* item` / `+ item` / `1. item` → List/Item (all list
//!   syntaxes merge into the single `List` label, per Section 5.1's
//!   acyclicity fix — continuation lines indent under the item);
//! * blank-line-separated paragraphs of sentences;
//! * `` ``` `` fenced code blocks → a single sentence-like leaf per block
//!   (code is compared verbatim, not segmented).

use hierdiff_tree::{NodeId, Tree};

use crate::labels;
use crate::segment::{normalize_ws, split_sentences};
use crate::value::DocValue;

/// Parses a Markdown document into its tree representation.
pub fn parse_markdown(src: &str) -> Tree<DocValue> {
    let mut tree = Tree::new(labels::document(), DocValue::None);
    let root = tree.root();
    let mut p = Parser {
        tree: &mut tree,
        section: root,
        subsection: None,
        list: None,
        item: None,
        text: String::new(),
    };
    let mut lines = src.lines().peekable();
    while let Some(line) = lines.next() {
        let trimmed = line.trim_end();
        // Fenced code block: consume to the closing fence.
        if trimmed.trim_start().starts_with("```") {
            p.flush_paragraph();
            let mut code = String::new();
            for code_line in lines.by_ref() {
                if code_line.trim_start().starts_with("```") {
                    break;
                }
                if !code.is_empty() {
                    code.push('\n');
                }
                code.push_str(code_line);
            }
            p.push_code_block(&code);
            continue;
        }
        if trimmed.trim().is_empty() {
            p.flush_paragraph();
            p.item = None;
            continue;
        }
        if let Some((level, title)) = heading_of(trimmed) {
            p.flush_paragraph();
            p.close_lists();
            if level == 1 {
                let root = p.tree.root();
                p.section = p
                    .tree
                    .push_child(root, labels::section(), DocValue::text(title));
                p.subsection = None;
            } else {
                let sec = p.section;
                p.subsection = Some(p.tree.push_child(
                    sec,
                    labels::subsection(),
                    DocValue::text(title),
                ));
            }
            continue;
        }
        if let Some(rest) = list_item_of(trimmed) {
            p.flush_paragraph();
            let list = match p.list {
                Some(list) => list,
                None => {
                    let parent = p.container();
                    let list = p.tree.push_child(parent, labels::list(), DocValue::None);
                    p.list = Some(list);
                    list
                }
            };
            p.item = Some(p.tree.push_child(list, labels::item(), DocValue::None));
            p.push_text(rest);
            continue;
        }
        if p.item.is_some() && line.starts_with(' ') {
            // Continuation of the current list item.
            p.push_text(trimmed.trim());
            continue;
        }
        // Plain paragraph text ends any open list.
        if p.item.is_some() || p.list.is_some() {
            p.flush_paragraph();
            p.close_lists();
        }
        p.push_text(trimmed.trim());
    }
    p.flush_paragraph();
    tree
}

fn heading_of(line: &str) -> Option<(u8, String)> {
    let hashes = line.chars().take_while(|&c| c == '#').count();
    if hashes == 0 || hashes > 6 {
        return None;
    }
    let rest = &line[hashes..];
    if !rest.starts_with(' ') && !rest.is_empty() {
        return None;
    }
    let title = rest.trim().trim_end_matches('#').trim();
    Some((if hashes == 1 { 1 } else { 2 }, normalize_ws(title)))
}

fn list_item_of(line: &str) -> Option<&str> {
    let t = line.trim_start();
    for marker in ["- ", "* ", "+ "] {
        if let Some(rest) = t.strip_prefix(marker) {
            return Some(rest.trim());
        }
    }
    // Ordered list: digits followed by ". " or ") ".
    let digits = t.chars().take_while(|c| c.is_ascii_digit()).count();
    if digits > 0 {
        let rest = &t[digits..];
        if let Some(r) = rest.strip_prefix(". ").or_else(|| rest.strip_prefix(") ")) {
            return Some(r.trim());
        }
    }
    None
}

struct Parser<'t> {
    tree: &'t mut Tree<DocValue>,
    section: NodeId,
    subsection: Option<NodeId>,
    list: Option<NodeId>,
    item: Option<NodeId>,
    text: String,
}

impl Parser<'_> {
    fn container(&self) -> NodeId {
        if let Some(item) = self.item {
            return item;
        }
        if let Some(list) = self.list {
            return list;
        }
        self.subsection.unwrap_or(self.section)
    }

    fn push_text(&mut self, t: &str) {
        if !self.text.is_empty() {
            self.text.push(' ');
        }
        self.text.push_str(t);
    }

    fn push_code_block(&mut self, code: &str) {
        let container = self.container();
        let parent = if self.tree.label(container) == labels::item() {
            container
        } else {
            self.tree
                .push_child(container, labels::paragraph(), DocValue::None)
        };
        self.tree
            .push_child(parent, labels::sentence(), DocValue::text(code));
    }

    fn flush_paragraph(&mut self) {
        let text = std::mem::take(&mut self.text);
        if text.trim().is_empty() {
            return;
        }
        let container = self.container();
        let parent = if self.tree.label(container) == labels::item() {
            container
        } else {
            self.tree
                .push_child(container, labels::paragraph(), DocValue::None)
        };
        for s in split_sentences(&text) {
            self.tree
                .push_child(parent, labels::sentence(), DocValue::text(s));
        }
        // A flushed paragraph closes the current item but not the list.
        if self.tree.label(container) == labels::item() {
            self.item = None;
        }
    }

    fn close_lists(&mut self) {
        self.list = None;
        self.item = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels_of(tree: &Tree<DocValue>) -> Vec<&'static str> {
        tree.preorder().map(|n| tree.label(n).as_str()).collect()
    }

    #[test]
    fn headings_paragraphs_sentences() {
        let t = parse_markdown(
            "# Title\n\nFirst sentence. Second sentence.\n\n## Sub\n\nMore text here.\n",
        );
        assert_eq!(
            labels_of(&t),
            vec![
                "Document",
                "Section",
                "Paragraph",
                "Sentence",
                "Sentence",
                "Subsection",
                "Paragraph",
                "Sentence"
            ]
        );
        let sec = t.children(t.root())[0];
        assert_eq!(t.value(sec).as_text(), Some("Title"));
    }

    #[test]
    fn all_list_markers_merge() {
        for marker in ["-", "*", "+", "1.", "2)"] {
            let t = parse_markdown(&format!("{marker} first point\n{marker} second point\n"));
            assert_eq!(
                labels_of(&t),
                vec!["Document", "List", "Item", "Sentence", "Item", "Sentence"],
                "marker {marker}"
            );
        }
    }

    #[test]
    fn item_continuation_lines() {
        let t = parse_markdown("- first line of the item\n  continues here.\n- second item.\n");
        let list = t.children(t.root())[0];
        let items: Vec<_> = t.children(list).to_vec();
        assert_eq!(items.len(), 2);
        let s = t.children(items[0])[0];
        assert_eq!(
            t.value(s).as_text(),
            Some("first line of the item continues here.")
        );
    }

    #[test]
    fn fenced_code_is_one_leaf() {
        let t = parse_markdown("Intro sentence.\n\n```\nlet x = 1;\nlet y = 2;\n```\n\nAfter.\n");
        let code = t
            .leaves()
            .find(|&l| t.value(l).as_text().unwrap_or("").contains("let x"))
            .expect("code leaf");
        assert_eq!(t.value(code).as_text(), Some("let x = 1;\nlet y = 2;"));
        t.validate().unwrap();
    }

    #[test]
    fn deeper_headings_fold_to_subsection() {
        let t = parse_markdown("# A\n\n### Deep\n\ntext here.\n");
        assert!(labels_of(&t).contains(&"Subsection"));
    }

    #[test]
    fn trailing_hashes_stripped() {
        let t = parse_markdown("## Closed ##\n\ntext.\n");
        let sub = t
            .preorder()
            .find(|&n| t.label(n) == labels::subsection())
            .unwrap();
        assert_eq!(t.value(sub).as_text(), Some("Closed"));
    }

    #[test]
    fn not_a_heading_without_space() {
        let t = parse_markdown("#hashtag is plain text.\n");
        assert_eq!(labels_of(&t), vec!["Document", "Paragraph", "Sentence"]);
    }

    #[test]
    fn markdown_diff_end_to_end() {
        use crate::pipeline::{diff_trees, LaDiffOptions};
        let t1 = parse_markdown(
            "# Notes\n\nKeep one here. Keep two here. Keep three here. Remove this one.\n\n- stable item one\n- stable item two\n",
        );
        let t2 = parse_markdown(
            "# Notes\n\nKeep one here. Keep two here. Keep three here.\n\n- stable item one\n- stable item two\n- brand new item\n",
        );
        let out = diff_trees(t1, t2, &LaDiffOptions::default()).unwrap();
        assert_eq!(out.stats.ops.deletes, 1, "{:?}", out.stats.ops);
        // New item = Item node + its sentence.
        assert_eq!(out.stats.ops.inserts, 2, "{:?}", out.stats.ops);
    }

    #[test]
    fn empty_and_whitespace() {
        assert_eq!(parse_markdown("").len(), 1);
        assert_eq!(parse_markdown("\n\n\n").len(), 1);
    }
}
