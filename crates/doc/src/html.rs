//! The HTML-subset parser — the extension the paper lists as ongoing work
//! ("extending it to HTML and SGML documents ... incorporate the diff
//! program in a web browser", Section 9) and the motivating example of the
//! introduction (watching web documents change between visits).
//!
//! Handled subset, mapped onto the same schema as the LaTeX parser:
//! `<h1>`/`<h2>` → Section/Subsection (heading text as value), `<p>` →
//! Paragraph, `<ul>`/`<ol>`/`<dl>` → List (merged, as in Section 5.1),
//! `<li>`/`<dt>`/`<dd>` → Item, free text → sentences. Unknown tags are
//! stripped; entities `&amp; &lt; &gt; &quot; &nbsp;` are decoded.

use hierdiff_tree::{NodeId, Tree};

use crate::labels;
use crate::segment::split_sentences;
use crate::value::DocValue;

/// Parses an HTML document into its tree representation.
pub fn parse_html(src: &str) -> Tree<DocValue> {
    let tokens = tokenize(src);
    let tree = Tree::new(labels::document(), DocValue::None);
    let root = tree.root();
    let mut p = Parser {
        tree,
        section: root,
        subsection: None,
        list_stack: Vec::new(),
        text: String::new(),
        in_paragraph: false,
        heading: None,
    };
    for tok in tokens {
        p.feed(tok);
    }
    p.flush_text();
    p.tree
}

enum Token {
    Open(String),
    Close(String),
    Text(String),
}

fn tokenize(src: &str) -> Vec<Token> {
    let mut out = Vec::new();
    let mut chars = src.char_indices().peekable();
    let bytes = src;
    let mut text_start = 0usize;
    while let Some((i, c)) = chars.next() {
        if c == '<' {
            if i > text_start {
                push_text(&mut out, &bytes[text_start..i]);
            }
            // Find the closing '>'.
            let mut end = None;
            for (j, d) in chars.by_ref() {
                if d == '>' {
                    end = Some(j);
                    break;
                }
            }
            let Some(end) = end else {
                text_start = bytes.len();
                break;
            };
            let inner = &bytes[i + 1..end];
            text_start = end + 1;
            if inner.starts_with("!--") || inner.starts_with('!') || inner.starts_with('?') {
                continue; // comment/doctype/PI
            }
            let (closing, name_part) = match inner.strip_prefix('/') {
                Some(rest) => (true, rest),
                None => (false, inner),
            };
            let name: String = name_part
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric())
                .collect::<String>()
                .to_ascii_lowercase();
            if name.is_empty() {
                continue;
            }
            if closing {
                out.push(Token::Close(name));
            } else {
                out.push(Token::Open(name));
            }
        }
    }
    if text_start < bytes.len() {
        push_text(&mut out, &bytes[text_start..]);
    }
    out
}

fn push_text(out: &mut Vec<Token>, raw: &str) {
    let decoded = decode_entities(raw);
    if !decoded.trim().is_empty() {
        out.push(Token::Text(decoded));
    }
}

fn decode_entities(s: &str) -> String {
    s.replace("&amp;", "&")
        .replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&nbsp;", " ")
}

struct Parser {
    tree: Tree<DocValue>,
    section: NodeId,
    subsection: Option<NodeId>,
    list_stack: Vec<NodeId>,
    text: String,
    in_paragraph: bool,
    /// When inside `<h1>`/`<h2>`, accumulates the heading text and records
    /// the level.
    heading: Option<(u8, String)>,
}

impl Parser {
    fn feed(&mut self, tok: Token) {
        match tok {
            Token::Text(t) => {
                if let Some((_, buf)) = &mut self.heading {
                    if !buf.is_empty() {
                        buf.push(' ');
                    }
                    buf.push_str(t.trim());
                } else {
                    if !self.text.is_empty() {
                        self.text.push(' ');
                    }
                    self.text.push_str(t.trim());
                }
            }
            Token::Open(name) => match name.as_str() {
                "h1" => {
                    self.flush_text();
                    self.heading = Some((1, String::new()));
                }
                "h2" => {
                    self.flush_text();
                    self.heading = Some((2, String::new()));
                }
                "p" => {
                    self.flush_text();
                    self.in_paragraph = true;
                }
                "ul" | "ol" | "dl" => {
                    self.flush_text();
                    let parent = self.container();
                    let list = self.tree.push_child(parent, labels::list(), DocValue::None);
                    self.list_stack.push(list);
                }
                "li" | "dt" | "dd" => {
                    self.flush_text();
                    while let Some(&top) = self.list_stack.last() {
                        if self.tree.label(top) == labels::list() {
                            break;
                        }
                        self.list_stack.pop();
                    }
                    if let Some(&list) = self.list_stack.last() {
                        let item = self.tree.push_child(list, labels::item(), DocValue::None);
                        self.list_stack.push(item);
                    }
                }
                "br" if !self.text.is_empty() => self.text.push(' '),
                _ => {}
            },
            Token::Close(name) => match name.as_str() {
                "h1" | "h2" => {
                    if let Some((level, title)) = self.heading.take() {
                        let root = self.tree.root();
                        if level == 1 {
                            self.section = self.tree.push_child(
                                root,
                                labels::section(),
                                DocValue::text(title),
                            );
                            self.subsection = None;
                        } else {
                            let sec = self.section;
                            self.subsection = Some(self.tree.push_child(
                                sec,
                                labels::subsection(),
                                DocValue::text(title),
                            ));
                        }
                        self.list_stack.clear();
                    }
                }
                "p" => {
                    self.flush_text();
                    self.in_paragraph = false;
                }
                "ul" | "ol" | "dl" => {
                    self.flush_text();
                    while let Some(top) = self.list_stack.pop() {
                        if self.tree.label(top) == labels::list() {
                            break;
                        }
                    }
                }
                "li" | "dt" | "dd" => {
                    self.flush_text();
                    while let Some(&top) = self.list_stack.last() {
                        if self.tree.label(top) == labels::list() {
                            break;
                        }
                        self.list_stack.pop();
                    }
                }
                _ => {}
            },
        }
    }

    fn container(&self) -> NodeId {
        if let Some(&top) = self.list_stack.last() {
            return top;
        }
        self.subsection.unwrap_or(self.section)
    }

    fn flush_text(&mut self) {
        let text = std::mem::take(&mut self.text);
        if text.trim().is_empty() {
            return;
        }
        let container = self.container();
        let parent = if self.tree.label(container) == labels::item() {
            container
        } else {
            self.tree
                .push_child(container, labels::paragraph(), DocValue::None)
        };
        for s in split_sentences(&text) {
            self.tree
                .push_child(parent, labels::sentence(), DocValue::text(s));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels_of(tree: &Tree<DocValue>) -> Vec<&'static str> {
        tree.preorder().map(|n| tree.label(n).as_str()).collect()
    }

    #[test]
    fn paragraphs_and_sentences() {
        let t = parse_html("<p>First sentence. Second one.</p><p>Next para.</p>");
        assert_eq!(
            labels_of(&t),
            vec![
                "Document",
                "Paragraph",
                "Sentence",
                "Sentence",
                "Paragraph",
                "Sentence"
            ]
        );
    }

    #[test]
    fn headings_make_sections() {
        let t = parse_html(
            "<h1>Title One</h1><p>Text.</p><h2>Sub</h2><p>More.</p><h1>Title Two</h1><p>End.</p>",
        );
        assert_eq!(
            labels_of(&t),
            vec![
                "Document",
                "Section",
                "Paragraph",
                "Sentence",
                "Subsection",
                "Paragraph",
                "Sentence",
                "Section",
                "Paragraph",
                "Sentence"
            ]
        );
        let sec = t
            .preorder()
            .find(|&n| t.label(n) == labels::section())
            .unwrap();
        assert_eq!(t.value(sec).as_text(), Some("Title One"));
    }

    #[test]
    fn lists_merge_and_items() {
        for tag in ["ul", "ol", "dl"] {
            let (open, close, li) = (format!("<{tag}>"), format!("</{tag}>"), "<li>");
            let t = parse_html(&format!(
                "{open}{li}Point one.</li>{li}Point two.</li>{close}"
            ));
            assert_eq!(
                labels_of(&t),
                vec!["Document", "List", "Item", "Sentence", "Item", "Sentence"],
                "{tag}"
            );
        }
    }

    #[test]
    fn unknown_tags_stripped() {
        let t = parse_html("<div><p>Hello <b>bold</b> world.</p></div>");
        let s: Vec<_> = t
            .leaves()
            .map(|n| t.value(n).as_text().unwrap().to_string())
            .collect();
        assert_eq!(s, vec!["Hello bold world."]);
    }

    #[test]
    fn entities_decoded() {
        let t = parse_html("<p>Tom &amp; Jerry &lt;3.</p>");
        let s = t.leaves().next().unwrap();
        assert_eq!(t.value(s).as_text(), Some("Tom & Jerry <3."));
    }

    #[test]
    fn comments_and_doctype_ignored() {
        let t = parse_html("<!DOCTYPE html><!-- note --><p>Real text.</p>");
        assert_eq!(t.leaves().count(), 1);
    }

    #[test]
    fn implicit_paragraph_for_bare_text() {
        let t = parse_html("Bare text outside tags.");
        assert_eq!(labels_of(&t), vec!["Document", "Paragraph", "Sentence"]);
    }

    #[test]
    fn unclosed_paragraphs_tolerated() {
        let t = parse_html("<p>One.<p>Two.");
        assert_eq!(t.leaves().count(), 2);
        t.validate().unwrap();
    }

    #[test]
    fn attributes_ignored() {
        let t = parse_html(r#"<p class="x" id="y">Styled text.</p>"#);
        let s = t.leaves().next().unwrap();
        assert_eq!(t.value(s).as_text(), Some("Styled text."));
    }

    #[test]
    fn empty_input() {
        let t = parse_html("");
        assert_eq!(t.len(), 1);
    }
}
