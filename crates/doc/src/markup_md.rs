//! Markdown rendering of document deltas — Table 2's conventions in
//! GitHub-flavoured Markdown, for change reports that land in READMEs,
//! pull requests, and chat:
//!
//! | unit × op | markup |
//! |---|---|
//! | sentence insert | `**bold**` |
//! | sentence delete | `~~strikethrough~~` |
//! | sentence update | `*italics*` |
//! | sentence move | `*text* [→ S1]` at the new position, `~~text~~ [S1]` at the old |
//! | paragraph/item change | `> **[inserted paragraph]**`-style lead-ins |
//! | section change | `(ins)`/`(del)`/`(upd)`/`(mov)` badge in the heading |

use std::collections::HashMap;
use std::fmt::Write as _;

use hierdiff_delta::{Annotation, DeltaNodeId, DeltaTree};

use crate::error::DocError;
use crate::labels;
use crate::value::DocValue;

/// Renders the delta tree as annotated Markdown, rejecting deltas nested
/// deeper than `max_depth` (root = depth 1) with [`DocError::TooDeep`].
///
/// The renderer recurses once per tree level, so the guard runs as an
/// explicit iterative depth check *before* rendering: deeply nested input
/// becomes a typed error instead of a stack overflow. Deltas produced by
/// [`diff_trees`](crate::diff_trees) are already depth-bounded by
/// [`LaDiffOptions::max_depth`](crate::LaDiffOptions); this entry point is
/// for hand-built or externally sourced delta trees.
pub fn try_render_markdown(
    delta: &DeltaTree<DocValue>,
    max_depth: usize,
) -> Result<String, DocError> {
    let depth = delta_depth(delta);
    if depth > max_depth {
        return Err(DocError::TooDeep {
            depth,
            limit: max_depth,
        });
    }
    Ok(render_markdown(delta))
}

/// Maximum root-to-leaf depth of `delta` (root alone = 1), computed
/// iteratively.
fn delta_depth(delta: &DeltaTree<DocValue>) -> usize {
    let mut max = 0usize;
    let mut stack = vec![(delta.root(), 1usize)];
    while let Some((node, depth)) = stack.pop() {
        max = max.max(depth);
        for &child in delta.children(node) {
            stack.push((child, depth + 1));
        }
    }
    max
}

/// Renders the delta tree of a document pair as annotated Markdown.
pub fn render_markdown(delta: &DeltaTree<DocValue>) -> String {
    let mut mark_names: HashMap<DeltaNodeId, usize> = HashMap::new();
    for id in delta.preorder() {
        match delta.annotation(id) {
            Annotation::Marker { .. } => {
                let n = mark_names.len() + 1;
                mark_names.entry(id).or_insert(n);
            }
            Annotation::Moved { mark, .. } => {
                let n = mark_names.len() + 1;
                mark_names.entry(*mark).or_insert(n);
            }
            _ => {}
        }
    }
    let mut out = String::new();
    let mut r = MdRenderer {
        delta,
        mark_names,
        out: &mut out,
    };
    r.children(delta.root());
    out
}

struct MdRenderer<'a> {
    delta: &'a DeltaTree<DocValue>,
    mark_names: HashMap<DeltaNodeId, usize>,
    out: &'a mut String,
}

impl MdRenderer<'_> {
    fn children(&mut self, id: DeltaNodeId) {
        for &c in self.delta.children(id) {
            self.node(c, 0);
        }
    }

    fn node(&mut self, id: DeltaNodeId, list_depth: usize) {
        let label = self.delta.label(id);
        if label == labels::sentence() {
            self.sentence(id);
        } else if label == labels::section() || label == labels::subsection() {
            self.heading(id);
        } else if label == labels::paragraph() {
            self.paragraph(id, list_depth);
        } else if label == labels::item() {
            self.item(id, list_depth);
        } else if label == labels::list() {
            for &c in self.delta.children(id) {
                self.node(c, list_depth + 1);
            }
        } else {
            self.children(id);
        }
    }

    fn text(&self, id: DeltaNodeId) -> String {
        self.delta.value(id).as_text().unwrap_or("").to_string()
    }

    fn mark_no(&self, id: &DeltaNodeId) -> usize {
        self.mark_names.get(id).copied().unwrap_or(0)
    }

    fn sentence(&mut self, id: DeltaNodeId) {
        let text = self.text(id);
        match self.delta.annotation(id) {
            Annotation::Identical => {
                let _ = write!(self.out, "{text} ");
            }
            Annotation::Inserted => {
                let _ = write!(self.out, "**{text}** ");
            }
            Annotation::Deleted => {
                let _ = write!(self.out, "~~{text}~~ ");
            }
            Annotation::Updated { .. } => {
                let _ = write!(self.out, "*{text}* ");
            }
            Annotation::Moved { mark, old } => {
                let n = self.mark_no(mark);
                if old.is_some() {
                    let _ = write!(self.out, "*{text}* [→ S{n}] ");
                } else {
                    let _ = write!(self.out, "{text} [→ S{n}] ");
                }
            }
            Annotation::Marker { .. } => {
                let n = self.mark_no(&id);
                let _ = write!(self.out, "~~{text}~~ [S{n}] ");
            }
        }
    }

    fn heading(&mut self, id: DeltaNodeId) {
        let hashes = if self.delta.label(id) == labels::section() {
            "#"
        } else {
            "##"
        };
        let title = self.text(id);
        let badge = match self.delta.annotation(id) {
            Annotation::Identical => "",
            Annotation::Inserted => "(ins) ",
            Annotation::Deleted => "(del) ",
            Annotation::Updated { .. } => "(upd) ",
            Annotation::Moved { .. } => "(mov) ",
            Annotation::Marker { .. } => {
                let n = self.mark_no(&id);
                let _ = writeln!(self.out, "> *[section moved: S{n}]*\n");
                return;
            }
        };
        let _ = writeln!(self.out, "{hashes} {badge}{title}\n");
        self.children(id);
    }

    fn paragraph(&mut self, id: DeltaNodeId, list_depth: usize) {
        match self.delta.annotation(id) {
            Annotation::Inserted => {
                let _ = write!(self.out, "> **[inserted paragraph]** ");
            }
            Annotation::Deleted => {
                let _ = write!(self.out, "> **[deleted paragraph]** ");
            }
            Annotation::Moved { mark, .. } => {
                let n = self.mark_no(mark);
                let _ = write!(self.out, "> **[paragraph moved from P{n}]** ");
            }
            Annotation::Marker { .. } => {
                let n = self.mark_no(&id);
                let _ = writeln!(self.out, "> *[old paragraph position: P{n}]*\n");
                return;
            }
            _ => {}
        }
        for &c in self.delta.children(id) {
            self.node(c, list_depth);
        }
        let _ = writeln!(self.out, "\n");
    }

    fn item(&mut self, id: DeltaNodeId, list_depth: usize) {
        let indent = "  ".repeat(list_depth.saturating_sub(1));
        let _ = write!(self.out, "{indent}- ");
        match self.delta.annotation(id) {
            Annotation::Inserted => {
                let _ = write!(self.out, "**[new]** ");
            }
            Annotation::Deleted => {
                let _ = write!(self.out, "~~[removed]~~ ");
            }
            Annotation::Moved { mark, .. } => {
                let n = self.mark_no(mark);
                let _ = write!(self.out, "*[moved from P{n}]* ");
            }
            Annotation::Marker { .. } => {
                let n = self.mark_no(&id);
                let _ = writeln!(self.out, "*[old item position: P{n}]*");
                return;
            }
            _ => {}
        }
        for &c in self.delta.children(id) {
            self.node(c, list_depth);
        }
        let _ = writeln!(self.out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::markdown::parse_markdown;
    use crate::pipeline::{diff_trees, LaDiffOptions};

    fn md_delta(old: &str, new: &str) -> String {
        let t1 = parse_markdown(old);
        let t2 = parse_markdown(new);
        let out = diff_trees(t1, t2, &LaDiffOptions::default()).unwrap();
        render_markdown(&out.delta)
    }

    #[test]
    fn insert_bold_delete_strike() {
        let out = md_delta(
            "# T\n\nStable one here. Doomed line here. Stable two here. Stable three here.\n",
            "# T\n\nStable one here. Stable two here. Fresh line here. Stable three here.\n",
        );
        assert!(out.contains("**Fresh line here.**"), "{out}");
        assert!(out.contains("~~Doomed line here.~~"), "{out}");
        assert!(out.contains("# T"), "{out}");
    }

    #[test]
    fn moves_pair_labels() {
        let out = md_delta(
            "# T\n\nMover sentence goes south. Anchor alpha stays. Anchor beta stays.\n",
            "# T\n\nAnchor alpha stays. Anchor beta stays. Mover sentence goes south.\n",
        );
        assert!(out.contains("Mover sentence goes south. [→ S1]"), "{out}");
        assert!(out.contains("~~Mover sentence goes south.~~ [S1]"), "{out}");
    }

    #[test]
    fn updated_heading_badge() {
        let out = md_delta(
            "# Old Name\n\nBody one stays. Body two stays. Body three stays.\n",
            "# New Name\n\nBody one stays. Body two stays. Body three stays.\n",
        );
        assert!(out.contains("# (upd) New Name"), "{out}");
    }

    #[test]
    fn list_items_render_with_markers() {
        let out = md_delta(
            "- first point stays\n- second point stays\n",
            "- first point stays\n- second point stays\n- third point added\n",
        );
        assert!(out.contains("- **[new]** **third point added**"), "{out}");
        assert!(out.contains("- first point stays"), "{out}");
    }

    #[test]
    fn try_render_guards_depth() {
        use crate::latex::try_parse_latex;
        let mut src = String::new();
        for _ in 0..300 {
            src.push_str("\\begin{itemize}\n\\item x\n");
        }
        for _ in 0..300 {
            src.push_str("\\end{itemize}\n");
        }
        let t = try_parse_latex(&src, 10_000).unwrap();
        let opts = LaDiffOptions {
            max_depth: 10_000,
            ..LaDiffOptions::default()
        };
        let out = diff_trees(t.clone(), t, &opts).unwrap();
        let err = try_render_markdown(&out.delta, 512).unwrap_err();
        assert!(matches!(err, DocError::TooDeep { .. }), "{err:?}");
        assert!(try_render_markdown(&out.delta, 10_000).is_ok());
    }

    #[test]
    fn roundtrip_is_parseable_markdown() {
        // The rendered output is itself valid input for the parser (the
        // annotations ride inside sentences).
        let out = md_delta(
            "# T\n\nAlpha stays here. Beta stays here.\n",
            "# T\n\nAlpha stays here. Beta stays here. Gamma arrives.\n",
        );
        let t = parse_markdown(&out);
        t.validate().unwrap();
        assert!(t.len() > 3);
    }
}
