//! # hierdiff-doc
//!
//! **LaDiff** — the structured-document change-detection application of
//! Chawathe et al. (SIGMOD 1996), Section 7 and Appendix A: "takes two
//! versions of a Latex document as input and produces as output a Latex
//! document with the changes marked."
//!
//! * [`parse_latex`] / [`parse_html`] — format parsers producing the
//!   document tree (`Document > Section > Subsection > Paragraph/List/Item >
//!   Sentence`), with LaTeX's three list environments merged into one
//!   `List` label (Section 5.1's acyclicity fix).
//! * [`DocValue`] / [`word_distance`] — the word-LCS sentence `compare`.
//! * [`ladiff`] — the end-to-end pipeline (parse → match → edit script →
//!   delta tree → markup).
//! * [`render_latex`] — the Table 2 mark-up conventions.
//!
//! A command-line front end ships as the `ladiff` binary.
//!
//! ```
//! use hierdiff_doc::{ladiff, LaDiffOptions};
//!
//! let old = "One stays the same. Two stays the same. Three goes away now.";
//! let new = "One stays the same. Two stays the same. Four arrives here now.";
//! let out = ladiff(old, new, &LaDiffOptions::default()).unwrap();
//! assert_eq!(out.stats.ops.inserts, 1);
//! assert_eq!(out.stats.ops.deletes, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod html;
mod latex;
mod markdown;
mod markup;
mod markup_html;
mod markup_md;
mod pipeline;
mod segment;
mod value;
mod xml;

pub mod labels;

pub use error::{DocError, DEFAULT_MAX_DEPTH};
pub use html::parse_html;
pub use latex::{parse_latex, try_parse_latex};
pub use markdown::parse_markdown;
pub use markup::render_latex;
pub use markup_html::{escape_html, refine_words, render_html, render_html_with, HtmlOptions};
pub use markup_md::{render_markdown, try_render_markdown};
pub use pipeline::{
    diff_trees, ladiff, DocFormat, Engine, LaDiffOptions, LaDiffOutput, LaDiffStats,
};
pub use segment::{normalize_ws, split_paragraphs, split_sentences};
pub use value::{word_distance, words, DocValue};
pub use xml::{parse_xml, text_label, XmlError};
