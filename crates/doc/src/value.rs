//! The document node value and the sentence `compare` function.
//!
//! Section 7: "Our comparison function for leaf nodes — which are
//! sentences — first computes the LCS of the words in the sentences, then
//! counts the number of words not in the LCS." Normalized into the
//! `[0, 2]` range required by the cost model (Section 3.2):
//!
//! ```text
//! compare(s1, s2) = (|w1| + |w2| − 2·|LCS(w1, w2)|) / max(|w1|, |w2|)
//! ```
//!
//! Identical sentences score 0; completely disjoint equal-length sentences
//! score 2; and the cost-model consistency rule holds — an update is cheaper
//! than delete + insert exactly when more than half the words survive.

use hierdiff_lcs::lcs_dp;
use hierdiff_tree::NodeValue;
use serde::{Deserialize, Serialize};

/// Value carried by document tree nodes: sentence text on `Sentence` leaves,
/// heading text on `Section`/`Subsection` nodes, nothing elsewhere.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DocValue {
    /// No value (interior structural nodes).
    #[default]
    None,
    /// Text content (sentence or heading).
    Text(String),
}

impl DocValue {
    /// Builds a text value.
    pub fn text(s: impl Into<String>) -> DocValue {
        DocValue::Text(s.into())
    }

    /// The text content, if any.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            DocValue::None => None,
            DocValue::Text(s) => Some(s),
        }
    }
}

impl NodeValue for DocValue {
    fn null() -> Self {
        DocValue::None
    }

    fn compare(&self, other: &Self) -> f64 {
        match (self, other) {
            (DocValue::None, DocValue::None) => 0.0,
            (DocValue::Text(a), DocValue::Text(b)) => word_distance(a, b),
            _ => 2.0,
        }
    }
}

/// Splits `text` into word tokens: maximal alphanumeric runs (apostrophes
/// kept inside words so contractions survive).
pub fn words(text: &str) -> Vec<&str> {
    text.split(|c: char| !(c.is_alphanumeric() || c == '\''))
        .filter(|w| !w.is_empty())
        .collect()
}

/// The paper's sentence distance in `[0, 2]` (see module docs). Word
/// equality is ASCII-case-insensitive. Two sentences with no words at all
/// (pure punctuation) compare equal iff their raw text is equal.
pub fn word_distance(a: &str, b: &str) -> f64 {
    if a == b {
        return 0.0;
    }
    let wa = words(a);
    let wb = words(b);
    if wa.is_empty() && wb.is_empty() {
        return 2.0; // different punctuation-only strings
    }
    let common = lcs_dp(&wa, &wb, |x, y| x.eq_ignore_ascii_case(y)).len();
    let max = wa.len().max(wb.len()) as f64;
    (wa.len() + wb.len() - 2 * common) as f64 / max
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_tokenize() {
        assert_eq!(words("Hello, world!"), vec!["Hello", "world"]);
        assert_eq!(words("don't stop"), vec!["don't", "stop"]);
        assert_eq!(words("  a  b  "), vec!["a", "b"]);
        assert!(words("...").is_empty());
        assert_eq!(words("TeX78 rocks"), vec!["TeX78", "rocks"]);
    }

    #[test]
    fn identical_sentences_distance_zero() {
        assert_eq!(word_distance("the cat sat", "the cat sat"), 0.0);
    }

    #[test]
    fn case_insensitive_words() {
        assert_eq!(word_distance("The Cat", "the cat"), 0.0);
    }

    #[test]
    fn disjoint_sentences_distance_two() {
        assert_eq!(word_distance("alpha beta", "gamma delta"), 2.0);
    }

    #[test]
    fn small_edits_stay_below_one() {
        // One word changed out of five: distance (5+5−2·4)/5 = 0.4 < 1 —
        // update beats delete+insert, per the cost-model consistency rule.
        let d = word_distance("one two three four five", "one two three four SIX");
        assert!((d - 0.4).abs() < 1e-9, "{d}");
    }

    #[test]
    fn heavy_edits_exceed_one() {
        // One shared word out of four: (4+4−2)/4 = 1.5 > 1.
        let d = word_distance("a b c d", "a x y z");
        assert!(d > 1.0, "{d}");
    }

    #[test]
    fn range_bounds() {
        for (a, b) in [
            ("", ""),
            ("x", ""),
            ("", "y"),
            ("a b", "a"),
            ("lorem ipsum dolor", "ipsum lorem dolor"),
        ] {
            let d = word_distance(a, b);
            assert!((0.0..=2.0).contains(&d), "({a:?}, {b:?}) -> {d}");
            assert_eq!(d, word_distance(b, a), "symmetry for ({a:?}, {b:?})");
        }
    }

    #[test]
    fn empty_vs_nonempty_is_one() {
        assert_eq!(word_distance("", "hello"), 1.0);
    }

    #[test]
    fn docvalue_compare_dispatch() {
        use hierdiff_tree::NodeValue;
        assert_eq!(DocValue::None.compare(&DocValue::None), 0.0);
        assert_eq!(DocValue::None.compare(&DocValue::text("x")), 2.0);
        assert_eq!(
            DocValue::text("same words").compare(&DocValue::text("same words")),
            0.0
        );
        assert!(DocValue::None.is_null());
        assert!(!DocValue::text("x").is_null());
    }

    #[test]
    fn word_order_matters() {
        // Reordered words reduce the LCS: "a b c" vs "c b a" share LCS of
        // length 1 ("b" or "a"/"c") → distance (3+3−2)/3 = 4/3.
        let d = word_distance("a b c", "c b a");
        assert!(d > 1.0, "{d}");
    }

    #[test]
    fn serde_roundtrip() {
        let v = DocValue::text("hello");
        let j = serde_json::to_string(&v).unwrap();
        let back: DocValue = serde_json::from_str(&j).unwrap();
        assert_eq!(back, v);
    }
}
