//! Text segmentation: paragraphs into sentences.
//!
//! The paper's textual units (Section 7) are sentences, paragraphs, items,
//! subsections, sections, lists, and the document. Paragraph splitting (on
//! blank lines) happens in the format parsers; this module handles the
//! sentence level.

/// Blessed indexing funnels (see DESIGN.md, "Static analysis"): every
/// char-buffer access in the scanner flows through these two helpers,
/// keeping the S004 panic-reachability audit to two waived sites. `i` and
/// `j` are cursor positions bounded by explicit `< chars.len()` checks.
#[inline(always)]
fn ch(chars: &[char], i: usize) -> char {
    chars[i] // analyze: allow(S004) the blessed funnel
}

#[inline(always)]
fn span(chars: &[char], lo: usize, hi: usize) -> &[char] {
    &chars[lo..hi] // analyze: allow(S004) the blessed funnel
}

/// Splits a paragraph of text into sentences.
///
/// A sentence ends at `.`, `!` or `?` (a run of them, allowing `?!`),
/// optionally followed by closing quotes/parens, when followed by
/// whitespace. Common abbreviation patterns (`e.g.`, `i.e.`, `etc.`,
/// initials like `J.`) do not end a sentence unless followed by a capital
/// letter after whitespace is absent — we keep the heuristic simple and
/// deterministic: a period preceded by a single letter or by a known
/// abbreviation does not split.
pub fn split_sentences(text: &str) -> Vec<String> {
    const ABBREVIATIONS: &[&str] = &[
        "e.g", "i.e", "etc", "cf", "vs", "fig", "sec", "no", "dr", "mr", "mrs", "ms", "prof", "st",
        "jr", "sr", "inc", "dept",
    ];

    let chars: Vec<char> = text.chars().collect();
    let mut sentences = Vec::new();
    let mut start = 0usize;
    let mut i = 0usize;
    while i < chars.len() {
        let c = ch(&chars, i);
        if c == '.' || c == '!' || c == '?' {
            // Consume the full terminator run plus trailing closers.
            let mut j = i;
            while j + 1 < chars.len() && matches!(ch(&chars, j + 1), '.' | '!' | '?') {
                j += 1;
            }
            while j + 1 < chars.len() && matches!(ch(&chars, j + 1), '"' | '\'' | ')' | ']' | '}') {
                j += 1;
            }
            let at_end = j + 1 >= chars.len();
            let followed_by_space = !at_end && ch(&chars, j + 1).is_whitespace();
            let abbreviation =
                c == '.' && i == j && is_abbreviation(span(&chars, start, i), ABBREVIATIONS);
            if (at_end || followed_by_space) && !abbreviation {
                let s: String = span(&chars, start, j + 1).iter().collect();
                let trimmed = s.trim();
                if !trimmed.is_empty() {
                    sentences.push(normalize_ws(trimmed));
                }
                start = j + 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    let tail: String = span(&chars, start.min(chars.len()), chars.len())
        .iter()
        .collect();
    let tail = tail.trim();
    if !tail.is_empty() {
        sentences.push(normalize_ws(tail));
    }
    sentences
}

/// Whether the text ending just before a period looks like an abbreviation
/// or a single-letter initial.
fn is_abbreviation(before: &[char], abbreviations: &[&str]) -> bool {
    // Collect the final word before the period; apostrophes count as word
    // characters so contractions ("isn't.") are full words, not initials.
    let mut word: Vec<char> = Vec::new();
    for &c in before.iter().rev() {
        if c.is_alphabetic() || c == '.' || c == '\'' {
            word.push(c.to_ascii_lowercase());
        } else {
            break;
        }
    }
    word.reverse();
    let word: String = word.into_iter().collect();
    if word.chars().filter(|c| c.is_alphabetic()).count() == 1 && !word.contains('\'') {
        return true; // single-letter initial, e.g. "J."
    }
    abbreviations.contains(&word.trim_end_matches('.'))
}

/// Collapses internal whitespace runs to single spaces.
pub fn normalize_ws(text: &str) -> String {
    text.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Splits raw text into paragraphs on blank lines, normalizing whitespace.
pub fn split_paragraphs(text: &str) -> Vec<String> {
    let mut paragraphs = Vec::new();
    let mut current = String::new();
    for line in text.lines() {
        if line.trim().is_empty() {
            if !current.trim().is_empty() {
                paragraphs.push(normalize_ws(&current));
            }
            current.clear();
        } else {
            if !current.is_empty() {
                current.push(' ');
            }
            current.push_str(line);
        }
    }
    if !current.trim().is_empty() {
        paragraphs.push(normalize_ws(&current));
    }
    paragraphs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_sentences() {
        let s = split_sentences("One sentence. Another one! A third? Done.");
        assert_eq!(
            s,
            vec!["One sentence.", "Another one!", "A third?", "Done."]
        );
    }

    #[test]
    fn trailing_unterminated_text_is_a_sentence() {
        let s = split_sentences("Complete sentence. trailing fragment");
        assert_eq!(s, vec!["Complete sentence.", "trailing fragment"]);
    }

    #[test]
    fn abbreviations_do_not_split() {
        let s = split_sentences("We use LCS, e.g. Myers' algorithm. It is fast.");
        assert_eq!(s, vec!["We use LCS, e.g. Myers' algorithm.", "It is fast."]);
    }

    #[test]
    fn initials_do_not_split() {
        let s = split_sentences("Written by J. Widom. It is good.");
        assert_eq!(s, vec!["Written by J. Widom.", "It is good."]);
    }

    #[test]
    fn multi_punctuation_runs() {
        let s = split_sentences("Really?! Yes... Sure.");
        assert_eq!(s, vec!["Really?!", "Yes...", "Sure."]);
    }

    #[test]
    fn closing_quotes_stay_attached() {
        let s = split_sentences("He said \"stop.\" Then left.");
        assert_eq!(s, vec!["He said \"stop.\"", "Then left."]);
    }

    #[test]
    fn empty_input() {
        assert!(split_sentences("").is_empty());
        assert!(split_sentences("   \n ").is_empty());
    }

    #[test]
    fn whitespace_normalized() {
        let s = split_sentences("Spaced   out\ttext.  Next.");
        assert_eq!(s, vec!["Spaced out text.", "Next."]);
    }

    #[test]
    fn contractions_do_end_sentences() {
        let s = split_sentences(
            "This feature may seem strange, but it isn't. When concepts appear, rules follow.",
        );
        assert_eq!(
            s,
            vec![
                "This feature may seem strange, but it isn't.",
                "When concepts appear, rules follow."
            ]
        );
    }

    #[test]
    fn decimal_numbers_do_not_split() {
        // "3.14" has no whitespace after the period.
        let s = split_sentences("Pi is 3.14 roughly. Indeed.");
        assert_eq!(s, vec!["Pi is 3.14 roughly.", "Indeed."]);
    }

    #[test]
    fn paragraphs_split_on_blank_lines() {
        let p = split_paragraphs("Line one.\nLine two.\n\nSecond para.\n\n\nThird.");
        assert_eq!(p, vec!["Line one. Line two.", "Second para.", "Third."]);
    }

    #[test]
    fn paragraphs_empty_input() {
        assert!(split_paragraphs("").is_empty());
        assert!(split_paragraphs("\n\n\n").is_empty());
    }
}
