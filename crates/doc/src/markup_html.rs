//! HTML rendering of document deltas — the paper's browser scenario
//! (Section 1: a changed page "could be marked with a 'tombstone' in its
//! old position and be highlighted in its new position"; Section 9: "we
//! also plan to incorporate the diff program in a web browser").
//!
//! Table 2's LaTeX conventions translate to semantic HTML:
//!
//! | unit × op | markup |
//! |---|---|
//! | sentence insert | `<ins>…</ins>` |
//! | sentence delete | `<del>…</del>` |
//! | sentence update | `<em class="upd">…</em>` |
//! | sentence move | `<span class="mov" id="movN">…</span>` at the new position, `<del class="mrk"><a href="#movN">…</a></del>` tombstone at the old |
//! | paragraph/item change | `class="ins|del|mov"` on the block element |
//! | section change | `(ins)`/`(del)`/`(upd)`/`(mov)` badge in the heading |

use std::collections::HashMap;
use std::fmt::Write as _;

use hierdiff_delta::{Annotation, DeltaNodeId, DeltaTree};
use hierdiff_lcs::{sequence_diff, SeqEdit};

use crate::labels;
use crate::value::DocValue;

/// Options for [`render_html_with`].
#[derive(Clone, Copy, Debug, Default)]
pub struct HtmlOptions {
    /// Refine updated sentences to the word level: instead of one
    /// `<em class="upd">` span, render kept words plain and changed words
    /// as `<del>`/`<ins>` runs — the intra-line refinement idea of the
    /// *ediff* front end the paper cites in Section 2.
    pub word_refine: bool,
}

/// Renders the delta tree of a document pair as a self-contained HTML
/// fragment (no `<html>`/`<head>` wrapper; style it with the classes in the
/// module docs).
pub fn render_html(delta: &DeltaTree<DocValue>) -> String {
    render_html_with(delta, &HtmlOptions::default())
}

/// [`render_html`] with explicit [`HtmlOptions`].
pub fn render_html_with(delta: &DeltaTree<DocValue>, options: &HtmlOptions) -> String {
    let mut mark_ids: HashMap<DeltaNodeId, usize> = HashMap::new();
    for id in delta.preorder() {
        if let Annotation::Marker { .. } = delta.annotation(id) {
            let n = mark_ids.len() + 1;
            mark_ids.insert(id, n);
        }
    }
    let mut out = String::new();
    let mut r = HtmlRenderer {
        delta,
        mark_ids,
        options: *options,
        out: &mut out,
    };
    r.children(delta.root());
    out
}

/// Word-level refinement of an updated sentence: kept words plain, removed
/// words in `<del>`, added words in `<ins>` (all HTML-escaped).
pub fn refine_words(old: &str, new: &str) -> String {
    let old_words: Vec<&str> = old.split_whitespace().collect();
    let new_words: Vec<&str> = new.split_whitespace().collect();
    let runs = sequence_diff(&old_words, &new_words);
    let mut out = String::new();
    for (i, run) in runs.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        let joined = escape_html(&run.items().join(" "));
        match run {
            SeqEdit::Keep(_) => out.push_str(&joined),
            SeqEdit::Delete(_) => {
                let _ = write!(out, "<del>{joined}</del>");
            }
            SeqEdit::Insert(_) => {
                let _ = write!(out, "<ins>{joined}</ins>");
            }
        }
    }
    out
}

/// Escapes text for HTML content position.
pub fn escape_html(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

struct HtmlRenderer<'a> {
    delta: &'a DeltaTree<DocValue>,
    mark_ids: HashMap<DeltaNodeId, usize>,
    options: HtmlOptions,
    out: &'a mut String,
}

impl HtmlRenderer<'_> {
    fn children(&mut self, id: DeltaNodeId) {
        for &c in self.delta.children(id) {
            self.node(c);
        }
    }

    fn node(&mut self, id: DeltaNodeId) {
        let label = self.delta.label(id);
        if label == labels::sentence() {
            self.sentence(id);
        } else if label == labels::section() || label == labels::subsection() {
            self.heading(id);
        } else if label == labels::paragraph() {
            self.block(id, "p");
        } else if label == labels::item() {
            self.block(id, "li");
        } else if label == labels::list() {
            let _ = writeln!(self.out, "<ul>");
            self.children(id);
            let _ = writeln!(self.out, "</ul>");
        } else {
            self.children(id);
        }
    }

    fn text(&self, id: DeltaNodeId) -> String {
        escape_html(self.delta.value(id).as_text().unwrap_or(""))
    }

    fn sentence(&mut self, id: DeltaNodeId) {
        let text = self.text(id);
        match self.delta.annotation(id) {
            Annotation::Identical => {
                let _ = write!(self.out, "{text} ");
            }
            Annotation::Inserted => {
                let _ = write!(self.out, "<ins>{text}</ins> ");
            }
            Annotation::Deleted => {
                let _ = write!(self.out, "<del>{text}</del> ");
            }
            Annotation::Updated { old } => {
                if self.options.word_refine {
                    let refined = refine_words(
                        old.as_text().unwrap_or(""),
                        self.delta.value(id).as_text().unwrap_or(""),
                    );
                    let _ = write!(self.out, "<em class=\"upd\">{refined}</em> ");
                } else {
                    let old = escape_html(old.as_text().unwrap_or(""));
                    let _ = write!(
                        self.out,
                        "<em class=\"upd\" title=\"was: {old}\">{text}</em> "
                    );
                }
            }
            Annotation::Moved { mark, old } => {
                let n = self.mark_ids.get(mark).copied().unwrap_or(0);
                let inner = if old.is_some() {
                    format!("<em class=\"upd\">{text}</em>")
                } else {
                    text
                };
                let _ = write!(
                    self.out,
                    "<span class=\"mov\" id=\"mov{n}\">{inner}</span> "
                );
            }
            Annotation::Marker { .. } => {
                let n = self.mark_ids.get(&id).copied().unwrap_or(0);
                let _ = write!(
                    self.out,
                    "<del class=\"mrk\"><a href=\"#mov{n}\">{text}</a></del> "
                );
            }
        }
    }

    fn heading(&mut self, id: DeltaNodeId) {
        let tag = if self.delta.label(id) == labels::section() {
            "h1"
        } else {
            "h2"
        };
        let title = self.text(id);
        let (badge, anchor) = match self.delta.annotation(id) {
            Annotation::Identical => ("", None),
            Annotation::Inserted => ("(ins) ", None),
            Annotation::Deleted => ("(del) ", None),
            Annotation::Updated { .. } => ("(upd) ", None),
            Annotation::Moved { mark, .. } => (
                "(mov) ",
                Some(self.mark_ids.get(mark).copied().unwrap_or(0)),
            ),
            Annotation::Marker { .. } => {
                let n = self.mark_ids.get(&id).copied().unwrap_or(0);
                let _ = writeln!(
                    self.out,
                    "<div class=\"mrk\"><a href=\"#mov{n}\">[section moved]</a></div>"
                );
                return;
            }
        };
        match anchor {
            Some(n) => {
                let _ = writeln!(self.out, "<{tag} id=\"mov{n}\">{badge}{title}</{tag}>");
            }
            None => {
                let _ = writeln!(self.out, "<{tag}>{badge}{title}</{tag}>");
            }
        }
        self.children(id);
    }

    fn block(&mut self, id: DeltaNodeId, tag: &str) {
        let (class, anchor) = match self.delta.annotation(id) {
            Annotation::Identical | Annotation::Updated { .. } => (None, None),
            Annotation::Inserted => (Some("ins"), None),
            Annotation::Deleted => (Some("del"), None),
            Annotation::Moved { mark, .. } => (
                Some("mov"),
                Some(self.mark_ids.get(mark).copied().unwrap_or(0)),
            ),
            Annotation::Marker { .. } => {
                let n = self.mark_ids.get(&id).copied().unwrap_or(0);
                let _ = writeln!(
                    self.out,
                    "<{tag} class=\"mrk\"><a href=\"#mov{n}\">[moved]</a></{tag}>"
                );
                return;
            }
        };
        match (class, anchor) {
            (Some(c), Some(n)) => {
                let _ = write!(self.out, "<{tag} class=\"{c}\" id=\"mov{n}\">");
            }
            (Some(c), None) => {
                let _ = write!(self.out, "<{tag} class=\"{c}\">");
            }
            _ => {
                let _ = write!(self.out, "<{tag}>");
            }
        }
        self.children(id);
        let _ = writeln!(self.out, "</{tag}>");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::html::parse_html;
    use crate::pipeline::{diff_trees, LaDiffOptions};

    fn html_delta(old: &str, new: &str) -> String {
        let t1 = parse_html(old);
        let t2 = parse_html(new);
        let out = diff_trees(t1, t2, &LaDiffOptions::default()).unwrap();
        render_html(&out.delta)
    }

    #[test]
    fn inserted_sentence_ins_tag() {
        let out = html_delta(
            "<p>Stable one here. Stable two here. Stable three here.</p>",
            "<p>Stable one here. Fresh addition now. Stable two here. Stable three here.</p>",
        );
        assert!(out.contains("<ins>Fresh addition now.</ins>"), "{out}");
    }

    #[test]
    fn deleted_sentence_del_tag() {
        let out = html_delta(
            "<p>Stable one here. Doomed middle line. Stable two here. Stable three here.</p>",
            "<p>Stable one here. Stable two here. Stable three here.</p>",
        );
        assert!(out.contains("<del>Doomed middle line.</del>"), "{out}");
    }

    #[test]
    fn moved_sentence_anchor_pair() {
        let out = html_delta(
            "<p>Mover starts in front here. Anchor alpha one. Anchor beta two.</p>",
            "<p>Anchor alpha one. Anchor beta two. Mover starts in front here.</p>",
        );
        assert!(
            out.contains("<span class=\"mov\" id=\"mov1\">Mover starts in front here.</span>"),
            "{out}"
        );
        assert!(
            out.contains(
                "<del class=\"mrk\"><a href=\"#mov1\">Mover starts in front here.</a></del>"
            ),
            "{out}"
        );
    }

    #[test]
    fn updated_sentence_carries_old_text() {
        let out = html_delta(
            "<p>The quick brown fox jumps over the dog. Second stays put.</p>",
            "<p>The quick brown fox leaps over the dog. Second stays put.</p>",
        );
        assert!(
            out.contains("title=\"was: The quick brown fox jumps over the dog.\""),
            "{out}"
        );
    }

    #[test]
    fn word_refinement_marks_changed_words_only() {
        use crate::pipeline::{diff_trees, LaDiffOptions};
        let t1 = parse_html("<p>The quick brown fox jumps over the dog. Second stays put.</p>");
        let t2 = parse_html("<p>The quick red fox jumps over the lazy dog. Second stays put.</p>");
        let out = diff_trees(t1, t2, &LaDiffOptions::default()).unwrap();
        let html = render_html_with(&out.delta, &HtmlOptions { word_refine: true });
        assert!(html.contains("<del>brown</del>"), "{html}");
        assert!(html.contains("<ins>red</ins>"), "{html}");
        assert!(html.contains("<ins>lazy</ins>"), "{html}");
        // Kept words are not wrapped.
        assert!(html.contains("quick"), "{html}");
        assert!(!html.contains("<del>quick"), "{html}");
    }

    #[test]
    fn refine_words_escapes() {
        let r = refine_words("a <b> c", "a <b> d");
        assert!(r.contains("&lt;b&gt;"), "{r}");
        assert!(r.contains("<del>c</del>"), "{r}");
        assert!(r.contains("<ins>d</ins>"), "{r}");
    }

    #[test]
    fn heading_badges() {
        let out = html_delta(
            "<h1>Old Title Entirely</h1><p>Body one stays. Body two stays. Body three stays.</p>",
            "<h1>New Title Entirely</h1><p>Body one stays. Body two stays. Body three stays.</p>",
        );
        assert!(out.contains("<h1>(upd) New Title Entirely</h1>"), "{out}");
    }

    #[test]
    fn escaping() {
        assert_eq!(
            escape_html("a < b & c > \"d\""),
            "a &lt; b &amp; c &gt; &quot;d&quot;"
        );
        let out = html_delta(
            "<p>Tom &amp; Jerry cartoon one. Filler line two. Filler line three.</p>",
            "<p>Tom &amp; Jerry cartoon one. Filler line two. Filler line three. Less &lt;cool&gt; now.</p>",
        );
        assert!(out.contains("<ins>Less &lt;cool&gt; now.</ins>"), "{out}");
        assert!(out.contains("Tom &amp; Jerry"), "{out}");
    }

    #[test]
    fn lists_render_items() {
        let out = html_delta(
            "<ul><li>First point stays.</li><li>Second point stays.</li></ul>",
            "<ul><li>First point stays.</li><li>Second point stays.</li><li>Third point added.</li></ul>",
        );
        assert!(out.contains("<ul>"), "{out}");
        assert!(out.contains("<li class=\"ins\">"), "{out}");
    }
}
