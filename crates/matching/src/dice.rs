//! Dice similarity over already-matched descendants — the container
//! acceptance measure of GumTree's bottom-up phase (Falleri et al.,
//! ASE 2014).
//!
//! For a candidate container pair `(x, y)`,
//!
//! ```text
//! dice(x, y) = 2·|{(a, b) ∈ M : a ∈ desc(x), b ∈ desc(y)}|
//!              ─────────────────────────────────────────────
//!                       |desc(x)| + |desc(y)|
//! ```
//!
//! where `M` is the matching accumulated so far and `desc` is the set of
//! *proper* descendants. Alongside the ratio, [`DiceStats`] reports how
//! many matched descendants on either side *escape* the other's subtree —
//! the bottom-up phase only adopts containers with zero escapes, which is
//! what makes the accepted pair ancestor-consistent with the rest of the
//! matching (see `gumtree.rs`).

use hierdiff_edit::Matching;
use hierdiff_tree::{NodeId, NodeValue, Tree};

/// Descendant bookkeeping behind one dice evaluation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiceStats {
    /// Proper descendants of the old-side candidate `x`.
    pub desc1: usize,
    /// Proper descendants of the new-side candidate `y`.
    pub desc2: usize,
    /// Matched pairs `(a, b)` with `a` under `x` *and* `b` under `y`.
    pub common: usize,
    /// Matched descendants of `x` whose partner lies outside `y`.
    pub escaped1: usize,
    /// Matched descendants of `y` whose partner lies outside `x`.
    pub escaped2: usize,
    /// Descendant partner probes performed (for the cost-model counters).
    pub probes: usize,
}

impl DiceStats {
    /// The dice coefficient in `[0, 1]`; `0` for a pair of leaves (no
    /// descendants on either side).
    pub fn dice(&self) -> f64 {
        let denom = self.desc1 + self.desc2;
        if denom == 0 {
            0.0
        } else {
            2.0 * self.common as f64 / denom as f64
        }
    }

    /// Whether every matched descendant on each side maps into the other
    /// side's subtree. Containment is the structural precondition for
    /// adopting the pair without creating an ancestor-order inversion.
    pub fn contained(&self) -> bool {
        self.escaped1 == 0 && self.escaped2 == 0
    }
}

/// Evaluates [`DiceStats`] for the candidate container pair `(x, y)`
/// under the partial matching `m`.
///
/// Cost is `O(|sub(x)| + |sub(y)|)` ancestor-interval probes; the caller
/// ticks its guard once per candidate pair evaluated.
pub fn dice_stats<V: NodeValue>(
    t1: &Tree<V>,
    x: NodeId,
    t2: &Tree<V>,
    y: NodeId,
    m: &Matching,
) -> DiceStats {
    let mut stats = DiceStats::default();
    for a in t1.descendants(x) {
        // analyze: allow(S031) bounded by the candidate subtree; the caller ticks per pair
        stats.desc1 += 1;
        stats.probes += 1;
        if let Some(b) = m.partner1(a) {
            if t2.is_ancestor(y, b) && b != y {
                stats.common += 1;
            } else {
                stats.escaped1 += 1;
            }
        }
    }
    for b in t2.descendants(y) {
        // analyze: allow(S031) bounded by the candidate subtree; the caller ticks per pair
        stats.desc2 += 1;
        stats.probes += 1;
        if let Some(a) = m.partner2(b) {
            if !(t1.is_ancestor(x, a) && a != x) {
                stats.escaped2 += 1;
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(s: &str) -> Tree<String> {
        Tree::parse_sexpr(s).unwrap()
    }

    #[test]
    fn identical_children_score_one() {
        let t1 = doc(r#"(D (P (S "a") (S "b")))"#);
        let t2 = doc(r#"(D (P (S "a") (S "b")))"#);
        let p1 = t1.children(t1.root())[0];
        let p2 = t2.children(t2.root())[0];
        let mut m = Matching::new();
        for (a, b) in t1.children(p1).iter().zip(t2.children(p2).iter()) {
            m.insert(*a, *b).unwrap();
        }
        let s = dice_stats(&t1, p1, &t2, p2, &m);
        assert_eq!(s.common, 2);
        assert!((s.dice() - 1.0).abs() < 1e-9);
        assert!(s.contained());
    }

    #[test]
    fn half_overlap_scores_half() {
        let t1 = doc(r#"(D (P (S "a") (S "b")))"#);
        let t2 = doc(r#"(D (P (S "a") (S "z")))"#);
        let p1 = t1.children(t1.root())[0];
        let p2 = t2.children(t2.root())[0];
        let mut m = Matching::new();
        m.insert(t1.children(p1)[0], t2.children(p2)[0]).unwrap();
        let s = dice_stats(&t1, p1, &t2, p2, &m);
        assert_eq!(s.common, 1);
        assert!((s.dice() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn escapes_detected_on_both_sides() {
        // t1's "a" under P matches t2's "a" under Q (a different container):
        // evaluating (P, P') must report the escape both ways.
        let t1 = doc(r#"(D (P (S "a")) (Q))"#);
        let t2 = doc(r#"(D (P (S "x")) (Q (S "a")))"#);
        let p1 = t1.children(t1.root())[0];
        let p2 = t2.children(t2.root())[0];
        let q2 = t2.children(t2.root())[1];
        let mut m = Matching::new();
        m.insert(t1.children(p1)[0], t2.children(q2)[0]).unwrap();
        let s = dice_stats(&t1, p1, &t2, p2, &m);
        assert_eq!(s.common, 0);
        assert_eq!(s.escaped1, 1, "a's partner lies outside P'");
        assert!(!s.contained());
        // The symmetric evaluation (against Q') is contained.
        let s2 = dice_stats(&t1, p1, &t2, q2, &m);
        assert_eq!(s2.common, 1);
        assert!(s2.contained());
    }

    #[test]
    fn leaf_pair_scores_zero() {
        let t1 = doc(r#"(D (S "a"))"#);
        let t2 = doc(r#"(D (S "a"))"#);
        let s = dice_stats(
            &t1,
            t1.children(t1.root())[0],
            &t2,
            t2.children(t2.root())[0],
            &Matching::new(),
        );
        assert_eq!(s.dice(), 0.0);
        assert!(s.contained());
    }
}
