//! Matching Criterion 3 analysis and the Table 1 mismatch estimator.
//!
//! Criterion 3 assumes `compare` is a good discriminator: "given any leaf s
//! in the old document, there is at most one leaf in the new document that
//! is 'close' to s, and vice versa" (close = `compare ≤ 1`). When it fails
//! (duplicate sentences), FastMatch can produce a sub-optimal matching.
//!
//! Section 8 derives "a necessary (but not sufficient) condition for
//! propagation: ... in order to be mismatched, a node must have more than a
//! certain number of children that violate Matching Criterion 3, where the
//! exact number depends on the match threshold t." The paper does not give
//! the formula; we reconstruct it as follows. A node `x` whose true partner
//! is `y` can only lose that partner (and hence possibly be mismatched) if
//! enough of its contained leaves are ambiguous to push `|common(x, y)| /
//! max(|x|, |y|)` to the threshold `t` — i.e. at least `(1 − t)·|x|` of its
//! leaves violate Criterion 3. The bound is monotonically increasing in `t`,
//! matching the shape of Table 1 (≈0% at t = 0.5 rising to ~10% at t = 1.0):
//! at `t = 1` a single ambiguous leaf suffices, at `t = 1/2` more than half
//! the leaves must be ambiguous.

use hierdiff_tree::{Label, NodeId, NodeValue, Tree};

use crate::criteria::{LeafRanges, MatchParams};
use crate::schema::LabelClasses;

/// Criterion 3 violation report for a tree pair.
#[derive(Clone, Debug, Default)]
pub struct Criterion3Report {
    /// T1 leaves with ≥ 2 close counterparts in T2.
    pub violating1: Vec<NodeId>,
    /// T2 leaves with ≥ 2 close counterparts in T1.
    pub violating2: Vec<NodeId>,
    /// Total leaves examined in T1.
    pub leaves1: usize,
    /// Total leaves examined in T2.
    pub leaves2: usize,
}

impl Criterion3Report {
    /// Whether Criterion 3 holds for the pair (no violations either way).
    pub fn holds(&self) -> bool {
        self.violating1.is_empty() && self.violating2.is_empty()
    }

    /// Fraction of T1 leaves violating the criterion.
    pub fn violation_rate1(&self) -> f64 {
        if self.leaves1 == 0 {
            0.0
        } else {
            self.violating1.len() as f64 / self.leaves1 as f64
        }
    }
}

/// Checks Matching Criterion 3 exhaustively (O(n²) leaf compares — an
/// offline analysis, not part of the matching algorithms).
pub fn check_criterion3<V: NodeValue>(t1: &Tree<V>, t2: &Tree<V>) -> Criterion3Report {
    let classes = LabelClasses::classify(t1, t2);
    let l1 = LeafRanges::new(t1, &classes);
    let l2 = LeafRanges::new(t2, &classes);
    let mut report = Criterion3Report {
        leaves1: l1.order.len(),
        leaves2: l2.order.len(),
        ..Criterion3Report::default()
    };
    let close = |a: &V, b: &V| a.compare(b) <= 1.0;
    for &x in &l1.order {
        let mut hits = 0;
        for &y in &l2.order {
            if t1.label(x) == t2.label(y) && close(t1.value(x), t2.value(y)) {
                hits += 1;
                if hits >= 2 {
                    report.violating1.push(x);
                    break;
                }
            }
        }
    }
    for &y in &l2.order {
        let mut hits = 0;
        for &x in &l1.order {
            if t1.label(x) == t2.label(y) && close(t1.value(x), t2.value(y)) {
                hits += 1;
                if hits >= 2 {
                    report.violating2.push(y);
                    break;
                }
            }
        }
    }
    report
}

/// Table 1's estimate: the fraction (in `[0, 1]`) of internal nodes of `t1`
/// bearing `label` (or all internal labels when `None`) that are
/// *potentially mismatched* at threshold `t` — i.e. whose
/// Criterion-3-violating contained-leaf count `v(x)` exceeds `(1 − t)·|x|`.
///
/// This is the paper's "upper bound on mismatches": a weak necessary
/// condition, so the true mismatch rate is far lower (Section 8).
pub fn mismatch_upper_bound<V: NodeValue>(
    t1: &Tree<V>,
    t2: &Tree<V>,
    params: MatchParams,
    label: Option<Label>,
) -> f64 {
    let classes = LabelClasses::classify(t1, t2);
    let ranges = LeafRanges::new(t1, &classes);
    let report = check_criterion3(t1, t2);
    let mut violating = vec![false; t1.arena_len()];
    for &x in &report.violating1 {
        violating[x.index()] = true;
    }
    let t = params.inner_threshold;

    let mut considered = 0usize;
    let mut potential = 0usize;
    for x in t1.preorder() {
        if t1.is_leaf(x) && classes.is_leaf_label(t1.label(x)) {
            continue;
        }
        if let Some(l) = label {
            if t1.label(x) != l {
                continue;
            }
        }
        let size = ranges.count(x);
        if size == 0 {
            continue;
        }
        considered += 1;
        let v = ranges
            .leaves_of(x)
            .iter()
            .filter(|&&w| violating[w.index()])
            .count();
        if v as f64 > (1.0 - t) * size as f64 {
            potential += 1;
        }
    }
    if considered == 0 {
        0.0
    } else {
        potential as f64 / considered as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierdiff_tree::Tree;

    fn doc(s: &str) -> Tree<String> {
        Tree::parse_sexpr(s).unwrap()
    }

    #[test]
    fn unique_values_satisfy_criterion3() {
        let t1 = doc(r#"(D (P (S "a") (S "b")) (P (S "c")))"#);
        let t2 = doc(r#"(D (P (S "a") (S "b")) (P (S "d")))"#);
        let r = check_criterion3(&t1, &t2);
        assert!(r.holds());
        assert_eq!(r.leaves1, 3);
        assert_eq!(r.violation_rate1(), 0.0);
    }

    #[test]
    fn duplicates_violate_criterion3() {
        // "dup" appears twice in T2: the T1 "dup" has two close counterparts.
        let t1 = doc(r#"(D (P (S "dup") (S "x")))"#);
        let t2 = doc(r#"(D (P (S "dup")) (P (S "dup")))"#);
        let r = check_criterion3(&t1, &t2);
        assert_eq!(r.violating1.len(), 1);
        // Both T2 dups are close to the single T1 dup — but each has only ONE
        // close counterpart in T1, so the reverse direction holds.
        assert!(r.violating2.is_empty());
        assert!(!r.holds());
    }

    #[test]
    fn bound_rises_with_threshold() {
        // One ambiguous sentence out of four per paragraph.
        let t1 = doc(r#"(D (P (S "dup") (S "a1") (S "a2") (S "a3"))
                  (P (S "dup") (S "b1") (S "b2") (S "b3")))"#);
        let t2 = doc(r#"(D (P (S "dup") (S "a1") (S "a2") (S "a3"))
                  (P (S "dup") (S "b1") (S "b2") (S "b3")))"#);
        let p_label = Some(Label::intern("P"));
        let at =
            |t: f64| mismatch_upper_bound(&t1, &t2, MatchParams::with_inner_threshold(t), p_label);
        // v(x) = 1, |x| = 4: potential iff 1 > (1−t)·4 ⇔ t > 0.75.
        assert_eq!(at(0.5), 0.0);
        assert_eq!(at(0.7), 0.0);
        assert_eq!(at(0.8), 1.0);
        assert_eq!(at(1.0), 1.0);
        // Monotone non-decreasing across the Table 1 sweep.
        let sweep: Vec<f64> = [0.5, 0.6, 0.7, 0.8, 0.9, 1.0]
            .iter()
            .map(|&t| at(t))
            .collect();
        assert!(sweep.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn clean_documents_have_zero_bound() {
        let t1 = doc(r#"(D (P (S "u1") (S "u2")) (P (S "u3")))"#);
        let t2 = doc(r#"(D (P (S "u1") (S "u2")) (P (S "u3")))"#);
        for t in [0.5, 0.6, 0.7, 0.8, 0.9, 1.0] {
            assert_eq!(
                mismatch_upper_bound(&t1, &t2, MatchParams::with_inner_threshold(t), None),
                0.0
            );
        }
    }

    #[test]
    fn label_filter_restricts_population() {
        let t1 = doc(r#"(D (Sec (P (S "dup"))) (P (S "dup")))"#);
        let t2 = t1.clone();
        let all = mismatch_upper_bound(&t1, &t2, MatchParams::with_inner_threshold(1.0), None);
        let p_only = mismatch_upper_bound(
            &t1,
            &t2,
            MatchParams::with_inner_threshold(1.0),
            Some(Label::intern("P")),
        );
        // Every considered node contains the ambiguous leaf here.
        assert_eq!(all, 1.0);
        assert_eq!(p_only, 1.0);
    }
}
