//! Label schemas and the acyclic-labels condition (Section 5.1).
//!
//! "Many structuring schemas satisfy an *acyclic labels* condition: there is
//! an ordering `<ₗ` on the labels ... such that a node with label `l1` can
//! appear as the descendent of a node with label `l2` only if `l1 <ₗ l2`."
//! The condition underlies the unique-maximal-matching theorem (Theorem 5.2)
//! and gives the matching algorithms their bottom-up label processing order.
//!
//! Schemas with label cycles (e.g. LaTeX's mutually nestable `itemize` /
//! `enumerate` / `description` lists) are handled the way the paper
//! suggests: "we merge their labels into a single *list* label" — the
//! document parsers in `hierdiff-doc` do exactly that, and
//! [`check_acyclic`] reports any cycle that remains.

use std::collections::HashMap;
use std::fmt;

use hierdiff_tree::{Label, NodeValue, Tree};

use crate::error::MatchError;

/// The blessed dense-height funnel: `heights` is sized to `arena_len()`
/// and every id comes from the same tree's traversal.
#[inline(always)]
fn height_of(heights: &[usize], idx: usize) -> usize {
    heights[idx] // analyze: allow(S004) the blessed funnel
}

/// The mutable counterpart of [`height_of`].
#[inline(always)]
fn height_slot(heights: &mut [usize], idx: usize) -> &mut usize {
    &mut heights[idx] // analyze: allow(S004) the blessed funnel
}

/// The blessed map funnel: classification seeded every label it later
/// reads back.
#[inline(always)]
fn seeded<'a, T>(map: &'a HashMap<Label, T>, l: &Label) -> &'a T {
    &map[l] // analyze: allow(S004) the blessed funnel
}

/// Classification of the labels appearing in a tree pair, with the
/// bottom-up processing order used by Algorithms *Match* and *FastMatch*.
#[derive(Clone, Debug)]
pub struct LabelClasses {
    /// Labels borne exclusively by leaves (in both trees).
    pub leaf_labels: Vec<Label>,
    /// Labels borne by at least one internal node.
    pub internal_labels: Vec<Label>,
}

impl LabelClasses {
    /// Classifies labels of `t1` and `t2`. Leaf labels come out in first-seen
    /// document order; internal labels are ordered by ascending maximum node
    /// height, so that processing them in order visits the hierarchy
    /// bottom-up (paragraphs before sections before documents).
    pub fn classify<V: NodeValue>(t1: &Tree<V>, t2: &Tree<V>) -> LabelClasses {
        // max height per label, and whether any bearer is internal.
        let mut max_height: HashMap<Label, usize> = HashMap::new();
        let mut any_internal: HashMap<Label, bool> = HashMap::new();
        let mut seen_order: Vec<Label> = Vec::new();
        for tree in [t1, t2] {
            // analyze: allow(S031) O(n) label-classification pre-pass
            // Dense per-node heights in one postorder pass (Tree::height
            // recomputes recursively per call — O(subtree) each).
            let mut heights = vec![0usize; tree.arena_len()];
            for id in tree.postorder() {
                // analyze: allow(S031) O(n) height pass
                let h = tree
                    .children(id)
                    .iter()
                    .map(|&c| height_of(&heights, c.index()) + 1)
                    .max()
                    .unwrap_or(0);
                *height_slot(&mut heights, id.index()) = h;
            }
            for id in tree.preorder() {
                // analyze: allow(S031) O(n) label scan
                let l = tree.label(id);
                let h = height_of(&heights, id.index());
                let e = max_height.entry(l).or_insert_with(|| {
                    seen_order.push(l);
                    0
                });
                *e = (*e).max(h);
                *any_internal.entry(l).or_insert(false) |= !tree.is_leaf(id);
            }
        }
        let mut leaf_labels = Vec::new();
        let mut internal_labels = Vec::new();
        for &l in &seen_order {
            // analyze: allow(S031) bounded by distinct labels
            if *seeded(&any_internal, &l) {
                internal_labels.push(l);
            } else {
                leaf_labels.push(l);
            }
        }
        internal_labels.sort_by_key(|l| *seeded(&max_height, l));
        LabelClasses {
            leaf_labels,
            internal_labels,
        }
    }

    /// Number of internal-node labels — the `l` in the FastMatch running-time
    /// bound `(ne + e²)c + 2lne` (Section 5.3).
    pub fn internal_label_count(&self) -> usize {
        self.internal_labels.len()
    }

    /// Whether `l` is classified as a leaf label.
    pub fn is_leaf_label(&self, l: Label) -> bool {
        self.leaf_labels.contains(&l)
    }
}

/// A label cycle violating the acyclicity condition: following
/// parent-to-child label edges returns to the starting label.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LabelCycle {
    /// The labels along the cycle (first label repeated at the end).
    pub labels: Vec<Label>,
}

impl fmt::Display for LabelCycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "label cycle: ")?;
        for (i, l) in self.labels.iter().enumerate() {
            if i > 0 {
                write!(f, " > ")?;
            }
            write!(f, "{l}")?;
        }
        Ok(())
    }
}

impl std::error::Error for LabelCycle {}

/// Checks the acyclic-labels condition over the parent→child label edges of
/// both trees; on success returns a topological order of the labels (most
/// deeply nestable first — a valid `<ₗ`). A violation surfaces as
/// [`MatchError::Cycle`] carrying the offending [`LabelCycle`].
pub fn check_acyclic<V: NodeValue>(t1: &Tree<V>, t2: &Tree<V>) -> Result<Vec<Label>, MatchError> {
    // Build the "child-label under parent-label" edge set.
    let mut edges: HashMap<Label, Vec<Label>> = HashMap::new(); // parent -> children
    let mut labels: Vec<Label> = Vec::new();
    let mut known: HashMap<Label, ()> = HashMap::new();
    for tree in [t1, t2] {
        for id in tree.preorder() {
            let l = tree.label(id);
            if known.insert(l, ()).is_none() {
                labels.push(l);
            }
            if let Some(p) = tree.parent(id) {
                let pl = tree.label(p);
                if pl != l {
                    let kids = edges.entry(pl).or_default();
                    if !kids.contains(&l) {
                        kids.push(l);
                    }
                } else {
                    // A label nested under itself is a 1-cycle.
                    return Err(MatchError::Cycle(LabelCycle { labels: vec![l, l] }));
                }
            }
        }
    }
    // DFS-based cycle detection + topological sort (children first).
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        White,
        Gray,
        Black,
    }
    let mut state: HashMap<Label, State> = labels.iter().map(|&l| (l, State::White)).collect();
    let mut order: Vec<Label> = Vec::new();

    fn visit(
        l: Label,
        edges: &HashMap<Label, Vec<Label>>,
        state: &mut HashMap<Label, State>,
        order: &mut Vec<Label>,
        path: &mut Vec<Label>,
    ) -> Result<(), MatchError> {
        state.insert(l, State::Gray);
        path.push(l);
        for &c in edges.get(&l).map(Vec::as_slice).unwrap_or(&[]) {
            match state[&c] {
                State::White => visit(c, edges, state, order, path)?,
                State::Gray => {
                    // A gray node is by construction on the DFS path; its
                    // absence would be an invariant bug, reported as data.
                    let start = path
                        .iter()
                        .position(|&p| p == c)
                        .ok_or(MatchError::Internal("gray label missing from DFS path"))?;
                    let mut cyc: Vec<Label> = path[start..].to_vec();
                    cyc.push(c);
                    return Err(MatchError::Cycle(LabelCycle { labels: cyc }));
                }
                State::Black => {}
            }
        }
        path.pop();
        state.insert(l, State::Black);
        order.push(l);
        Ok(())
    }

    let mut path = Vec::new();
    for &l in &labels {
        if state[&l] == State::White {
            visit(l, &edges, &mut state, &mut order, &mut path)?;
        }
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierdiff_tree::Tree;

    fn expect_cycle(r: Result<Vec<Label>, MatchError>) -> LabelCycle {
        match r {
            Err(MatchError::Cycle(c)) => c,
            other => panic!("expected a label cycle, got {other:?}"),
        }
    }

    fn doc(s: &str) -> Tree<String> {
        Tree::parse_sexpr(s).unwrap()
    }

    #[test]
    fn classify_document_schema() {
        let t1 = doc(r#"(Doc (Sec (P (S "a"))) (P (S "b")))"#);
        let t2 = doc(r#"(Doc (Sec (P (S "c"))))"#);
        let c = LabelClasses::classify(&t1, &t2);
        assert_eq!(
            c.leaf_labels,
            vec![Label::intern("S")],
            "only S is exclusively leaf-borne"
        );
        // Internal labels bottom-up: P (height 1) < Sec (height 2) < Doc.
        assert_eq!(
            c.internal_labels,
            vec![
                Label::intern("P"),
                Label::intern("Sec"),
                Label::intern("Doc")
            ]
        );
        assert_eq!(c.internal_label_count(), 3);
    }

    #[test]
    fn mixed_leaf_and_internal_label_is_internal() {
        // An empty P in t1 is a leaf, but P is internal elsewhere.
        let t1 = doc(r#"(Doc (P))"#);
        let t2 = doc(r#"(Doc (P (S "a")))"#);
        let c = LabelClasses::classify(&t1, &t2);
        assert!(c.internal_labels.contains(&Label::intern("P")));
        assert!(!c.leaf_labels.contains(&Label::intern("P")));
    }

    #[test]
    fn acyclic_document_schema_passes() {
        let t1 = doc(r#"(Doc (Sec (P (S "a"))))"#);
        let t2 = doc(r#"(Doc (P (S "b")))"#);
        let order = check_acyclic(&t1, &t2).unwrap();
        let pos = |l: &str| order.iter().position(|&x| x == Label::intern(l)).unwrap();
        // Children-first topological order: S before P before Sec before Doc.
        assert!(pos("S") < pos("P"));
        assert!(pos("P") < pos("Sec"));
        assert!(pos("Sec") < pos("Doc"));
    }

    #[test]
    fn self_nesting_is_a_cycle() {
        let t1 = doc(r#"(List (List (S "a")))"#);
        let t2 = doc(r#"(List)"#);
        let err = expect_cycle(check_acyclic(&t1, &t2));
        assert_eq!(
            err.labels,
            vec![Label::intern("List"), Label::intern("List")]
        );
    }

    #[test]
    fn two_label_cycle_detected() {
        // itemize under enumerate in t1, enumerate under itemize in t2.
        let t1 = doc(r#"(Doc (Enum (Item (Itemize (S "a")))))"#);
        let t2 = doc(r#"(Doc (Itemize (Item (Enum (S "b")))))"#);
        let err = expect_cycle(check_acyclic(&t1, &t2));
        assert!(err.labels.len() >= 3, "{err}");
        assert_eq!(err.labels.first(), err.labels.last());
    }

    #[test]
    fn display_formats_cycle() {
        let c = LabelCycle {
            labels: vec![Label::intern("A"), Label::intern("B"), Label::intern("A")],
        };
        assert_eq!(c.to_string(), "label cycle: A > B > A");
    }
}
