//! Key-based matching — the paper's fast path for data *with* identifiers.
//!
//! "If the information we are comparing does have unique identifiers, then
//! our algorithms can take advantage of them to quickly match fragments
//! that have not changed" (Section 1). [`match_by_key`] builds a matching
//! from a user-supplied key extractor in one linear pass per tree, and
//! [`match_keyed_then_content`] combines it with *FastMatch* for the mixed
//! case Section 5 describes — "we are not ruling out keys for some objects;
//! if they exist they can be used to match those objects quickly" — where
//! some objects carry keys (database records) and others do not (free
//! text), or where ids "may not be valid across versions".

use std::collections::HashMap;
use std::hash::Hash;

use hierdiff_edit::Matching;
use hierdiff_tree::{NodeId, NodeValue, Tree};

use crate::criteria::MatchParams;
use crate::error::MatchError;
use crate::fast::fast_match_seeded;
use crate::simple::MatchResult;

/// Builds a matching by pairing nodes with equal `(label, key)`. Nodes for
/// which `key` returns `None` are left unmatched (feed the result to
/// [`match_keyed_then_content`] to content-match them). Duplicate keys on
/// either side match first-come-first-served in document order.
pub fn match_by_key<V: NodeValue, K: Eq + Hash>(
    t1: &Tree<V>,
    t2: &Tree<V>,
    mut key: impl FnMut(&Tree<V>, NodeId) -> Option<K>,
) -> Result<Matching, MatchError> {
    let mut by_key: HashMap<(hierdiff_tree::Label, K), NodeId> = HashMap::new();
    for x in t1.preorder() {
        if let Some(k) = key(t1, x) {
            by_key.entry((t1.label(x), k)).or_insert(x);
        }
    }
    let mut m = Matching::with_capacity(t1.arena_len(), t2.arena_len());
    for y in t2.preorder() {
        if let Some(k) = key(t2, y) {
            if let Some(&x) = by_key.get(&(t2.label(y), k)) {
                // First-come-first-served: a key reused in T2 only binds
                // once, and a T1 node already claimed stays claimed.
                if !m.is_matched1(x) && !m.is_matched2(y) {
                    m.insert(x, y)
                        .map_err(|_| MatchError::Internal("keyed pair already matched"))?;
                }
            }
        }
    }
    Ok(m)
}

/// Mixed-mode matching: pair keyed nodes first (cheap, exact), then run
/// Algorithm *FastMatch* over the remainder with the key-derived pairs
/// pre-seeded — so content matching neither re-pays for them nor
/// contradicts them, and keyed leaves count toward their ancestors'
/// Criterion 2 ratios (a keyed record whose value was rewritten still
/// anchors its parent).
pub fn match_keyed_then_content<V: NodeValue, K: Eq + Hash>(
    t1: &Tree<V>,
    t2: &Tree<V>,
    params: MatchParams,
    key: impl FnMut(&Tree<V>, NodeId) -> Option<K>,
) -> Result<MatchResult, MatchError> {
    let seeded = match_by_key(t1, t2, key)?;
    fast_match_seeded(t1, t2, params, seeded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierdiff_tree::Tree;

    /// Values like "id=K rest..." — the key is the id.
    fn key_of(t: &Tree<String>, n: NodeId) -> Option<String> {
        t.value(n)
            .strip_prefix("id=")
            .map(|rest| rest.split(' ').next().unwrap_or(rest).to_string())
    }

    #[test]
    fn keys_match_across_positions() {
        let t1 = Tree::parse_sexpr(r#"(D (R "id=a x") (R "id=b y") (R "id=c z"))"#).unwrap();
        let t2 = Tree::parse_sexpr(r#"(D (R "id=c z") (R "id=a x2") (R "id=b y"))"#).unwrap();
        let m = match_by_key(&t1, &t2, key_of).unwrap();
        assert_eq!(m.len(), 3);
        // "id=a" pairs despite its payload changing and its position moving.
        let a1 = t1.children(t1.root())[0];
        let a2 = t2.children(t2.root())[1];
        assert_eq!(m.partner1(a1), Some(a2));
    }

    #[test]
    fn labels_must_agree() {
        let t1 = Tree::parse_sexpr(r#"(D (R "id=a"))"#).unwrap();
        let t2 = Tree::parse_sexpr(r#"(D (Q "id=a"))"#).unwrap();
        let m = match_by_key(&t1, &t2, key_of).unwrap();
        assert_eq!(m.len(), 0);
    }

    #[test]
    fn duplicate_keys_bind_once() {
        let t1 = Tree::parse_sexpr(r#"(D (R "id=a 1") (R "id=a 2"))"#).unwrap();
        let t2 = Tree::parse_sexpr(r#"(D (R "id=a 3") (R "id=a 4"))"#).unwrap();
        let m = match_by_key(&t1, &t2, key_of).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(
            m.partner1(t1.children(t1.root())[0]),
            Some(t2.children(t2.root())[0])
        );
    }

    #[test]
    fn unkeyed_nodes_left_for_content_matching() {
        let t1 =
            Tree::parse_sexpr(r#"(D (R "id=a rec") (S "free text sentence") (S "another line"))"#)
                .unwrap();
        let t2 = Tree::parse_sexpr(
            r#"(D (S "another line") (R "id=a rec changed") (S "free text sentence"))"#,
        )
        .unwrap();
        let keyed = match_by_key(&t1, &t2, key_of).unwrap();
        assert_eq!(keyed.len(), 1);
        let mixed = match_keyed_then_content(&t1, &t2, MatchParams::default(), key_of).unwrap();
        // Keyed record + both sentences + the root.
        assert_eq!(mixed.matching.len(), 4);
        // The keyed pair survives even though its values differ beyond the
        // content thresholds.
        let a1 = t1.children(t1.root())[0];
        let a2 = t2.children(t2.root())[1];
        assert_eq!(mixed.matching.partner1(a1), Some(a2));
    }

    #[test]
    fn keyed_pairs_override_content_disagreement() {
        // Content matching would pair the identical texts; the key says the
        // *records* correspond even though their texts were swapped.
        let t1 = Tree::parse_sexpr(r#"(D (R "id=a alpha") (R "id=b beta"))"#).unwrap();
        let t2 = Tree::parse_sexpr(r#"(D (R "id=a beta") (R "id=b alpha"))"#).unwrap();
        let mixed = match_keyed_then_content(&t1, &t2, MatchParams::default(), key_of).unwrap();
        let a1 = t1.children(t1.root())[0];
        let a2 = t2.children(t2.root())[0];
        assert_eq!(mixed.matching.partner1(a1), Some(a2), "key beats content");
    }
}
