//! Analytic running-time bounds of Appendix B, used by the Figure 13(b)
//! experiment to quantify how loose the bounds are in practice (the paper:
//! "on the average, FastMatch makes approximately 20 times fewer comparisons
//! than those predicted by the analytical bound").

/// Inputs to the bound formulas.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BoundInputs {
    /// `n`: total number of leaf nodes in `T1` and `T2`.
    pub leaves: usize,
    /// `m`: total number of internal nodes in `T1` and `T2`.
    pub internal: usize,
    /// `l`: number of internal-node labels.
    pub internal_labels: usize,
    /// `e`: weighted edit distance between the trees.
    pub weighted_distance: usize,
    /// `d`: unweighted edit distance (operation count).
    pub unweighted_distance: usize,
}

/// Predicted comparison counts for one matching run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Bound {
    /// Bound on `r1` (leaf `compare` invocations).
    pub leaf_compares: f64,
    /// Bound on `r2` (partner checks).
    pub partner_checks: f64,
}

impl Bound {
    /// Combined bound with unit compare cost (`c = 1`), comparable with
    /// [`crate::MatchCounters::total`].
    pub fn total(&self) -> f64 {
        self.leaf_compares + self.partner_checks
    }
}

/// Appendix B's FastMatch bound: `r1 ≤ ne + e²`, `r2 ≤ 2lne`.
pub fn fastmatch_bound(i: &BoundInputs) -> Bound {
    let n = i.leaves as f64;
    let e = i.weighted_distance as f64;
    let l = i.internal_labels as f64;
    Bound {
        leaf_compares: n * e + e * e,
        partner_checks: 2.0 * l * n * e,
    }
}

/// Appendix B's Match bound: `r1 ≤ n²`, `r2 ≤ mn`.
pub fn match_bound(i: &BoundInputs) -> Bound {
    let n = i.leaves as f64;
    let m = i.internal as f64;
    Bound {
        leaf_compares: n * n,
        partner_checks: m * n,
    }
}

/// The `e/d` ratio studied in Figure 13(a) (`NaN` when `d = 0`).
pub fn e_over_d(i: &BoundInputs) -> f64 {
    i.weighted_distance as f64 / i.unweighted_distance as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs() -> BoundInputs {
        BoundInputs {
            leaves: 100,
            internal: 20,
            internal_labels: 3,
            weighted_distance: 10,
            unweighted_distance: 4,
        }
    }

    #[test]
    fn fastmatch_formula() {
        let b = fastmatch_bound(&inputs());
        assert_eq!(b.leaf_compares, 100.0 * 10.0 + 100.0);
        assert_eq!(b.partner_checks, 2.0 * 3.0 * 100.0 * 10.0);
        assert_eq!(b.total(), 1100.0 + 6000.0);
    }

    #[test]
    fn match_formula() {
        let b = match_bound(&inputs());
        assert_eq!(b.leaf_compares, 10_000.0);
        assert_eq!(b.partner_checks, 2_000.0);
    }

    #[test]
    fn fastmatch_beats_match_for_small_e() {
        let b_fast = fastmatch_bound(&inputs());
        let b_match = match_bound(&inputs());
        assert!(b_fast.leaf_compares < b_match.leaf_compares);
    }

    #[test]
    fn e_over_d_ratio() {
        assert_eq!(e_over_d(&inputs()), 2.5);
    }
}
