//! Analytic running-time bounds of Appendix B, used by the Figure 13(b)
//! experiment to quantify how loose the bounds are in practice (the paper:
//! "on the average, FastMatch makes approximately 20 times fewer comparisons
//! than those predicted by the analytical bound") — plus
//! [`bounded_greedy_match`], the LCS-free bounded matcher that serves as
//! the degraded tier when FastMatch exhausts its LCS-cell budget.

use hierdiff_guard::Guard;
use hierdiff_tree::{NodeId, NodeValue, Tree};

use crate::criteria::{MatchCtx, MatchParams};
use crate::error::MatchError;
use crate::schema::LabelClasses;
use crate::simple::{label_chains, MatchResult};

/// Default candidate window for [`bounded_greedy_match`]: how many
/// unmatched opposite-chain nodes each node may be compared against.
pub const GREEDY_WINDOW: usize = 64;

/// The blessed chain funnel: callers bounds-check `i` against the
/// chain's length before indexing.
#[inline(always)]
fn at(chain: &[NodeId], i: usize) -> NodeId {
    chain[i] // analyze: allow(S004) the blessed funnel
}

/// The tail counterpart of [`at`]: `i` is at most `chain.len()`.
#[inline(always)]
fn tail(chain: &[NodeId], i: usize) -> &[NodeId] {
    &chain[i..] // analyze: allow(S004) the blessed funnel
}

/// The bounded greedy matcher — the degraded tier of the matching ladder.
///
/// Walks each per-label chain in document order and pairs every node with
/// the *first* of at most `window` still-unmatched opposite-chain
/// candidates that satisfies the phase's matching criterion (Criterion 1
/// for leaves, Criterion 2 for internal nodes, Section 5.1). No LCS is
/// run, so the worst case is `O(window · n)` criteria evaluations instead
/// of FastMatch's unbounded `O(ND)` cell expansion.
///
/// Every pair still passes the matching criteria, so the result is a
/// *valid* matching (audit checks A010–A014 hold: live nodes, equal
/// labels, one-to-one). What is sacrificed is maximality — out-of-window
/// counterparts stay unmatched — which in turn costs edit-script
/// minimality, not conformance. Callers flag such results as degraded.
///
/// `seed` carries pre-established pairs (e.g. from the pruning pre-pass);
/// they are kept verbatim and skipped by the scan, exactly as in
/// [`crate::fast_match_seeded`].
///
/// `guard` is ticked per comparison for cancellation/deadline; the
/// LCS-cell budget is deliberately not consulted (this tier exists to run
/// after that budget is spent).
pub fn bounded_greedy_match<V: NodeValue>(
    t1: &Tree<V>,
    t2: &Tree<V>,
    params: MatchParams,
    seed: hierdiff_edit::Matching,
    guard: &Guard,
    window: usize,
) -> Result<MatchResult, MatchError> {
    let classes = LabelClasses::classify(t1, t2);
    let mut ctx = MatchCtx::new(t1, t2, params, &classes);
    let mut m = seed;
    let chains1 = label_chains(t1);
    let chains2 = label_chains(t2);
    let window = window.max(1);

    let empty: Vec<NodeId> = Vec::new();
    for (phase, phase_labels) in [&classes.leaf_labels, &classes.internal_labels]
        .into_iter()
        .enumerate()
    {
        let is_leaf_phase = phase == 0;
        for &label in phase_labels {
            let s1 = chains1.get(&label).unwrap_or(&empty);
            let s2 = chains2.get(&label).unwrap_or(&empty);
            if s1.is_empty() || s2.is_empty() {
                continue;
            }
            ctx.counters.chain_scans += 1;
            // First-fit within a sliding window: `start` tracks the first
            // possibly-unmatched opposite node, so already-paired prefixes
            // are never rescanned and the chain pass stays linear.
            let mut start = 0usize;
            for &x in s1 {
                if m.is_matched1(x) {
                    continue;
                }
                while start < s2.len() && m.is_matched2(at(s2, start)) {
                    guard.tick()?;
                    start += 1;
                }
                if start >= s2.len() {
                    break;
                }
                let mut scanned = 0usize;
                for &y in tail(s2, start) {
                    if scanned >= window {
                        break;
                    }
                    if m.is_matched2(y) {
                        continue;
                    }
                    scanned += 1;
                    guard.tick()?;
                    let eq = if is_leaf_phase {
                        ctx.equal_leaves(x, y)
                    } else {
                        ctx.equal_internal(x, y, &m)
                    };
                    if eq {
                        m.insert(x, y)
                            .map_err(|_| MatchError::Internal("greedy pair already matched"))?;
                        break;
                    }
                }
            }
        }
    }

    Ok(MatchResult {
        matching: m,
        counters: ctx.counters,
        classes,
    })
}

/// Inputs to the bound formulas.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BoundInputs {
    /// `n`: total number of leaf nodes in `T1` and `T2`.
    pub leaves: usize,
    /// `m`: total number of internal nodes in `T1` and `T2`.
    pub internal: usize,
    /// `l`: number of internal-node labels.
    pub internal_labels: usize,
    /// `e`: weighted edit distance between the trees.
    pub weighted_distance: usize,
    /// `d`: unweighted edit distance (operation count).
    pub unweighted_distance: usize,
}

/// Predicted comparison counts for one matching run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Bound {
    /// Bound on `r1` (leaf `compare` invocations).
    pub leaf_compares: f64,
    /// Bound on `r2` (partner checks).
    pub partner_checks: f64,
}

impl Bound {
    /// Combined bound with unit compare cost (`c = 1`), comparable with
    /// [`crate::MatchCounters::total`].
    pub fn total(&self) -> f64 {
        self.leaf_compares + self.partner_checks
    }
}

/// Appendix B's FastMatch bound: `r1 ≤ ne + e²`, `r2 ≤ 2lne`.
pub fn fastmatch_bound(i: &BoundInputs) -> Bound {
    let n = i.leaves as f64;
    let e = i.weighted_distance as f64;
    let l = i.internal_labels as f64;
    Bound {
        leaf_compares: n * e + e * e,
        partner_checks: 2.0 * l * n * e,
    }
}

/// Appendix B's Match bound: `r1 ≤ n²`, `r2 ≤ mn`.
pub fn match_bound(i: &BoundInputs) -> Bound {
    let n = i.leaves as f64;
    let m = i.internal as f64;
    Bound {
        leaf_compares: n * n,
        partner_checks: m * n,
    }
}

/// The `e/d` ratio studied in Figure 13(a) (`NaN` when `d = 0`).
pub fn e_over_d(i: &BoundInputs) -> f64 {
    i.weighted_distance as f64 / i.unweighted_distance as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fast_match;
    use hierdiff_guard::{Budget, Budgets, CancelToken, GuardError};

    fn doc(s: &str) -> Tree<String> {
        Tree::parse_sexpr(s).unwrap()
    }

    #[test]
    fn greedy_matches_everything_on_similar_docs() {
        let t1 = doc(r#"(D (P (S "a") (S "b")) (P (S "c")))"#);
        let t2 = doc(r#"(D (P (S "a") (S "b")) (P (S "c")))"#);
        let res = bounded_greedy_match(
            &t1,
            &t2,
            MatchParams::default(),
            Default::default(),
            &Guard::unlimited(),
            64,
        )
        .unwrap();
        assert_eq!(res.matching.len(), t1.len());
        // Parity with FastMatch on an in-order input.
        let fast = fast_match(&t1, &t2, MatchParams::default()).unwrap();
        assert_eq!(res.matching.len(), fast.matching.len());
    }

    #[test]
    fn greedy_pairs_satisfy_criteria_one_to_one() {
        let t1 = doc(r#"(D (S "a") (S "b") (S "c") (S "a"))"#);
        let t2 = doc(r#"(D (S "c") (S "a") (S "b"))"#);
        let res = bounded_greedy_match(
            &t1,
            &t2,
            MatchParams::default(),
            Default::default(),
            &Guard::unlimited(),
            64,
        )
        .unwrap();
        let mut seen2 = std::collections::HashSet::new();
        for (x, y) in res.matching.iter() {
            assert_eq!(t1.label(x), t2.label(y), "labels must agree");
            assert!(seen2.insert(y), "one-to-one on t2");
        }
    }

    #[test]
    fn greedy_window_bounds_work() {
        // 50 distinct leaves vs 50 unrelated leaves: with a tiny window the
        // per-node scan stops early instead of going quadratic.
        let leaves1: Vec<String> = (0..50).map(|i| format!("(S \"x{i}\")")).collect();
        let leaves2: Vec<String> = (0..50).map(|i| format!("(S \"y{i}\")")).collect();
        let t1 = doc(&format!("(D {})", leaves1.join(" ")));
        let t2 = doc(&format!("(D {})", leaves2.join(" ")));
        let res = bounded_greedy_match(
            &t1,
            &t2,
            MatchParams::default(),
            Default::default(),
            &Guard::unlimited(),
            4,
        )
        .unwrap();
        // ≤ window candidates per s1 node (plus the root chain).
        assert!(
            res.counters.match_candidates <= 50 * 4 + 4,
            "window not honoured: {}",
            res.counters.match_candidates
        );
    }

    #[test]
    fn greedy_runs_with_spent_lcs_budget_but_honours_cancel() {
        let t1 = doc(r#"(D (S "a") (S "b"))"#);
        let t2 = doc(r#"(D (S "b") (S "a"))"#);
        // LCS budget already exhausted: greedy must not care.
        let guard = Guard::new(Budgets::unlimited().with_max_lcs_cells(1), None);
        guard.charge_lcs_cells(100).unwrap_err();
        let res = bounded_greedy_match(
            &t1,
            &t2,
            MatchParams::default(),
            Default::default(),
            &guard,
            64,
        )
        .unwrap();
        assert_eq!(res.matching.len(), 3);
        assert_eq!(res.counters.lcs_cells, 0, "greedy never runs LCS");
        // But a fired cancel token still stops it (tick is strided, so use
        // enough work or check the error from a pre-fired token run).
        let token = CancelToken::new();
        token.cancel();
        let cancelled = Guard::new(Budgets::unlimited(), Some(token));
        let big1: Vec<String> = (0..2000).map(|i| format!("(S \"v{i}\")")).collect();
        let big2: Vec<String> = (0..2000).map(|i| format!("(S \"w{i}\")")).collect();
        let b1 = doc(&format!("(D {})", big1.join(" ")));
        let b2 = doc(&format!("(D {})", big2.join(" ")));
        let err = bounded_greedy_match(
            &b1,
            &b2,
            MatchParams::default(),
            Default::default(),
            &cancelled,
            64,
        )
        .unwrap_err();
        assert_eq!(err, MatchError::Guard(GuardError::Cancelled));
    }

    #[test]
    fn fast_match_guarded_reports_lcs_exhaustion() {
        // Dissimilar same-label leaves force Myers toward quadratic cells.
        let leaves1: Vec<String> = (0..100).map(|i| format!("(S \"x{i}\")")).collect();
        let leaves2: Vec<String> = (0..100).map(|i| format!("(S \"y{i}\")")).collect();
        let t1 = doc(&format!("(D {})", leaves1.join(" ")));
        let t2 = doc(&format!("(D {})", leaves2.join(" ")));
        let guard = Guard::new(Budgets::unlimited().with_max_lcs_cells(20), None);
        let err = crate::fast_match_guarded(&t1, &t2, MatchParams::default(), &guard).unwrap_err();
        assert_eq!(err, MatchError::Guard(GuardError::Budget(Budget::LcsCells)));
        // The degraded tier completes on the same input under the same
        // guard (no leaves satisfy Criterion 1 here, so the matching is
        // legitimately empty — the point is it returns instead of failing).
        let res = bounded_greedy_match(
            &t1,
            &t2,
            MatchParams::default(),
            Default::default(),
            &guard,
            GREEDY_WINDOW,
        )
        .unwrap();
        assert!(
            res.counters.match_candidates > 0,
            "greedy evaluated candidates"
        );
        assert_eq!(res.counters.lcs_cells, 0, "greedy never runs LCS");
    }

    fn inputs() -> BoundInputs {
        BoundInputs {
            leaves: 100,
            internal: 20,
            internal_labels: 3,
            weighted_distance: 10,
            unweighted_distance: 4,
        }
    }

    #[test]
    fn fastmatch_formula() {
        let b = fastmatch_bound(&inputs());
        assert_eq!(b.leaf_compares, 100.0 * 10.0 + 100.0);
        assert_eq!(b.partner_checks, 2.0 * 3.0 * 100.0 * 10.0);
        assert_eq!(b.total(), 1100.0 + 6000.0);
    }

    #[test]
    fn match_formula() {
        let b = match_bound(&inputs());
        assert_eq!(b.leaf_compares, 10_000.0);
        assert_eq!(b.partner_checks, 2_000.0);
    }

    #[test]
    fn fastmatch_beats_match_for_small_e() {
        let b_fast = fastmatch_bound(&inputs());
        let b_match = match_bound(&inputs());
        assert!(b_fast.leaf_compares < b_match.leaf_compares);
    }

    #[test]
    fn e_over_d_ratio() {
        assert_eq!(e_over_d(&inputs()), 2.5);
    }
}
