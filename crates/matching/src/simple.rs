//! Algorithm *Match* (Figure 10): the straightforward O(n²c + mn) matcher.
//!
//! "For each node x ∈ T1, we simply compare x with each unmatched node
//! y ∈ T2 that has the same label as x", leaves before internal nodes so
//! that Criterion 2's `common` is evaluable. Under Criteria 1–3 and the
//! acyclic-labels condition, the result is the unique maximal matching
//! (Theorem 5.2).

use std::collections::HashMap;

use hierdiff_edit::Matching;
use hierdiff_tree::{Label, NodeId, NodeValue, Tree};

use crate::criteria::{MatchCounters, MatchCtx, MatchParams};
use crate::error::MatchError;
use crate::schema::LabelClasses;

/// Result of a matching run.
#[derive(Debug)]
pub struct MatchResult {
    /// The computed (partial) matching.
    pub matching: Matching,
    /// Instrumentation counters (`r1`, `r2` of Section 8).
    pub counters: MatchCounters,
    /// The label classification used.
    pub classes: LabelClasses,
}

/// Groups the live nodes of `tree` by label, preserving document order —
/// the `chain_T(l)` of Section 5.3 ("all nodes with a given label l in tree
/// T are chained together from left to right").
pub fn label_chains<V: NodeValue>(tree: &Tree<V>) -> HashMap<Label, Vec<NodeId>> {
    let mut chains: HashMap<Label, Vec<NodeId>> = HashMap::new();
    for id in tree.preorder() {
        // analyze: allow(S031) O(n) chain-building pre-pass
        chains.entry(tree.label(id)).or_default().push(id);
    }
    chains
}

/// Algorithm *Match* (Figure 10).
///
/// Runs ungoverned; the only possible error is [`MatchError::Internal`]
/// (an invariant bug in the matcher).
pub fn match_simple<V: NodeValue>(
    t1: &Tree<V>,
    t2: &Tree<V>,
    params: MatchParams,
) -> Result<MatchResult, MatchError> {
    let classes = LabelClasses::classify(t1, t2);
    let mut ctx = MatchCtx::new(t1, t2, params, &classes);
    let mut m = Matching::with_capacity(t1.arena_len(), t2.arena_len());
    let chains1 = label_chains(t1);
    let chains2 = label_chains(t2);

    // Leaf labels first (Criterion 1), then internal labels bottom-up
    // (Criterion 2 — it consumes only the leaf matches, but the bottom-up
    // order mirrors Figure 10 and Theorem 5.2's construction).
    let empty: Vec<NodeId> = Vec::new();
    for (phase, phase_labels) in [&classes.leaf_labels, &classes.internal_labels]
        .into_iter()
        .enumerate()
    {
        // analyze: allow(S031) Algorithm Match runs ungoverned by design
        let is_leaf_phase = phase == 0;
        for &label in phase_labels {
            // analyze: allow(S031) Algorithm Match runs ungoverned by design
            let xs = chains1.get(&label).unwrap_or(&empty);
            let ys = chains2.get(&label).unwrap_or(&empty);
            for &x in xs {
                // analyze: allow(S031) Algorithm Match runs ungoverned by design
                if m.is_matched1(x) {
                    continue;
                }
                for &y in ys {
                    // analyze: allow(S031) Algorithm Match runs ungoverned by design
                    if m.is_matched2(y) {
                        continue;
                    }
                    let eq = if is_leaf_phase {
                        ctx.equal_leaves(x, y)
                    } else {
                        ctx.equal_internal(x, y, &m)
                    };
                    if eq {
                        m.insert(x, y)
                            .map_err(|_| MatchError::Internal("fallback pair already matched"))?;
                        break;
                    }
                }
            }
        }
    }

    Ok(MatchResult {
        matching: m,
        counters: ctx.counters,
        classes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(s: &str) -> Tree<String> {
        Tree::parse_sexpr(s).unwrap()
    }

    /// The paper's running example (Figure 1, Example 5.1): Match should
    /// produce exactly the dashed matching — leaves by value, paragraphs by
    /// common sentences, root by common content.
    #[test]
    fn example_5_1_running_example() {
        // T1: 1(D) -> 2(P)->5(a), 3(P)->(7 b, 8 c... ) — Figure 1 has:
        //   2(P)->5("a"); 3(P)->7("b"),8("c"),10("e"); 4(P)->9("d")  (values
        // chosen so the matching of Example 5.1 holds structurally:
        // {(5,15),(7,16),(8,18),(9,19),(10,17)}, (2,12),(3,14),(4,13),(1,11).
        // We reproduce the *shape* of the example: T2 reorders paragraphs
        // and the sentences move within their paragraphs.
        let t1 = doc(r#"(D (P (S "a")) (P (S "b") (S "c") (S "e")) (P (S "d")))"#);
        let t2 = doc(r#"(D (P (S "a")) (P (S "d")) (P (S "b") (S "e") (S "c")))"#);
        let res = match_simple(&t1, &t2, MatchParams::default()).unwrap();
        let m = &res.matching;
        // All 5 sentences + 3 paragraphs + root matched.
        assert_eq!(m.len(), 9);
        // Leaves matched by value.
        let leaf_val = |t: &Tree<String>, id: NodeId| t.value(id).clone();
        for x in t1.leaves() {
            let y = m.partner1(x).expect("all leaves match");
            assert_eq!(leaf_val(&t1, x), leaf_val(&t2, y));
        }
        // Paragraph (b c e) pairs with paragraph (b e c), not with (d).
        let p_bce = t1.children(t1.root())[1];
        let q_bec = t2.children(t2.root())[2];
        assert_eq!(m.partner1(p_bce), Some(q_bec));
        assert_eq!(m.partner1(t1.root()), Some(t2.root()));
    }

    #[test]
    fn unmatchable_leaves_stay_unmatched() {
        let t1 = doc(r#"(D (S "alpha"))"#);
        let t2 = doc(r#"(D (S "omega"))"#);
        let res = match_simple(&t1, &t2, MatchParams::default()).unwrap();
        // Exact-match String compare: distinct values never match; the roots
        // (0 common leaves) don't either.
        assert_eq!(res.matching.len(), 0);
    }

    #[test]
    fn duplicate_leaves_match_in_document_order() {
        let t1 = doc(r#"(D (S "x") (S "x"))"#);
        let t2 = doc(r#"(D (S "x") (S "x"))"#);
        let res = match_simple(&t1, &t2, MatchParams::default()).unwrap();
        let m = &res.matching;
        let a: Vec<_> = t1.children(t1.root()).to_vec();
        let b: Vec<_> = t2.children(t2.root()).to_vec();
        assert_eq!(m.partner1(a[0]), Some(b[0]));
        assert_eq!(m.partner1(a[1]), Some(b[1]));
    }

    #[test]
    fn threshold_gates_internal_matches() {
        // Paragraphs share 1 of 3 sentences: ratio 1/3 < 0.6 → paragraphs
        // unmatched; with t at the minimum 0.5 still 1/3 → unmatched; only
        // sharing 2 of 3 (2/3 > 0.6) matches.
        let t1 = doc(r#"(D (P (S "a") (S "b") (S "c")))"#);
        let t2 = doc(r#"(D (P (S "a") (S "x") (S "y")))"#);
        let res = match_simple(&t1, &t2, MatchParams::default()).unwrap();
        let p1 = t1.children(t1.root())[0];
        assert_eq!(res.matching.partner1(p1), None);

        let t3 = doc(r#"(D (P (S "a") (S "b") (S "z")))"#);
        let res = match_simple(&t1, &t3, MatchParams::default()).unwrap();
        let p1 = t1.children(t1.root())[0];
        assert!(res.matching.partner1(p1).is_some());
    }

    #[test]
    fn counters_populated() {
        let t1 = doc(r#"(D (P (S "a") (S "b")))"#);
        let t2 = doc(r#"(D (P (S "a") (S "b")))"#);
        let res = match_simple(&t1, &t2, MatchParams::default()).unwrap();
        assert!(res.counters.leaf_compares >= 2);
        assert!(res.counters.partner_checks >= 2);
        assert!(res.counters.total() > 0);
    }

    #[test]
    fn label_chains_document_order() {
        let t = doc(r#"(D (P (S "a")) (Sec (P (S "b"))))"#);
        let chains = label_chains(&t);
        let ps = &chains[&Label::intern("P")];
        assert_eq!(ps.len(), 2);
        // First P (document order) is the child of the root.
        assert_eq!(ps[0], t.children(t.root())[0]);
        assert_eq!(chains[&Label::intern("S")].len(), 2);
        assert_eq!(chains[&Label::intern("D")], vec![t.root()]);
    }

    #[test]
    fn matching_is_one_to_one() {
        let t1 = doc(r#"(D (S "x") (S "x") (S "x"))"#);
        let t2 = doc(r#"(D (S "x"))"#);
        let res = match_simple(&t1, &t2, MatchParams::default()).unwrap();
        // One sentence pair; the root pair fails Criterion 2 (1/3 ≤ 0.6).
        assert_eq!(res.matching.len(), 1);
    }
}
