//! # hierdiff-matching
//!
//! The **Good Matching** problem of Chawathe et al. (SIGMOD 1996), Section 5:
//! find the correspondence between the nodes of the old tree `T1` and the
//! new tree `T2` for *keyless* hierarchical data, to feed Algorithm
//! *EditScript* (`hierdiff-edit`).
//!
//! * [`MatchParams`] — the criteria parameters `f` (leaf similarity,
//!   Criterion 1) and `t` (inner-node common-leaves threshold, Criterion 2).
//! * [`match_simple`] — Algorithm *Match* (Figure 10), `O(n²c + mn)`.
//! * [`fast_match`] — Algorithm *FastMatch* (Figure 11),
//!   `O((ne + e²)c + 2lne)`; the paper's recommended matcher.
//! * [`gumtree_match`] — GumTree-style greedy top-down/bottom-up matching
//!   with bounded Zhang–Shasha recovery (Falleri et al., ASE 2014).
//! * [`postprocess`] — the Section 8 optimality-recovery pass for when
//!   Matching Criterion 3 fails.
//! * [`check_criterion3`] / [`mismatch_upper_bound`] — the Criterion 3
//!   analysis behind Table 1.
//! * [`fastmatch_bound`] / [`match_bound`] — the Appendix B analytic bounds
//!   behind Figure 13(b).
//!
//! ```
//! use hierdiff_tree::Tree;
//! use hierdiff_matching::{fast_match, MatchParams};
//! use hierdiff_edit::edit_script;
//!
//! let t1 = Tree::parse_sexpr(r#"(D (P (S "a") (S "b")) (P (S "c")))"#).unwrap();
//! let t2 = Tree::parse_sexpr(r#"(D (P (S "c")) (P (S "a") (S "b")))"#).unwrap();
//! let matched = fast_match(&t1, &t2, MatchParams::default()).unwrap();
//! let result = edit_script(&t1, &t2, &matched.matching).unwrap();
//! assert_eq!(result.script.len(), 1); // the two paragraphs swapped: one move
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bound;
mod criteria;
mod dice;
mod error;
mod exact;
mod fast;
mod gumtree;
mod keyed;
mod mismatch;
mod postprocess;
mod prune;
mod quality;
mod schema;
mod simple;

pub use bound::{
    bounded_greedy_match, e_over_d, fastmatch_bound, match_bound, Bound, BoundInputs, GREEDY_WINDOW,
};
pub use criteria::{LeafRanges, MatchCounters, MatchCtx, MatchParams};
pub use dice::{dice_stats, DiceStats};
pub use error::MatchError;
pub use exact::{fast_match_accelerated, prematch_unique_identical};
pub use fast::{fast_match, fast_match_guarded, fast_match_seeded, fast_match_seeded_guarded};
pub use gumtree::{
    gumtree_match, gumtree_match_guarded, GumTreeMatch, GumTreeParams, GumTreeStats,
};
pub use keyed::{match_by_key, match_keyed_then_content};
pub use mismatch::{check_criterion3, mismatch_upper_bound, Criterion3Report};
pub use postprocess::postprocess;
pub use prune::{prune_identical, prune_identical_indexed, PruneStats};
pub use quality::{match_quality, MatchQuality};
pub use schema::{check_acyclic, LabelClasses, LabelCycle};
pub use simple::{label_chains, match_simple, MatchResult};
