//! Typed errors for the matching algorithms.
//!
//! Matchers fail for three reasons only: resource governance tripped
//! (budget/cancellation, recoverable by the degradation ladder), the label
//! schema violated the acyclic-labels condition of Section 5.1, or an
//! internal invariant broke (a bug — surfaced as data, never as a panic,
//! per the workspace's panic-free discipline).

use std::fmt;

use hierdiff_guard::GuardError;

use crate::schema::LabelCycle;

/// Error from a matching algorithm.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum MatchError {
    /// Resource governance tripped: a budget was exhausted, the deadline
    /// passed, or the cancel token fired. `Budget(LcsCells)` is the
    /// recoverable case — callers fall back to
    /// [`bounded_greedy_match`](crate::bounded_greedy_match).
    Guard(GuardError),
    /// The trees' label schema violates the acyclic-labels condition
    /// (Section 5.1), so no bottom-up label order exists.
    Cycle(LabelCycle),
    /// An internal invariant of the matcher was violated. Reaching this
    /// variant is a bug in `hierdiff-matching`, reported as a typed error
    /// instead of a panic.
    Internal(&'static str),
}

impl fmt::Display for MatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatchError::Guard(e) => write!(f, "matching stopped by guard: {e}"),
            MatchError::Cycle(c) => write!(f, "acyclic-labels condition violated: {c}"),
            MatchError::Internal(msg) => write!(f, "matching invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for MatchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MatchError::Guard(e) => Some(e),
            MatchError::Cycle(c) => Some(c),
            MatchError::Internal(_) => None,
        }
    }
}

impl From<GuardError> for MatchError {
    fn from(e: GuardError) -> Self {
        MatchError::Guard(e)
    }
}

impl From<LabelCycle> for MatchError {
    fn from(c: LabelCycle) -> Self {
        MatchError::Cycle(c)
    }
}
