//! The Section 8 post-processing pass for recovering optimality when
//! Matching Criterion 3 fails.
//!
//! "Proceeding top-down, we consider each tree node x in turn. Let y be the
//! partner of x according to the current matching. For each child c of x
//! that is matched to a node c′ such that parent(c′) ≠ y, we check if we can
//! match c to a child c″ of y, such that compare(c, c″) ≤ f ... If so, we
//! change the current matching to make c match c″. This post-processing
//! phase removes some of the sub-optimalities that may be introduced if
//! Matching Criterion 3 does not hold."

use hierdiff_edit::Matching;
use hierdiff_tree::{NodeValue, Tree};

use crate::criteria::{MatchCtx, MatchParams};
use crate::error::MatchError;
use crate::schema::LabelClasses;

/// Runs the post-processing pass over `matching`, mutating it in place.
/// Returns the number of re-matched nodes.
///
/// A child `c` of `x` is *cross-wired* if it is unmatched or its partner
/// does not sit under `x`'s partner `y`. For each cross-wired child we look
/// for a similar-enough child `c″` of `y` that is itself free or
/// cross-wired (re-pointing never breaks an already-consistent pair — that
/// would introduce new sub-optimalities) and re-match `c ↔ c″`. This
/// resolves both stray matches and *swapped duplicates*, the canonical
/// Criterion-3 failure. Leaf candidates must satisfy Criterion 1; internal
/// candidates Criterion 2.
pub fn postprocess<V: NodeValue>(
    t1: &Tree<V>,
    t2: &Tree<V>,
    params: MatchParams,
    matching: &mut Matching,
) -> Result<usize, MatchError> {
    let classes = LabelClasses::classify(t1, t2);
    let mut ctx = MatchCtx::new(t1, t2, params, &classes);
    let mut rematched = 0;

    // Top-down over T1 (BFS = parents before children).
    let order: Vec<_> = t1.bfs().collect();
    for x in order {
        // analyze: allow(S031) single top-down repair pass, bounded by tree size
        let Some(y) = matching.partner1(x) else {
            continue;
        };
        let children: Vec<_> = t1.children(x).to_vec();
        for c in children {
            // analyze: allow(S031) one candidate scan per child, bounded by arity
            if matching
                .partner1(c)
                .is_some_and(|c1| t2.parent(c1) == Some(y))
            {
                continue; // already consistent
            }
            // Candidate children of y: same label, free or cross-wired,
            // similar enough.
            let candidate = t2.children(y).iter().copied().find(|&c2| {
                if t2.label(c2) != t1.label(c) {
                    return false;
                }
                if matching
                    .partner2(c2)
                    .is_some_and(|w| t1.parent(w) == Some(x))
                {
                    return false; // c2's pair is consistent: leave it alone
                }
                let both_leaves = t1.is_leaf(c) && t2.is_leaf(c2);
                if both_leaves && classes.is_leaf_label(t1.label(c)) {
                    ctx.equal_leaves(c, c2)
                } else {
                    ctx.equal_internal(c, c2, matching)
                }
            });
            if let Some(c2) = candidate {
                matching.remove1(c);
                matching.remove2(c2);
                matching
                    .insert(c, c2)
                    .map_err(|_| MatchError::Internal("rematch pair not freed"))?;
                rematched += 1;
            }
        }
    }
    Ok(rematched)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fast::fast_match;
    use hierdiff_edit::edit_script;
    use hierdiff_tree::Tree;

    fn doc(s: &str) -> Tree<String> {
        Tree::parse_sexpr(s).unwrap()
    }

    #[test]
    fn noop_when_matching_is_consistent() {
        let t1 = doc(r#"(D (P (S "a") (S "b")))"#);
        let t2 = doc(r#"(D (P (S "a") (S "b")))"#);
        let mut res = fast_match(&t1, &t2, MatchParams::default()).unwrap();
        let n = postprocess(&t1, &t2, MatchParams::default(), &mut res.matching).unwrap();
        assert_eq!(n, 0);
    }

    /// The classic Criterion-3 failure: duplicate sentences across
    /// paragraphs make the greedy leaf matcher cross-wire leaves; the
    /// post-processing pass pulls each leaf back under its paragraph's
    /// partner, shortening the edit script.
    #[test]
    fn rematches_cross_wired_duplicates() {
        // Both paragraphs contain a duplicate sentence "dup"; FastMatch's
        // leaf LCS matches the first "dup" of T1 to the first of T2 — fine —
        // but by deleting the *second* paragraph's distinct content in T2 we
        // force the second "dup" to have been matched across paragraphs.
        let t1 = doc(r#"(D (P (S "dup") (S "p1a") (S "p1b")) (P (S "dup") (S "p2a") (S "p2b")))"#);
        // In T2, the paragraphs swap positions. Duplicates make the leaf
        // matcher pair "dup"s positionally (first-to-first), crossing the
        // paragraph correspondence.
        let t2 = doc(r#"(D (P (S "dup") (S "p2a") (S "p2b")) (P (S "dup") (S "p1a") (S "p1b")))"#);
        let mut res = fast_match(&t1, &t2, MatchParams::default()).unwrap();
        let m0 = res.matching.clone();
        let before = edit_script(&t1, &t2, &m0).unwrap();
        let n = postprocess(&t1, &t2, MatchParams::default(), &mut res.matching).unwrap();
        let after = edit_script(&t1, &t2, &res.matching).unwrap();
        assert!(n > 0, "expected at least one rematch");
        assert!(
            after.script.len() <= before.script.len(),
            "post-processing must not lengthen the script ({} -> {})",
            before.script.len(),
            after.script.len()
        );
        assert!(
            after.script.op_counts().moves < before.script.op_counts().moves,
            "cross-wired duplicates should cost extra moves before \
             post-processing: {} vs {}",
            before.script.op_counts().moves,
            after.script.op_counts().moves,
        );
    }

    #[test]
    fn does_not_steal_matched_candidates() {
        // y's only same-label child is already matched: nothing to do.
        let t1 = doc(r#"(D (P (S "x") (S "q")))"#);
        let t2 = doc(r#"(D (P (S "x") (S "q")))"#);
        let mut res = fast_match(&t1, &t2, MatchParams::default()).unwrap();
        let len_before = res.matching.len();
        let n = postprocess(&t1, &t2, MatchParams::default(), &mut res.matching).unwrap();
        assert_eq!(n, 0);
        assert_eq!(res.matching.len(), len_before);
    }

    #[test]
    fn matching_stays_one_to_one() {
        let t1 = doc(r#"(D (P (S "dup") (S "a1") (S "a2")) (P (S "dup") (S "b1") (S "b2")))"#);
        let t2 = doc(r#"(D (P (S "dup") (S "b1") (S "b2")) (P (S "dup") (S "a1") (S "a2")))"#);
        let mut res = fast_match(&t1, &t2, MatchParams::default()).unwrap();
        postprocess(&t1, &t2, MatchParams::default(), &mut res.matching).unwrap();
        // Bijectivity is structurally enforced; verify coverage sanity.
        for (x, y) in res.matching.iter() {
            assert_eq!(res.matching.partner2(y), Some(x));
        }
    }
}
