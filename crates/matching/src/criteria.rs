//! The matching criteria of Section 5.1 and the shared evaluation context.
//!
//! * **Criterion 1** (leaves): `(x, y)` may match only if `l(x) = l(y)` and
//!   `compare(v(x), v(y)) ≤ f` for a parameter `0 ≤ f ≤ 1`.
//! * **Criterion 2** (internal nodes): `l(x) = l(y)` and
//!   `|common(x, y)| / max(|x|, |y|) > t` for a parameter `1/2 ≤ t ≤ 1`,
//!   where `common(x, y)` is the set of matched leaf pairs contained in `x`
//!   and `y`.
//! * **Criterion 3** (assumption): `compare` is a good discriminator — each
//!   leaf has at most one close counterpart. It is *checked*, not enforced;
//!   see [`crate::mismatch`] for its empirical analysis (Table 1).
//!
//! [`MatchCtx`] precomputes everything the per-pair equality tests need:
//! contained-leaf counts `|x|`, contiguous leaf ranges per subtree, and
//! pre-order intervals for O(1) containment — keeping each internal-node
//! comparison at the `min(|x|, |y|)` cost Appendix B charges for it.

use hierdiff_edit::Matching;
use hierdiff_tree::{Intervals, NodeId, NodeValue, Tree};

use crate::schema::LabelClasses;

/// Blessed indexing funnels (see DESIGN.md, "Static analysis"): every
/// leaf-range table access flows through these, keeping the S004
/// panic-reachability audit to three waived sites. Indices are
/// `NodeId::index()` values bounded by the arena length the table was
/// sized with; range endpoints come from the same table.
#[inline(always)]
fn at<T: Copy>(v: &[T], i: usize) -> T {
    v[i] // analyze: allow(S004) the blessed funnel
}

#[inline(always)]
fn at_mut<T>(v: &mut [T], i: usize) -> &mut T {
    &mut v[i] // analyze: allow(S004) the blessed funnel
}

#[inline(always)]
fn span<T>(v: &[T], lo: usize, hi: usize) -> &[T] {
    &v[lo..hi] // analyze: allow(S004) the blessed funnel
}

/// Parameters of the matching criteria.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MatchParams {
    /// Criterion 1's `f`: maximum `compare` distance for leaves to match
    /// (`0 ≤ f ≤ 1`).
    pub leaf_threshold: f64,
    /// Criterion 2's `t`: minimum fraction of common contained leaves for
    /// internal nodes to match (`1/2 ≤ t ≤ 1`). This is the "match
    /// threshold" LaDiff takes as a parameter (Section 7, Table 1).
    pub inner_threshold: f64,
}

impl Default for MatchParams {
    fn default() -> MatchParams {
        MatchParams {
            leaf_threshold: 0.5,
            inner_threshold: 0.6,
        }
    }
}

impl MatchParams {
    /// Parameters with a given inner (`t`) threshold, clamped to the paper's
    /// valid range `[1/2, 1]`.
    pub fn with_inner_threshold(t: f64) -> MatchParams {
        MatchParams {
            inner_threshold: t.clamp(0.5, 1.0),
            ..MatchParams::default()
        }
    }

    /// Parameters with a given leaf (`f`) threshold, clamped to `[0, 1]`.
    pub fn with_leaf_threshold(self, f: f64) -> MatchParams {
        MatchParams {
            leaf_threshold: f.clamp(0.0, 1.0),
            ..self
        }
    }
}

/// Instrumentation counters matching the cost decomposition of Section 8:
/// the running time of FastMatch "is given by an expression of the form
/// `r1·c + r2`", where `r1` counts leaf-node comparisons (invocations of
/// `compare`) and `r2` counts node partner checks ("implemented in LaDiff as
/// integer comparisons").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MatchCounters {
    /// `r1`: number of leaf `compare` invocations.
    pub leaf_compares: usize,
    /// `r2`: number of partner checks performed while intersecting contained
    /// leaves for internal-node comparisons.
    pub partner_checks: usize,
    /// Number of internal-node pair evaluations (not part of the paper's
    /// cost model; useful for diagnostics).
    pub internal_compares: usize,
    /// Nodes matched wholesale by the identical-subtree pruning pre-pass
    /// ([`crate::prune_identical`]) — each skipped all criteria evaluation.
    /// Zero when pruning was not run.
    pub nodes_pruned: usize,
    /// Candidate subtree pairs the pruning pre-pass verified with a real
    /// isomorphism check (hash-unique on both sides).
    pub prune_candidates: usize,
    /// Pruning candidates whose fingerprints collided: hashes equal, but
    /// isomorphism verification rejected the pair.
    pub prune_collisions: usize,
    /// Per-label node chains scanned (the `chain_T(l)` sequences of
    /// Section 5.3) — one per label with live candidates on both sides,
    /// counted once per leaf/internal phase.
    pub chain_scans: usize,
    /// Myers LCS `(d, k)` inner-loop iterations across FastMatch's
    /// per-chain `LCS` calls — the O(ND) work units of Section 4.2. Zero
    /// for Algorithm *Match*, which never calls `LCS`.
    pub lcs_cells: u64,
    /// Candidate node pairs evaluated against the matching criteria
    /// (Criterion 1 and 2 invocations, including label-mismatch
    /// short-circuits) — LCS probes plus quadratic-fallback pairs.
    pub match_candidates: usize,
}

impl MatchCounters {
    /// Total measured "comparisons" as plotted in Figure 13(b):
    /// `r1 + r2` (unit-cost `c = 1`).
    pub fn total(&self) -> usize {
        self.leaf_compares + self.partner_checks
    }

    /// Folds the pruning pre-pass statistics into these counters.
    pub fn absorb_prune(&mut self, stats: &crate::prune::PruneStats) {
        self.nodes_pruned += stats.nodes_pruned;
        self.prune_candidates += stats.candidates;
        self.prune_collisions += stats.collisions;
    }
}

/// Contiguous leaf ranges: the leaves of any subtree occupy a contiguous
/// slice of the document-ordered leaf sequence.
#[derive(Clone, Debug)]
pub struct LeafRanges {
    /// All leaves in document order.
    pub order: Vec<NodeId>,
    /// `range[node.index()] = (start, end)` into `order` (empty for nodes
    /// with no leaf descendants — only possible for childless internal-label
    /// nodes, which have themselves as their only "leaf").
    range: Vec<(u32, u32)>,
}

impl LeafRanges {
    /// Computes leaf ranges. A node counts as a leaf iff it is childless
    /// *and* bears a leaf label per `classes` — a childless internal-label
    /// node (e.g. an empty paragraph) contains no leaves, so it neither
    /// inflates its ancestors' `|x|` nor participates in Criterion 1.
    pub fn new<V: NodeValue>(tree: &Tree<V>, classes: &LabelClasses) -> LeafRanges {
        let mut order = Vec::new();
        let mut range = vec![(0u32, 0u32); tree.arena_len()];
        // Iterative pre/post pass assigning [start, end) leaf slices.
        let mut stack = vec![(tree.root(), false)];
        while let Some((id, done)) = stack.pop() {
            // analyze: allow(S031) O(n) leaf-range precompute before the governed match loops
            if done {
                let start = at(&range, id.index()).0;
                *at_mut(&mut range, id.index()) = (start, order.len() as u32);
                continue;
            }
            at_mut(&mut range, id.index()).0 = order.len() as u32;
            if tree.is_leaf(id) && classes.is_leaf_label(tree.label(id)) {
                order.push(id);
                *at_mut(&mut range, id.index()) = (order.len() as u32 - 1, order.len() as u32);
            } else {
                stack.push((id, true));
                for &c in tree.children(id).iter().rev() {
                    // analyze: allow(S031) O(n) leaf-range precompute before the governed match loops
                    stack.push((c, false));
                }
            }
        }
        LeafRanges { order, range }
    }

    /// The leaves contained in `node`, in document order.
    pub fn leaves_of(&self, node: NodeId) -> &[NodeId] {
        let (s, e) = at(&self.range, node.index());
        span(&self.order, s as usize, e as usize)
    }

    /// `|node|` — the number of leaves contained in `node`.
    pub fn count(&self, node: NodeId) -> usize {
        let (s, e) = at(&self.range, node.index());
        (e - s) as usize
    }
}

/// Precomputed evaluation context for one `(T1, T2)` pair.
pub struct MatchCtx<'a, V: NodeValue> {
    /// The old tree.
    pub t1: &'a Tree<V>,
    /// The new tree.
    pub t2: &'a Tree<V>,
    /// Criteria parameters.
    pub params: MatchParams,
    /// Label classification for the pair.
    pub classes: &'a LabelClasses,
    /// Leaf ranges of `t1`.
    pub leaves1: LeafRanges,
    /// Leaf ranges of `t2`.
    pub leaves2: LeafRanges,
    /// Pre-order intervals of `t1`.
    pub iv1: Intervals,
    /// Pre-order intervals of `t2`.
    pub iv2: Intervals,
    /// Instrumentation (interior mutability not needed — methods take
    /// `&mut self`).
    pub counters: MatchCounters,
}

impl<'a, V: NodeValue> MatchCtx<'a, V> {
    /// Builds the context (one O(N) pass per table).
    pub fn new(
        t1: &'a Tree<V>,
        t2: &'a Tree<V>,
        params: MatchParams,
        classes: &'a LabelClasses,
    ) -> MatchCtx<'a, V> {
        MatchCtx {
            t1,
            t2,
            params,
            classes,
            leaves1: LeafRanges::new(t1, classes),
            leaves2: LeafRanges::new(t2, classes),
            iv1: Intervals::new(t1),
            iv2: Intervals::new(t2),
            counters: MatchCounters::default(),
        }
    }

    /// Matching Criterion 1: may leaves `x ∈ T1` and `y ∈ T2` match?
    /// Counts one leaf compare.
    pub fn equal_leaves(&mut self, x: NodeId, y: NodeId) -> bool {
        self.counters.match_candidates += 1;
        if self.t1.label(x) != self.t2.label(y) {
            return false;
        }
        self.counters.leaf_compares += 1;
        self.t1.value(x).compare(self.t2.value(y)) <= self.params.leaf_threshold
    }

    /// Matching Criterion 2: may internal nodes `x ∈ T1` and `y ∈ T2` match
    /// under the current (leaf) matching `m`? Counts `min(|x|, |y|)` partner
    /// checks (the intersection cost of Appendix B).
    pub fn equal_internal(&mut self, x: NodeId, y: NodeId, m: &Matching) -> bool {
        self.counters.match_candidates += 1;
        if self.t1.label(x) != self.t2.label(y) {
            return false;
        }
        self.counters.internal_compares += 1;
        let nx = self.leaves1.count(x);
        let ny = self.leaves2.count(y);
        if nx == 0 || ny == 0 {
            // Childless internal-label nodes contain no leaves; with nothing
            // to intersect, two empty nodes are trivially similar and an
            // empty/non-empty pair is not.
            return nx == ny;
        }
        let common = self.common(x, y, m);
        let max = nx.max(ny) as f64;
        (common as f64) / max > self.params.inner_threshold
    }

    /// `|common(x, y)|`: matched leaf pairs `(w, z) ∈ M` with `w` contained
    /// in `x` and `z` contained in `y`. Iterates the smaller side.
    pub fn common(&mut self, x: NodeId, y: NodeId, m: &Matching) -> usize {
        let nx = self.leaves1.count(x);
        let ny = self.leaves2.count(y);
        let mut common = 0usize;
        if nx <= ny {
            self.counters.partner_checks += nx;
            for &w in self.leaves1.leaves_of(x) {
                // analyze: allow(S031) cost charged to partner_checks; callers tick per pair
                if let Some(z) = m.partner1(w) {
                    if self.iv2.is_ancestor(y, z) {
                        common += 1;
                    }
                }
            }
        } else {
            self.counters.partner_checks += ny;
            for &z in self.leaves2.leaves_of(y) {
                // analyze: allow(S031) cost charged to partner_checks; callers tick per pair
                if let Some(w) = m.partner2(z) {
                    if self.iv1.is_ancestor(x, w) {
                        common += 1;
                    }
                }
            }
        }
        common
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierdiff_tree::Tree;

    fn doc(s: &str) -> Tree<String> {
        Tree::parse_sexpr(s).unwrap()
    }

    fn ctx_for<'a>(
        t1: &'a Tree<String>,
        t2: &'a Tree<String>,
        params: MatchParams,
        classes: &'a LabelClasses,
    ) -> MatchCtx<'a, String> {
        MatchCtx::new(t1, t2, params, classes)
    }

    #[test]
    fn default_params_in_paper_ranges() {
        let p = MatchParams::default();
        assert!((0.0..=1.0).contains(&p.leaf_threshold));
        assert!((0.5..=1.0).contains(&p.inner_threshold));
    }

    #[test]
    fn thresholds_clamped() {
        assert_eq!(MatchParams::with_inner_threshold(0.2).inner_threshold, 0.5);
        assert_eq!(MatchParams::with_inner_threshold(1.5).inner_threshold, 1.0);
        assert_eq!(
            MatchParams::default()
                .with_leaf_threshold(-1.0)
                .leaf_threshold,
            0.0
        );
    }

    #[test]
    fn leaf_ranges_are_contiguous() {
        let t = doc(r#"(D (P (S "a") (S "b")) (Sec (P (S "c"))) (S "d"))"#);
        let classes = LabelClasses::classify(&t, &t);
        let lr = LeafRanges::new(&t, &classes);
        assert_eq!(lr.order.len(), 4);
        assert_eq!(lr.count(t.root()), 4);
        let kids: Vec<_> = t.children(t.root()).to_vec();
        assert_eq!(lr.count(kids[0]), 2);
        assert_eq!(lr.count(kids[1]), 1);
        assert_eq!(lr.count(kids[2]), 1);
        // leaves_of yields document order.
        let vals: Vec<_> = lr
            .leaves_of(t.root())
            .iter()
            .map(|&l| t.value(l).clone())
            .collect();
        assert_eq!(vals, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn equal_leaves_applies_criterion_1() {
        let t1 = doc(r#"(D (S "hello"))"#);
        let t2 = doc(r#"(D (S "hello") (P "hello"))"#);
        let classes = LabelClasses::classify(&t1, &t2);
        let mut ctx = ctx_for(&t1, &t2, MatchParams::default(), &classes);
        let x = t1.children(t1.root())[0];
        let y_same = t2.children(t2.root())[0];
        let y_other_label = t2.children(t2.root())[1];
        assert!(ctx.equal_leaves(x, y_same));
        assert!(!ctx.equal_leaves(x, y_other_label), "labels must match");
        // Label mismatch short-circuits before the compare counter.
        assert_eq!(ctx.counters.leaf_compares, 1);
    }

    #[test]
    fn equal_internal_needs_common_fraction() {
        // x has leaves a b c; y1 shares all 3; y2 shares 1 of 3.
        let t1 = doc(r#"(D (P (S "a") (S "b") (S "c")))"#);
        let t2 = doc(r#"(D (P (S "a") (S "b") (S "c")) (P (S "a") (S "x") (S "y")))"#);
        let classes = LabelClasses::classify(&t1, &t2);
        let mut ctx = ctx_for(&t1, &t2, MatchParams::default(), &classes);
        let p1 = t1.children(t1.root())[0];
        let q1 = t2.children(t2.root())[0];
        let q2 = t2.children(t2.root())[1];
        let mut m = Matching::new();
        // Match a↔a, b↔b, c↔c (into q1's children).
        for (i, &w) in t1.children(p1).iter().enumerate() {
            m.insert(w, t2.children(q1)[i]).unwrap();
        }
        assert!(ctx.equal_internal(p1, q1, &m)); // 3/3 > 0.6
        assert!(!ctx.equal_internal(p1, q2, &m)); // 0/3 (a matched elsewhere)
        assert!(ctx.counters.partner_checks >= 6);
        assert_eq!(ctx.counters.internal_compares, 2);
    }

    #[test]
    fn common_iterates_smaller_side() {
        let t1 = doc(r#"(D (P (S "a")))"#);
        let t2 = doc(r#"(D (P (S "a") (S "b") (S "c") (S "d")))"#);
        let classes = LabelClasses::classify(&t1, &t2);
        let mut ctx = ctx_for(&t1, &t2, MatchParams::default(), &classes);
        let p1 = t1.children(t1.root())[0];
        let q1 = t2.children(t2.root())[0];
        let mut m = Matching::new();
        m.insert(t1.children(p1)[0], t2.children(q1)[0]).unwrap();
        assert_eq!(ctx.common(p1, q1, &m), 1);
        // Only the 1-leaf side is scanned.
        assert_eq!(ctx.counters.partner_checks, 1);
    }

    #[test]
    fn empty_internal_nodes_match_only_each_other() {
        let t1 = doc(r#"(D (P) (P (S "a")))"#);
        let t2 = doc(r#"(D (P) (P (S "a")))"#);
        let classes = LabelClasses::classify(&t1, &t2);
        let mut ctx = ctx_for(&t1, &t2, MatchParams::default(), &classes);
        let e1 = t1.children(t1.root())[0];
        let f1 = t1.children(t1.root())[1];
        let e2 = t2.children(t2.root())[0];
        let f2 = t2.children(t2.root())[1];
        let mut m = Matching::new();
        m.insert(t1.children(f1)[0], t2.children(f2)[0]).unwrap();
        assert!(ctx.equal_internal(e1, e2, &m), "both empty");
        assert!(!ctx.equal_internal(e1, f2, &m), "empty vs non-empty");
        assert!(ctx.equal_internal(f1, f2, &m));
    }

    #[test]
    fn threshold_boundary_is_strict() {
        // common/max == t exactly must NOT match (criterion is strict >).
        let t1 = doc(r#"(D (P (S "a") (S "b")))"#);
        let t2 = doc(r#"(D (P (S "a") (S "x")))"#);
        let p1 = t1.children(t1.root())[0];
        let q1 = t2.children(t2.root())[0];
        let mut m = Matching::new();
        m.insert(t1.children(p1)[0], t2.children(q1)[0]).unwrap();
        // common = 1, max = 2 → ratio 0.5.
        let classes = LabelClasses::classify(&t1, &t2);
        let mut ctx = ctx_for(&t1, &t2, MatchParams::with_inner_threshold(0.5), &classes);
        assert!(!ctx.equal_internal(p1, q1, &m), "ratio == t must fail");
        let mut ctx = ctx_for(
            &t1,
            &t2,
            MatchParams {
                inner_threshold: 0.49,
                ..MatchParams::default()
            },
            &classes,
        );
        // (t below the paper's range, used only to verify strictness)
        assert!(ctx.equal_internal(p1, q1, &m));
    }
}
