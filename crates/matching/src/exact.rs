//! Identical-subtree pre-matching — the introduction's "quickly match
//! fragments that have not changed" promise, realized via subtree
//! fingerprints (the technique later tree differs such as GumTree adopted
//! as their top-down phase).
//!
//! [`prematch_unique_identical`] pairs every subtree whose fingerprint
//! occurs exactly once in each tree (confirmed by real isomorphism, so hash
//! collisions cannot corrupt the matching), pairing the whole subtree
//! node-by-node. Feeding the result to
//! [`fast_match_seeded`](crate::fast_match_seeded) — packaged as
//! [`fast_match_accelerated`] — skips all `compare` calls inside unchanged
//! regions. Uniqueness on *both* sides keeps the pre-pass consistent with
//! Criterion 3: an ambiguous fragment (duplicate) is left to the regular
//! algorithms.

use std::collections::HashMap;
use std::hash::Hash;

use hierdiff_edit::Matching;
use hierdiff_tree::{isomorphic_subtrees, subtree_hashes, NodeId, NodeValue, Tree};

use crate::criteria::MatchParams;
use crate::fast::fast_match_seeded;
use crate::simple::MatchResult;

/// Pairs subtrees that are bit-identical and unique on both sides,
/// top-down (a matched subtree's interior is paired wholesale and not
/// revisited). Returns the seed matching.
pub fn prematch_unique_identical<V: NodeValue + Hash>(
    t1: &Tree<V>,
    t2: &Tree<V>,
) -> Matching {
    let h1 = subtree_hashes(t1);
    let h2 = subtree_hashes(t2);
    let mut count1: HashMap<u64, (usize, NodeId)> = HashMap::new();
    for id in t1.preorder() {
        let e = count1.entry(h1[id.index()]).or_insert((0, id));
        e.0 += 1;
    }
    let mut count2: HashMap<u64, (usize, NodeId)> = HashMap::new();
    for id in t2.preorder() {
        let e = count2.entry(h2[id.index()]).or_insert((0, id));
        e.0 += 1;
    }

    let mut m = Matching::with_capacity(t1.arena_len(), t2.arena_len());
    // Top-down: recurse into children only when the node itself was not
    // wholesale-matched.
    let mut stack = vec![t1.root()];
    while let Some(x) = stack.pop() {
        let hash = h1[x.index()];
        let unique_here = count1.get(&hash).is_some_and(|&(c, _)| c == 1);
        let candidate = count2.get(&hash).and_then(|&(c, id)| (c == 1).then_some(id));
        if unique_here {
            if let Some(y) = candidate {
                if isomorphic_subtrees(t1, x, t2, y) {
                    // Pair the whole subtree node-by-node (shapes are
                    // identical, so parallel pre-orders line up).
                    let xs: Vec<NodeId> = hierdiff_tree::traverse::preorder_of(t1, x).collect();
                    let ys: Vec<NodeId> = hierdiff_tree::traverse::preorder_of(t2, y).collect();
                    debug_assert_eq!(xs.len(), ys.len());
                    for (&a, &b) in xs.iter().zip(&ys) {
                        m.insert(a, b).expect("disjoint subtrees, fresh pairs");
                    }
                    continue; // interior handled; do not descend
                }
            }
        }
        stack.extend(t1.children(x).iter().copied());
    }
    m
}

/// [`fast_match`](crate::fast_match) with the identical-subtree pre-pass.
/// Produces criteria-conformant matchings (pre-matched pairs are identical,
/// hence trivially within any `f`/`t`) while skipping comparisons inside
/// unchanged regions.
pub fn fast_match_accelerated<V: NodeValue + Hash>(
    t1: &Tree<V>,
    t2: &Tree<V>,
    params: MatchParams,
) -> MatchResult {
    let seed = prematch_unique_identical(t1, t2);
    fast_match_seeded(t1, t2, params, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fast::fast_match;

    fn doc(s: &str) -> Tree<String> {
        Tree::parse_sexpr(s).unwrap()
    }

    #[test]
    fn identical_trees_prematch_entirely() {
        let t1 = doc(r#"(D (P (S "a") (S "b")) (P (S "c")))"#);
        let t2 = t1.clone();
        let seed = prematch_unique_identical(&t1, &t2);
        assert_eq!(seed.len(), t1.len(), "whole tree pre-matched");
    }

    #[test]
    fn changed_regions_left_unmatched() {
        let t1 = doc(r#"(D (P (S "a") (S "b")) (P (S "old")))"#);
        let t2 = doc(r#"(D (P (S "a") (S "b")) (P (S "new")))"#);
        let seed = prematch_unique_identical(&t1, &t2);
        // The (a b) paragraph subtree pre-matches (3 nodes); the root and
        // the changed paragraph do not.
        let p1 = t1.children(t1.root())[0];
        assert!(seed.is_matched1(p1));
        assert!(seed.is_matched1(t1.children(p1)[0]));
        assert!(!seed.is_matched1(t1.root()));
        let changed = t1.children(t1.root())[1];
        assert!(!seed.is_matched1(changed));
    }

    #[test]
    fn duplicates_are_skipped() {
        // Two identical paragraphs on each side: ambiguous, so the pre-pass
        // must not touch them (Criterion 3 discipline). A changed sentence
        // keeps the roots from wholesale-matching.
        let t1 = doc(r#"(D (P (S "dup")) (P (S "dup")) (S "anchor") (S "old"))"#);
        let t2 = doc(r#"(D (P (S "dup")) (P (S "dup")) (S "anchor") (S "new"))"#);
        let seed = prematch_unique_identical(&t1, &t2);
        let p1 = t1.children(t1.root())[0];
        assert!(!seed.is_matched1(p1), "ambiguous subtree pre-matched");
        // The unique anchor does pre-match.
        let anchor = t1.children(t1.root())[2];
        assert!(seed.is_matched1(anchor));
    }

    #[test]
    fn accelerated_agrees_with_plain_fastmatch() {
        use hierdiff_workload::{generate_document, perturb, DocProfile, EditMix};
        let profile = DocProfile::default();
        for seed_n in 0..6u64 {
            let t1 = generate_document(4_400 + seed_n, &profile);
            let (t2, _) = perturb(&t1, 4_500 + seed_n, 10, &EditMix::default(), &profile);
            let plain = fast_match(&t1, &t2, MatchParams::default());
            let fast = fast_match_accelerated(&t1, &t2, MatchParams::default());
            assert_eq!(
                plain.matching.len(),
                fast.matching.len(),
                "seed {seed_n}: matching sizes diverge"
            );
            // And it does real work: fewer leaf compares on mostly-unchanged
            // documents.
            assert!(
                fast.counters.leaf_compares <= plain.counters.leaf_compares,
                "seed {seed_n}: accelerated did {} > {} compares",
                fast.counters.leaf_compares,
                plain.counters.leaf_compares
            );
            // The resulting diffs are equally good.
            let r1 = hierdiff_edit::edit_script(&t1, &t2, &plain.matching).unwrap();
            let r2 = hierdiff_edit::edit_script(&t1, &t2, &fast.matching).unwrap();
            assert_eq!(r1.script.len(), r2.script.len(), "seed {seed_n}");
        }
    }

    #[test]
    fn nested_unique_subtrees_not_double_matched() {
        // The whole document is unique-identical: only one wholesale match
        // should happen (at the root), covering everything exactly once.
        let t1 = doc(r#"(D (P (S "x") (S "y")) (Q (S "z")))"#);
        let t2 = t1.clone();
        let seed = prematch_unique_identical(&t1, &t2);
        assert_eq!(seed.len(), t1.len());
        for (a, b) in seed.iter() {
            assert_eq!(t1.label(a), t2.label(b));
        }
    }
}
