//! Identical-subtree pre-matching — the introduction's "quickly match
//! fragments that have not changed" promise, realized via subtree
//! fingerprints (the technique later tree differs such as GumTree adopted
//! as their top-down phase).
//!
//! [`prematch_unique_identical`] pairs every subtree whose fingerprint
//! occurs exactly once in each tree (confirmed by real isomorphism, so hash
//! collisions cannot corrupt the matching), pairing the whole subtree
//! node-by-node. Feeding the result to
//! [`fast_match_seeded`](crate::fast_match_seeded) — packaged as
//! [`fast_match_accelerated`] — skips all `compare` calls inside unchanged
//! regions. Uniqueness on *both* sides keeps the pre-pass consistent with
//! Criterion 3: an ambiguous fragment (duplicate) is left to the regular
//! algorithms.

use hierdiff_edit::Matching;
use hierdiff_tree::{NodeValue, Tree};

use crate::criteria::MatchParams;
use crate::error::MatchError;
use crate::fast::fast_match_seeded;
use crate::prune::prune_identical;
use crate::simple::MatchResult;

/// Pairs subtrees that are bit-identical and unique on both sides — the
/// pruning pre-pass of [`crate::prune_identical`], exposed as a bare seed
/// matching (a matched subtree's interior is paired wholesale). Use
/// [`crate::prune_identical`] directly to also receive the
/// [`PruneStats`](crate::PruneStats).
pub fn prematch_unique_identical<V: NodeValue>(
    t1: &Tree<V>,
    t2: &Tree<V>,
) -> Result<Matching, MatchError> {
    Ok(prune_identical(t1, t2)?.0)
}

/// [`fast_match`](crate::fast_match) with the identical-subtree pruning
/// pre-pass. Produces criteria-conformant matchings (pre-matched pairs are
/// identical, hence trivially within any `f`/`t`) while skipping
/// comparisons inside unchanged regions. The returned counters carry the
/// pruning statistics (`nodes_pruned`, `prune_candidates`,
/// `prune_collisions`).
pub fn fast_match_accelerated<V: NodeValue>(
    t1: &Tree<V>,
    t2: &Tree<V>,
    params: MatchParams,
) -> Result<MatchResult, MatchError> {
    let (seed, stats) = prune_identical(t1, t2)?;
    let mut result = fast_match_seeded(t1, t2, params, seed)?;
    result.counters.absorb_prune(&stats);
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fast::fast_match;

    fn doc(s: &str) -> Tree<String> {
        Tree::parse_sexpr(s).unwrap()
    }

    #[test]
    fn identical_trees_prematch_entirely() {
        let t1 = doc(r#"(D (P (S "a") (S "b")) (P (S "c")))"#);
        let t2 = t1.clone();
        let seed = prematch_unique_identical(&t1, &t2).unwrap();
        assert_eq!(seed.len(), t1.len(), "whole tree pre-matched");
    }

    #[test]
    fn changed_regions_left_unmatched() {
        let t1 = doc(r#"(D (P (S "a") (S "b")) (P (S "old")))"#);
        let t2 = doc(r#"(D (P (S "a") (S "b")) (P (S "new")))"#);
        let seed = prematch_unique_identical(&t1, &t2).unwrap();
        // The (a b) paragraph subtree pre-matches (3 nodes); the root and
        // the changed paragraph do not.
        let p1 = t1.children(t1.root())[0];
        assert!(seed.is_matched1(p1));
        assert!(seed.is_matched1(t1.children(p1)[0]));
        assert!(!seed.is_matched1(t1.root()));
        let changed = t1.children(t1.root())[1];
        assert!(!seed.is_matched1(changed));
    }

    #[test]
    fn duplicates_are_skipped() {
        // Two identical paragraphs on each side: ambiguous, so the pre-pass
        // must not touch them (Criterion 3 discipline). A changed sentence
        // keeps the roots from wholesale-matching.
        let t1 = doc(r#"(D (P (S "dup")) (P (S "dup")) (S "anchor") (S "old"))"#);
        let t2 = doc(r#"(D (P (S "dup")) (P (S "dup")) (S "anchor") (S "new"))"#);
        let seed = prematch_unique_identical(&t1, &t2).unwrap();
        let p1 = t1.children(t1.root())[0];
        assert!(!seed.is_matched1(p1), "ambiguous subtree pre-matched");
        // The unique anchor does pre-match.
        let anchor = t1.children(t1.root())[2];
        assert!(seed.is_matched1(anchor));
    }

    #[test]
    fn accelerated_agrees_with_plain_fastmatch() {
        use hierdiff_workload::{generate_document, perturb, DocProfile, EditMix};
        let profile = DocProfile::default();
        for seed_n in 0..6u64 {
            let t1 = generate_document(4_400 + seed_n, &profile);
            let (t2, _) = perturb(&t1, 4_500 + seed_n, 10, &EditMix::default(), &profile);
            let plain = fast_match(&t1, &t2, MatchParams::default()).unwrap();
            let fast = fast_match_accelerated(&t1, &t2, MatchParams::default()).unwrap();
            assert_eq!(
                plain.matching.len(),
                fast.matching.len(),
                "seed {seed_n}: matching sizes diverge"
            );
            // And it does real work: fewer leaf compares on mostly-unchanged
            // documents.
            assert!(
                fast.counters.leaf_compares <= plain.counters.leaf_compares,
                "seed {seed_n}: accelerated did {} > {} compares",
                fast.counters.leaf_compares,
                plain.counters.leaf_compares
            );
            // Pruning statistics surface through the counters.
            assert!(
                fast.counters.nodes_pruned > 0,
                "seed {seed_n}: nothing pruned on a mostly-unchanged document"
            );
            assert!(fast.counters.prune_candidates > 0);
            assert_eq!(
                plain.counters.nodes_pruned, 0,
                "plain FastMatch never prunes"
            );
            // The resulting diffs are equally good.
            let r1 = hierdiff_edit::edit_script(&t1, &t2, &plain.matching).unwrap();
            let r2 = hierdiff_edit::edit_script(&t1, &t2, &fast.matching).unwrap();
            assert_eq!(r1.script.len(), r2.script.len(), "seed {seed_n}");
        }
    }

    #[test]
    fn nested_unique_subtrees_not_double_matched() {
        // The whole document is unique-identical: only one wholesale match
        // should happen (at the root), covering everything exactly once.
        let t1 = doc(r#"(D (P (S "x") (S "y")) (Q (S "z")))"#);
        let t2 = t1.clone();
        let seed = prematch_unique_identical(&t1, &t2).unwrap();
        assert_eq!(seed.len(), t1.len());
        for (a, b) in seed.iter() {
            assert_eq!(t1.label(a), t2.label(b));
        }
    }
}
