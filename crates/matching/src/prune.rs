//! Identical-subtree pruning — the pre-pass that wholesale-matches maximal
//! unchanged fragments before Criteria 1–3 run.
//!
//! The introduction promises to "quickly match fragments that have not
//! changed"; this module realizes that promise with the
//! [`FingerprintIndex`]: subtree fingerprints locate candidate identical
//! subtrees in O(N), a tallest-first scan keeps only *maximal* ones, and a
//! real isomorphism check confirms every candidate so hash collisions can
//! never corrupt the matching (they are merely counted). Uniqueness is
//! required on **both** sides before a candidate is accepted, which keeps
//! the pre-pass consistent with Criterion 3's discipline: an ambiguous
//! fragment (duplicated on either side) is left for the regular algorithms
//! to resolve with full context.
//!
//! The output seeds [`fast_match_seeded`](crate::fast_match_seeded) (see
//! [`fast_match_accelerated`](crate::fast_match_accelerated)): seeded pairs
//! are final and visible to Criterion 2, so every comparison inside an
//! unchanged region is skipped while `common`-ratios still see its leaves.

use hierdiff_edit::Matching;
use hierdiff_tree::{isomorphic_subtrees, FingerprintIndex, NodeValue, Tree};

use crate::error::MatchError;

/// What the pruning pre-pass did, for instrumentation
/// ([`MatchCounters::absorb_prune`](crate::MatchCounters::absorb_prune)).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Nodes matched wholesale (across all pruned subtrees).
    pub nodes_pruned: usize,
    /// Maximal identical subtrees matched.
    pub subtrees_pruned: usize,
    /// Candidate pairs examined (hash-unique on both sides) — each cost one
    /// isomorphism verification.
    pub candidates: usize,
    /// Candidates rejected by verification: a genuine hash collision.
    pub collisions: usize,
}

/// Matches maximal identical subtrees between `t1` and `t2` by fingerprint,
/// returning the seed matching and what it cost.
///
/// A subtree qualifies when its fingerprint occurs exactly once in each
/// tree and isomorphism verification confirms the pair. Scanning `t1`'s
/// nodes tallest-first makes accepted subtrees maximal: once a subtree is
/// matched, its whole interior is paired node-by-node and skipped.
pub fn prune_identical<V: NodeValue>(
    t1: &Tree<V>,
    t2: &Tree<V>,
) -> Result<(Matching, PruneStats), MatchError> {
    let idx1 = FingerprintIndex::build(t1);
    let idx2 = FingerprintIndex::build(t2);
    prune_identical_indexed(t1, &idx1, t2, &idx2)
}

/// [`prune_identical`] over pre-built indexes, for callers that already
/// maintain a [`FingerprintIndex`] (e.g. one old tree diffed against many
/// new versions).
pub fn prune_identical_indexed<V: NodeValue>(
    t1: &Tree<V>,
    idx1: &FingerprintIndex,
    t2: &Tree<V>,
    idx2: &FingerprintIndex,
) -> Result<(Matching, PruneStats), MatchError> {
    let mut m = Matching::with_capacity(t1.arena_len(), t2.arena_len());
    let mut stats = PruneStats::default();
    for &x in idx1.tallest_first() {
        // analyze: allow(S031) single pass over the fingerprint index
        if m.is_matched1(x) {
            continue; // interior of an already-pruned subtree
        }
        let hash = idx1.hash(x);
        if idx1.multiplicity(hash) != 1 {
            continue; // ambiguous on the old side
        }
        let Some(y) = idx2.unique(hash) else {
            continue; // absent or ambiguous on the new side
        };
        if m.is_matched2(y) {
            continue; // defensive: a collision already claimed y
        }
        stats.candidates += 1;
        if !isomorphic_subtrees(t1, x, t2, y) {
            stats.collisions += 1;
            continue;
        }
        // Identical shapes: parallel pre-orders line up node-by-node.
        let xs = hierdiff_tree::traverse::preorder_of(t1, x);
        let ys = hierdiff_tree::traverse::preorder_of(t2, y);
        let mut paired = 0usize;
        for (a, b) in xs.zip(ys) {
            // analyze: allow(S031) pairs each pruned node exactly once
            m.insert(a, b)
                .map_err(|_| MatchError::Internal("pruned subtree pair already matched"))?;
            paired += 1;
        }
        stats.subtrees_pruned += 1;
        stats.nodes_pruned += paired;
    }
    Ok((m, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(s: &str) -> Tree<String> {
        Tree::parse_sexpr(s).unwrap()
    }

    #[test]
    fn identical_trees_prune_to_one_subtree() {
        let t1 = doc(r#"(D (P (S "a") (S "b")) (P (S "c")))"#);
        let t2 = t1.clone();
        let (m, stats) = prune_identical(&t1, &t2).unwrap();
        assert_eq!(m.len(), t1.len());
        assert_eq!(stats.subtrees_pruned, 1, "one maximal subtree: the root");
        assert_eq!(stats.nodes_pruned, t1.len());
        assert_eq!(stats.candidates, 1);
        assert_eq!(stats.collisions, 0);
    }

    #[test]
    fn maximality_prunes_ancestors_not_descendants() {
        // The first paragraph is unchanged; it must be pruned as ONE
        // subtree, not as three separate nodes.
        let t1 = doc(r#"(D (P (S "a") (S "b")) (S "old"))"#);
        let t2 = doc(r#"(D (P (S "a") (S "b")) (S "new"))"#);
        let (m, stats) = prune_identical(&t1, &t2).unwrap();
        let p = t1.children(t1.root())[0];
        assert!(m.is_matched1(p));
        assert_eq!(stats.subtrees_pruned, 1);
        assert_eq!(stats.nodes_pruned, 3);
        assert!(!m.is_matched1(t1.root()), "root differs");
    }

    #[test]
    fn duplicates_on_either_side_are_left_alone() {
        // "dup" is duplicated in t1 only; "twin" in t2 only; both must be
        // skipped. The unique anchor still prunes.
        let t1 = doc(r#"(D (S "dup") (S "dup") (S "twin") (S "anchor") (S "x"))"#);
        let t2 = doc(r#"(D (S "dup") (S "twin") (S "twin") (S "anchor") (S "y"))"#);
        let (m, stats) = prune_identical(&t1, &t2).unwrap();
        let kids1 = t1.children(t1.root());
        assert!(!m.is_matched1(kids1[0]), "dup ambiguous in t1");
        assert!(!m.is_matched1(kids1[1]), "dup ambiguous in t1");
        assert!(!m.is_matched1(kids1[2]), "twin ambiguous in t2");
        assert!(m.is_matched1(kids1[3]), "anchor unique both sides");
        assert_eq!(stats.subtrees_pruned, 1);
    }

    #[test]
    fn pruned_pairs_are_isomorphic_and_consistent() {
        let t1 = doc(r#"(D (Sec (P (S "k") (S "l"))) (Sec (P (S "m"))) (S "q"))"#);
        let t2 = doc(r#"(D (Sec (P (S "m"))) (Sec (P (S "k") (S "l"))) (S "r"))"#);
        let (m, stats) = prune_identical(&t1, &t2).unwrap();
        assert!(stats.nodes_pruned >= 7, "both sections pruned despite move");
        for (a, b) in m.iter() {
            assert_eq!(t1.label(a), t2.label(b));
            assert_eq!(t1.value(a), t2.value(b));
        }
    }

    #[test]
    fn indexed_variant_reuses_indexes() {
        let t1 = doc(r#"(D (P (S "a")))"#);
        let t2a = doc(r#"(D (P (S "a")) (S "new"))"#);
        let t2b = doc(r#"(D (P (S "a")) (S "other"))"#);
        let idx1 = hierdiff_tree::FingerprintIndex::build(&t1);
        for t2 in [&t2a, &t2b] {
            let idx2 = hierdiff_tree::FingerprintIndex::build(t2);
            let (m, _) = prune_identical_indexed(&t1, &idx1, t2, &idx2).unwrap();
            let p = t1.children(t1.root())[0];
            assert!(m.is_matched1(p));
        }
    }

    #[test]
    fn empty_stats_on_disjoint_trees() {
        let t1 = doc(r#"(D (S "a"))"#);
        let t2 = doc(r#"(E (S "b"))"#);
        let (m, stats) = prune_identical(&t1, &t2).unwrap();
        assert_eq!(m.len(), 0);
        assert_eq!(stats, PruneStats::default());
    }
}
