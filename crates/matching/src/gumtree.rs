//! GumTree-style greedy matching (Falleri et al., ASE 2014): the second
//! point on the `MatchStrategy` axis alongside the paper's FastMatch,
//! built from three phases:
//!
//! 1. **Top-down** — match isomorphic subtrees wholesale, tallest first,
//!    located in O(N) through the [`FingerprintIndex`] (the same
//!    accelerator behind [`prune_identical`](crate::prune_identical)).
//!    Where a fingerprint is ambiguous (duplicated fragments), candidates
//!    are paired in document order, mirroring the paper's chain
//!    discipline of Section 5.3; every accepted pair is verified by a real
//!    isomorphism check, so hash collisions are counted, never trusted.
//! 2. **Bottom-up** — match *containers* whose descendants already agree:
//!    a postorder scan proposes unmatched same-label ancestors of the
//!    partners of matched descendants and accepts the best candidate by
//!    [dice similarity](crate::dice_stats) above `sim_threshold`.
//! 3. **Recovery** — immediately after a container pair is adopted, if
//!    both subtrees are at most `max_recovery_size` nodes, run the exact
//!    Zhang–Shasha mapping (`hierdiff-zs`) on the pair and adopt every
//!    label-equal, both-unmatched, consistency-preserving pair — the
//!    "last chance" pass that pairs heavily reworded (renamed) leaves
//!    FastMatch's exact compare can never accept.
//!
//! **Consistency by construction.** The paper's audits demand label-equal
//! (A012), one-to-one (A013) matchings, and warn on ancestor-order
//! inversions (A014). Every adoption in phases 2–3 requires (a) zero
//! *escaped* matched descendants on either side ([`DiceStats::contained`])
//! and (b) the nearest matched proper ancestor on each side to map to a
//! proper ancestor of the partner. By induction these two local checks
//! keep the whole matching ancestor-consistent, so GumTree output never
//! trips A014 — see the strategy proptests in `tests/strategy_suite.rs`.

use std::collections::HashSet;

use hierdiff_edit::Matching;
use hierdiff_guard::Guard;
use hierdiff_tree::traverse::preorder_of;
use hierdiff_tree::{isomorphic_subtrees, FingerprintIndex, NodeId, NodeValue, Tree};
use hierdiff_zs::{tree_mapping, UnitCost};

use crate::criteria::MatchCounters;
use crate::dice::dice_stats;
use crate::error::MatchError;

/// Configuration for the GumTree strategy.
///
/// `Copy` so it can ride inside `Copy` option structs (e.g. the document
/// pipeline's `LaDiffOptions`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GumTreeParams {
    /// Minimum subtree height for a top-down anchor (leaves have height
    /// 0). The default `1` anchors internal subtrees only: single leaves
    /// are too ambiguous to pair greedily and are left to the bottom-up
    /// and recovery phases.
    pub min_height: u32,
    /// Dice-similarity threshold (strict `>`) for bottom-up container
    /// adoption, in `[0, 1]`. Root pairs are exempt: like the paper's
    /// Criterion 2 special case, the roots may always match when their
    /// labels agree.
    pub sim_threshold: f64,
    /// Maximum subtree size (nodes per side) for the Zhang–Shasha recovery
    /// pass on a freshly adopted container pair. `0` disables recovery.
    /// ZS is `O(n1·n2)` time and space, so this bound caps the worst-case
    /// cost of one recovery at `max_recovery_size²` — see DESIGN.md
    /// "Matching strategies" for the sizing rationale.
    pub max_recovery_size: usize,
}

impl Default for GumTreeParams {
    fn default() -> GumTreeParams {
        GumTreeParams {
            min_height: 1,
            sim_threshold: 0.5,
            max_recovery_size: 100,
        }
    }
}

impl GumTreeParams {
    /// Sets the top-down anchor height floor.
    pub fn with_min_height(mut self, min_height: u32) -> GumTreeParams {
        self.min_height = min_height;
        self
    }

    /// Sets the bottom-up dice threshold (clamped to `[0, 1]`).
    pub fn with_sim_threshold(mut self, sim_threshold: f64) -> GumTreeParams {
        self.sim_threshold = sim_threshold.clamp(0.0, 1.0);
        self
    }

    /// Sets the recovery-pass size bound (`0` disables recovery).
    pub fn with_max_recovery_size(mut self, max_recovery_size: usize) -> GumTreeParams {
        self.max_recovery_size = max_recovery_size;
        self
    }
}

/// Per-phase work accounting for one GumTree run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GumTreeStats {
    /// Isomorphic subtree pairs matched wholesale by the top-down phase.
    pub anchors: usize,
    /// Nodes matched across all top-down anchors.
    pub anchored_nodes: usize,
    /// Container pairs adopted by the bottom-up phase.
    pub containers: usize,
    /// Zhang–Shasha recovery invocations.
    pub recovery_runs: usize,
    /// Pairs adopted from recovery mappings.
    pub recovered: usize,
    /// Whether the LCS-cell budget ran out mid-recovery: the remaining
    /// recovery passes were skipped and the matching is valid but
    /// possibly non-maximal (the degradation ladder's GumTree rung —
    /// phases 1–2 still completed in full).
    pub recovery_truncated: bool,
}

/// Result of a GumTree matching run.
#[derive(Debug)]
pub struct GumTreeMatch {
    /// The computed (partial) matching.
    pub matching: Matching,
    /// Cost-model counters (fingerprint work maps onto the prune
    /// counters, bottom-up probes onto the comparison counters).
    pub counters: MatchCounters,
    /// Per-phase adoption statistics.
    pub stats: GumTreeStats,
}

/// GumTree matching with an unlimited guard (see
/// [`gumtree_match_guarded`]).
pub fn gumtree_match<V: NodeValue>(
    t1: &Tree<V>,
    t2: &Tree<V>,
    params: GumTreeParams,
) -> Result<GumTreeMatch, MatchError> {
    gumtree_match_guarded(t1, t2, params, &Guard::unlimited())
}

/// GumTree matching under resource governance: the guard is ticked
/// throughout all three phases, so budgets and cancellation surface as
/// [`MatchError::Guard`] at the usual stride.
pub fn gumtree_match_guarded<V: NodeValue>(
    t1: &Tree<V>,
    t2: &Tree<V>,
    params: GumTreeParams,
    guard: &Guard,
) -> Result<GumTreeMatch, MatchError> {
    let idx1 = FingerprintIndex::build(t1);
    let idx2 = FingerprintIndex::build(t2);
    guard.checkpoint()?;
    let mut m = Matching::with_capacity(t1.arena_len(), t2.arena_len());
    let mut counters = MatchCounters::default();
    let mut stats = GumTreeStats::default();
    top_down(
        t1,
        &idx1,
        t2,
        &idx2,
        params,
        &mut m,
        &mut counters,
        &mut stats,
        guard,
    )?;
    guard.checkpoint()?;
    bottom_up(t1, t2, params, &mut m, &mut counters, &mut stats, guard)?;
    Ok(GumTreeMatch {
        matching: m,
        counters,
        stats,
    })
}

/// Phase 1: greedy isomorphic-subtree matching, tallest first.
///
/// The tallest-first order guarantees that when `x` is reached unmatched,
/// its whole subtree interior is unmatched too (only taller nodes — i.e.
/// its ancestors, none matched, or disjoint subtrees — were processed
/// before it), so wholesale preorder pairing cannot collide.
#[allow(clippy::too_many_arguments)]
fn top_down<V: NodeValue>(
    t1: &Tree<V>,
    idx1: &FingerprintIndex,
    t2: &Tree<V>,
    idx2: &FingerprintIndex,
    params: GumTreeParams,
    m: &mut Matching,
    counters: &mut MatchCounters,
    stats: &mut GumTreeStats,
    guard: &Guard,
) -> Result<(), MatchError> {
    let mut processed: HashSet<u64> = HashSet::new();
    for &x in idx1.tallest_first() {
        guard.tick()?;
        if idx1.height(x) < params.min_height {
            break; // tallest-first: everything after is shorter still
        }
        if m.is_matched1(x) {
            continue; // interior of an accepted anchor
        }
        let hash = idx1.hash(x);
        if !processed.insert(hash) {
            continue; // the whole chain was handled at its first member
        }
        if idx2.chain(hash).is_empty() {
            continue;
        }
        counters.chain_scans += 1;
        // Document-order chains of still-unmatched candidates; ambiguous
        // fragments pair positionally, every pair verified individually.
        let c1: Vec<NodeId> = idx1
            .chain(hash)
            .iter()
            .copied()
            .filter(|&a| !m.is_matched1(a))
            .collect();
        let c2: Vec<NodeId> = idx2
            .chain(hash)
            .iter()
            .copied()
            .filter(|&b| !m.is_matched2(b))
            .collect();
        for (&a, &b) in c1.iter().zip(c2.iter()) {
            guard.tick()?;
            if m.is_matched1(a) || m.is_matched2(b) {
                continue; // claimed by a colliding chain processed earlier
            }
            counters.prune_candidates += 1;
            if !isomorphic_subtrees(t1, a, t2, b) {
                counters.prune_collisions += 1;
                continue;
            }
            let mut paired = 0usize;
            for (p, q) in preorder_of(t1, a).zip(preorder_of(t2, b)) {
                guard.tick()?;
                m.insert(p, q)
                    .map_err(|_| MatchError::Internal("gumtree anchor pair already matched"))?;
                paired += 1;
            }
            counters.nodes_pruned += paired;
            stats.anchors += 1;
            stats.anchored_nodes += paired;
        }
    }
    Ok(())
}

/// Phase 2 (+3): postorder container adoption by dice similarity, with
/// the bounded ZS recovery pass run on each freshly adopted pair.
fn bottom_up<V: NodeValue>(
    t1: &Tree<V>,
    t2: &Tree<V>,
    params: GumTreeParams,
    m: &mut Matching,
    counters: &mut MatchCounters,
    stats: &mut GumTreeStats,
    guard: &Guard,
) -> Result<(), MatchError> {
    let root1 = t1.root();
    let root2 = t2.root();
    for x in t1.postorder() {
        guard.tick()?;
        if m.is_matched1(x) || t1.is_leaf(x) {
            continue;
        }
        let is_root = x == root1;
        let cands = candidates(t1, x, t2, m, counters, guard)?;
        let mut best: Option<(NodeId, f64)> = None;
        for &y in &cands {
            guard.tick()?;
            counters.internal_compares += 1;
            let s = dice_stats(t1, x, t2, y, m);
            counters.partner_checks += s.probes;
            if !s.contained() || !anchors_consistent(t1, x, t2, y, m, guard)? {
                continue;
            }
            let d = s.dice();
            if (d > params.sim_threshold || (is_root && y == root2))
                && best.is_none_or(|(_, bd)| d > bd)
            {
                best = Some((y, d));
            }
        }
        if let Some((y, _)) = best {
            m.insert(x, y)
                .map_err(|_| MatchError::Internal("gumtree container pair already matched"))?;
            stats.containers += 1;
            recover(t1, x, t2, y, params, m, counters, stats, guard)?;
        }
    }
    Ok(())
}

/// Candidate containers for `x`: unmatched same-label nodes of `t2` found
/// by climbing from the partners of `x`'s matched descendants, stopping
/// at the first matched ancestor (a container above a foreign matched
/// node could never pass the containment check anyway). The root pair is
/// proposed unconditionally when both roots are unmatched and label-equal
/// — the top of the document always corresponds.
fn candidates<V: NodeValue>(
    t1: &Tree<V>,
    x: NodeId,
    t2: &Tree<V>,
    m: &Matching,
    counters: &mut MatchCounters,
    guard: &Guard,
) -> Result<Vec<NodeId>, MatchError> {
    let label = t1.label(x);
    let mut cands: Vec<NodeId> = Vec::new();
    for d in t1.descendants(x) {
        guard.tick()?;
        counters.match_candidates += 1;
        let Some(e) = m.partner1(d) else {
            continue;
        };
        for a in t2.ancestors(e) {
            guard.tick()?;
            if m.is_matched2(a) {
                break;
            }
            if t2.label(a) == label && !cands.contains(&a) {
                cands.push(a);
            }
        }
    }
    let root2 = t2.root();
    if x == t1.root()
        && !m.is_matched2(root2)
        && t2.label(root2) == label
        && !cands.contains(&root2)
    {
        cands.push(root2);
    }
    Ok(cands)
}

/// Whether adopting `(x, y)` respects both sides' nearest matched proper
/// ancestors: each must map to a proper ancestor of the other endpoint.
/// Together with [`DiceStats::contained`] this keeps the matching
/// ancestor-consistent by induction (module docs).
fn anchors_consistent<V: NodeValue>(
    t1: &Tree<V>,
    x: NodeId,
    t2: &Tree<V>,
    y: NodeId,
    m: &Matching,
    guard: &Guard,
) -> Result<bool, MatchError> {
    for a in t1.ancestors(x) {
        guard.tick()?;
        if let Some(b) = m.partner1(a) {
            if !(t2.is_ancestor(b, y) && b != y) {
                return Ok(false);
            }
            break;
        }
    }
    for b in t2.ancestors(y) {
        guard.tick()?;
        if let Some(a) = m.partner2(b) {
            if !(t1.is_ancestor(a, x) && a != x) {
                return Ok(false);
            }
            break;
        }
    }
    Ok(true)
}

/// Phase 3: the bounded "last chance" Zhang–Shasha pass on a freshly
/// adopted container pair. Runs only when both subtrees fit under
/// `max_recovery_size` and at least one side still has unmatched
/// descendants; adopted pairs must be label-equal (the paper's ops cannot
/// relabel), both-unmatched, and consistency-preserving.
#[allow(clippy::too_many_arguments)]
fn recover<V: NodeValue>(
    t1: &Tree<V>,
    x: NodeId,
    t2: &Tree<V>,
    y: NodeId,
    params: GumTreeParams,
    m: &mut Matching,
    counters: &mut MatchCounters,
    stats: &mut GumTreeStats,
    guard: &Guard,
) -> Result<(), MatchError> {
    if params.max_recovery_size == 0
        || stats.recovery_truncated
        || t1.subtree_size(x) > params.max_recovery_size
        || t2.subtree_size(y) > params.max_recovery_size
    {
        return Ok(());
    }
    let unmatched1 = t1.descendants(x).any(|d| m.partner1(d).is_none());
    let unmatched2 = t2.descendants(y).any(|e| m.partner2(e).is_none());
    if !unmatched1 && !unmatched2 {
        return Ok(());
    }
    guard.checkpoint()?;
    let (sub1, map1) = t1.extract_subtree(x);
    let (sub2, map2) = t2.extract_subtree(y);
    // ZS is O(n1·n2): charge its cell grid against the run's LCS-cell
    // budget *before* doing the work. Exhaustion here degrades instead
    // of failing — the pairs phases 1–2 adopted stand, the remaining
    // "last chance" passes are skipped, and the caller sees
    // `recovery_truncated` (surfaced as a degraded-matching run).
    let cells = (sub1.len() as u64).saturating_mul(sub2.len() as u64);
    match guard.charge_lcs_cells(cells) {
        Ok(()) => {}
        Err(hierdiff_guard::GuardError::Budget(hierdiff_guard::Budget::LcsCells)) => {
            stats.recovery_truncated = true;
            return Ok(());
        }
        Err(e) => return Err(MatchError::Guard(e)),
    }
    stats.recovery_runs += 1;
    let zs = tree_mapping(&sub1, &sub2, &UnitCost);
    // Adopt ancestors-first (extracted ids are preorder-contiguous, so
    // sub1 index order is preorder) so the nearest-matched-ancestor
    // checks see parents before children.
    let mut pairs: Vec<(NodeId, NodeId)> = zs.iter().collect();
    pairs.sort_by_key(|(a, _)| a.index());
    for (a, b) in pairs {
        guard.tick()?;
        counters.match_candidates += 1;
        let orig1 = map1
            .get(a.index())
            .copied()
            .ok_or(MatchError::Internal("zs mapping outside extracted subtree"))?;
        let orig2 = map2
            .get(b.index())
            .copied()
            .ok_or(MatchError::Internal("zs mapping outside extracted subtree"))?;
        if t1.label(orig1) != t2.label(orig2) {
            continue; // the paper's ops cannot relabel
        }
        if m.is_matched1(orig1) || m.is_matched2(orig2) {
            continue;
        }
        if !dice_stats(t1, orig1, t2, orig2, m).contained()
            || !anchors_consistent(t1, orig1, t2, orig2, m, guard)?
        {
            continue;
        }
        m.insert(orig1, orig2)
            .map_err(|_| MatchError::Internal("gumtree recovery pair already matched"))?;
        stats.recovered += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(s: &str) -> Tree<String> {
        Tree::parse_sexpr(s).unwrap()
    }

    #[test]
    fn identical_trees_match_completely_top_down() {
        let t1 = doc(r#"(D (P (S "a") (S "b")) (P (S "c")))"#);
        let t2 = t1.clone();
        let r = gumtree_match(&t1, &t2, GumTreeParams::default()).unwrap();
        assert_eq!(r.matching.len(), t1.len());
        assert_eq!(r.stats.anchors, 1, "one maximal anchor: the root");
        assert_eq!(r.stats.anchored_nodes, t1.len());
        assert_eq!(r.stats.recovery_runs, 0, "nothing left to recover");
    }

    #[test]
    fn moved_subtrees_anchor_despite_reorder() {
        let t1 = doc(r#"(D (Sec (P (S "k") (S "l"))) (Sec (P (S "m"))) (S "q"))"#);
        let t2 = doc(r#"(D (Sec (P (S "m"))) (Sec (P (S "k") (S "l"))) (S "r"))"#);
        let r = gumtree_match(&t1, &t2, GumTreeParams::default()).unwrap();
        assert!(r.stats.anchored_nodes >= 7, "both sections anchored");
        // The root is adopted bottom-up: all matched descendants agree.
        assert!(r.matching.contains(t1.root(), t2.root()));
        for (a, b) in r.matching.iter() {
            assert_eq!(t1.label(a), t2.label(b), "A012: labels equal");
        }
    }

    #[test]
    fn ambiguous_duplicates_pair_in_document_order() {
        let t1 = doc(r#"(D (P (S "x")) (P (S "x")))"#);
        let t2 = doc(r#"(D (P (S "x")) (P (S "x")))"#);
        let r = gumtree_match(&t1, &t2, GumTreeParams::default()).unwrap();
        let a = t1.children(t1.root());
        let b = t2.children(t2.root());
        assert_eq!(r.matching.partner1(a[0]), Some(b[0]));
        assert_eq!(r.matching.partner1(a[1]), Some(b[1]));
    }

    #[test]
    fn recovery_pairs_reworded_leaves() {
        // Both sentences rewritten beyond exact compare: no top-down
        // anchor below the root, so FastMatch-style exact matching fails,
        // but the root pair's recovery ZS maps them positionally.
        let t1 = doc(r#"(D (P (S "totally original phrasing") (S "anchor")))"#);
        let t2 = doc(r#"(D (P (S "completely different words") (S "anchor")))"#);
        let r = gumtree_match(&t1, &t2, GumTreeParams::default()).unwrap();
        assert!(r.stats.recovery_runs >= 1);
        assert!(r.stats.recovered >= 1, "reworded sentence recovered");
        assert_eq!(r.matching.len(), t1.len(), "everything pairs up");
    }

    #[test]
    fn recovery_disabled_by_zero_bound() {
        let t1 = doc(r#"(D (P (S "totally original phrasing") (S "anchor")))"#);
        let t2 = doc(r#"(D (P (S "completely different words") (S "anchor")))"#);
        let off = GumTreeParams::default().with_max_recovery_size(0);
        let r = gumtree_match(&t1, &t2, off).unwrap();
        assert_eq!(r.stats.recovery_runs, 0);
        assert_eq!(r.stats.recovered, 0);
        let on = gumtree_match(&t1, &t2, GumTreeParams::default()).unwrap();
        assert!(on.matching.len() > r.matching.len());
    }

    #[test]
    fn recovery_respects_size_bound() {
        // 30 reworded sentences under one paragraph: subtree exceeds a
        // tiny bound, so recovery skips it.
        let olds: Vec<String> = (0..30).map(|i| format!("(S \"old text {i}\")")).collect();
        let news: Vec<String> = (0..30).map(|i| format!("(S \"new text {i}\")")).collect();
        let t1 = doc(&format!("(D (P {}))", olds.join(" ")));
        let t2 = doc(&format!("(D (P {}))", news.join(" ")));
        let bounded =
            gumtree_match(&t1, &t2, GumTreeParams::default().with_max_recovery_size(8)).unwrap();
        assert_eq!(bounded.stats.recovery_runs, 0, "32-node subtrees skipped");
        let wide = gumtree_match(&t1, &t2, GumTreeParams::default()).unwrap();
        assert!(wide.stats.recovered >= 30);
    }

    #[test]
    fn sim_threshold_gates_containers() {
        // The paragraphs share the anchored (Q ..) fragment (3 of 6
        // descendants each side): dice = 6/12 = 0.5.
        let t1 = doc(r#"(D (P (Q (S "a1") (S "a2")) (S "b") (S "c") (S "d")))"#);
        let t2 = doc(r#"(D (P (Q (S "a1") (S "a2")) (S "x") (S "y") (S "z")))"#);
        let p1 = t1.children(t1.root())[0];
        let strict = GumTreeParams::default()
            .with_sim_threshold(0.6)
            .with_max_recovery_size(0);
        let r = gumtree_match(&t1, &t2, strict).unwrap();
        assert_eq!(r.matching.partner1(p1), None, "0.5 < 0.6");
        let lax = GumTreeParams::default()
            .with_sim_threshold(0.4)
            .with_max_recovery_size(0);
        let r = gumtree_match(&t1, &t2, lax).unwrap();
        assert!(r.matching.partner1(p1).is_some(), "0.5 > 0.4");
    }

    #[test]
    fn roots_exempt_from_threshold() {
        // Nothing matches below the roots, yet the label-equal roots pair.
        let t1 = doc(r#"(D (S "completely old"))"#);
        let t2 = doc(r#"(D (S "entirely new") (S "extra"))"#);
        let r =
            gumtree_match(&t1, &t2, GumTreeParams::default().with_max_recovery_size(0)).unwrap();
        assert!(r.matching.contains(t1.root(), t2.root()));
    }

    #[test]
    fn label_mismatched_roots_stay_unmatched() {
        let t1 = doc(r#"(D (S "a"))"#);
        let t2 = doc(r#"(E (S "a"))"#);
        let r = gumtree_match(&t1, &t2, GumTreeParams::default()).unwrap();
        assert!(!r.matching.is_matched1(t1.root()), "A012 respected");
    }

    #[test]
    fn min_height_zero_anchors_leaves() {
        let t1 = doc(r#"(D (S "same") (S "old"))"#);
        let t2 = doc(r#"(D (S "same") (S "new"))"#);
        let leafy = GumTreeParams::default()
            .with_min_height(0)
            .with_max_recovery_size(0);
        let r = gumtree_match(&t1, &t2, leafy).unwrap();
        let s1 = t1.children(t1.root())[0];
        let s2 = t2.children(t2.root())[0];
        assert_eq!(r.matching.partner1(s1), Some(s2), "identical leaf anchored");
    }

    #[test]
    fn matching_is_injective_and_ancestor_consistent() {
        let t1 = doc(
            r#"(D (Sec (P (S "a") (S "b")) (P (S "c"))) (Sec (P (S "dd") (S "ee"))) (S "tail"))"#,
        );
        let t2 = doc(
            r#"(D (Sec (P (S "dd") (S "ee") (S "ff"))) (Sec (P (S "c")) (P (S "a") (S "b"))))"#,
        );
        let r = gumtree_match(&t1, &t2, GumTreeParams::default()).unwrap();
        let pairs: Vec<(NodeId, NodeId)> = r.matching.iter().collect();
        for (i, &(a, b)) in pairs.iter().enumerate() {
            assert_eq!(r.matching.partner1(a), Some(b));
            assert_eq!(r.matching.partner2(b), Some(a));
            for &(c, d) in &pairs[i + 1..] {
                assert_eq!(
                    t1.is_ancestor(a, c),
                    t2.is_ancestor(b, d),
                    "ancestor order preserved: ({a:?},{b:?}) vs ({c:?},{d:?})"
                );
                assert_eq!(t1.is_ancestor(c, a), t2.is_ancestor(d, b));
            }
        }
    }

    #[test]
    fn recovery_truncates_gracefully_on_lcs_budget() {
        use hierdiff_guard::Budgets;
        let t1 = doc(r#"(D (P (S "totally original phrasing") (S "anchor")))"#);
        let t2 = doc(r#"(D (P (S "completely different words") (S "anchor")))"#);
        // Recovery would need 4×4 cells for the paragraph pair; a 1-cell
        // budget exhausts immediately — the run must still succeed.
        let guard = Guard::new(Budgets::unlimited().with_max_lcs_cells(1), None);
        let r = gumtree_match_guarded(&t1, &t2, GumTreeParams::default(), &guard)
            .expect("budget exhaustion inside recovery must degrade, not fail");
        assert!(r.stats.recovery_truncated, "truncation recorded");
        assert_eq!(r.stats.recovery_runs, 0, "no ZS run was paid for");
        let full = gumtree_match(&t1, &t2, GumTreeParams::default()).unwrap();
        assert!(
            r.matching.len() < full.matching.len(),
            "truncated run is non-maximal but valid"
        );
        for (a, b) in r.matching.iter() {
            assert_eq!(t1.label(a), t2.label(b), "A012 holds under truncation");
        }
    }

    #[test]
    fn guard_cancellation_stops_the_run() {
        use hierdiff_guard::{Budgets, CancelToken, GuardError};
        let t1 = doc(r#"(D (P (S "a") (S "b")))"#);
        let t2 = doc(r#"(D (P (S "a") (S "c")))"#);
        let token = CancelToken::new();
        token.cancel();
        let guard = Guard::new(Budgets::unlimited(), Some(token));
        let err = gumtree_match_guarded(&t1, &t2, GumTreeParams::default(), &guard)
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err, MatchError::Guard(GuardError::Cancelled));
    }

    #[test]
    fn params_builders_clamp() {
        let p = GumTreeParams::default()
            .with_sim_threshold(7.0)
            .with_min_height(3)
            .with_max_recovery_size(12);
        assert_eq!(p.sim_threshold, 1.0);
        assert_eq!(p.min_height, 3);
        assert_eq!(p.max_recovery_size, 12);
    }
}
