//! Matching quality metrics: precision/recall of a computed matching
//! against a reference (e.g. the ZS-optimal mapping, or the ground-truth
//! correspondence a workload generator knows). Used by the experiment
//! harness to quantify the paper's optimality-vs-efficiency trade-off
//! (Section 8: "a non-optimal matching compromises only the quality of an
//! edit script ... not its correctness").

use hierdiff_edit::Matching;

/// Precision/recall of `candidate` against `reference`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MatchQuality {
    /// Pairs present in both matchings.
    pub agreed: usize,
    /// Pairs only in `candidate`.
    pub spurious: usize,
    /// Pairs only in `reference`.
    pub missed: usize,
}

impl MatchQuality {
    /// `agreed / (agreed + spurious)`; 1.0 for an empty candidate.
    pub fn precision(&self) -> f64 {
        let denom = self.agreed + self.spurious;
        if denom == 0 {
            1.0
        } else {
            self.agreed as f64 / denom as f64
        }
    }

    /// `agreed / (agreed + missed)`; 1.0 for an empty reference.
    pub fn recall(&self) -> f64 {
        let denom = self.agreed + self.missed;
        if denom == 0 {
            1.0
        } else {
            self.agreed as f64 / denom as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Compares `candidate` pairs against `reference` pairs.
pub fn match_quality(candidate: &Matching, reference: &Matching) -> MatchQuality {
    let mut agreed = 0;
    let mut spurious = 0;
    for (x, y) in candidate.iter() {
        if reference.contains(x, y) {
            agreed += 1;
        } else {
            spurious += 1;
        }
    }
    let missed = reference.len() - agreed;
    MatchQuality {
        agreed,
        spurious,
        missed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierdiff_tree::NodeId;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    fn m(pairs: &[(usize, usize)]) -> Matching {
        let mut m = Matching::new();
        for &(a, b) in pairs {
            m.insert(n(a), n(b)).unwrap();
        }
        m
    }

    #[test]
    fn identical_matchings_are_perfect() {
        let a = m(&[(0, 0), (1, 2), (3, 1)]);
        let q = match_quality(&a, &a.clone());
        assert_eq!(q.agreed, 3);
        assert_eq!(q.precision(), 1.0);
        assert_eq!(q.recall(), 1.0);
        assert_eq!(q.f1(), 1.0);
    }

    #[test]
    fn partial_overlap() {
        let candidate = m(&[(0, 0), (1, 1), (2, 9)]);
        let reference = m(&[(0, 0), (1, 1), (2, 2), (3, 3)]);
        let q = match_quality(&candidate, &reference);
        assert_eq!(q.agreed, 2);
        assert_eq!(q.spurious, 1);
        assert_eq!(q.missed, 2);
        assert!((q.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(q.recall(), 0.5);
        assert!(q.f1() > 0.5 && q.f1() < 0.67);
    }

    #[test]
    fn empty_edge_cases() {
        let empty = Matching::new();
        let some = m(&[(0, 0)]);
        let q = match_quality(&empty, &some);
        assert_eq!(q.precision(), 1.0);
        assert_eq!(q.recall(), 0.0);
        assert_eq!(q.f1(), 0.0);
        let q = match_quality(&some, &empty);
        assert_eq!(q.precision(), 0.0);
        assert_eq!(q.recall(), 1.0);
    }
}
