//! hierdiff-analyze: hot-module
//!
//! Algorithm *FastMatch* (Figure 11): the paper's fast matcher,
//! `O((ne + e²)c + 2lne)` where `e` is the weighted edit distance.
//!
//! "Algorithm FastMatch uses the longest common subsequence (LCS) routine
//! ... to perform an initial matching of nodes that appear in the same
//! order. Nodes still unmatched after the call to LCS are processed as in
//! Algorithm Match." Per-label node chains provide the sequences; Myers'
//! O(ND) LCS makes the common near-identical case cheap.

use hierdiff_edit::Matching;
use hierdiff_guard::Guard;
use hierdiff_lcs::{lcs_counted_guarded, LcsStats};
use hierdiff_tree::{NodeId, NodeValue, Tree};

use crate::criteria::{MatchCtx, MatchParams};
use crate::error::MatchError;
use crate::schema::LabelClasses;
use crate::simple::{label_chains, MatchResult};

/// Algorithm *FastMatch* (Figure 11).
///
/// Runs ungoverned; the only possible error is [`MatchError::Internal`]
/// (an invariant bug), so callers that trust the matcher may treat the
/// result as infallible.
pub fn fast_match<V: NodeValue>(
    t1: &Tree<V>,
    t2: &Tree<V>,
    params: MatchParams,
) -> Result<MatchResult, MatchError> {
    fast_match_seeded(t1, t2, params, Matching::new())
}

/// Algorithm *FastMatch* starting from a pre-established partial matching
/// `seed` (e.g. key-derived pairs, see [`crate::match_keyed_then_content`]).
/// Seeded pairs are kept verbatim and — crucially — visible to Criterion 2
/// while internal nodes are compared, so keyed leaves count toward their
/// ancestors' `common` ratios.
pub fn fast_match_seeded<V: NodeValue>(
    t1: &Tree<V>,
    t2: &Tree<V>,
    params: MatchParams,
    seed: Matching,
) -> Result<MatchResult, MatchError> {
    fast_match_governed(t1, t2, params, seed, &Guard::unlimited()).map_err(|e| match e {
        // An unlimited guard cannot trip; if it somehow does, that is an
        // invariant violation, not a governance outcome.
        MatchError::Guard(_) => MatchError::Internal("unlimited guard tripped"),
        other => other,
    })
}

/// Algorithm *FastMatch* under resource governance: `guard` is ticked once
/// per chain scan and (strided) per quadratic-fallback candidate, and every
/// per-chain LCS runs against the guard's `max_lcs_cells` budget.
///
/// On `Err(MatchError::Guard(GuardError::Budget(Budget::LcsCells)))` the
/// caller should fall back to [`crate::bounded_greedy_match`], the LCS-free
/// degraded tier; cancellation and deadline errors are terminal.
pub fn fast_match_guarded<V: NodeValue>(
    t1: &Tree<V>,
    t2: &Tree<V>,
    params: MatchParams,
    guard: &Guard,
) -> Result<MatchResult, MatchError> {
    fast_match_governed(t1, t2, params, Matching::new(), guard)
}

/// [`fast_match_guarded`] starting from a pre-established partial matching
/// (the governed form of [`fast_match_seeded`]).
pub fn fast_match_seeded_guarded<V: NodeValue>(
    t1: &Tree<V>,
    t2: &Tree<V>,
    params: MatchParams,
    seed: Matching,
    guard: &Guard,
) -> Result<MatchResult, MatchError> {
    fast_match_governed(t1, t2, params, seed, guard)
}

fn fast_match_governed<V: NodeValue>(
    t1: &Tree<V>,
    t2: &Tree<V>,
    params: MatchParams,
    seed: Matching,
    guard: &Guard,
) -> Result<MatchResult, MatchError> {
    // The setup passes are each O(N); checkpoints between them bound how
    // long a fired cancel token or expired deadline can go unnoticed on
    // very large inputs (the per-label loops below tick per element).
    let classes = LabelClasses::classify(t1, t2);
    guard.checkpoint()?;
    let mut ctx = MatchCtx::new(t1, t2, params, &classes);
    guard.checkpoint()?;
    let mut m = seed;
    let chains1 = label_chains(t1);
    guard.checkpoint()?;
    let chains2 = label_chains(t2);
    guard.checkpoint()?;

    let empty: Vec<NodeId> = Vec::new();
    // The filtered-chain buffers live outside the per-label loop: one
    // allocation pair for the whole run (hot-loop discipline — the loop
    // body itself must stay allocation-free).
    let mut s1: Vec<NodeId> = Vec::new();
    let mut s2: Vec<NodeId> = Vec::new();
    for (phase, phase_labels) in [&classes.leaf_labels, &classes.internal_labels]
        .into_iter()
        .enumerate()
    {
        guard.checkpoint()?;
        let is_leaf_phase = phase == 0;
        for &label in phase_labels {
            // Seeded/already-matched nodes can never pair again, so drop them
            // from the chains up front. (Equivalent to guarding inside the
            // LCS equality callback — `m` is constant during one `lcs` call —
            // but keeps Myers' O(ND) fast when a pre-pass seeded most of the
            // chain: a mostly-matched chain otherwise has no common elements
            // left, driving D to l1+l2 and the LCS to quadratic.)
            s1.clear();
            for &x in chains1.get(&label).unwrap_or(&empty) {
                guard.tick()?;
                if !m.is_matched1(x) {
                    s1.push(x);
                }
            }
            s2.clear();
            for &y in chains2.get(&label).unwrap_or(&empty) {
                guard.tick()?;
                if !m.is_matched2(y) {
                    s2.push(y);
                }
            }
            if s1.is_empty() || s2.is_empty() {
                continue;
            }
            guard.tick()?;
            ctx.counters.chain_scans += 1;
            // 2c. Initial matching of same-order nodes via LCS. The equality
            //     function is the phase's matching criterion.
            let mut lcs_stats = LcsStats::default();
            let lcs_outcome = if is_leaf_phase {
                lcs_counted_guarded(
                    &s1,
                    &s2,
                    |&x, &y| ctx.equal_leaves(x, y),
                    &mut lcs_stats,
                    guard,
                )
            } else {
                lcs_counted_guarded(
                    &s1,
                    &s2,
                    |&x, &y| ctx.equal_internal(x, y, &m),
                    &mut lcs_stats,
                    guard,
                )
            };
            ctx.counters.lcs_cells += lcs_stats.cells;
            let pairs = lcs_outcome?;
            // 2d. Adopt the LCS pairs (checked unmatched, strictly
            // increasing — a rejected insert is an invariant bug).
            for &(i, j) in &pairs {
                guard.tick()?;
                m.insert(s1[i], s2[j]) // analyze: allow(S004) LCS pairs index into the chains they came from
                    .map_err(|_| MatchError::Internal("LCS pair already matched"))?;
            }
            // 2e. Pair remaining unmatched nodes as in Algorithm Match.
            for &x in &s1 {
                guard.tick()?;
                if m.is_matched1(x) {
                    continue;
                }
                for &y in &s2 {
                    if m.is_matched2(y) {
                        continue;
                    }
                    guard.tick()?;
                    let eq = if is_leaf_phase {
                        ctx.equal_leaves(x, y)
                    } else {
                        ctx.equal_internal(x, y, &m)
                    };
                    if eq {
                        m.insert(x, y)
                            .map_err(|_| MatchError::Internal("fallback pair already matched"))?;
                        break;
                    }
                }
            }
        }
    }

    Ok(MatchResult {
        matching: m,
        counters: ctx.counters,
        classes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simple::match_simple;

    fn doc(s: &str) -> Tree<String> {
        Tree::parse_sexpr(s).unwrap()
    }

    #[test]
    fn identical_trees_fully_matched() {
        let t1 = doc(r#"(D (P (S "a") (S "b")) (P (S "c")))"#);
        let t2 = doc(r#"(D (P (S "a") (S "b")) (P (S "c")))"#);
        let res = fast_match(&t1, &t2, MatchParams::default()).unwrap();
        assert_eq!(res.matching.len(), t1.len());
    }

    #[test]
    fn agrees_with_match_on_running_example() {
        let t1 = doc(r#"(D (P (S "a")) (P (S "b") (S "c") (S "e")) (P (S "d")))"#);
        let t2 = doc(r#"(D (P (S "a")) (P (S "d")) (P (S "b") (S "e") (S "c")))"#);
        let fast = fast_match(&t1, &t2, MatchParams::default()).unwrap();
        let simple = match_simple(&t1, &t2, MatchParams::default()).unwrap();
        assert_eq!(fast.matching.len(), simple.matching.len());
        for (x, y) in simple.matching.iter() {
            assert!(
                fast.matching.contains(x, y),
                "FastMatch missing pair ({x}, {y})"
            );
        }
    }

    #[test]
    fn fewer_leaf_compares_than_match_when_similar() {
        // Two nearly identical documents: FastMatch's LCS pass should need
        // far fewer compares than Match's quadratic scan.
        let body: Vec<String> = (0..40).map(|i| format!("(S \"sent {i}\")")).collect();
        let t1 = doc(&format!("(D (P {}))", body.join(" ")));
        let mut body2 = body.clone();
        body2[20] = "(S \"changed sentence\")".to_string();
        let t2 = doc(&format!("(D (P {}))", body2.join(" ")));
        let fast = fast_match(&t1, &t2, MatchParams::default()).unwrap();
        let simple = match_simple(&t1, &t2, MatchParams::default()).unwrap();
        assert!(
            fast.counters.leaf_compares < simple.counters.leaf_compares,
            "fast {} !< simple {}",
            fast.counters.leaf_compares,
            simple.counters.leaf_compares
        );
        // Same matching quality.
        assert_eq!(fast.matching.len(), simple.matching.len());
    }

    #[test]
    fn work_counters_populated() {
        let t1 = doc(r#"(D (P (S "a") (S "b")) (P (S "c")))"#);
        let t2 = doc(r#"(D (P (S "a") (S "b")) (P (S "c") (S "d")))"#);
        let res = fast_match(&t1, &t2, MatchParams::default()).unwrap();
        let c = res.counters;
        // One S chain, one P chain, one D chain → 3 scans across phases.
        assert_eq!(c.chain_scans, 3);
        assert!(c.lcs_cells > 0, "chain LCS ran");
        assert!(
            c.match_candidates as u64 >= c.leaf_compares as u64,
            "every leaf compare is a candidate evaluation"
        );
        // Determinism: identical inputs give identical counters.
        assert_eq!(
            fast_match(&t1, &t2, MatchParams::default())
                .unwrap()
                .counters,
            c
        );
    }

    #[test]
    fn out_of_order_nodes_matched_by_fallback() {
        // Reversed sentences: the LCS keeps one; the fallback pass pairs the
        // rest. Everything still matches (Theorem 5.2's unique maximal
        // matching is order-independent).
        let t1 = doc(r#"(D (S "a") (S "b") (S "c"))"#);
        let t2 = doc(r#"(D (S "c") (S "b") (S "a"))"#);
        let res = fast_match(&t1, &t2, MatchParams::default()).unwrap();
        assert_eq!(res.matching.len(), 4);
        for x in t1.leaves() {
            let y = res.matching.partner1(x).unwrap();
            assert_eq!(t1.value(x), t2.value(y));
        }
    }

    #[test]
    fn moved_subtree_still_matches() {
        let t1 = doc(r#"(D (Sec (P (S "a") (S "b"))) (Sec (P (S "c"))))"#);
        let t2 = doc(r#"(D (Sec (P (S "c"))) (Sec (P (S "a") (S "b"))))"#);
        let res = fast_match(&t1, &t2, MatchParams::default()).unwrap();
        // Everything matches: 3 sentences, 2 paragraphs, 2 sections, root.
        assert_eq!(res.matching.len(), 8);
        let sec1 = t1.children(t1.root())[0];
        let sec2_in_t2 = t2.children(t2.root())[1];
        assert_eq!(res.matching.partner1(sec1), Some(sec2_in_t2));
    }

    #[test]
    fn empty_chain_labels_skipped() {
        let t1 = doc(r#"(D (S "a"))"#);
        let t2 = doc(r#"(D (P (S "a")))"#);
        // P exists only in t2; S chain matches; D roots match (1/1 common).
        let res = fast_match(&t1, &t2, MatchParams::default()).unwrap();
        assert_eq!(res.matching.len(), 2);
    }

    proptest::proptest! {
        /// Under Matching Criterion 3 (unique values ⇒ unique close
        /// counterpart), the maximal matching is unique (Theorem 5.2), so
        /// FastMatch and Match must produce the *same* matching.
        #[test]
        fn prop_fast_match_equals_match_under_criterion3(seed in 0u64..60) {
            use rand::{rngs::StdRng, Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            // Both trees draw distinct values from overlapping ranges, so no
            // tree contains duplicates (Criterion 3 holds for the exact-match
            // compare) but the trees share many sentences.
            let mk = |rng: &mut StdRng, start: usize| {
                let paras = rng.gen_range(1..5);
                let mut next = start;
                let mut s = String::from("(D ");
                for _ in 0..paras {
                    s.push_str("(P ");
                    for _ in 0..rng.gen_range(1..5) {
                        s.push_str(&format!("(S \"v{next}\") "));
                        next += 1;
                    }
                    s.push_str(") ");
                }
                s.push(')');
                s
            };
            let t1 = doc(&mk(&mut rng, 0));
            let offset = rng.gen_range(0..6);
            let t2 = doc(&mk(&mut rng, offset));
            let fast = fast_match(&t1, &t2, MatchParams::default()).unwrap();
            let simple = match_simple(&t1, &t2, MatchParams::default()).unwrap();
            proptest::prop_assert_eq!(fast.matching.len(), simple.matching.len());
            for (x, y) in simple.matching.iter() {
                proptest::prop_assert!(fast.matching.contains(x, y));
            }
        }
    }
}
