//! # hierdiff-lcs
//!
//! Longest-common-subsequence algorithms with a *pluggable equality
//! function*, as required throughout Chawathe et al. (SIGMOD 1996):
//!
//! * Section 4.2 treats Myers' algorithm as the procedure
//!   `LCS(S1, S2, equal)` — "we treat it as having three inputs: the two
//!   sequences ... and an equality function `equal(x, y)`". Child alignment
//!   uses `equal(u, v) ⇔ (u, v) ∈ M`.
//! * Algorithm *FastMatch* (Figure 11) calls the same procedure per label
//!   chain, with `equal` being the leaf/internal matching criteria.
//! * The *LaDiff* sentence comparison (Section 7) computes the LCS of the
//!   words of two sentences.
//!
//! Section 7 notes: "we cannot use the LCS algorithm used by the standard
//! UNIX diff program, because it requires inequality comparisons in addition
//! to equality comparisons" — hence every algorithm here needs only an
//! equality predicate.
//!
//! Three interchangeable implementations are provided and cross-checked by
//! property tests:
//!
//! * [`lcs_myers`] — Myers' O(ND) greedy algorithm \[Mye86\], the one the
//!   paper uses (`N = |S1| + |S2|`, `D = N − 2|LCS|`). Fast when the
//!   sequences are similar, which is the paper's common case.
//! * [`lcs_dp`] — the classic O(N·M) dynamic program. Simple, predictable;
//!   the oracle for tests and the right choice for short, dissimilar
//!   sequences (e.g. sentence words).
//! * [`lcs_hirschberg`] — linear-space divide-and-conquer DP, for very long
//!   sequences where the quadratic table would not fit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diffops;
mod dp;
mod hirschberg;
mod myers;

pub use diffops::{sequence_diff, SeqEdit};
pub use dp::lcs_dp;
pub use hirschberg::lcs_hirschberg;
pub use myers::{lcs_myers, lcs_myers_counted, lcs_myers_guarded};

/// A pair of indices `(i, j)` meaning `S1[i]` is matched with `S2[j]` in the
/// common subsequence.
pub type Pair = (usize, usize);

/// Work accounting for LCS calls, accumulated across calls when the same
/// stats value is threaded through several invocations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LcsStats {
    /// Myers `(d, k)` inner-loop iterations — the work units behind the
    /// O(ND) bound of Section 4.2. One "cell" is one diagonal-end update.
    pub cells: u64,
    /// Invocations of the pluggable equality function.
    pub equal_calls: u64,
}

impl LcsStats {
    /// Adds `other` into `self`.
    pub fn absorb(&mut self, other: LcsStats) {
        self.cells += other.cells;
        self.equal_calls += other.equal_calls;
    }
}

/// The paper's `LCS(S1, S2, equal)` with work accounting: identical pairs
/// to [`lcs`], with the call's Myers-cell and equality-call counts added
/// into `stats`.
pub fn lcs_counted<T, U>(
    a: &[T],
    b: &[U],
    equal: impl FnMut(&T, &U) -> bool,
    stats: &mut LcsStats,
) -> Vec<Pair> {
    lcs_myers_counted(a, b, equal, stats)
}

/// [`lcs_counted`] under resource governance: cancellation/deadline are
/// checked per cell (strided by the guard) and cells are charged against
/// the guard's `max_lcs_cells` budget. See
/// [`lcs_myers_guarded`](crate::lcs_myers_guarded).
pub fn lcs_counted_guarded<T, U>(
    a: &[T],
    b: &[U],
    equal: impl FnMut(&T, &U) -> bool,
    stats: &mut LcsStats,
    guard: &hierdiff_guard::Guard,
) -> Result<Vec<Pair>, hierdiff_guard::GuardError> {
    lcs_myers_guarded(a, b, equal, stats, guard)
}

/// Which implementation [`lcs_with`] dispatches to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum LcsAlgorithm {
    /// Myers O(ND) (the paper's choice).
    #[default]
    Myers,
    /// Quadratic dynamic programming.
    Dp,
    /// Hirschberg linear-space DP.
    Hirschberg,
}

/// The paper's `LCS(S1, S2, equal)` procedure: returns the index pairs of a
/// longest common subsequence of `a` and `b` under `equal`, in increasing
/// order of both coordinates.
///
/// ```
/// let a = [1, 2, 3, 4, 5];
/// let b = [2, 4, 5, 9];
/// let pairs = hierdiff_lcs::lcs(&a, &b, |x, y| x == y);
/// assert_eq!(pairs, vec![(1, 0), (3, 1), (4, 2)]);
/// ```
pub fn lcs<T, U>(a: &[T], b: &[U], equal: impl FnMut(&T, &U) -> bool) -> Vec<Pair> {
    lcs_myers(a, b, equal)
}

/// Like [`lcs`] but with an explicit algorithm choice (used by the ablation
/// benchmarks).
pub fn lcs_with<T, U>(
    algorithm: LcsAlgorithm,
    a: &[T],
    b: &[U],
    equal: impl FnMut(&T, &U) -> bool,
) -> Vec<Pair> {
    match algorithm {
        LcsAlgorithm::Myers => lcs_myers(a, b, equal),
        LcsAlgorithm::Dp => lcs_dp(a, b, equal),
        LcsAlgorithm::Hirschberg => lcs_hirschberg(a, b, equal),
    }
}

/// `|LCS(S1, S2)|` without materializing the pairs.
pub fn lcs_len<T, U>(a: &[T], b: &[U], equal: impl FnMut(&T, &U) -> bool) -> usize {
    lcs_myers(a, b, equal).len()
}

/// Validates that `pairs` is a common subsequence of `a` and `b` under
/// `equal`: strictly increasing in both coordinates, all pairs equal.
/// (Used by tests; exported because the matching crate's tests reuse it.)
pub fn is_common_subsequence<T, U>(
    pairs: &[Pair],
    a: &[T],
    b: &[U],
    mut equal: impl FnMut(&T, &U) -> bool,
) -> bool {
    let mut last: Option<Pair> = None;
    for &(i, j) in pairs {
        if i >= a.len() || j >= b.len() || !equal(&a[i], &b[j]) {
            return false;
        }
        if let Some((pi, pj)) = last {
            if i <= pi || j <= pj {
                return false;
            }
        }
        last = Some((i, j));
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_dispatch_is_myers() {
        let a = ['a', 'b', 'c'];
        let b = ['b', 'c', 'd'];
        assert_eq!(lcs(&a, &b, |x, y| x == y), lcs_myers(&a, &b, |x, y| x == y));
    }

    #[test]
    fn lcs_with_dispatches_all() {
        let a = [1, 3, 5, 7];
        let b = [1, 5, 7, 9];
        for alg in [
            LcsAlgorithm::Myers,
            LcsAlgorithm::Dp,
            LcsAlgorithm::Hirschberg,
        ] {
            let pairs = lcs_with(alg, &a, &b, |x, y| x == y);
            assert_eq!(pairs.len(), 3, "{alg:?}");
            assert!(is_common_subsequence(&pairs, &a, &b, |x, y| x == y));
        }
    }

    #[test]
    fn heterogeneous_item_types() {
        // The equality function may compare different element types — e.g.
        // FastMatch compares T1 nodes against T2 nodes.
        let a = [1usize, 2, 3];
        let b = ["1", "3"];
        let pairs = lcs(&a, &b, |x, y| x.to_string() == **y);
        assert_eq!(pairs, vec![(0, 0), (2, 1)]);
    }

    #[test]
    fn is_common_subsequence_rejects_bad_pairs() {
        let a = ['x', 'y'];
        let b = ['x', 'y'];
        assert!(!is_common_subsequence(&[(0, 0), (0, 1)], &a, &b, |x, y| x == y));
        assert!(!is_common_subsequence(&[(1, 0)], &a, &b, |x, y| x == y));
        assert!(!is_common_subsequence(&[(5, 0)], &a, &b, |x, y| x == y));
        assert!(is_common_subsequence(&[(0, 0), (1, 1)], &a, &b, |x, y| x == y));
    }

    #[test]
    fn counted_variant_same_pairs_and_counts_work() {
        let a = chars("ABCABBA");
        let b = chars("CBABAC");
        let mut stats = LcsStats::default();
        let counted = lcs_counted(&a, &b, |x, y| x == y, &mut stats);
        assert_eq!(counted, lcs(&a, &b, |x, y| x == y));
        assert!(stats.cells > 0);
        assert!(stats.equal_calls > 0);
        // Accumulates across calls.
        let before = stats;
        lcs_counted(&a, &b, |x, y| x == y, &mut stats);
        assert_eq!(stats.cells, before.cells * 2);
        assert_eq!(stats.equal_calls, before.equal_calls * 2);
    }

    #[test]
    fn counted_identical_sequences_near_linear_cells() {
        // D = 0 for identical input: one cell per round, one round.
        let a: Vec<u32> = (0..100).collect();
        let mut stats = LcsStats::default();
        let pairs = lcs_counted(&a, &a, |x, y| x == y, &mut stats);
        assert_eq!(pairs.len(), 100);
        assert_eq!(stats.cells, 1, "identical input is a single snake");
        assert_eq!(stats.equal_calls, 100, "one hit per element, no misses");
    }

    fn chars(s: &str) -> Vec<char> {
        s.chars().collect()
    }

    #[test]
    fn lcs_len_matches_pairs() {
        let a: Vec<u8> = b"kitten".to_vec();
        let b: Vec<u8> = b"sitting".to_vec();
        assert_eq!(lcs_len(&a, &b, |x, y| x == y), 4); // i t t n
    }
}
