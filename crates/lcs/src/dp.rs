//! Classic quadratic dynamic-programming LCS (Wagner–Fischer style).
//!
//! O(|a|·|b|) time and space. Serves as the reference oracle for the other
//! implementations and as the preferred algorithm for short sequences (its
//! inner loop is branch-light, so for sentence-length inputs it often beats
//! Myers despite the worse asymptotics — measured in `benches/lcs.rs`).

use crate::Pair;

/// LCS by dynamic programming. See [`crate::lcs`] for the contract.
pub fn lcs_dp<T, U>(a: &[T], b: &[U], mut equal: impl FnMut(&T, &U) -> bool) -> Vec<Pair> {
    let n = a.len();
    let m = b.len();
    if n == 0 || m == 0 {
        return Vec::new();
    }
    // table[i][j] = |LCS(a[..i], b[..j])|, flattened row-major.
    let width = m + 1;
    let mut table = vec![0u32; (n + 1) * width];
    for i in 1..=n {
        for j in 1..=m {
            table[i * width + j] = if equal(&a[i - 1], &b[j - 1]) {
                table[(i - 1) * width + (j - 1)] + 1
            } else {
                table[(i - 1) * width + j].max(table[i * width + (j - 1)])
            };
        }
    }
    // Backtrack from (n, m).
    let mut pairs = Vec::with_capacity(table[n * width + m] as usize);
    let (mut i, mut j) = (n, m);
    while i > 0 && j > 0 {
        let here = table[i * width + j];
        if table[(i - 1) * width + j] == here {
            i -= 1;
        } else if table[i * width + (j - 1)] == here {
            j -= 1;
        } else {
            pairs.push((i - 1, j - 1));
            i -= 1;
            j -= 1;
        }
    }
    pairs.reverse();
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is_common_subsequence;

    fn eq(a: &char, b: &char) -> bool {
        a == b
    }

    #[test]
    fn empty_sequences() {
        let e: [char; 0] = [];
        let a = ['x'];
        assert!(lcs_dp(&e, &e, eq).is_empty());
        assert!(lcs_dp(&a, &e, eq).is_empty());
        assert!(lcs_dp(&e, &a, eq).is_empty());
    }

    #[test]
    fn identical_sequences() {
        let a: Vec<char> = "abcdef".chars().collect();
        let pairs = lcs_dp(&a, &a, eq);
        assert_eq!(pairs, (0..6).map(|i| (i, i)).collect::<Vec<_>>());
    }

    #[test]
    fn disjoint_sequences() {
        let a: Vec<char> = "abc".chars().collect();
        let b: Vec<char> = "xyz".chars().collect();
        assert!(lcs_dp(&a, &b, eq).is_empty());
    }

    #[test]
    fn textbook_example() {
        let a: Vec<char> = "ABCBDAB".chars().collect();
        let b: Vec<char> = "BDCABA".chars().collect();
        let pairs = lcs_dp(&a, &b, eq);
        assert_eq!(pairs.len(), 4);
        assert!(is_common_subsequence(&pairs, &a, &b, eq));
    }

    #[test]
    fn duplicates_handled() {
        let a: Vec<char> = "aaaa".chars().collect();
        let b: Vec<char> = "aa".chars().collect();
        let pairs = lcs_dp(&a, &b, eq);
        assert_eq!(pairs.len(), 2);
        assert!(is_common_subsequence(&pairs, &a, &b, eq));
    }

    #[test]
    fn permuted_sequences() {
        let a = ["a", "b", "c", "d", "e", "f"];
        let b = ["c", "d", "a", "e", "f", "b"];
        // Longest common subsequence is c, d, e, f.
        let pairs = lcs_dp(&a, &b, |x, y| x == y);
        assert_eq!(pairs, vec![(2, 0), (3, 1), (4, 3), (5, 4)]);
        assert!(is_common_subsequence(&pairs, &a, &b, |x, y| x == y));
    }

    #[test]
    fn custom_equality_function() {
        // Equality on absolute value: the predicate, not `==`, decides.
        let a = [-1, 2, -3];
        let b = [1, 3];
        let pairs = lcs_dp(&a, &b, |x: &i32, y: &i32| x.abs() == y.abs());
        assert_eq!(pairs, vec![(0, 0), (2, 1)]);
    }
}
