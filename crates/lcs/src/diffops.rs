//! Sequence diffs on top of the LCS: the classic keep/insert/delete run
//! decomposition (what `diff` prints for lines, we use for words).
//!
//! The paper's *ediff* reference (Section 2) refines line diffs by
//! highlighting intra-line changes; `hierdiff-doc` uses this module the
//! same way, refining *updated sentences* down to the changed words.

use crate::{lcs, Pair};

/// One run of a sequence diff.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SeqEdit<T> {
    /// Elements common to both sequences.
    Keep(Vec<T>),
    /// Elements present only in the old sequence.
    Delete(Vec<T>),
    /// Elements present only in the new sequence.
    Insert(Vec<T>),
}

impl<T> SeqEdit<T> {
    /// The run's elements.
    pub fn items(&self) -> &[T] {
        match self {
            SeqEdit::Keep(v) | SeqEdit::Delete(v) | SeqEdit::Insert(v) => v,
        }
    }
}

/// Decomposes `(old, new)` into maximal Keep/Delete/Insert runs, in output
/// order (deletions before insertions at each change point).
pub fn sequence_diff<T: Clone + PartialEq>(old: &[T], new: &[T]) -> Vec<SeqEdit<T>> {
    let pairs: Vec<Pair> = lcs(old, new, |a, b| a == b);
    let mut out: Vec<SeqEdit<T>> = Vec::new();
    let mut i = 0usize; // cursor into old
    let mut j = 0usize; // cursor into new
    let mut keep_run: Vec<T> = Vec::new();
    let flush_keep = |out: &mut Vec<SeqEdit<T>>, keep_run: &mut Vec<T>| {
        if !keep_run.is_empty() {
            out.push(SeqEdit::Keep(std::mem::take(keep_run)));
        }
    };
    for (pi, pj) in pairs {
        if i < pi || j < pj {
            flush_keep(&mut out, &mut keep_run);
            if i < pi {
                out.push(SeqEdit::Delete(old[i..pi].to_vec()));
            }
            if j < pj {
                out.push(SeqEdit::Insert(new[j..pj].to_vec()));
            }
        }
        keep_run.push(old[pi].clone());
        i = pi + 1;
        j = pj + 1;
    }
    if i < old.len() || j < new.len() {
        flush_keep(&mut out, &mut keep_run);
        if i < old.len() {
            out.push(SeqEdit::Delete(old[i..].to_vec()));
        }
        if j < new.len() {
            out.push(SeqEdit::Insert(new[j..].to_vec()));
        }
    }
    flush_keep(&mut out, &mut keep_run);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(s: &str) -> Vec<&str> {
        s.split_whitespace().collect()
    }

    #[test]
    fn identical_is_one_keep() {
        let a = words("the quick brown fox");
        let d = sequence_diff(&a, &a);
        assert_eq!(d, vec![SeqEdit::Keep(a)]);
    }

    #[test]
    fn disjoint_is_delete_then_insert() {
        let a = words("alpha beta");
        let b = words("gamma delta");
        let d = sequence_diff(&a, &b);
        assert_eq!(d, vec![SeqEdit::Delete(a), SeqEdit::Insert(b)]);
    }

    #[test]
    fn single_substitution() {
        let a = words("the quick brown fox");
        let b = words("the quick red fox");
        let d = sequence_diff(&a, &b);
        assert_eq!(
            d,
            vec![
                SeqEdit::Keep(words("the quick")),
                SeqEdit::Delete(words("brown")),
                SeqEdit::Insert(words("red")),
                SeqEdit::Keep(words("fox")),
            ]
        );
    }

    #[test]
    fn pure_insert_and_delete_at_ends() {
        let a = words("b c");
        let b = words("a b c d");
        let d = sequence_diff(&a, &b);
        assert_eq!(
            d,
            vec![
                SeqEdit::Insert(words("a")),
                SeqEdit::Keep(words("b c")),
                SeqEdit::Insert(words("d")),
            ]
        );
        let d = sequence_diff(&b, &a);
        assert_eq!(
            d,
            vec![
                SeqEdit::Delete(words("a")),
                SeqEdit::Keep(words("b c")),
                SeqEdit::Delete(words("d")),
            ]
        );
    }

    #[test]
    fn empty_inputs() {
        let e: Vec<&str> = Vec::new();
        assert!(sequence_diff(&e, &e).is_empty());
        assert_eq!(
            sequence_diff(&e, &words("x")),
            vec![SeqEdit::Insert(words("x"))]
        );
        assert_eq!(
            sequence_diff(&words("x"), &e),
            vec![SeqEdit::Delete(words("x"))]
        );
    }

    proptest::proptest! {
        /// Reconstructing old (Keep + Delete) and new (Keep + Insert) from
        /// the runs is exact — the round-trip property.
        #[test]
        fn prop_roundtrip(a in proptest::collection::vec(0u8..5, 0..30),
                          b in proptest::collection::vec(0u8..5, 0..30)) {
            let d = sequence_diff(&a, &b);
            let mut old_r = Vec::new();
            let mut new_r = Vec::new();
            for run in &d {
                match run {
                    SeqEdit::Keep(v) => {
                        old_r.extend(v.iter().copied());
                        new_r.extend(v.iter().copied());
                    }
                    SeqEdit::Delete(v) => old_r.extend(v.iter().copied()),
                    SeqEdit::Insert(v) => new_r.extend(v.iter().copied()),
                }
            }
            proptest::prop_assert_eq!(old_r, a);
            proptest::prop_assert_eq!(new_r, b);
        }
    }
}
