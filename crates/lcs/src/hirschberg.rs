//! Hirschberg's linear-space LCS: divide-and-conquer over the DP recurrence.
//!
//! O(|a|·|b|) time like the quadratic DP but only O(min(|a|,|b|)) working
//! space, making it the safe choice for very long, very dissimilar sequences
//! where Myers' O(D²) trace would blow up.

use crate::Pair;

/// LCS via Hirschberg's algorithm. See [`crate::lcs`] for the contract.
pub fn lcs_hirschberg<T, U>(a: &[T], b: &[U], mut equal: impl FnMut(&T, &U) -> bool) -> Vec<Pair> {
    let mut pairs = Vec::new();
    solve(a, b, 0, 0, &mut equal, &mut pairs);
    pairs
}

/// Last row of the LCS-length DP for `a` vs `b` (forward direction).
fn last_row<T, U>(a: &[T], b: &[U], equal: &mut impl FnMut(&T, &U) -> bool) -> Vec<u32> {
    let mut prev = vec![0u32; b.len() + 1];
    let mut cur = vec![0u32; b.len() + 1];
    for x in a {
        for (j, y) in b.iter().enumerate() {
            cur[j + 1] = if equal(x, y) {
                prev[j] + 1
            } else {
                prev[j + 1].max(cur[j])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev
}

/// Like [`last_row`] but for the reversed sequences.
fn last_row_rev<T, U>(a: &[T], b: &[U], equal: &mut impl FnMut(&T, &U) -> bool) -> Vec<u32> {
    let mut prev = vec![0u32; b.len() + 1];
    let mut cur = vec![0u32; b.len() + 1];
    for x in a.iter().rev() {
        for (j, y) in b.iter().rev().enumerate() {
            cur[j + 1] = if equal(x, y) {
                prev[j] + 1
            } else {
                prev[j + 1].max(cur[j])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev
}

fn solve<T, U>(
    a: &[T],
    b: &[U],
    a_off: usize,
    b_off: usize,
    equal: &mut impl FnMut(&T, &U) -> bool,
    out: &mut Vec<Pair>,
) {
    if a.is_empty() || b.is_empty() {
        return;
    }
    if a.len() == 1 {
        // Find the first element of b equal to a[0], if any.
        if let Some(j) = b.iter().position(|y| equal(&a[0], y)) {
            out.push((a_off, b_off + j));
        }
        return;
    }
    let mid = a.len() / 2;
    let (a1, a2) = a.split_at(mid);
    let fwd = last_row(a1, b, equal);
    let rev = last_row_rev(a2, b, equal);
    // Split b at the j maximizing fwd[j] + rev[m - j] (ties keep the
    // rightmost j, matching `Iterator::max_by_key` semantics).
    let m = b.len();
    let mut split = 0;
    let mut best = fwd[0] + rev[m];
    for j in 1..=m {
        let score = fwd[j] + rev[m - j];
        if score >= best {
            best = score;
            split = j;
        }
    }
    let (b1, b2) = b.split_at(split);
    solve(a1, b1, a_off, b_off, equal, out);
    solve(a2, b2, a_off + mid, b_off + split, equal, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{is_common_subsequence, lcs_dp};

    fn eq(a: &u8, b: &u8) -> bool {
        a == b
    }

    #[test]
    fn empty_and_singleton() {
        let e: [u8; 0] = [];
        assert!(lcs_hirschberg(&e, &e, eq).is_empty());
        assert_eq!(lcs_hirschberg(&[1], &[1], eq), vec![(0, 0)]);
        assert!(lcs_hirschberg(&[1], &[2], eq).is_empty());
    }

    #[test]
    fn matches_dp_on_classics() {
        for (a, b) in [
            (&b"ABCBDAB"[..], &b"BDCABA"[..]),
            (&b"kitten"[..], &b"sitting"[..]),
            (&b"XMJYAUZ"[..], &b"MZJAWXU"[..]),
        ] {
            let h = lcs_hirschberg(a, b, eq);
            let d = lcs_dp(a, b, eq);
            assert!(is_common_subsequence(&h, a, b, eq));
            assert_eq!(h.len(), d.len());
        }
    }

    #[test]
    fn long_sequences_linear_space_smoke() {
        let a: Vec<u8> = (0..2000u32).map(|i| (i % 7) as u8).collect();
        let b: Vec<u8> = (0..2000u32).map(|i| (i % 5) as u8).collect();
        let h = lcs_hirschberg(&a, &b, eq);
        let d = lcs_dp(&a, &b, eq);
        assert!(is_common_subsequence(&h, &a, &b, eq));
        assert_eq!(h.len(), d.len());
    }

    proptest::proptest! {
        #[test]
        fn prop_matches_dp(a in proptest::collection::vec(0u8..4, 0..36),
                           b in proptest::collection::vec(0u8..4, 0..36)) {
            let h = lcs_hirschberg(&a, &b, eq);
            let d = lcs_dp(&a, &b, eq);
            proptest::prop_assert!(is_common_subsequence(&h, &a, &b, eq));
            proptest::prop_assert_eq!(h.len(), d.len());
        }
    }
}
