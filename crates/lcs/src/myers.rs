//! hierdiff-analyze: hot-module
//!
//! Myers' O(ND) greedy LCS algorithm \[Mye86\], the paper's choice
//! (Section 4.2): time O((N)·D) where `N = |a| + |b|` and
//! `D = N − 2·|LCS|` is the length of the shortest edit script. Near-equal
//! sequences (small `D`) — the common case in FastMatch's per-label chains
//! and in child alignment — run in near-linear time.
//!
//! The backtracking trace stores the frontier of each round, so memory is
//! O(D²). For pathologically dissimilar long sequences prefer
//! [`crate::lcs_hirschberg`], which is O(min(|a|,|b|)) space.

use hierdiff_guard::{Guard, GuardError};

use crate::{LcsStats, Pair};

/// Blessed indexing funnels (`#[inline(always)]`, so codegen is identical
/// to direct indexing): every frontier/input access flows through these,
/// keeping the S004 panic-reachability audit to three waived sites. All
/// indices are `k + offset` diagonals bounded by the `2·max + 1` frontier
/// allocation.
#[inline(always)]
fn at<T: Copy>(v: &[T], i: usize) -> T {
    v[i] // analyze: allow(S004) the blessed funnel
}

#[inline(always)]
fn at_ref<T>(v: &[T], i: usize) -> &T {
    &v[i] // analyze: allow(S004) the blessed funnel
}

#[inline(always)]
fn at_mut<T>(v: &mut [T], i: usize) -> &mut T {
    &mut v[i] // analyze: allow(S004) the blessed funnel
}

/// LCS via Myers' greedy O(ND) algorithm. See [`crate::lcs`] for the
/// contract.
pub fn lcs_myers<T, U>(a: &[T], b: &[U], equal: impl FnMut(&T, &U) -> bool) -> Vec<Pair> {
    let mut stats = LcsStats::default();
    lcs_myers_counted(a, b, equal, &mut stats)
}

/// [`lcs_myers`] with work accounting: adds the `(d, k)` inner-loop
/// iterations ("cells" — the units behind the O(ND) bound) and equality
/// invocations of this call into `stats`.
pub fn lcs_myers_counted<T, U>(
    a: &[T],
    b: &[U],
    equal: impl FnMut(&T, &U) -> bool,
    stats: &mut LcsStats,
) -> Vec<Pair> {
    match myers_governed(a, b, equal, stats, None) {
        Ok(pairs) => pairs,
        Err(_) => unreachable!("ungoverned Myers cannot trip a guard"),
    }
}

/// [`lcs_myers_counted`] under resource governance: charges each round's
/// `(d, k)` cells against the guard's LCS-cell budget *before* expanding
/// the round (so a budget trip never overruns by more than one round), and
/// ticks the guard per cell and per snake step, so cancellation and
/// deadline trips are observed within one tick stride even when a single
/// round spans tens of thousands of comparisons. Partial work is still
/// added to `stats` on early return.
pub fn lcs_myers_guarded<T, U>(
    a: &[T],
    b: &[U],
    equal: impl FnMut(&T, &U) -> bool,
    stats: &mut LcsStats,
    guard: &Guard,
) -> Result<Vec<Pair>, GuardError> {
    myers_governed(a, b, equal, stats, Some(guard))
}

fn myers_governed<T, U>(
    a: &[T],
    b: &[U],
    mut equal: impl FnMut(&T, &U) -> bool,
    stats: &mut LcsStats,
    guard: Option<&Guard>,
) -> Result<Vec<Pair>, GuardError> {
    let n = a.len() as isize;
    let m = b.len() as isize;
    if n == 0 || m == 0 {
        return Ok(Vec::new());
    }
    let max = (n + m) as usize;
    let mut cells = 0u64;
    let mut equal_calls = 0u64;

    // v[k + offset] = furthest x reached on diagonal k (k = x − y) with the
    // current number of edits. trace[d] snapshots the frontier for
    // diagonals −d..=d *after* round d, compacted to 2d+1 slots.
    let offset = max as isize;
    let mut v = vec![0isize; 2 * max + 1];
    let mut trace: Vec<Vec<isize>> = Vec::new();
    let mut found_d: Option<isize> = None;
    let mut tripped: Option<GuardError> = None;

    'outer: for d in 0..=(max as isize) {
        if let Some(g) = guard {
            // Round d expands d + 1 cells; charge them up front so a
            // budget trip is reported before the work it would pay for.
            let round = g
                .checkpoint()
                .and_then(|()| g.charge_lcs_cells(d as u64 + 1));
            if let Err(e) = round {
                tripped = Some(e);
                break 'outer;
            }
        }
        let mut k = -d;
        while k <= d {
            cells += 1;
            // Large-d rounds span tens of thousands of comparisons, so the
            // per-round checkpoint alone would leave cancellation latency
            // proportional to d; the strided tick bounds it by the stride.
            if let Some(g) = guard {
                if let Err(e) = g.tick() {
                    tripped = Some(e);
                    break 'outer;
                }
            }
            let idx = (k + offset) as usize;
            let mut x = if k == -d || (k != d && at(&v, idx - 1) < at(&v, idx + 1)) {
                at(&v, idx + 1) // move down (insertion into `a`'s view)
            } else {
                at(&v, idx - 1) + 1 // move right (deletion)
            };
            let mut y = x - k;
            while x < n && y < m {
                equal_calls += 1;
                if let Some(g) = guard {
                    if let Err(e) = g.tick() {
                        tripped = Some(e);
                        break 'outer;
                    }
                }
                if !equal(at_ref(a, x as usize), at_ref(b, y as usize)) {
                    break;
                }
                x += 1;
                y += 1;
            }
            *at_mut(&mut v, idx) = x;
            if x >= n && y >= m {
                trace.push(compact(&v, d, offset));
                found_d = Some(d);
                break 'outer;
            }
            k += 2;
        }
        trace.push(compact(&v, d, offset));
    }

    stats.cells += cells;
    stats.equal_calls += equal_calls;

    if let Some(e) = tripped {
        return Err(e);
    }
    let d_final = match found_d {
        Some(d) => d,
        None => unreachable!("D is bounded by n + m, so the loop always terminates"),
    };

    // Backtrack from (n, m) through the stored frontiers, collecting the
    // diagonal runs ("snakes") — each diagonal step is one matched pair.
    let mut pairs = Vec::new();
    let (mut x, mut y) = (n, m);
    let mut d = d_final;
    // Backtracking is cheap post-processing: d_final ≤ n + m rounds, each
    // O(1) plus one snake already paid for by the forward pass.
    while d > 0 {
        // analyze: allow(S030) bounded backtrack over stored frontiers
        let k = x - y;
        let prev = at_ref(&trace, (d - 1) as usize);
        let reach = |kk: isize| -> isize {
            let i = kk + (d - 1);
            if i < 0 || i >= prev.len() as isize {
                // Diagonal not reached in the previous round; treat as -1 so
                // it never wins the max comparison.
                -1
            } else {
                at(prev, i as usize)
            }
        };
        let prev_k = if k == -d || (k != d && reach(k - 1) < reach(k + 1)) {
            k + 1
        } else {
            k - 1
        };
        let prev_x = reach(prev_k);
        let prev_y = prev_x - prev_k;
        // Position right after the single edit of this round:
        let (mid_x, mid_y) = if prev_k == k + 1 {
            (prev_x, prev_y + 1)
        } else {
            (prev_x + 1, prev_y)
        };
        // Snake from (mid_x, mid_y) to (x, y).
        let mut sx = x;
        let mut sy = y;
        while sx > mid_x && sy > mid_y {
            // analyze: allow(S030) snake replay, length paid in forward pass
            sx -= 1;
            sy -= 1;
            pairs.push((sx as usize, sy as usize));
        }
        x = prev_x;
        y = prev_y;
        d -= 1;
    }
    // Leading snake at d = 0 from (0, 0) to (x, y).
    while x > 0 && y > 0 {
        // analyze: allow(S030) snake replay, length paid in forward pass
        x -= 1;
        y -= 1;
        pairs.push((x as usize, y as usize));
    }

    pairs.reverse();
    Ok(pairs)
}

/// Extracts diagonals −d..=d from the working frontier into a compact
/// vector indexed by `k + d`.
fn compact(v: &[isize], d: isize, offset: isize) -> Vec<isize> {
    let lo = (-d + offset) as usize;
    let hi = (d + offset) as usize;
    v[lo..=hi].to_vec() // analyze: allow(S004) ±d diagonals exist after round d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{is_common_subsequence, lcs_dp};

    fn eq(a: &char, b: &char) -> bool {
        a == b
    }

    fn chars(s: &str) -> Vec<char> {
        s.chars().collect()
    }

    fn check(a: &str, b: &str) {
        let av = chars(a);
        let bv = chars(b);
        let m = lcs_myers(&av, &bv, eq);
        let d = lcs_dp(&av, &bv, eq);
        assert!(
            is_common_subsequence(&m, &av, &bv, eq),
            "invalid subsequence for ({a:?}, {b:?}): {m:?}"
        );
        assert_eq!(m.len(), d.len(), "length mismatch for ({a:?}, {b:?})");
    }

    #[test]
    fn empty_inputs() {
        let e: [char; 0] = [];
        let a = chars("abc");
        assert!(lcs_myers(&e, &e, eq).is_empty());
        assert!(lcs_myers(&a, &e, eq).is_empty());
        assert!(lcs_myers(&e, &a, eq).is_empty());
    }

    #[test]
    fn myers_original_example() {
        // The worked example from the Myers paper.
        check("ABCABBA", "CBABAC");
    }

    #[test]
    fn assorted_pairs_match_dp_oracle() {
        check("", "");
        check("a", "a");
        check("a", "b");
        check("abc", "abc");
        check("abc", "xyz");
        check("abcdef", "abdf");
        check("abdf", "abcdef");
        check("kitten", "sitting");
        check("sunday", "saturday");
        check("aaaa", "aa");
        check("ababab", "bababa");
        check("xabcx", "yabcy");
        check("the quick brown fox", "the quack brewn fix");
    }

    #[test]
    fn prefix_and_suffix() {
        check("abcdef", "abc");
        check("abc", "abcdef");
        check("def", "abcdef");
        check("abcdef", "def");
    }

    #[test]
    fn identical_long_sequence_is_linear_pairs() {
        let a: Vec<u32> = (0..5000).collect();
        let pairs = lcs_myers(&a, &a, |x, y| x == y);
        assert_eq!(pairs.len(), 5000);
        assert!(pairs
            .iter()
            .enumerate()
            .all(|(i, &(x, y))| x == i && y == i));
    }

    #[test]
    fn guarded_unlimited_matches_ungoverned() {
        use hierdiff_guard::Guard;
        let a = chars("ABCABBA");
        let b = chars("CBABAC");
        let mut s1 = crate::LcsStats::default();
        let mut s2 = crate::LcsStats::default();
        let guard = Guard::unlimited();
        let governed = lcs_myers_guarded(&a, &b, eq, &mut s1, &guard).unwrap();
        let plain = lcs_myers_counted(&a, &b, eq, &mut s2);
        assert_eq!(governed, plain);
        assert_eq!(s1, s2);
    }

    #[test]
    fn guarded_cell_budget_trips_on_dissimilar_input() {
        use hierdiff_guard::{Budget, Budgets, Guard, GuardError};
        // Fully dissimilar sequences: D = n + m, quadratic cells.
        let a: Vec<u32> = (0..200).collect();
        let b: Vec<u32> = (1000..1200).collect();
        let guard = Guard::new(Budgets::unlimited().with_max_lcs_cells(50), None);
        let mut stats = crate::LcsStats::default();
        let err = lcs_myers_guarded(&a, &b, |x, y| x == y, &mut stats, &guard).unwrap_err();
        assert_eq!(err, GuardError::Budget(Budget::LcsCells));
        // Partial work was still accounted, and bounded near the budget.
        assert!(stats.cells > 0);
        assert!(
            stats.cells <= 60,
            "overrun bounded by one round: {}",
            stats.cells
        );
    }

    #[test]
    fn guarded_cancellation_trips() {
        use hierdiff_guard::{Budgets, CancelToken, Guard, GuardError};
        let token = CancelToken::new();
        token.cancel();
        let guard = Guard::new(Budgets::unlimited(), Some(token));
        let a = chars("abcdef");
        let mut stats = crate::LcsStats::default();
        let err = lcs_myers_guarded(&a, &a, eq, &mut stats, &guard).unwrap_err();
        assert_eq!(err, GuardError::Cancelled);
    }

    #[test]
    fn randomized_against_dp_oracle() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for case in 0..300 {
            let n = rng.gen_range(0..24);
            let m = rng.gen_range(0..24);
            let sigma = rng.gen_range(1..5u8);
            let a: Vec<u8> = (0..n).map(|_| rng.gen_range(0..sigma)).collect();
            let b: Vec<u8> = (0..m).map(|_| rng.gen_range(0..sigma)).collect();
            let my = lcs_myers(&a, &b, |x, y| x == y);
            let dp = lcs_dp(&a, &b, |x, y| x == y);
            assert!(
                is_common_subsequence(&my, &a, &b, |x, y| x == y),
                "case {case}: invalid pairs {my:?} for {a:?} / {b:?}"
            );
            assert_eq!(my.len(), dp.len(), "case {case}: {a:?} / {b:?}");
        }
    }

    proptest::proptest! {
        #[test]
        fn prop_matches_dp_len(a in proptest::collection::vec(0u8..4, 0..40),
                               b in proptest::collection::vec(0u8..4, 0..40)) {
            let my = lcs_myers(&a, &b, |x, y| x == y);
            let dp = lcs_dp(&a, &b, |x, y| x == y);
            proptest::prop_assert!(is_common_subsequence(&my, &a, &b, |x, y| x == y));
            proptest::prop_assert_eq!(my.len(), dp.len());
        }

        #[test]
        fn prop_lcs_of_self_is_identity(a in proptest::collection::vec(0u8..6, 0..60)) {
            let my = lcs_myers(&a, &a, |x, y| x == y);
            proptest::prop_assert_eq!(my.len(), a.len());
        }

        #[test]
        fn prop_symmetric_length(a in proptest::collection::vec(0u8..4, 0..30),
                                 b in proptest::collection::vec(0u8..4, 0..30)) {
            let ab = lcs_myers(&a, &b, |x, y| x == y).len();
            let ba = lcs_myers(&b, &a, |x, y| x == y).len();
            proptest::prop_assert_eq!(ab, ba);
        }
    }
}
