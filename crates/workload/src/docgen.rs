//! Seeded synthetic document generation.

use hierdiff_doc::{labels, DocValue};
use hierdiff_tree::Tree;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape and content knobs for a synthetic document.
#[derive(Clone, Copy, Debug)]
pub struct DocProfile {
    /// Number of sections.
    pub sections: usize,
    /// Paragraphs per section (inclusive range).
    pub paragraphs_per_section: (usize, usize),
    /// Sentences per paragraph (inclusive range).
    pub sentences_per_paragraph: (usize, usize),
    /// Words per sentence (inclusive range).
    pub words_per_sentence: (usize, usize),
    /// Vocabulary size. Smaller vocabularies raise the duplicate-sentence
    /// rate and thus Criterion 3 violations (Table 1's knob).
    pub vocabulary: usize,
    /// Probability that a sentence is an exact duplicate of an earlier one
    /// (directly injects Criterion 3 violations; 0.0 for clean corpora).
    pub duplicate_rate: f64,
}

impl Default for DocProfile {
    fn default() -> DocProfile {
        DocProfile {
            sections: 5,
            paragraphs_per_section: (3, 6),
            sentences_per_paragraph: (2, 6),
            words_per_sentence: (6, 14),
            vocabulary: 2000,
            duplicate_rate: 0.0,
        }
    }
}

impl DocProfile {
    /// A small document (~40 sentences). Paragraph and section granularity
    /// matches [`DocProfile::default`] so that per-block move weights — and
    /// hence the `e/d` ratio — are comparable across document sizes, as the
    /// paper observes for its corpus ("e/d is not very sensitive to the
    /// size of the documents").
    pub fn small() -> DocProfile {
        DocProfile {
            sections: 2,
            ..DocProfile::default()
        }
    }

    /// A large document (~250 sentences), the scale of a long paper. Same
    /// granularity rationale as [`DocProfile::small`].
    pub fn large() -> DocProfile {
        DocProfile {
            sections: 14,
            ..DocProfile::default()
        }
    }
}

/// A synthetic word from a fixed pseudo-vocabulary: `w<k>` for the `k`-th
/// vocabulary slot. Deterministic, collision-free, cheap to compare.
fn word(k: usize) -> String {
    format!("w{k}")
}

pub(crate) fn random_sentence(rng: &mut StdRng, profile: &DocProfile) -> String {
    let (lo, hi) = profile.words_per_sentence;
    let n = rng.gen_range(lo..=hi);
    let mut s = String::new();
    for i in 0..n {
        if i > 0 {
            s.push(' ');
        }
        s.push_str(&word(rng.gen_range(0..profile.vocabulary)));
    }
    s.push('.');
    s
}

/// Generates a random document tree from `profile`, deterministically from
/// `seed`.
pub fn generate_document(seed: u64, profile: &DocProfile) -> Tree<DocValue> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tree = Tree::new(labels::document(), DocValue::None);
    let root = tree.root();
    let mut produced: Vec<String> = Vec::new();
    for s in 0..profile.sections {
        let sec = tree.push_child(
            root,
            labels::section(),
            DocValue::text(format!(
                "Section {} {}",
                s + 1,
                word(rng.gen_range(0..profile.vocabulary))
            )),
        );
        let (plo, phi) = profile.paragraphs_per_section;
        for _ in 0..rng.gen_range(plo..=phi) {
            let para = tree.push_child(sec, labels::paragraph(), DocValue::None);
            let (slo, shi) = profile.sentences_per_paragraph;
            for _ in 0..rng.gen_range(slo..=shi) {
                let text = if !produced.is_empty() && rng.gen_bool(profile.duplicate_rate) {
                    produced[rng.gen_range(0..produced.len())].clone()
                } else {
                    let t = random_sentence(&mut rng, profile);
                    produced.push(t.clone());
                    t
                };
                tree.push_child(para, labels::sentence(), DocValue::text(text));
            }
        }
    }
    // Children were appended in depth-first order, so ids are already
    // preorder ranks: sealing the compact layout is an identity remap and
    // turns on the linear-scan fast paths for every consumer of the
    // generated document.
    tree.compact();
    debug_assert!(tree.is_compact());
    tree
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let p = DocProfile::small();
        let a = generate_document(42, &p);
        let b = generate_document(42, &p);
        assert!(hierdiff_tree::isomorphic(&a, &b));
    }

    #[test]
    fn different_seeds_differ() {
        let p = DocProfile::small();
        let a = generate_document(1, &p);
        let b = generate_document(2, &p);
        assert!(!hierdiff_tree::isomorphic(&a, &b));
    }

    #[test]
    fn respects_profile_shape() {
        let p = DocProfile {
            sections: 4,
            paragraphs_per_section: (2, 2),
            sentences_per_paragraph: (3, 3),
            ..DocProfile::default()
        };
        let t = generate_document(7, &p);
        let sections = t
            .preorder()
            .filter(|&n| t.label(n) == labels::section())
            .count();
        let sentences = t.leaves().count();
        assert_eq!(sections, 4);
        assert_eq!(sentences, 4 * 2 * 3);
        t.validate().unwrap();
    }

    #[test]
    fn duplicate_rate_injects_duplicates() {
        let p = DocProfile {
            duplicate_rate: 0.5,
            vocabulary: 10_000, // fresh sentences essentially unique
            ..DocProfile::default()
        };
        let t = generate_document(3, &p);
        let mut seen = std::collections::HashSet::new();
        let mut dups = 0;
        for leaf in t.leaves() {
            if !seen.insert(t.value(leaf).as_text().unwrap().to_string()) {
                dups += 1;
            }
        }
        assert!(dups > 0, "expected injected duplicates");
    }

    #[test]
    fn zero_duplicate_rate_high_vocab_mostly_unique() {
        let p = DocProfile {
            duplicate_rate: 0.0,
            vocabulary: 100_000,
            ..DocProfile::default()
        };
        let t = generate_document(5, &p);
        let mut seen = std::collections::HashSet::new();
        for leaf in t.leaves() {
            assert!(
                seen.insert(t.value(leaf).as_text().unwrap().to_string()),
                "collision in high-vocabulary corpus"
            );
        }
    }

    #[test]
    fn schema_is_acyclic() {
        let t = generate_document(9, &DocProfile::small());
        assert!(hierdiff_matching::check_acyclic(&t, &t).is_ok());
    }
}
