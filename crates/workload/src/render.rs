//! Rendering document trees back to LaTeX source — the inverse of
//! `hierdiff_doc::parse_latex` for the document subset, so synthetic
//! corpora can drive the `ladiff` CLI end to end (generate → render →
//! parse → diff) and parser round-trips can be property-tested.

use hierdiff_doc::{labels, DocValue};
use hierdiff_tree::{NodeId, Tree};

/// Renders a document tree (the schema produced by the generators and the
/// parsers) as LaTeX source. Parsing the output with
/// `hierdiff_doc::parse_latex` reproduces an isomorphic tree for documents
/// within the supported subset.
pub fn render_latex_source(tree: &Tree<DocValue>) -> String {
    let mut out = String::new();
    render_children(tree, tree.root(), &mut out);
    out
}

fn render_children(tree: &Tree<DocValue>, id: NodeId, out: &mut String) {
    for &c in tree.children(id) {
        render_node(tree, c, out);
    }
}

fn render_node(tree: &Tree<DocValue>, id: NodeId, out: &mut String) {
    let label = tree.label(id);
    if label == labels::section() || label == labels::subsection() {
        let cmd = if label == labels::section() {
            "section"
        } else {
            "subsection"
        };
        let title = tree.value(id).as_text().unwrap_or("");
        out.push_str(&format!("\\{cmd}{{{title}}}\n"));
        render_children(tree, id, out);
    } else if label == labels::paragraph() {
        for &s in tree.children(id) {
            if let Some(text) = tree.value(s).as_text() {
                out.push_str(text);
                out.push(' ');
            }
        }
        out.push_str("\n\n");
    } else if label == labels::list() {
        out.push_str("\\begin{itemize}\n");
        render_children(tree, id, out);
        out.push_str("\\end{itemize}\n");
    } else if label == labels::item() {
        out.push_str("\\item ");
        for &s in tree.children(id) {
            if let Some(text) = tree.value(s).as_text() {
                out.push_str(text);
                out.push(' ');
            }
        }
        out.push('\n');
    } else if label == labels::sentence() {
        // A sentence directly under a non-paragraph container.
        if let Some(text) = tree.value(id).as_text() {
            out.push_str(text);
            out.push_str("\n\n");
        }
    } else {
        render_children(tree, id, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::docgen::{generate_document, DocProfile};
    use hierdiff_doc::parse_latex;
    use hierdiff_tree::isomorphic;

    #[test]
    fn generated_documents_roundtrip_through_the_parser() {
        for seed in 0..6u64 {
            let t = generate_document(seed, &DocProfile::small());
            let src = render_latex_source(&t);
            let back = parse_latex(&src);
            assert!(
                isomorphic(&t, &back),
                "seed {seed} did not round-trip:\n{src}"
            );
        }
    }

    #[test]
    fn renders_structure_markers() {
        let t = generate_document(3, &DocProfile::small());
        let src = render_latex_source(&t);
        assert!(src.contains("\\section{"));
        assert!(src.contains(". "));
    }

    #[test]
    fn lists_roundtrip() {
        let src = "\\section{S one}\nIntro sentence here.\n\\begin{itemize}\n\\item First point here.\n\\item Second point here.\n\\end{itemize}";
        let t = parse_latex(src);
        let rendered = render_latex_source(&t);
        let back = parse_latex(&rendered);
        assert!(isomorphic(&t, &back), "{rendered}");
    }
}
