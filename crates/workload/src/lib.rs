//! # hierdiff-workload
//!
//! Synthetic structured-document workloads for the Section 8 experiments.
//!
//! **Substitution note (see DESIGN.md).** The paper's corpus — "three sets
//! of files ... different versions of a document (a conference paper)" —
//! was never published. Every quantity Section 8 measures (`e`, `d`,
//! comparison counts, Criterion 3 violation rates) is a function of tree
//! shape and edit mix, not prose meaning, so we stand in a seeded generator
//! with the same knobs: document size (sentences), section/paragraph
//! fan-out, vocabulary size (controls duplicate-sentence rate, i.e.
//! Criterion 3 pressure), and a per-version random edit mix at sentence /
//! paragraph / section granularity. A [`DocSet`] is a version chain — the
//! analogue of one of the paper's three document sets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod docgen;
mod docset;
mod perturb;
mod render;
mod trace;

pub use docgen::{generate_document, DocProfile};
pub use docset::{generate_docset, DocSet, DocSetProfile};
pub use perturb::{ground_truth_matching, perturb, EditMix, PerturbReport};
pub use render::render_latex_source;
pub use trace::{generate_trace, TraceProfile, TraceRequest};
