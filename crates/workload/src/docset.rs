//! Version-chain simulation — the stand-in for the paper's three document
//! sets (Section 8: "The files in each set represent different versions of
//! a document (a conference paper). We ran FastMatch on pairs of files
//! within each of these three sets.").

use hierdiff_doc::DocValue;
use hierdiff_tree::Tree;

use crate::docgen::{generate_document, DocProfile};
use crate::perturb::{perturb, EditMix, PerturbReport};

/// Parameters of one simulated document set.
#[derive(Clone, Copy, Debug)]
pub struct DocSetProfile {
    /// Seed identifying the set (the paper's three sets ↔ three seeds).
    pub seed: u64,
    /// Document shape.
    pub doc: DocProfile,
    /// Number of versions in the chain (the base version counts).
    pub versions: usize,
    /// Edits applied between consecutive versions (inclusive range; the
    /// actual count is drawn per step).
    pub edits_per_version: (usize, usize),
    /// Edit mix between versions.
    pub mix: EditMix,
}

impl DocSetProfile {
    /// The three profiles standing in for the paper's three sets: same
    /// generator, different seeds and sizes (small / medium / large
    /// documents), document-like edit mixes.
    pub fn paper_sets() -> [DocSetProfile; 3] {
        [
            DocSetProfile {
                seed: 1001,
                doc: DocProfile::small(),
                versions: 6,
                edits_per_version: (2, 8),
                mix: EditMix::revision(),
            },
            DocSetProfile {
                seed: 2002,
                doc: DocProfile::default(),
                versions: 6,
                edits_per_version: (4, 14),
                mix: EditMix::revision(),
            },
            DocSetProfile {
                seed: 3003,
                doc: DocProfile::large(),
                versions: 6,
                edits_per_version: (6, 24),
                mix: EditMix::revision(),
            },
        ]
    }
}

/// A simulated version chain.
pub struct DocSet {
    /// The versions, oldest first.
    pub versions: Vec<Tree<DocValue>>,
    /// What was applied between consecutive versions
    /// (`reports[i]` = `versions[i]` → `versions[i+1]`).
    pub reports: Vec<PerturbReport>,
    /// The profile that produced the set.
    pub profile: DocSetProfile,
}

impl DocSet {
    /// All ordered intra-set pairs `(i, j)` with `i < j` — the paper
    /// compares pairs of files within each set.
    ///
    /// Iteration order is guaranteed lexicographic: `(0,1), (0,2), …,
    /// (0,n-1), (1,2), …` — stable across releases, so callers may index
    /// recorded results (benchmark baselines, golden files) by pair
    /// position.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let n = self.versions.len();
        (0..n).flat_map(move |i| (i + 1..n).map(move |j| (i, j)))
    }

    /// Only the consecutive pairs `(i, i+1)`, oldest first — the chain a
    /// serving layer walks when reusing per-version indexes. A subset of
    /// [`pairs`](DocSet::pairs), in the same relative order.
    pub fn adjacent_pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (1..self.versions.len()).map(|j| (j - 1, j))
    }

    /// The non-adjacent subset of [`pairs`](DocSet::pairs) (`j > i + 1`),
    /// in the same lexicographic order — version skips, where a diff
    /// cannot be read off a single perturbation report.
    pub fn skip_pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.pairs().filter(|&(i, j)| j > i + 1)
    }
}

/// Generates a version chain from `profile`.
pub fn generate_docset(profile: &DocSetProfile) -> DocSet {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(profile.seed ^ 0x5eed);
    // `current` is always the newest version; it joins `versions` once its
    // successor exists, so no back-indexing into the chain is needed.
    let mut versions = Vec::with_capacity(profile.versions.max(1));
    let mut current = generate_document(profile.seed, &profile.doc);
    let mut reports = Vec::new();
    for step in 1..profile.versions {
        let (lo, hi) = profile.edits_per_version;
        let edits = rng.gen_range(lo..=hi);
        let (next, report) = perturb(
            &current,
            profile.seed.wrapping_mul(31).wrapping_add(step as u64),
            edits,
            &profile.mix,
            &profile.doc,
        );
        versions.push(std::mem::replace(&mut current, next));
        reports.push(report);
    }
    versions.push(current);
    DocSet {
        versions,
        reports,
        profile: *profile,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_has_requested_length() {
        let set = generate_docset(&DocSetProfile::paper_sets()[0]);
        assert_eq!(set.versions.len(), 6);
        assert_eq!(set.reports.len(), 5);
        for v in &set.versions {
            v.validate().unwrap();
        }
    }

    #[test]
    fn versions_actually_differ() {
        let set = generate_docset(&DocSetProfile::paper_sets()[0]);
        for w in set.versions.windows(2) {
            assert!(!hierdiff_tree::isomorphic(&w[0], &w[1]));
        }
    }

    #[test]
    fn pairs_enumerates_all_ordered_pairs() {
        let set = generate_docset(&DocSetProfile::paper_sets()[0]);
        let pairs: Vec<_> = set.pairs().collect();
        assert_eq!(pairs.len(), 6 * 5 / 2);
        assert!(pairs.contains(&(0, 5)));
        assert!(pairs.iter().all(|&(i, j)| i < j));
        // The documented lexicographic order is a stable contract.
        let mut sorted = pairs.clone();
        sorted.sort_unstable();
        assert_eq!(pairs, sorted, "pairs() iterates lexicographically");
    }

    #[test]
    fn adjacent_and_skip_pairs_partition_pairs() {
        let set = generate_docset(&DocSetProfile::paper_sets()[0]);
        let adjacent: Vec<_> = set.adjacent_pairs().collect();
        assert_eq!(adjacent, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let skips: Vec<_> = set.skip_pairs().collect();
        assert!(skips.iter().all(|&(i, j)| j > i + 1));
        let mut union: Vec<_> = adjacent.iter().chain(&skips).copied().collect();
        union.sort_unstable();
        let all: Vec<_> = set.pairs().collect();
        assert_eq!(union, all, "adjacent ∪ skip = pairs, disjoint");
    }

    #[test]
    fn deterministic_per_profile() {
        let p = DocSetProfile::paper_sets()[1];
        let a = generate_docset(&p);
        let b = generate_docset(&p);
        for (x, y) in a.versions.iter().zip(&b.versions) {
            assert!(hierdiff_tree::isomorphic(x, y));
        }
    }

    #[test]
    fn three_paper_sets_have_increasing_size() {
        let sets = DocSetProfile::paper_sets().map(|p| generate_docset(&p));
        let sizes: Vec<usize> = sets.iter().map(|s| s.versions[0].len()).collect();
        assert!(sizes[0] < sizes[1] && sizes[1] < sizes[2], "{sizes:?}");
    }
}
