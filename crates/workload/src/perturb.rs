//! Seeded random edit perturbation: derives a "new version" from a document
//! by applying a configurable mix of sentence-, paragraph-, and
//! section-level edits — the generator behind the version chains of the
//! Section 8 experiments.

use hierdiff_doc::{labels, words, DocValue};
use hierdiff_tree::{NodeId, Tree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::docgen::{random_sentence, DocProfile};

/// Relative weights of the edit kinds applied by [`perturb`].
#[derive(Clone, Copy, Debug)]
pub struct EditMix {
    /// Insert a fresh sentence.
    pub sentence_insert: u32,
    /// Delete a sentence.
    pub sentence_delete: u32,
    /// Rewrite a few words of a sentence (an *update*).
    pub sentence_update: u32,
    /// Move a sentence (within or across paragraphs).
    pub sentence_move: u32,
    /// Shuffle a sentence to a different position *within its own
    /// paragraph* — an intra-parent move, the misaligned-node generator for
    /// the EditScript O(ND) experiment (Theorem C.2's `D`).
    pub sentence_shuffle: u32,
    /// Insert a fresh paragraph.
    pub paragraph_insert: u32,
    /// Delete a whole paragraph.
    pub paragraph_delete: u32,
    /// Move a paragraph (within or across sections).
    pub paragraph_move: u32,
    /// Move a whole section.
    pub section_move: u32,
}

impl Default for EditMix {
    /// A document-editing mix: mostly sentence-level churn, occasional
    /// paragraph restructuring, rare section moves — the revision pattern
    /// of the paper's conference-paper corpus.
    fn default() -> EditMix {
        EditMix {
            sentence_insert: 25,
            sentence_delete: 20,
            sentence_update: 30,
            sentence_move: 8,
            sentence_shuffle: 2,
            paragraph_insert: 5,
            paragraph_delete: 4,
            paragraph_move: 5,
            section_move: 1,
        }
    }
}

impl EditMix {
    /// A *revision* mix modeling how conference papers are actually
    /// reworked between versions: sentence churn plus substantial block
    /// restructuring (paragraph and section moves). Calibrated so the
    /// weighted/unweighted distance ratio `e/d` of detected scripts lands
    /// in the band the paper reports for its corpus (≈ 3.4, Section 8) —
    /// subtree moves are what push `e` above `d`, since a move counts once
    /// in `d` but `|x|` (its leaves) in `e`.
    pub fn revision() -> EditMix {
        EditMix {
            sentence_insert: 10,
            sentence_delete: 8,
            sentence_update: 12,
            sentence_move: 6,
            sentence_shuffle: 2,
            paragraph_insert: 3,
            paragraph_delete: 2,
            paragraph_move: 30,
            section_move: 12,
        }
    }

    /// A mix with only sentence-level updates (minimal structural change).
    pub fn updates_only() -> EditMix {
        EditMix {
            sentence_insert: 0,
            sentence_delete: 0,
            sentence_update: 1,
            sentence_move: 0,
            sentence_shuffle: 0,
            paragraph_insert: 0,
            paragraph_delete: 0,
            paragraph_move: 0,
            section_move: 0,
        }
    }

    /// A move-heavy mix (stresses the align/move phases; drives the
    /// EditScript-scaling experiment E6).
    pub fn moves_only() -> EditMix {
        EditMix {
            sentence_insert: 0,
            sentence_delete: 0,
            sentence_update: 0,
            sentence_move: 3,
            sentence_shuffle: 0,
            paragraph_insert: 0,
            paragraph_delete: 0,
            paragraph_move: 1,
            section_move: 0,
        }
    }

    /// A mix of only intra-parent sentence shuffles: every edit is a
    /// misaligned node, maximizing the `D` of Theorem C.2.
    pub fn shuffles_only() -> EditMix {
        EditMix {
            sentence_insert: 0,
            sentence_delete: 0,
            sentence_update: 0,
            sentence_move: 0,
            sentence_shuffle: 1,
            paragraph_insert: 0,
            paragraph_delete: 0,
            paragraph_move: 0,
            section_move: 0,
        }
    }

    fn total(&self) -> u32 {
        self.sentence_insert
            + self.sentence_delete
            + self.sentence_update
            + self.sentence_move
            + self.sentence_shuffle
            + self.paragraph_insert
            + self.paragraph_delete
            + self.paragraph_move
            + self.section_move
    }
}

/// What [`perturb`] actually applied (the ground truth the detector should
/// approximately recover).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PerturbReport {
    /// Sentences inserted.
    pub sentence_inserts: usize,
    /// Sentences deleted.
    pub sentence_deletes: usize,
    /// Sentences updated.
    pub sentence_updates: usize,
    /// Sentences moved.
    pub sentence_moves: usize,
    /// Sentences shuffled within their paragraph.
    pub sentence_shuffles: usize,
    /// Paragraphs inserted (with their sentences).
    pub paragraph_inserts: usize,
    /// Paragraphs deleted (with their sentences).
    pub paragraph_deletes: usize,
    /// Paragraphs moved.
    pub paragraph_moves: usize,
    /// Sections moved.
    pub section_moves: usize,
}

impl PerturbReport {
    /// Total applied edit count (the intended unweighted distance scale).
    pub fn total(&self) -> usize {
        self.sentence_inserts
            + self.sentence_deletes
            + self.sentence_updates
            + self.sentence_moves
            + self.sentence_shuffles
            + self.paragraph_inserts
            + self.paragraph_deletes
            + self.paragraph_moves
            + self.section_moves
    }
}

/// The ground-truth correspondence between a tree and a version produced
/// from it by [`perturb`]: because perturbation operates on a clone,
/// surviving nodes keep their ids, so the true matching is the identity on
/// ids alive in both trees (updated and moved nodes included; deleted and
/// freshly inserted nodes excluded). This is the oracle for matcher
/// precision/recall experiments.
pub fn ground_truth_matching(
    original: &Tree<DocValue>,
    perturbed: &Tree<DocValue>,
) -> hierdiff_edit::Matching {
    let mut m = hierdiff_edit::Matching::with_capacity(original.arena_len(), perturbed.arena_len());
    for id in original.preorder() {
        if perturbed.is_alive(id) {
            debug_assert_eq!(original.label(id), perturbed.label(id));
            assert!(m.insert(id, id).is_ok(), "identity matching is one-to-one");
        }
    }
    m
}

/// Applies `edits` random edits (drawn from `mix`) to a clone of `tree`,
/// deterministically from `seed`. Returns the new version and a report of
/// what was applied.
pub fn perturb(
    tree: &Tree<DocValue>,
    seed: u64,
    edits: usize,
    mix: &EditMix,
    profile: &DocProfile,
) -> (Tree<DocValue>, PerturbReport) {
    assert!(mix.total() > 0, "edit mix must have positive weight");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = tree.clone();
    let mut report = PerturbReport::default();
    let mut applied = 0usize;
    let mut attempts = 0usize;
    while applied < edits && attempts < edits * 20 + 100 {
        attempts += 1;
        if apply_one(&mut t, &mut rng, mix, profile, &mut report) {
            applied += 1;
        }
    }
    debug_assert!(t.validate().is_ok());
    (t, report)
}

fn nodes_with_label(t: &Tree<DocValue>, label: hierdiff_tree::Label) -> Vec<NodeId> {
    t.preorder().filter(|&n| t.label(n) == label).collect()
}

fn pick(rng: &mut StdRng, v: &[NodeId]) -> Option<NodeId> {
    if v.is_empty() {
        None
    } else {
        Some(v[rng.gen_range(0..v.len())])
    }
}

fn apply_one(
    t: &mut Tree<DocValue>,
    rng: &mut StdRng,
    mix: &EditMix,
    profile: &DocProfile,
    report: &mut PerturbReport,
) -> bool {
    let roll = rng.gen_range(0..mix.total());
    let mut acc = 0u32;
    let mut hit = |w: u32| {
        acc += w;
        roll < acc
    };

    if hit(mix.sentence_insert) {
        let paras = nodes_with_label(t, labels::paragraph());
        let Some(p) = pick(rng, &paras) else {
            return false;
        };
        let pos = rng.gen_range(0..=t.arity(p));
        let text = random_sentence(rng, profile);
        if t.insert(p, pos, labels::sentence(), DocValue::text(text))
            .is_err()
        {
            return false;
        }
        report.sentence_inserts += 1;
        return true;
    }
    if hit(mix.sentence_delete) {
        let sents = nodes_with_label(t, labels::sentence());
        let Some(s) = pick(rng, &sents) else {
            return false;
        };
        if t.delete_leaf(s).is_err() {
            return false;
        }
        report.sentence_deletes += 1;
        return true;
    }
    if hit(mix.sentence_update) {
        let sents = nodes_with_label(t, labels::sentence());
        let Some(s) = pick(rng, &sents) else {
            return false;
        };
        let old = t.value(s).as_text().unwrap_or("").to_string();
        let updated = rewrite_words(&old, rng, profile);
        if updated == old {
            return false;
        }
        if t.update(s, DocValue::text(updated)).is_err() {
            return false;
        }
        report.sentence_updates += 1;
        return true;
    }
    if hit(mix.sentence_move) {
        let sents = nodes_with_label(t, labels::sentence());
        let paras = nodes_with_label(t, labels::paragraph());
        let Some(s) = pick(rng, &sents) else {
            return false;
        };
        let Some(p) = pick(rng, &paras) else {
            return false;
        };
        let arity = t.arity(p) - usize::from(t.parent(s) == Some(p));
        let pos = rng.gen_range(0..=arity);
        if t.parent(s) == Some(p) && t.position(s) == Some(pos) {
            return false; // no-op move
        }
        if t.move_subtree(s, p, pos).is_err() {
            return false;
        }
        report.sentence_moves += 1;
        return true;
    }
    if hit(mix.sentence_shuffle) {
        // Intra-parent shuffle: pick a paragraph with ≥ 2 sentences and
        // move one of them to a different slot under the same parent.
        let paras: Vec<NodeId> = nodes_with_label(t, labels::paragraph())
            .into_iter()
            .filter(|&p| t.arity(p) >= 2)
            .collect();
        let Some(p) = pick(rng, &paras) else {
            return false;
        };
        let kids: Vec<NodeId> = t.children(p).to_vec();
        let s = kids[rng.gen_range(0..kids.len())];
        let Some(old_pos) = t.position(s) else {
            return false;
        };
        // `move_subtree` measures the position after detaching `s`, which
        // equals the final index of `s` among its siblings; a move back to
        // `old_pos` is a no-op, so draw the final index from the other
        // slots.
        let target = {
            let r = rng.gen_range(0..kids.len() - 1);
            if r >= old_pos {
                r + 1
            } else {
                r
            }
        };
        if t.move_subtree(s, p, target).is_err() {
            return false;
        }
        report.sentence_shuffles += 1;
        return true;
    }
    if hit(mix.paragraph_insert) {
        let secs = nodes_with_label(t, labels::section());
        let parent = pick(rng, &secs).unwrap_or(t.root());
        let pos = rng.gen_range(0..=t.arity(parent));
        let Ok(p) = t.insert(parent, pos, labels::paragraph(), DocValue::None) else {
            return false;
        };
        let (lo, hi) = profile.sentences_per_paragraph;
        for _ in 0..rng.gen_range(lo..=hi) {
            let text = random_sentence(rng, profile);
            t.push_child(p, labels::sentence(), DocValue::text(text));
        }
        report.paragraph_inserts += 1;
        return true;
    }
    if hit(mix.paragraph_delete) {
        let paras = nodes_with_label(t, labels::paragraph());
        if paras.len() <= 1 {
            return false; // keep at least one paragraph
        }
        let Some(p) = pick(rng, &paras) else {
            return false;
        };
        if t.delete_subtree(p).is_err() {
            return false;
        }
        report.paragraph_deletes += 1;
        return true;
    }
    if hit(mix.paragraph_move) {
        let paras = nodes_with_label(t, labels::paragraph());
        let secs = nodes_with_label(t, labels::section());
        let Some(p) = pick(rng, &paras) else {
            return false;
        };
        let target = pick(rng, &secs).unwrap_or(t.root());
        let arity = t.arity(target) - usize::from(t.parent(p) == Some(target));
        let pos = rng.gen_range(0..=arity);
        if t.parent(p) == Some(target) && t.position(p) == Some(pos) {
            return false;
        }
        if t.move_subtree(p, target, pos).is_err() {
            return false;
        }
        report.paragraph_moves += 1;
        return true;
    }
    // Section move.
    {
        let secs = nodes_with_label(t, labels::section());
        if secs.len() < 2 {
            return false;
        }
        let s = secs[rng.gen_range(0..secs.len())];
        let root = t.root();
        let arity = t.arity(root) - 1;
        let pos = rng.gen_range(0..=arity);
        if t.position(s) == Some(pos) {
            return false;
        }
        if t.move_subtree(s, root, pos).is_err() {
            return false;
        }
        report.section_moves += 1;
        true
    }
}

/// Replaces roughly a quarter of the words of `sentence` with fresh
/// vocabulary — an update that stays well under the `compare < 1` bar, so
/// the matcher treats it as the same sentence, updated.
fn rewrite_words(sentence: &str, rng: &mut StdRng, profile: &DocProfile) -> String {
    let toks: Vec<String> = words(sentence).iter().map(|w| w.to_string()).collect();
    if toks.is_empty() {
        return sentence.to_string();
    }
    let replacements = (toks.len() / 4).max(1);
    let mut out = toks;
    for _ in 0..replacements {
        let i = rng.gen_range(0..out.len());
        out[i] = format!("w{}", rng.gen_range(0..profile.vocabulary));
    }
    let mut s = out.join(" ");
    s.push('.');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::docgen::generate_document;
    use hierdiff_matching::{fast_match, MatchParams};

    fn base() -> Tree<DocValue> {
        generate_document(100, &DocProfile::default())
    }

    #[test]
    fn deterministic() {
        let t = base();
        let (a, ra) = perturb(&t, 7, 10, &EditMix::default(), &DocProfile::default());
        let (b, rb) = perturb(&t, 7, 10, &EditMix::default(), &DocProfile::default());
        assert!(hierdiff_tree::isomorphic(&a, &b));
        assert_eq!(ra, rb);
    }

    #[test]
    fn applies_requested_edit_count() {
        let t = base();
        let (t2, report) = perturb(&t, 3, 25, &EditMix::default(), &DocProfile::default());
        assert_eq!(report.total(), 25);
        t2.validate().unwrap();
        assert!(!hierdiff_tree::isomorphic(&t, &t2));
    }

    #[test]
    fn zero_edits_is_identity() {
        let t = base();
        let (t2, report) = perturb(&t, 3, 0, &EditMix::default(), &DocProfile::default());
        assert_eq!(report.total(), 0);
        assert!(hierdiff_tree::isomorphic(&t, &t2));
    }

    #[test]
    fn updates_only_mix_preserves_structure() {
        let t = base();
        let (t2, report) = perturb(&t, 5, 12, &EditMix::updates_only(), &DocProfile::default());
        assert_eq!(report.sentence_updates, 12);
        assert_eq!(t.len(), t2.len());
        // Same shape: labels in preorder agree.
        let l1: Vec<_> = t.preorder().map(|n| t.label(n)).collect();
        let l2: Vec<_> = t2.preorder().map(|n| t2.label(n)).collect();
        assert_eq!(l1, l2);
    }

    #[test]
    fn updated_sentences_stay_matchable() {
        // The rewrite keeps ~3/4 of the words, so compare < 1 ≤ f is not
        // guaranteed for default f = 0.5, but the match rate should remain
        // high: the detector finds most updates as updates, not
        // delete+insert pairs.
        let t = base();
        let (t2, _) = perturb(&t, 5, 15, &EditMix::updates_only(), &DocProfile::default());
        let m = fast_match(&t, &t2, MatchParams::default()).unwrap();
        // At least 90% of nodes should match.
        assert!(
            m.matching.len() * 10 >= t.len() * 9,
            "only {} of {} matched",
            m.matching.len(),
            t.len()
        );
    }

    #[test]
    fn moves_only_mix_preserves_node_count() {
        let t = base();
        let (t2, report) = perturb(&t, 9, 8, &EditMix::moves_only(), &DocProfile::default());
        assert_eq!(report.sentence_moves + report.paragraph_moves, 8);
        assert_eq!(t.len(), t2.len());
    }

    #[test]
    fn ground_truth_is_identity_on_survivors() {
        let t = base();
        let (t2, _) = perturb(&t, 31, 10, &EditMix::default(), &DocProfile::default());
        let gt = crate::perturb::ground_truth_matching(&t, &t2);
        assert!(gt.len() > t.len() / 2, "most nodes survive 10 edits");
        for (x, y) in gt.iter() {
            assert_eq!(x, y);
            assert!(t.is_alive(x) && t2.is_alive(y));
        }
        // The ground truth drives the edit-script generator directly.
        let res = hierdiff_edit::edit_script(&t, &t2, &gt).unwrap();
        assert!(hierdiff_tree::isomorphic(
            &res.replay_on(&t).unwrap(),
            &res.edited
        ));
    }

    #[test]
    fn detector_recovers_edit_scale() {
        // The detected unweighted distance should be within a small factor
        // of the applied edit count (moves of paragraphs count once but
        // delete+insert pairs of unmatched content can inflate it).
        let t = base();
        let applied = 12;
        let (t2, _) = perturb(&t, 21, applied, &EditMix::default(), &DocProfile::default());
        let m = fast_match(&t, &t2, MatchParams::default()).unwrap();
        let res = hierdiff_edit::edit_script(&t, &t2, &m.matching).unwrap();
        let d = res.stats.unweighted_distance();
        assert!(d >= applied / 3, "d = {d} too small for {applied} edits");
        assert!(d <= applied * 12, "d = {d} too large for {applied} edits");
    }
}
