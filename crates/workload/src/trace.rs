//! Seeded request traces — deterministic streams of `(document, old
//! version, new version)` diff requests for replaying against a serving
//! layer or soak test.
//!
//! The paper's experiments diff pairs of versions within each document
//! set; a serving layer additionally cares about *arrival order* (cache
//! warmth, admission pressure). [`generate_trace`] turns a seed plus the
//! chain lengths into a reproducible request sequence with a controllable
//! bias toward adjacent pairs — the case where index reuse along the
//! chain pays off.

use rand::{rngs::StdRng, Rng, SeedableRng};

/// One diff request in a replay trace: diff `versions[old]` against
/// `versions[new]` of document `doc`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRequest {
    /// Index of the document set the request targets.
    pub doc: usize,
    /// Older version index (`old < new`).
    pub old: usize,
    /// Newer version index.
    pub new: usize,
}

/// Parameters of a replay trace.
#[derive(Clone, Copy, Debug)]
pub struct TraceProfile {
    /// Seed; equal seeds and chain lengths yield identical traces.
    pub seed: u64,
    /// Number of requests to generate.
    pub requests: usize,
    /// Percentage (0–100) of requests that diff *adjacent* versions
    /// `(i, i+1)`; the remainder are uniform non-adjacent skips. Chains
    /// with fewer than 3 versions fall back to adjacent pairs.
    pub adjacent_pct: u8,
}

impl Default for TraceProfile {
    fn default() -> TraceProfile {
        TraceProfile {
            seed: 0x7ace,
            requests: 256,
            adjacent_pct: 70,
        }
    }
}

/// Generates a replay trace over documents whose version-chain lengths are
/// `chain_lens` (one entry per document, as produced by
/// [`generate_docset`](crate::generate_docset) — `versions.len()`).
///
/// Documents are drawn uniformly; chains shorter than 2 versions are
/// skipped (no diffable pair). Returns an empty trace when no document
/// has a diffable pair.
pub fn generate_trace(profile: &TraceProfile, chain_lens: &[usize]) -> Vec<TraceRequest> {
    let eligible: Vec<(usize, usize)> = chain_lens
        .iter()
        .copied()
        .enumerate()
        .filter(|&(_, n)| n >= 2)
        .collect();
    if eligible.is_empty() {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(profile.seed ^ 0x0a57_7ace);
    let mut out = Vec::with_capacity(profile.requests);
    for _ in 0..profile.requests {
        let (doc, n) = eligible[rng.gen_range(0..eligible.len())];
        let adjacent = n < 3 || rng.gen_range(0..100u8) < profile.adjacent_pct.min(100);
        let (old, new) = if adjacent {
            let old = rng.gen_range(0..n - 1);
            (old, old + 1)
        } else {
            // A uniform skip pair: old and a strictly-later, non-adjacent
            // new. `old ≤ n-3` guarantees room for `new ≥ old+2`.
            let old = rng.gen_range(0..n - 2);
            let new = rng.gen_range(old + 2..n);
            (old, new)
        };
        out.push(TraceRequest { doc, old, new });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic() {
        let p = TraceProfile::default();
        let a = generate_trace(&p, &[6, 6, 6]);
        let b = generate_trace(&p, &[6, 6, 6]);
        assert_eq!(a, b);
        assert_eq!(a.len(), p.requests);
    }

    #[test]
    fn requests_are_well_formed() {
        let p = TraceProfile {
            seed: 9,
            requests: 500,
            adjacent_pct: 50,
        };
        let lens = [6usize, 2, 4];
        let trace = generate_trace(&p, &lens);
        for r in &trace {
            assert!(r.doc < lens.len());
            assert!(r.old < r.new, "{r:?}");
            assert!(r.new < lens[r.doc], "{r:?}");
        }
        // Both adjacent and skip pairs appear at a 50% bias.
        assert!(trace.iter().any(|r| r.new == r.old + 1));
        assert!(trace.iter().any(|r| r.new > r.old + 1));
    }

    #[test]
    fn short_chains_fall_back_to_adjacent() {
        let p = TraceProfile {
            seed: 1,
            requests: 64,
            adjacent_pct: 0,
        };
        let trace = generate_trace(&p, &[2]);
        assert!(trace.iter().all(|r| (r.old, r.new) == (0, 1)));
    }

    #[test]
    fn undiffable_chains_yield_empty_traces() {
        let p = TraceProfile::default();
        assert!(generate_trace(&p, &[1, 0]).is_empty());
        assert!(generate_trace(&p, &[]).is_empty());
    }

    #[test]
    fn adjacent_pct_biases_the_mix() {
        let all_adj = generate_trace(
            &TraceProfile {
                seed: 3,
                requests: 200,
                adjacent_pct: 100,
            },
            &[8],
        );
        assert!(all_adj.iter().all(|r| r.new == r.old + 1));
        let no_adj = generate_trace(
            &TraceProfile {
                seed: 3,
                requests: 200,
                adjacent_pct: 0,
            },
            &[8],
        );
        assert!(no_adj.iter().all(|r| r.new > r.old + 1));
    }
}
