//! Edit-script conformance checks (`A020`–`A024`).
//!
//! Section 3.2 requires an edit script to *conform* to the matching it was
//! generated from: the extended matching `M'` contains `M` (`A024`), no
//! matched node is deleted (`A022`), and every operation must be legal
//! against the running tree (`A020`). The defining property of Algorithm
//! *EditScript* (Figures 8/9) is that replaying the script on `T1` yields a
//! tree isomorphic to `T2` (`A021`), and the recorded [`McesStats`] —
//! including the Section 5.3 weighted edit distance, where a move costs the
//! *pre-move* leaf count of the moved subtree — must agree with what the
//! script actually does (`A023`).
//!
//! The replay is driven through [`apply_script`]'s observer, which exposes
//! the tree state *before* each operation — exactly what the weighted cost
//! recomputation needs.

use hierdiff_edit::{apply_script, EditOp, Matching, McesResult, DUMMY_ROOT_LABEL};
use hierdiff_tree::{isomorphic, Label, NodeValue, Tree};

use crate::diag::{AuditReport, Code, Diagnostic, Side, Span};

/// Audits `res` — the output of [`hierdiff_edit::edit_script`] for
/// (`t1`, `t2`, `matching`) — against the conformance invariants.
pub fn audit_script<V: NodeValue>(
    t1: &Tree<V>,
    t2: &Tree<V>,
    matching: &Matching,
    res: &McesResult<V>,
) -> AuditReport {
    let mut report = AuditReport::new();

    report.checks_run += 1;
    if !matching.is_subset_of(&res.total_matching) {
        report.push(Diagnostic::error(
            Code::A024,
            format!(
                "total matching ({} pairs) does not extend the input matching \
                 ({} pairs): some input pair was dropped or rewired",
                res.total_matching.len(),
                matching.len()
            ),
            None,
        ));
    }

    // Replay against (possibly dummy-wrapped) clones of the inputs.
    let original_arena = t1.arena_len();
    let mut work = t1.clone();
    let t2w;
    let t2_cmp: &Tree<V> = if res.wrapped {
        work.wrap_root(Label::intern(DUMMY_ROOT_LABEL), V::null());
        let mut c = t2.clone();
        c.wrap_root(Label::intern(DUMMY_ROOT_LABEL), V::null());
        t2w = c;
        &t2w
    } else {
        t2
    };

    let mut counts = RecomputedStats::default();
    let replay = apply_script(&mut work, &res.script, |op, ctx| {
        match op {
            EditOp::Insert { .. } => {
                counts.inserts += 1;
                counts.weighted += 1;
            }
            EditOp::Delete { node } => {
                counts.deletes += 1;
                counts.weighted += 1;
                // A deleted node that existed in the original T1 must be
                // unmatched (conformance: DEL only touches unmatched nodes).
                if node.index() < original_arena && matching.is_matched1(*node) {
                    counts.matched_deletes.push(*node);
                }
            }
            EditOp::Update { .. } => counts.updates += 1,
            EditOp::Move { node, .. } => {
                counts.moves += 1;
                let actual = ctx.resolve(*node);
                // Weigh the move by the subtree's leaf count *before* it
                // detaches (Section 5.3's |x|).
                if ctx.tree().is_alive(actual) {
                    counts.weighted += ctx.tree().leaf_count(actual);
                }
            }
        }
    });

    for &node in &counts.matched_deletes {
        report.checks_run += 1;
        report.push(Diagnostic::error(
            Code::A022,
            format!(
                "script deletes {node}, which is matched to {:?}",
                matching.partner1(node)
            ),
            Span::of(t1, node, Side::Old),
        ));
    }

    report.checks_run += 1;
    if let Err(e) = replay {
        report.push(Diagnostic::error(
            Code::A020,
            format!(
                "operation #{} is illegal against the running tree: {}",
                e.op_index, e.cause
            ),
            None,
        ));
        // The replay died mid-script; the remaining whole-script checks
        // would only report follow-on noise.
        return report;
    }

    report.checks_run += 1;
    if !isomorphic(&work, t2_cmp) {
        report.push(Diagnostic::error(
            Code::A021,
            format!(
                "replaying the {}-op script on T1 yields {} nodes, not a tree \
                 isomorphic to T2 ({} nodes)",
                res.script.len(),
                work.len(),
                t2_cmp.len()
            ),
            None,
        ));
    }

    let s = &res.stats;
    let mut drift = Vec::new();
    for (name, recorded, actual) in [
        ("updates", s.updates, counts.updates),
        ("inserts", s.inserts, counts.inserts),
        ("deletes", s.deletes, counts.deletes),
        ("moves", s.moves(), counts.moves),
        ("weighted distance", s.weighted_distance, counts.weighted),
    ] {
        report.checks_run += 1;
        if recorded != actual {
            drift.push(format!("{name}: recorded {recorded}, script has {actual}"));
        }
    }
    if !drift.is_empty() {
        report.push(Diagnostic::error(
            Code::A023,
            format!(
                "recorded stats disagree with the script ({})",
                drift.join("; ")
            ),
            None,
        ));
    }
    report
}

#[derive(Default)]
struct RecomputedStats {
    updates: usize,
    inserts: usize,
    deletes: usize,
    moves: usize,
    weighted: usize,
    matched_deletes: Vec<hierdiff_tree::NodeId>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierdiff_edit::{edit_script, EditScript};

    fn doc(s: &str) -> Tree<String> {
        Tree::parse_sexpr(s).unwrap()
    }

    /// Pairs nodes by equal (label, value), greedily in pre-order.
    fn match_by_value(t1: &Tree<String>, t2: &Tree<String>) -> Matching {
        let mut m = Matching::with_capacity(t1.arena_len(), t2.arena_len());
        let mut used = vec![false; t2.arena_len()];
        for x in t1.preorder() {
            for y in t2.preorder() {
                if !used[y.index()] && t1.label(x) == t2.label(y) && t1.value(x) == t2.value(y) {
                    m.insert(x, y).unwrap();
                    used[y.index()] = true;
                    break;
                }
            }
        }
        m
    }

    #[test]
    fn genuine_result_is_clean() {
        let t1 = doc(r#"(D (P (S "a") (S "b") (S "c")) (P (S "d")))"#);
        let t2 = doc(r#"(D (P (S "d")) (P (S "c") (S "b") (S "new")))"#);
        let m = match_by_value(&t1, &t2);
        let res = edit_script(&t1, &t2, &m).unwrap();
        let r = audit_script(&t1, &t2, &m, &res);
        assert!(r.is_clean() && r.is_empty(), "{r}");
        assert!(r.checks_run >= 7);
    }

    #[test]
    fn wrapped_result_is_clean() {
        let t1 = doc(r#"(A (S "x"))"#);
        let t2 = doc(r#"(B (S "y"))"#);
        let m = Matching::new();
        let res = edit_script(&t1, &t2, &m).unwrap();
        assert!(res.wrapped);
        let r = audit_script(&t1, &t2, &m, &res);
        assert!(r.is_clean() && r.is_empty(), "{r}");
    }

    #[test]
    fn op_on_deleted_node_is_a020() {
        let t1 = doc(r#"(D (S "a") (S "b"))"#);
        let t2 = doc(r#"(D (S "a"))"#);
        let m = match_by_value(&t1, &t2);
        let mut res = edit_script(&t1, &t2, &m).unwrap();
        // Corrupt: update the node the script just deleted.
        let victim = res.script.ops()[0].node();
        let mut ops: Vec<_> = res.script.ops().to_vec();
        ops.push(EditOp::Update {
            node: victim,
            value: "ghost".to_string(),
        });
        res.script = EditScript::from_ops(ops);
        let r = audit_script(&t1, &t2, &m, &res);
        assert!(r.has_code(Code::A020), "{r}");
    }

    #[test]
    fn wrong_insert_position_is_a020() {
        let t1 = doc(r#"(D (S "a"))"#);
        let t2 = doc(r#"(D (S "a") (S "b"))"#);
        let m = match_by_value(&t1, &t2);
        let mut res = edit_script(&t1, &t2, &m).unwrap();
        let ops: Vec<_> = res
            .script
            .ops()
            .iter()
            .map(|op| match op {
                EditOp::Insert {
                    node,
                    label,
                    value,
                    parent,
                    ..
                } => EditOp::Insert {
                    node: *node,
                    label: *label,
                    value: value.clone(),
                    parent: *parent,
                    pos: 99, // out of range
                },
                other => other.clone(),
            })
            .collect();
        res.script = EditScript::from_ops(ops);
        let r = audit_script(&t1, &t2, &m, &res);
        assert!(r.has_code(Code::A020), "{r}");
    }

    #[test]
    fn deleting_matched_node_is_a022() {
        let t1 = doc(r#"(D (S "a") (S "b"))"#);
        let t2 = doc(r#"(D (S "a"))"#);
        let m = match_by_value(&t1, &t2); // matches root, "a"
        let mut res = edit_script(&t1, &t2, &m).unwrap();
        // Corrupt: additionally delete the matched "a" leaf.
        let a = t1.children(t1.root())[0];
        let mut ops: Vec<_> = res.script.ops().to_vec();
        ops.push(EditOp::Delete { node: a });
        res.script = EditScript::from_ops(ops);
        let r = audit_script(&t1, &t2, &m, &res);
        assert!(r.has_code(Code::A022), "{r}");
        // Deleting "a" also breaks isomorphism with T2.
        assert!(r.has_code(Code::A021), "{r}");
    }

    #[test]
    fn truncated_script_is_a021_and_a023() {
        let t1 = doc(r#"(D (S "a"))"#);
        let t2 = doc(r#"(D (S "a") (S "b") (S "c"))"#);
        let m = match_by_value(&t1, &t2);
        let mut res = edit_script(&t1, &t2, &m).unwrap();
        let ops: Vec<_> = res.script.ops().iter().take(1).cloned().collect();
        res.script = EditScript::from_ops(ops);
        let r = audit_script(&t1, &t2, &m, &res);
        assert!(r.has_code(Code::A021), "{r}");
        assert!(r.has_code(Code::A023), "{r}");
    }

    #[test]
    fn dropped_input_pair_is_a024() {
        let t1 = doc(r#"(D (S "a"))"#);
        let t2 = doc(r#"(D (S "a"))"#);
        let m = match_by_value(&t1, &t2);
        let res = edit_script(&t1, &t2, &m).unwrap();
        // Claim the script was built from a pair it does not conform to.
        let mut fake = Matching::new();
        fake.insert(t1.root(), t2.children(t2.root())[0]).unwrap();
        let r = audit_script(&t1, &t2, &fake, &res);
        assert!(r.has_code(Code::A024), "{r}");
    }
}
