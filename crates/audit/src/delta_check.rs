//! Delta-tree consistency checks (`A040`–`A042`).
//!
//! Section 6 calls a delta tree *correct* when its annotations can be
//! ordered into an edit script transforming `T1` to `T2`. We verify the
//! stronger two-sided property the `hierdiff-delta` crate is built around:
//! projecting the new state (drop `DEL`/`MRK`) must reproduce `T2`
//! (`A040`), projecting the old state (drop `INS`, return moved subtrees
//! to their markers, restore old values) must reproduce `T1` (`A041`), and
//! every `MOV`/`MRK` pair must cross-reference each other (`A042`).

use hierdiff_delta::{Annotation, DeltaTree};
use hierdiff_tree::{isomorphic, NodeValue, Tree};

use crate::diag::{AuditReport, Code, Diagnostic, Side, Span};

/// Audits `delta` against the trees it claims to relate.
pub fn audit_delta<V: NodeValue>(t1: &Tree<V>, t2: &Tree<V>, delta: &DeltaTree<V>) -> AuditReport {
    let mut report = AuditReport::new();

    // Structural sanity first: the projections recurse over the child
    // lists, so a cycle or dangling child index must be caught before
    // attempting them.
    let len = delta.len();
    let mut seen = vec![false; len];
    let mut stack = vec![delta.root()];
    let mut structurally_sound = true;
    if delta.root().index() >= len {
        structurally_sound = false;
    }
    while structurally_sound {
        let Some(id) = stack.pop() else { break };
        if seen[id.index()] {
            structurally_sound = false;
            report.push(Diagnostic::error(
                Code::A042,
                format!(
                    "delta node #{} reached twice (cycle or shared child)",
                    id.index()
                ),
                None,
            ));
            break;
        }
        seen[id.index()] = true;
        for &c in delta.children(id) {
            if c.index() >= len {
                structurally_sound = false;
                report.push(Diagnostic::error(
                    Code::A042,
                    format!(
                        "delta node #{} has out-of-range child #{}",
                        id.index(),
                        c.index()
                    ),
                    None,
                ));
                break;
            }
            stack.push(c);
        }
    }
    report.checks_run += 1;
    if !structurally_sound {
        if report.is_empty() {
            report.push(Diagnostic::error(
                Code::A042,
                "delta tree root index out of range".to_string(),
                None,
            ));
        }
        return report;
    }

    // MOV ↔ MRK cross-links.
    for id in delta.preorder() {
        match delta.annotation(id) {
            Annotation::Moved { mark, .. } => {
                report.checks_run += 1;
                let ok = mark.index() < len
                    && matches!(
                        delta.annotation(*mark),
                        Annotation::Marker { moved } if *moved == id
                    );
                if !ok {
                    report.push(Diagnostic::error(
                        Code::A042,
                        format!(
                            "MOV node #{} points at marker #{}, which does not \
                             point back",
                            id.index(),
                            mark.index()
                        ),
                        None,
                    ));
                }
            }
            Annotation::Marker { moved } => {
                report.checks_run += 1;
                let ok = moved.index() < len
                    && matches!(
                        delta.annotation(*moved),
                        Annotation::Moved { mark, .. } if *mark == id
                    );
                if !ok {
                    report.push(Diagnostic::error(
                        Code::A042,
                        format!(
                            "MRK node #{} points at moved node #{}, which does \
                             not point back",
                            id.index(),
                            moved.index()
                        ),
                        None,
                    ));
                }
            }
            _ => {}
        }
    }
    if report.has_errors() {
        // Broken cross-links make project_old meaningless; stop here.
        return report;
    }

    report.checks_run += 1;
    let new_proj = delta.project_new();
    if !isomorphic(&new_proj, t2) {
        report.push(Diagnostic::error(
            Code::A040,
            format!(
                "new-state projection has {} nodes and is not isomorphic to \
                 T2 ({} nodes)",
                new_proj.len(),
                t2.len()
            ),
            Some(Span {
                side: Side::Delta,
                path: Vec::new(),
            }),
        ));
    }
    report.checks_run += 1;
    let old_proj = delta.project_old();
    if !isomorphic(&old_proj, t1) {
        report.push(Diagnostic::error(
            Code::A041,
            format!(
                "old-state projection has {} nodes and is not isomorphic to \
                 T1 ({} nodes)",
                old_proj.len(),
                t1.len()
            ),
            Some(Span {
                side: Side::Delta,
                path: Vec::new(),
            }),
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{array_mut, field_mut, from_tampered, to_tamperable};
    use hierdiff_delta::build_delta_tree;
    use hierdiff_edit::edit_script;
    use hierdiff_matching::{fast_match, MatchParams};

    fn doc(s: &str) -> Tree<String> {
        Tree::parse_sexpr(s).unwrap()
    }

    fn delta_for(t1: &Tree<String>, t2: &Tree<String>) -> DeltaTree<String> {
        let m = fast_match(t1, t2, MatchParams::default()).unwrap().matching;
        let res = edit_script(t1, t2, &m).unwrap();
        build_delta_tree(t1, t2, &m, &res)
    }

    #[test]
    fn genuine_delta_is_clean() {
        let t1 = doc(r#"(D (P (S "a")) (P (S "b") (S "c") (S "d")) (P (S "e")))"#);
        let t2 = doc(r#"(D (P (S "a")) (P (S "e")) (P (S "b") (S "c") (S "d") (S "g")))"#);
        let delta = delta_for(&t1, &t2);
        let r = audit_delta(&t1, &t2, &delta);
        assert!(r.is_clean() && r.is_empty(), "{r}");
    }

    #[test]
    fn wrong_t2_is_a040_and_a041() {
        let t1 = doc(r#"(D (S "a"))"#);
        let t2 = doc(r#"(D (S "b"))"#);
        let delta = delta_for(&t1, &t2);
        let unrelated = doc(r#"(X (Y "z") (Y "w"))"#);
        let r = audit_delta(&unrelated, &unrelated, &delta);
        assert!(r.has_code(Code::A040), "{r}");
        assert!(r.has_code(Code::A041), "{r}");
    }

    #[test]
    fn tampered_marker_link_is_a042() {
        // A diff with a move produces a MOV/MRK pair; retarget the MOV's
        // marker pointer through the serde escape hatch.
        let t1 = doc(r#"(D (P (S "a") (S "b")) (P (S "c")))"#);
        let t2 = doc(r#"(D (P (S "a")) (P (S "c") (S "b")))"#);
        let delta = delta_for(&t1, &t2);
        assert!(delta.annotation_counts().moved >= 1);
        let root_id = to_tamperable(&delta.root());
        let mut v = to_tamperable(&delta);
        let mut retargeted = 0;
        for n in array_mut(field_mut(&mut v, "nodes")) {
            let ann = field_mut(n, "annotation");
            if ann.get("Moved").is_some() {
                // Point every MOV at the root, which is not its marker.
                *field_mut(field_mut(ann, "Moved"), "mark") = root_id.clone();
                retargeted += 1;
            }
        }
        assert!(retargeted >= 1);
        let bad: DeltaTree<String> = from_tampered(v);
        let r = audit_delta(&t1, &t2, &bad);
        assert!(r.has_code(Code::A042), "{r}");
    }

    #[test]
    fn dropped_deleted_subtree_is_a041() {
        // Remove a DEL node from the delta: new projection still matches T2
        // but the old state can no longer be reconstructed.
        let t1 = doc(r#"(D (S "a") (S "gone"))"#);
        let t2 = doc(r#"(D (S "a"))"#);
        let delta = delta_for(&t1, &t2);
        let mut v = to_tamperable(&delta);
        // Drop every child reference to DEL-annotated nodes.
        let del_idxs: Vec<u64> = v["nodes"]
            .as_array()
            .unwrap()
            .iter()
            .enumerate()
            .filter(|(_, n)| n["annotation"].as_str() == Some("Deleted"))
            .map(|(i, _)| i as u64)
            .collect();
        assert!(!del_idxs.is_empty());
        for n in array_mut(field_mut(&mut v, "nodes")) {
            array_mut(field_mut(n, "children"))
                .retain(|c| c.as_u64().is_none_or(|i| !del_idxs.contains(&i)));
        }
        let bad: DeltaTree<String> = from_tampered(v);
        let r = audit_delta(&t1, &t2, &bad);
        assert!(r.has_code(Code::A041), "{r}");
    }
}
