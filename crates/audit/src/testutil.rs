//! Test-only helpers for tampering with serialized artifacts.
//!
//! The vendored `serde_json` subset exposes no mutable `Value` accessors
//! (`as_array_mut`, `IndexMut`, `from_value` are all absent), but the
//! [`Value`] enum's variants are public, so these helpers pattern-match on
//! them directly. Corruption tests serialize an artifact, mutate the
//! `Value`, and deserialize the damaged form back.

#![cfg(test)]

use serde_json::Value;

/// Mutable access to an object field, by key.
pub(crate) fn field_mut<'a>(v: &'a mut Value, key: &str) -> &'a mut Value {
    match v {
        Value::Object(fields) => {
            &mut fields
                .iter_mut()
                .find(|(k, _)| k == key)
                .unwrap_or_else(|| panic!("no field `{key}`"))
                .1
        }
        other => panic!("field_mut on non-object: {other:?}"),
    }
}

/// Mutable access to an array element, by index.
pub(crate) fn elem_mut(v: &mut Value, i: usize) -> &mut Value {
    match v {
        Value::Array(a) => &mut a[i],
        other => panic!("elem_mut on non-array: {other:?}"),
    }
}

/// Mutable access to the backing vector of an array value.
pub(crate) fn array_mut(v: &mut Value) -> &mut Vec<Value> {
    match v {
        Value::Array(a) => a,
        other => panic!("array_mut on non-array: {other:?}"),
    }
}

/// Serializes `x` into a tamperable JSON value.
pub(crate) fn to_tamperable<T: serde::Serialize>(x: &T) -> Value {
    serde::ser::to_value(x)
}

/// Deserializes a (tampered) value back into `T`.
pub(crate) fn from_tampered<T: serde::DeserializeOwned>(v: Value) -> T {
    serde::de::from_value(v).expect("tampered value still deserializes")
}
