//! Diagnostic primitives: stable codes, severities, node-path spans, and
//! the [`AuditReport`] that every checker returns.

use std::fmt;

use hierdiff_tree::{NodeId, NodeValue, Tree};

/// Stable diagnostic codes.
///
/// `A0xx` codes are *artifact* checks — violations of the paper's formal
/// invariants in a concrete matching, edit script, prune seed, or delta
/// tree. (The companion `L0xx` *lint* codes are emitted by the `xtask`
/// workspace linter over the source tree itself; they share this numbering
/// scheme but not this enum.) Codes are append-only: a published code never
/// changes meaning.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // each variant is documented by `title`/`paper_ref`
pub enum Code {
    A001,
    A002,
    A003,
    A004,
    A010,
    A011,
    A012,
    A013,
    A014,
    A020,
    A021,
    A022,
    A023,
    A024,
    A030,
    A031,
    A040,
    A041,
    A042,
}

impl Code {
    /// The stable textual form, e.g. `"A012"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::A001 => "A001",
            Code::A002 => "A002",
            Code::A003 => "A003",
            Code::A004 => "A004",
            Code::A010 => "A010",
            Code::A011 => "A011",
            Code::A012 => "A012",
            Code::A013 => "A013",
            Code::A014 => "A014",
            Code::A020 => "A020",
            Code::A021 => "A021",
            Code::A022 => "A022",
            Code::A023 => "A023",
            Code::A024 => "A024",
            Code::A030 => "A030",
            Code::A031 => "A031",
            Code::A040 => "A040",
            Code::A041 => "A041",
            Code::A042 => "A042",
        }
    }

    /// Short human-readable description of the invariant the code polices.
    pub fn title(self) -> &'static str {
        match self {
            Code::A001 => "tree root invalid",
            Code::A002 => "parent/child links inconsistent",
            Code::A003 => "node reachability broken",
            Code::A004 => "live-node count drifted",
            Code::A010 => "matching references invalid T1 node",
            Code::A011 => "matching references invalid T2 node",
            Code::A012 => "matched pair labels differ",
            Code::A013 => "matching is not one-to-one",
            Code::A014 => "matching inverts ancestor order",
            Code::A020 => "edit op illegal against running tree",
            Code::A021 => "script does not replay T1 to T2",
            Code::A022 => "script deletes a matched node",
            Code::A023 => "recorded stats disagree with script",
            Code::A024 => "total matching does not extend input matching",
            Code::A030 => "pruned pair not identical",
            Code::A031 => "pruned pair dropped by a later stage",
            Code::A040 => "delta new-projection differs from T2",
            Code::A041 => "delta old-projection differs from T1",
            Code::A042 => "delta MOV/MRK links broken",
        }
    }

    /// Where in the paper the violated invariant is defined.
    pub fn paper_ref(self) -> &'static str {
        match self {
            Code::A001 | Code::A002 | Code::A003 | Code::A004 => "§3.1 (ordered trees)",
            Code::A010 | Code::A011 | Code::A012 | Code::A013 => "§3.1 (matchings)",
            Code::A014 => "§3.1 / Lemma C.1",
            Code::A020 | Code::A021 => "§3.2, Fig. 8/9",
            Code::A022 | Code::A024 => "§3.1 (conformance M' ⊇ M)",
            Code::A023 => "§3.2 / §5.3 (cost model)",
            Code::A030 | Code::A031 => "§1 (unchanged-fragment pruning) / §5 Criterion 3",
            Code::A040 | Code::A041 | Code::A042 => "§6 (delta trees)",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How bad a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: worth surfacing, never wrong by itself.
    Info,
    /// Suspicious but tolerated by the algorithms (e.g. an ancestor-order
    /// inversion, which Algorithm *EditScript* untangles correctly).
    Warning,
    /// A formal invariant is violated; downstream results are unreliable.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Which artifact a span points into.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    /// The old tree `T1`.
    Old,
    /// The new tree `T2`.
    New,
    /// The delta tree (Section 6).
    Delta,
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Side::Old => "T1",
            Side::New => "T2",
            Side::Delta => "Δ",
        })
    }
}

/// A node-path span: the root-to-node child-index path within one artifact,
/// e.g. `T1:/1/0` for the first child of the second child of the root.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// The artifact the path indexes into.
    pub side: Side,
    /// 0-based child positions from the root; empty means the root itself.
    pub path: Vec<usize>,
}

impl Span {
    /// The span of a live node of `tree`, or `None` when the node is dead
    /// or out of range (dead nodes have no position).
    pub fn of<V: NodeValue>(tree: &Tree<V>, id: NodeId, side: Side) -> Option<Span> {
        if !tree.is_alive(id) {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = id;
        while let Some(pos) = tree.position(cur) {
            path.push(pos);
            cur = tree.parent(cur)?;
        }
        path.reverse();
        Some(Span { side, path })
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:", self.side)?;
        if self.path.is_empty() {
            return f.write_str("/");
        }
        for p in &self.path {
            write!(f, "/{p}")?;
        }
        Ok(())
    }
}

/// One audit finding: a stable code, a severity, a human-readable message,
/// and (when the offending node is live) a node-path span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable diagnostic code.
    pub code: Code,
    /// Finding severity.
    pub severity: Severity,
    /// Human-readable description of this specific violation.
    pub message: String,
    /// Node-path location, when one exists.
    pub span: Option<Span>,
}

impl Diagnostic {
    /// An `Error`-severity diagnostic.
    pub fn error(code: Code, message: impl Into<String>, span: Option<Span>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Error,
            message: message.into(),
            span,
        }
    }

    /// A `Warning`-severity diagnostic.
    pub fn warning(code: Code, message: impl Into<String>, span: Option<Span>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Warning,
            message: message.into(),
            span,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        if let Some(span) = &self.span {
            write!(f, " at {span}")?;
        }
        write!(f, " ({})", self.code.paper_ref())
    }
}

/// The outcome of one or more audit passes: the findings plus a count of
/// the individual checks that ran (so "clean" is distinguishable from
/// "nothing checked").
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AuditReport {
    diags: Vec<Diagnostic>,
    /// Number of individual invariant checks evaluated.
    pub checks_run: usize,
}

impl AuditReport {
    /// An empty report.
    pub fn new() -> AuditReport {
        AuditReport::default()
    }

    /// Records a finding.
    pub fn push(&mut self, diag: Diagnostic) {
        self.diags.push(diag);
    }

    /// Absorbs another report (findings and check counts).
    pub fn merge(&mut self, other: AuditReport) {
        self.diags.extend(other.diags);
        self.checks_run += other.checks_run;
    }

    /// All findings, in the order discovered.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// Number of findings (any severity).
    pub fn len(&self) -> usize {
        self.diags.len()
    }

    /// Whether there are no findings at all.
    pub fn is_empty(&self) -> bool {
        self.diags.is_empty()
    }

    /// Number of `Error`-severity findings.
    pub fn error_count(&self) -> usize {
        self.diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Whether any finding is an `Error`.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Whether the audited artifacts satisfied every checked invariant
    /// (warnings and infos are allowed; errors are not).
    pub fn is_clean(&self) -> bool {
        !self.has_errors()
    }

    /// Whether a finding with `code` is present.
    pub fn has_code(&self, code: Code) -> bool {
        self.diags.iter().any(|d| d.code == code)
    }

    /// The findings carrying `code`.
    pub fn with_code(&self, code: Code) -> impl Iterator<Item = &Diagnostic> {
        self.diags.iter().filter(move |d| d.code == code)
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.diags.is_empty() {
            return write!(f, "audit clean: {} checks, 0 findings", self.checks_run);
        }
        for (i, d) in self.diags.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}
