//! Prune-pass soundness checks (`A030`–`A031`).
//!
//! The identical-subtree pre-pass (realizing the introduction's promise to
//! "quickly match fragments that have not changed") may only seed the
//! matching with *identical* subtree pairs: equal labels, equal values, and
//! identical shape, paired node-by-node along parallel pre-orders. A hash
//! collision that slipped past verification would silently corrupt every
//! downstream stage, so [`audit_prune`] re-derives the invariant from
//! first principles: each seeded pair must agree on label and value, have
//! equal arity, and have its children seeded pairwise in order — which
//! together imply whole-subtree isomorphism, in O(N) total.

use hierdiff_edit::Matching;
use hierdiff_tree::{NodeValue, Tree};

use crate::diag::{AuditReport, Code, Diagnostic, Side, Span};

/// Audits a prune seed matching for soundness (`A030`) and, when the final
/// matching is available, checks that no seeded pair was dropped by a later
/// stage (`A031`, warning — seeded pairs are documented as final).
pub fn audit_prune<V: NodeValue>(
    t1: &Tree<V>,
    t2: &Tree<V>,
    seed: &Matching,
    final_matching: Option<&Matching>,
) -> AuditReport {
    let mut report = AuditReport::new();
    for (x, y) in seed.iter() {
        report.checks_run += 1;
        if !t1.is_alive(x) || !t2.is_alive(y) {
            report.push(Diagnostic::error(
                Code::A030,
                format!("seeded pair ({x}, {y}) references a dead node"),
                None,
            ));
            continue;
        }
        if t1.label(x) != t2.label(y) || t1.value(x) != t2.value(y) {
            report.push(Diagnostic::error(
                Code::A030,
                format!(
                    "seeded pair ({x}, {y}) is not identical: labels {} vs {} \
                     or values differ",
                    t1.label(x),
                    t2.label(y)
                ),
                Span::of(t1, x, Side::Old),
            ));
            continue;
        }
        let c1 = t1.children(x);
        let c2 = t2.children(y);
        if c1.len() != c2.len() {
            report.push(Diagnostic::error(
                Code::A030,
                format!(
                    "seeded pair ({x}, {y}) has differing arity ({} vs {})",
                    c1.len(),
                    c2.len()
                ),
                Span::of(t1, x, Side::Old),
            ));
            continue;
        }
        // Identical subtrees are seeded along parallel pre-orders, so each
        // child pair must itself be seeded, positionally.
        for (&a, &b) in c1.iter().zip(c2) {
            if !seed.contains(a, b) {
                report.push(Diagnostic::error(
                    Code::A030,
                    format!(
                        "seeded pair ({x}, {y}) does not seed its children \
                         pairwise: ({a}, {b}) missing"
                    ),
                    Span::of(t1, a, Side::Old),
                ));
            }
        }

        if let Some(fm) = final_matching {
            report.checks_run += 1;
            if !fm.contains(x, y) {
                report.push(Diagnostic::warning(
                    Code::A031,
                    format!(
                        "seeded pair ({x}, {y}) was dropped or rewired by a \
                         later matching stage"
                    ),
                    Span::of(t1, x, Side::Old),
                ));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierdiff_matching::prune_identical;

    fn doc(s: &str) -> Tree<String> {
        Tree::parse_sexpr(s).unwrap()
    }

    #[test]
    fn genuine_prune_seed_is_clean() {
        let t1 = doc(r#"(D (Sec (P (S "k") (S "l"))) (Sec (P (S "m"))) (S "q"))"#);
        let t2 = doc(r#"(D (Sec (P (S "m"))) (Sec (P (S "k") (S "l"))) (S "r"))"#);
        let (seed, _) = prune_identical(&t1, &t2).unwrap();
        assert!(!seed.is_empty());
        let r = audit_prune(&t1, &t2, &seed, None);
        assert!(r.is_clean() && r.is_empty(), "{r}");
    }

    #[test]
    fn non_identical_seed_is_a030() {
        let t1 = doc(r#"(D (S "a"))"#);
        let t2 = doc(r#"(D (S "DIFFERENT"))"#);
        let mut seed = Matching::new();
        seed.insert(t1.children(t1.root())[0], t2.children(t2.root())[0])
            .unwrap();
        let r = audit_prune(&t1, &t2, &seed, None);
        assert!(r.has_code(Code::A030), "{r}");
    }

    #[test]
    fn arity_mismatch_is_a030() {
        let t1 = doc(r#"(D (P (S "a")))"#);
        let t2 = doc(r#"(D (P))"#);
        let mut seed = Matching::new();
        seed.insert(t1.children(t1.root())[0], t2.children(t2.root())[0])
            .unwrap();
        let r = audit_prune(&t1, &t2, &seed, None);
        assert!(r.has_code(Code::A030), "{r}");
    }

    #[test]
    fn dropped_seed_pair_is_a031_warning() {
        let t1 = doc(r#"(D (S "a"))"#);
        let t2 = doc(r#"(D (S "a"))"#);
        let (seed, _) = prune_identical(&t1, &t2).unwrap();
        assert!(!seed.is_empty());
        let r = audit_prune(&t1, &t2, &seed, Some(&Matching::new()));
        assert!(r.has_code(Code::A031), "{r}");
        assert!(r.is_clean(), "A031 is a warning: {r}");
    }
}
