//! # hierdiff-audit
//!
//! Invariant auditing for the artifacts of the change-detection pipeline —
//! the "correctness tooling" layer over the Chawathe et al. (SIGMOD 1996)
//! reproduction. Every checker re-derives one of the paper's formal
//! invariants from first principles and reports violations as
//! [`Diagnostic`]s with **stable codes** (`A0xx`), a [`Severity`], and a
//! node-path [`Span`] (e.g. `T1:/1/0`):
//!
//! | codes | checker | invariant (paper §) |
//! |-------|---------|---------------------|
//! | `A001`–`A004` | [`audit_tree`] | arena well-formedness (§3.1) |
//! | `A010`–`A014` | [`audit_matching`] / [`audit_pairs`] | matchings are one-to-one, label-preserving, ancestor-order (§3.1, Lemma C.1) |
//! | `A020`–`A024` | [`audit_script`] | edit-script conformance and replay (§3.2, Figs. 8/9) |
//! | `A030`–`A031` | [`audit_prune`] | prune seeds pair identical subtrees (§1, §5) |
//! | `A040`–`A042` | [`audit_delta`] | delta trees project back to `T1`/`T2` (§6) |
//!
//! The companion `L0xx` lint codes are emitted by the `xtask` workspace
//! linter over the *source tree*; this crate covers the *runtime
//! artifacts*. Both families are catalogued in `DESIGN.md`.
//!
//! ```
//! use hierdiff_tree::Tree;
//! use hierdiff_audit::{audit_tree, Side};
//!
//! let t = Tree::parse_sexpr(r#"(D (P (S "a")))"#).unwrap();
//! let report = audit_tree(&t, Side::Old);
//! assert!(report.is_clean());
//! ```
//!
//! Checkers assume the *trees themselves* are well-formed (run
//! [`audit_tree`] first on untrusted input); the pair-level checkers then
//! validate matchings, scripts, prune seeds, and delta trees against them.
//! The `hierdiff-core` crate calls these at stage boundaries when
//! `Differ::audit` is enabled (the default under debug assertions).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod delta_check;
mod diag;
mod matching_check;
mod prune_check;
mod script_check;
#[cfg(test)] // the file's inner #![cfg(test)] repeats this for the linter
mod testutil;
mod tree_check;

pub use delta_check::audit_delta;
pub use diag::{AuditReport, Code, Diagnostic, Severity, Side, Span};
pub use matching_check::{audit_matching, audit_pairs};
pub use prune_check::audit_prune;
pub use script_check::audit_script;
pub use tree_check::audit_tree;
