//! Matching validity checks (`A010`–`A014`).
//!
//! Section 3.1 defines a matching as a one-to-one correspondence between
//! nodes "with identical or similar values" whose pairs carry equal labels
//! (unequal-label pairs admit no conforming script — labels are immutable
//! under the paper's four operations). [`audit_pairs`] checks raw pair
//! lists against those requirements; [`audit_matching`] adapts a
//! [`Matching`] (which already enforces one-to-one-ness structurally).
//!
//! The ancestor-order check (`A014`) polices the precondition of the
//! child-alignment analysis (Lemma C.1): a matching produced by the
//! paper's criteria maps ancestors to ancestors. Violations are reported
//! as warnings, not errors, because Algorithm *EditScript* handles
//! crosswise matchings correctly (it just emits extra moves).

use hierdiff_edit::Matching;
use hierdiff_tree::{Intervals, NodeId, NodeValue, Tree};

use crate::diag::{AuditReport, Code, Diagnostic, Side, Span};

/// Audits a [`Matching`] against `t1`/`t2` (codes `A010`–`A012`, `A014`;
/// `A013` cannot occur because the type enforces one-to-one-ness).
pub fn audit_matching<V: NodeValue>(
    t1: &Tree<V>,
    t2: &Tree<V>,
    matching: &Matching,
) -> AuditReport {
    let pairs: Vec<(NodeId, NodeId)> = matching.iter().collect();
    audit_pairs(t1, t2, &pairs)
}

/// Audits a raw pair list — the form produced by external matchers or
/// deserialized data, where nothing is enforced structurally. Checks that
/// every referenced node is alive (`A010`/`A011`), labels agree (`A012`),
/// no node appears in two pairs (`A013`), and ancestor order is preserved
/// (`A014`, warning).
pub fn audit_pairs<V: NodeValue>(
    t1: &Tree<V>,
    t2: &Tree<V>,
    pairs: &[(NodeId, NodeId)],
) -> AuditReport {
    let mut report = AuditReport::new();
    // Dense partner tables double as the one-to-one check and as the
    // lookup for the ancestor-order pass. First occurrence wins.
    let mut fwd: Vec<Option<NodeId>> = vec![None; t1.arena_len()];
    let mut bwd: Vec<Option<NodeId>> = vec![None; t2.arena_len()];

    for &(x, y) in pairs {
        report.checks_run += 1;
        let x_ok = t1.is_alive(x);
        if !x_ok {
            report.push(Diagnostic::error(
                Code::A010,
                format!("pair ({x}, {y}) references {x}, not a live T1 node"),
                Span::of(t2, y, Side::New),
            ));
        }
        report.checks_run += 1;
        let y_ok = t2.is_alive(y);
        if !y_ok {
            report.push(Diagnostic::error(
                Code::A011,
                format!("pair ({x}, {y}) references {y}, not a live T2 node"),
                Span::of(t1, x, Side::Old),
            ));
        }
        if x_ok && y_ok {
            report.checks_run += 1;
            if t1.label(x) != t2.label(y) {
                report.push(Diagnostic::error(
                    Code::A012,
                    format!(
                        "pair ({x}, {y}) matches label {} to label {}",
                        t1.label(x),
                        t2.label(y)
                    ),
                    Span::of(t1, x, Side::Old),
                ));
            }
        }
        report.checks_run += 1;
        let mut duplicated = false;
        if let Some(slot) = fwd.get_mut(x.index()) {
            match slot {
                Some(prev) => {
                    duplicated = true;
                    report.push(Diagnostic::error(
                        Code::A013,
                        format!("T1 node {x} matched to both {prev} and {y}"),
                        if x_ok {
                            Span::of(t1, x, Side::Old)
                        } else {
                            None
                        },
                    ));
                }
                None => *slot = Some(y),
            }
        }
        if let Some(slot) = bwd.get_mut(y.index()) {
            match slot {
                Some(prev) => {
                    report.push(Diagnostic::error(
                        Code::A013,
                        format!("T2 node {y} matched to both {prev} and {x}"),
                        if y_ok {
                            Span::of(t2, y, Side::New)
                        } else {
                            None
                        },
                    ));
                    if !duplicated {
                        // Keep the tables injective for the A014 pass.
                        if let Some(slot1) = fwd.get_mut(x.index()) {
                            if *slot1 == Some(y) {
                                *slot1 = None;
                            }
                        }
                    }
                }
                None if !duplicated => *slot = Some(x),
                None => {}
            }
        }
    }

    ancestor_order(t1, t2, &fwd, Side::Old, &mut report);
    let bwd_view: Vec<Option<NodeId>> = bwd;
    ancestor_order(t2, t1, &bwd_view, Side::New, &mut report);
    report
}

/// One direction of the `A014` check, in O(N): DFS from the root of `ta`
/// carrying the nearest *matched* proper ancestor; each matched node's
/// partner must be a descendant of that ancestor's partner. By induction
/// along the chain of matched ancestors this covers every ancestor pair.
fn ancestor_order<V: NodeValue>(
    ta: &Tree<V>,
    tb: &Tree<V>,
    partner: &[Option<NodeId>],
    side_a: Side,
    report: &mut AuditReport,
) {
    let ib = Intervals::new(tb);
    let lookup = |n: NodeId| -> Option<NodeId> {
        partner
            .get(n.index())
            .copied()
            .flatten()
            .filter(|p| tb.is_alive(*p))
    };
    // (node, partner of nearest matched proper ancestor)
    let mut stack: Vec<(NodeId, Option<NodeId>)> = vec![(ta.root(), None)];
    while let Some((n, above)) = stack.pop() {
        let here = lookup(n);
        if let (Some(p), Some(pa)) = (here, above) {
            report.checks_run += 1;
            if pa == p || !ib.is_ancestor(pa, p) {
                report.push(Diagnostic::warning(
                    Code::A014,
                    format!(
                        "matching inverts ancestor order at {n}: its nearest matched \
                         ancestor maps to {pa}, which does not contain its partner {p}"
                    ),
                    Span::of(ta, n, side_a),
                ));
            }
        }
        let next = here.or(above);
        for &c in ta.children(n) {
            stack.push((c, next));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(s: &str) -> Tree<String> {
        Tree::parse_sexpr(s).unwrap()
    }

    #[test]
    fn positional_matching_is_clean() {
        let t1 = doc(r#"(D (P (S "a") (S "b")))"#);
        let t2 = doc(r#"(D (P (S "a") (S "b")))"#);
        let pairs: Vec<_> = t1.preorder().zip(t2.preorder()).collect();
        let r = audit_pairs(&t1, &t2, &pairs);
        assert!(r.is_clean(), "{r}");
        assert!(r.is_empty());
    }

    #[test]
    fn label_mismatch_is_a012() {
        let t1 = doc(r#"(D (S "a"))"#);
        let t2 = doc(r#"(D (P "a"))"#);
        let pairs: Vec<_> = t1.preorder().zip(t2.preorder()).collect();
        let r = audit_pairs(&t1, &t2, &pairs);
        assert!(r.has_code(Code::A012), "{r}");
        assert_eq!(r.error_count(), 1);
    }

    #[test]
    fn duplicate_partner_is_a013() {
        let t1 = doc(r#"(D (S "a") (S "b"))"#);
        let t2 = doc(r#"(D (S "a") (S "b"))"#);
        let k1: Vec<_> = t1.children(t1.root()).to_vec();
        let k2: Vec<_> = t2.children(t2.root()).to_vec();
        let pairs = vec![
            (t1.root(), t2.root()),
            (k1[0], k2[0]),
            (k1[1], k2[0]), // k2[0] claimed twice
        ];
        let r = audit_pairs(&t1, &t2, &pairs);
        assert!(r.has_code(Code::A013), "{r}");
    }

    #[test]
    fn dead_node_is_a010() {
        let mut t1 = doc(r#"(D (S "a"))"#);
        let t2 = doc(r#"(D (S "a"))"#);
        let leaf1 = t1.children(t1.root())[0];
        let leaf2 = t2.children(t2.root())[0];
        t1.delete_leaf(leaf1).unwrap();
        let r = audit_pairs(&t1, &t2, &[(t1.root(), t2.root()), (leaf1, leaf2)]);
        assert!(r.has_code(Code::A010), "{r}");
    }

    #[test]
    fn crosswise_matching_warns_a014_but_stays_clean() {
        // The outer A of T1 matched to the inner A of T2 and vice versa —
        // legal input to EditScript, so a warning, not an error.
        let t1 = doc(r#"(A (B (A "x")))"#);
        let t2 = doc(r#"(A (B (A "y")))"#);
        let b1 = t1.children(t1.root())[0];
        let a1_inner = t1.children(b1)[0];
        let b2 = t2.children(t2.root())[0];
        let a2_inner = t2.children(b2)[0];
        let pairs = vec![(t1.root(), a2_inner), (a1_inner, t2.root()), (b1, b2)];
        let r = audit_pairs(&t1, &t2, &pairs);
        assert!(r.has_code(Code::A014), "{r}");
        assert!(r.is_clean(), "A014 is a warning: {r}");
    }

    #[test]
    fn matching_type_adapts() {
        let t1 = doc(r#"(D (S "a"))"#);
        let t2 = doc(r#"(D (S "a"))"#);
        let mut m = Matching::new();
        m.insert(t1.root(), t2.root()).unwrap();
        m.insert(t1.children(t1.root())[0], t2.children(t2.root())[0])
            .unwrap();
        let r = audit_matching(&t1, &t2, &m);
        assert!(r.is_clean() && r.is_empty(), "{r}");
    }
}
