//! Arena well-formedness checks (`A001`–`A004`).
//!
//! These re-express [`Tree::validate`]'s invariants as structured
//! diagnostics: exactly one live root, mutually consistent parent/child
//! links, no dead node reachable from the root, and an accurate live count.
//! A healthy [`Tree`] cannot violate them through its public API; the checks
//! exist for trees reconstructed from external data (serde, tampered
//! fixtures) and as a cheap tripwire at diff-stage boundaries.

use hierdiff_tree::{NodeValue, Tree};

use crate::diag::{AuditReport, Code, Diagnostic, Side, Span};

/// Audits the structural invariants of `tree`'s arena. `side` tags the
/// spans in the resulting report (`T1:` or `T2:` paths).
///
/// Run this *before* the pair-level checkers on untrusted trees: the other
/// checkers assume parent/child links are consistent.
pub fn audit_tree<V: NodeValue>(tree: &Tree<V>, side: Side) -> AuditReport {
    let mut report = AuditReport::new();
    let root = tree.root();

    report.checks_run += 1;
    if !tree.is_alive(root) {
        report.push(Diagnostic::error(
            Code::A001,
            format!("root {root} is dead"),
            None,
        ));
        return report; // nothing else is checkable
    }
    report.checks_run += 1;
    if tree.parent(root).is_some() {
        report.push(Diagnostic::error(
            Code::A001,
            format!("root {root} has a parent"),
            Some(Span {
                side,
                path: Vec::new(),
            }),
        ));
    }

    // DFS from the root, carrying the child-index path so spans never need
    // to walk (possibly inconsistent) parent links.
    let mut seen = vec![false; tree.arena_len()];
    let mut live_reached = 0usize;
    let mut stack = vec![(root, Vec::new())];
    while let Some((id, path)) = stack.pop() {
        let span = Some(Span {
            side,
            path: path.clone(),
        });
        report.checks_run += 1;
        if id.index() >= seen.len() || seen[id.index()] {
            report.push(Diagnostic::error(
                Code::A002,
                format!("node {id} reached twice (cycle or shared child)"),
                span,
            ));
            continue;
        }
        seen[id.index()] = true;
        report.checks_run += 1;
        if !tree.is_alive(id) {
            report.push(Diagnostic::error(
                Code::A003,
                format!("dead node {id} reachable from the root"),
                span,
            ));
            continue; // accessors on dead nodes are undefined; stop here
        }
        live_reached += 1;
        for (pos, &c) in tree.children(id).iter().enumerate() {
            let mut child_path = path.clone();
            child_path.push(pos);
            report.checks_run += 1;
            if tree.is_alive(c) && tree.parent(c) != Some(id) {
                report.push(Diagnostic::error(
                    Code::A002,
                    format!("child {c} of {id} records parent {:?}", tree.parent(c)),
                    Some(Span {
                        side,
                        path: child_path.clone(),
                    }),
                ));
            }
            stack.push((c, child_path));
        }
    }

    report.checks_run += 1;
    if live_reached != tree.len() {
        report.push(Diagnostic::error(
            Code::A004,
            format!(
                "live count is {} but the root reaches {live_reached} live nodes \
                 (unreachable or miscounted nodes)",
                tree.len()
            ),
            None,
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{elem_mut, field_mut, from_tampered, to_tamperable};
    use hierdiff_tree::{NodeId, Tree};

    /// Mutable view of node `i`'s field `key` in a serialized tree.
    fn node_field_mut<'a>(
        v: &'a mut serde_json::Value,
        i: usize,
        key: &str,
    ) -> &'a mut serde_json::Value {
        field_mut(elem_mut(field_mut(v, "nodes"), i), key)
    }

    #[test]
    fn healthy_tree_is_clean() {
        let t = Tree::parse_sexpr(r#"(D (P (S "a") (S "b")) (P (S "c")))"#).unwrap();
        let r = audit_tree(&t, Side::Old);
        assert!(r.is_clean(), "{r}");
        assert!(r.is_empty());
        assert!(r.checks_run > t.len());
    }

    #[test]
    fn serde_tampered_parent_link_is_caught() {
        let t = Tree::parse_sexpr(r#"(D (S "a") (S "b"))"#).unwrap();
        let mut v = to_tamperable(&t);
        // Point the second leaf's parent at the first leaf.
        *node_field_mut(&mut v, 2, "parent") = to_tamperable(&Some(NodeId::from_index(1)));
        let bad: Tree<String> = from_tampered(v);
        let r = audit_tree(&bad, Side::Old);
        assert!(r.has_code(Code::A002), "{r}");
        assert!(!r.is_clean());
    }

    #[test]
    fn serde_tampered_live_count_is_caught() {
        // A directly tampered `live` counter is rejected at the
        // deserialization boundary, before any checker runs.
        let t = Tree::parse_sexpr(r#"(D (S "a"))"#).unwrap();
        let mut v = to_tamperable(&t);
        *field_mut(&mut v, "live") = to_tamperable(&5usize);
        assert!(serde::de::from_value::<Tree<String>>(v).is_err());
        // Count drift that survives the boundary checks — a live node
        // missing from every child list, hence unreachable — is the
        // checker's job: A004.
        let t = Tree::parse_sexpr(r#"(D (S "a") (S "b"))"#).unwrap();
        let mut v = to_tamperable(&t);
        *node_field_mut(&mut v, 0, "children") = to_tamperable(&vec![NodeId::from_index(1)]);
        let bad: Tree<String> = from_tampered(v);
        let r = audit_tree(&bad, Side::New);
        assert!(r.has_code(Code::A004), "{r}");
    }

    #[test]
    fn shared_child_is_a002() {
        let t = Tree::parse_sexpr(r#"(D (P (S "a")) (P (S "b")))"#).unwrap();
        let mut v = to_tamperable(&t);
        // Both P nodes claim the same S leaf as a child.
        *node_field_mut(&mut v, 3, "children") = to_tamperable(&vec![NodeId::from_index(2)]);
        let bad: Tree<String> = from_tampered(v);
        let r = audit_tree(&bad, Side::Old);
        assert!(r.has_code(Code::A002), "{r}");
    }
}
