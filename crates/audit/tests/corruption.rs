//! Negative-path integration tests: run the real pipeline stages, corrupt
//! one artifact at a time, and assert the audit reports the expected stable
//! `A0xx` code. Where the typed APIs make an invalid artifact
//! unconstructible, corruption goes through the serde representation (the
//! same route a damaged artifact would take arriving from disk or the
//! network).

use hierdiff_audit::{
    audit_delta, audit_matching, audit_pairs, audit_prune, audit_script, audit_tree, Code, Side,
};
use hierdiff_edit::{edit_script, EditOp, EditScript, Matching};
use hierdiff_matching::{fast_match, prune_identical, MatchParams};
use hierdiff_tree::{NodeId, Tree};

fn doc(s: &str) -> Tree<String> {
    Tree::parse_sexpr(s).unwrap()
}

/// Pairs nodes by equal (label, value), greedily in pre-order.
fn match_by_value(t1: &Tree<String>, t2: &Tree<String>) -> Matching {
    let mut m = Matching::with_capacity(t1.arena_len(), t2.arena_len());
    let mut used = vec![false; t2.arena_len()];
    for x in t1.preorder() {
        for y in t2.preorder() {
            if !used[y.index()] && t1.label(x) == t2.label(y) && t1.value(x) == t2.value(y) {
                m.insert(x, y).unwrap();
                used[y.index()] = true;
                break;
            }
        }
    }
    m
}

// --- matchings (A010–A014) -----------------------------------------------

#[test]
fn matching_with_dead_t1_node_is_a010() {
    let mut t1 = doc(r#"(D (S "a") (S "b"))"#);
    let t2 = doc(r#"(D (S "a") (S "b"))"#);
    let m = match_by_value(&t1, &t2);
    let b = t1.children(t1.root())[1];
    t1.delete_leaf(b).unwrap();
    let r = audit_matching(&t1, &t2, &m);
    assert!(r.has_code(Code::A010), "{r}");
    assert!(r.has_errors());
}

#[test]
fn matching_with_dead_t2_node_is_a011() {
    let t1 = doc(r#"(D (S "a") (S "b"))"#);
    let mut t2 = doc(r#"(D (S "a") (S "b"))"#);
    let m = match_by_value(&t1, &t2);
    let b = t2.children(t2.root())[1];
    t2.delete_leaf(b).unwrap();
    let r = audit_matching(&t1, &t2, &m);
    assert!(r.has_code(Code::A011), "{r}");
}

#[test]
fn label_mismatched_pair_is_a012() {
    let t1 = doc(r#"(D (S "a"))"#);
    let t2 = doc(r#"(D (P "a"))"#);
    // `Matching::insert` cannot know about labels; the pair is storable but
    // violates the §3.1 label-preservation condition.
    let mut m = Matching::new();
    m.insert(t1.root(), t2.root()).unwrap();
    m.insert(t1.children(t1.root())[0], t2.children(t2.root())[0])
        .unwrap();
    let r = audit_matching(&t1, &t2, &m);
    assert!(r.has_code(Code::A012), "{r}");
}

#[test]
fn duplicated_partner_is_a013() {
    let t1 = doc(r#"(D (S "a") (S "b"))"#);
    let t2 = doc(r#"(D (S "a") (S "b"))"#);
    let kids1: Vec<NodeId> = t1.children(t1.root()).to_vec();
    let kids2: Vec<NodeId> = t2.children(t2.root()).to_vec();
    // Raw pair list (the `Matching` type itself rejects duplicates, which
    // is why `audit_pairs` exists for externally supplied pair sets).
    let pairs = vec![
        (t1.root(), t2.root()),
        (kids1[0], kids2[0]),
        (kids1[1], kids2[0]),
    ];
    let r = audit_pairs(&t1, &t2, &pairs);
    assert!(r.has_code(Code::A013), "{r}");
}

#[test]
fn crosswise_ancestor_matching_is_a014_warning() {
    // Outer A of T1 ↔ inner A of T2 and vice versa: legal for EditScript
    // (it untangles the crossing with moves) but a Lemma C.1 order
    // inversion, so the audit warns without erroring.
    let t1 = doc(r#"(A (B (A "inner1")))"#);
    let t2 = doc(r#"(A (B (A "inner2")))"#);
    let (a1, b1) = (t1.root(), t1.children(t1.root())[0]);
    let a2 = t1.children(b1)[0];
    let (a1p, b1p) = (t2.root(), t2.children(t2.root())[0]);
    let a2p = t2.children(b1p)[0];
    let mut m = Matching::new();
    m.insert(a1, a2p).unwrap();
    m.insert(a2, a1p).unwrap();
    m.insert(b1, b1p).unwrap();
    let r = audit_matching(&t1, &t2, &m);
    assert!(r.has_code(Code::A014), "{r}");
    assert!(!r.has_errors(), "A014 is a warning, not an error: {r}");
}

// --- edit scripts (A020–A024) --------------------------------------------

#[test]
fn script_with_op_on_deleted_node_is_a020() {
    let t1 = doc(r#"(D (S "a") (S "b"))"#);
    let t2 = doc(r#"(D (S "a"))"#);
    let m = match_by_value(&t1, &t2);
    let mut res = edit_script(&t1, &t2, &m).unwrap();
    let victim = res.script.ops()[0].node();
    let mut ops: Vec<EditOp<String>> = res.script.ops().to_vec();
    ops.push(EditOp::Update {
        node: victim,
        value: "ghost".to_string(),
    });
    res.script = EditScript::from_ops(ops);
    let r = audit_script(&t1, &t2, &m, &res);
    assert!(r.has_code(Code::A020), "{r}");
}

#[test]
fn truncated_script_is_a021_and_a023() {
    let t1 = doc(r#"(D (S "a"))"#);
    let t2 = doc(r#"(D (S "a") (S "b") (S "c"))"#);
    let m = match_by_value(&t1, &t2);
    let mut res = edit_script(&t1, &t2, &m).unwrap();
    let ops: Vec<EditOp<String>> = res.script.ops().iter().take(1).cloned().collect();
    res.script = EditScript::from_ops(ops);
    let r = audit_script(&t1, &t2, &m, &res);
    assert!(r.has_code(Code::A021), "{r}");
    assert!(r.has_code(Code::A023), "{r}");
}

#[test]
fn script_deleting_matched_node_is_a022() {
    let t1 = doc(r#"(D (S "a") (S "b"))"#);
    let t2 = doc(r#"(D (S "a"))"#);
    let m = match_by_value(&t1, &t2);
    let mut res = edit_script(&t1, &t2, &m).unwrap();
    let a = t1.children(t1.root())[0]; // matched leaf
    let mut ops: Vec<EditOp<String>> = res.script.ops().to_vec();
    ops.push(EditOp::Delete { node: a });
    res.script = EditScript::from_ops(ops);
    let r = audit_script(&t1, &t2, &m, &res);
    assert!(r.has_code(Code::A022), "{r}");
}

#[test]
fn script_not_conforming_to_claimed_matching_is_a024() {
    let t1 = doc(r#"(D (S "a"))"#);
    let t2 = doc(r#"(D (S "a"))"#);
    let m = match_by_value(&t1, &t2);
    let res = edit_script(&t1, &t2, &m).unwrap();
    let mut foreign = Matching::new();
    foreign
        .insert(t1.root(), t2.children(t2.root())[0])
        .unwrap();
    let r = audit_script(&t1, &t2, &foreign, &res);
    assert!(r.has_code(Code::A024), "{r}");
}

// --- prune seeds (A030–A031) ---------------------------------------------

#[test]
fn genuine_prune_seed_is_clean() {
    let t1 = doc(r#"(D (P (S "same") (S "same2")) (P (S "x")))"#);
    let t2 = doc(r#"(D (P (S "same") (S "same2")) (P (S "y")))"#);
    let (seed, _) = prune_identical(&t1, &t2).unwrap();
    let matched = fast_match(&t1, &t2, MatchParams::default()).unwrap();
    let r = audit_prune(&t1, &t2, &seed, Some(&matched.matching));
    assert!(r.is_clean(), "{r}");
}

#[test]
fn non_identical_prune_seed_is_a030() {
    let t1 = doc(r#"(D (S "left"))"#);
    let t2 = doc(r#"(D (S "right"))"#);
    let mut seed = Matching::new();
    seed.insert(t1.children(t1.root())[0], t2.children(t2.root())[0])
        .unwrap();
    let r = audit_prune(&t1, &t2, &seed, None);
    assert!(r.has_code(Code::A030), "{r}");
}

#[test]
fn prune_pair_dropped_by_matcher_is_a031() {
    let t1 = doc(r#"(D (S "kept"))"#);
    let t2 = doc(r#"(D (S "kept"))"#);
    let mut seed = Matching::new();
    seed.insert(t1.root(), t2.root()).unwrap();
    let s1 = t1.children(t1.root())[0];
    let s2 = t2.children(t2.root())[0];
    seed.insert(s1, s2).unwrap();
    // Final matching that silently dropped the seeded sentence pair.
    let mut fin = Matching::new();
    fin.insert(t1.root(), t2.root()).unwrap();
    let r = audit_prune(&t1, &t2, &seed, Some(&fin));
    assert!(r.has_code(Code::A031), "{r}");
}

// --- delta trees (A040–A042) ---------------------------------------------

#[test]
fn delta_audited_against_wrong_new_tree_is_a040() {
    let t1 = doc(r#"(D (S "a") (S "b"))"#);
    let t2 = doc(r#"(D (S "b") (S "a"))"#);
    let matched = fast_match(&t1, &t2, MatchParams::default()).unwrap();
    let res = edit_script(&t1, &t2, &matched.matching).unwrap();
    let delta = hierdiff_delta::build_delta_tree(&t1, &t2, &matched.matching, &res);
    let other = doc(r#"(D (S "b") (S "a") (S "extra"))"#);
    let r = audit_delta(&t1, &other, &delta);
    assert!(r.has_code(Code::A040), "{r}");
}

#[test]
fn delta_audited_against_wrong_old_tree_is_a041() {
    let t1 = doc(r#"(D (S "a") (S "b"))"#);
    let t2 = doc(r#"(D (S "b") (S "a"))"#);
    let matched = fast_match(&t1, &t2, MatchParams::default()).unwrap();
    let res = edit_script(&t1, &t2, &matched.matching).unwrap();
    let delta = hierdiff_delta::build_delta_tree(&t1, &t2, &matched.matching, &res);
    let other = doc(r#"(D (S "a"))"#);
    let r = audit_delta(&other, &t2, &delta);
    assert!(r.has_code(Code::A041), "{r}");
}

// --- trees (A001–A004), corrupted through serde --------------------------

/// Mutable access to an object field of a serde value, by key.
fn field_mut<'a>(v: &'a mut serde_json::Value, key: &str) -> &'a mut serde_json::Value {
    match v {
        serde_json::Value::Object(fields) => {
            &mut fields
                .iter_mut()
                .find(|(k, _)| k == key)
                .unwrap_or_else(|| panic!("no field `{key}`"))
                .1
        }
        other => panic!("field_mut on non-object: {other:?}"),
    }
}

/// Mutable access to an array element of a serde value.
fn elem_mut(v: &mut serde_json::Value, i: usize) -> &mut serde_json::Value {
    match v {
        serde_json::Value::Array(a) => &mut a[i],
        other => panic!("elem_mut on non-array: {other:?}"),
    }
}

#[test]
fn tampered_parent_link_is_a002() {
    let t = doc(r#"(D (P (S "a")) (P (S "b")))"#);
    let mut v = serde::ser::to_value(&t);
    // Retarget node 1's parent to node 3 without touching node 3's child
    // list: the parent/child links no longer agree.
    let fake_parent = serde::ser::to_value(&Some(NodeId::from_index(3)));
    *field_mut(elem_mut(field_mut(&mut v, "nodes"), 1), "parent") = fake_parent;
    let bad: Tree<String> = serde::de::from_value(v).expect("still deserializes");
    let r = audit_tree(&bad, Side::Old);
    assert!(r.has_code(Code::A002), "{r}");
    assert!(r.has_errors());
}

#[test]
fn clean_tree_audits_clean() {
    let t = doc(r#"(D (P (S "a")) (P (S "b") (S "c")))"#);
    let r = audit_tree(&t, Side::New);
    assert!(r.is_clean() && r.is_empty(), "{r}");
}
