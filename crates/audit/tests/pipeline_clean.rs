//! Positive-path audits: everything the genuine pipeline produces must
//! audit clean — on the paper's worked examples (Figs. 1 and 4), on random
//! proptest-generated documents, and on a realistic workload document.
//!
//! These are the other half of the `corruption.rs` contract: the checkers
//! must flag every injected violation *and* stay silent on honest output,
//! or they would be either useless or unusable as a default-on gate.

use hierdiff_core::{Audit, Differ};
use hierdiff_workload::{generate_document, perturb, DocProfile, EditMix};
use proptest::prelude::*;

fn fixture(name: &str) -> hierdiff_tree::Tree<String> {
    let path = format!("{}/../../fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    hierdiff_tree::Tree::parse_sexpr(&text).unwrap()
}

fn audited() -> Differ<'static> {
    Differ::new().audit(Audit::On)
}

#[test]
fn figure1_example_audits_clean() {
    let t1 = fixture("fig1_old.sexpr");
    let t2 = fixture("fig1_new.sexpr");
    let res = audited().diff(&t1, &t2).unwrap();
    let report = res.audit.expect("audit was requested");
    assert!(report.is_clean(), "{report}");
    assert!(report.checks_run > 0);
}

#[test]
fn figure4_example_audits_clean() {
    let t1 = fixture("fig4_old.sexpr");
    let t2 = fixture("fig4_new.sexpr");
    for prune in [false, true] {
        let res = audited().prune(prune).diff(&t1, &t2).unwrap();
        let report = res.audit.expect("audit was requested");
        assert!(report.is_clean(), "prune={prune}: {report}");
    }
}

#[test]
fn workload_document_audits_clean() {
    // A ~2k-node document through the full audited pipeline, pruned and
    // unpruned. (The 10k-node + overhead measurement lives in the release
    // bench `audit_overhead`; this keeps the tier-1 suite fast.)
    let profile = DocProfile {
        sections: 90,
        ..DocProfile::default()
    };
    let t1 = generate_document(42, &profile);
    let (t2, _) = perturb(&t1, 7, 60, &EditMix::revision(), &profile);
    assert!(t1.len() > 1_500, "profile produced only {} nodes", t1.len());
    for prune in [false, true] {
        let res = audited().prune(prune).diff(&t1, &t2).unwrap();
        let report = res.audit.expect("audit was requested");
        assert!(report.is_clean(), "prune={prune}: {report}");
        assert!(report.checks_run > t1.len(), "per-node checks ran");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any (seed, edit count, mix) the workload generator can produce runs
    /// the audited pipeline without a single finding.
    #[test]
    fn random_documents_audit_clean(
        seed in 0u64..1_000,
        edits in 0usize..40,
        mix_sel in 0u8..4,
        prune in any::<bool>(),
    ) {
        let profile = DocProfile::small();
        let mix = match mix_sel {
            0 => EditMix::default(),
            1 => EditMix::revision(),
            2 => EditMix::updates_only(),
            _ => EditMix::moves_only(),
        };
        let t1 = generate_document(seed, &profile);
        let (t2, _) = perturb(&t1, seed.wrapping_add(1), edits, &mix, &profile);
        let res = audited().prune(prune).diff(&t1, &t2).unwrap();
        let report = res.audit.expect("audit was requested");
        prop_assert!(report.is_clean(), "seed={seed} edits={edits}: {report}");
    }

    /// Unmatched-root inputs (label-renamed roots) exercise the
    /// dummy-wrapping path end to end, audited.
    #[test]
    fn renamed_root_documents_audit_clean(seed in 0u64..200) {
        let profile = DocProfile::small();
        let t1 = generate_document(seed, &profile);
        let (t2s, _) = perturb(&t1, seed ^ 0x9e37, 5, &EditMix::default(), &profile);
        // Re-root T2 under a different label so the roots cannot match.
        let mut t2 = hierdiff_tree::Tree::new(
            hierdiff_tree::Label::intern("OtherDoc"),
            hierdiff_doc::DocValue::None,
        );
        let root = t2.root();
        graft(&mut t2, root, &t2s, t2s.root());
        let res = audited().diff(&t1, &t2).unwrap();
        prop_assert!(res.mces.wrapped);
        let report = res.audit.expect("audit was requested");
        prop_assert!(report.is_clean(), "seed={seed}: {report}");
    }
}

/// Copies the children of `src_node` (not the node itself) under `dst_node`.
fn graft(
    dst: &mut hierdiff_tree::Tree<hierdiff_doc::DocValue>,
    dst_node: hierdiff_tree::NodeId,
    src: &hierdiff_tree::Tree<hierdiff_doc::DocValue>,
    src_node: hierdiff_tree::NodeId,
) {
    for &c in src.children(src_node) {
        let id = dst.push_child(dst_node, src.label(c), src.value(c).clone());
        graft(dst, id, src, c);
    }
}
