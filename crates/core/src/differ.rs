//! The [`Differ`] builder facade — the one supported entry point into the
//! change-detection pipeline.
//!
//! The paper's pipeline has a handful of orthogonal knobs (matching
//! strategy, criteria thresholds, auditing, delta construction) plus the
//! observability layer of this workspace. [`Differ`] gathers them behind a
//! fluent builder so single-pair, observed, profiled, and batch runs all
//! start from the same expression:
//!
//! ```
//! use hierdiff_core::{Audit, Differ};
//! use hierdiff_tree::Tree;
//!
//! let old = Tree::parse_sexpr(r#"(D (S "a") (S "b"))"#).unwrap();
//! let new = Tree::parse_sexpr(r#"(D (S "b") (S "a"))"#).unwrap();
//!
//! let result = Differ::new()
//!     .prune(true)
//!     .audit(Audit::Debug)
//!     .profile(true)
//!     .diff(&old, &new)
//!     .unwrap();
//! let profile = result.profile.as_ref().unwrap();
//! assert!(profile.counter("nodes_pruned") > 0, "identical leaves pruned");
//! assert!(profile.phase("match").is_some(), "match phase was timed");
//! ```
//!
//! The matching algorithm is pluggable via
//! [`MatchStrategy`](crate::MatchStrategy):
//!
//! ```
//! use hierdiff_core::{Differ, GumTreeParams, MatchStrategy};
//! # use hierdiff_tree::Tree;
//! # let old = Tree::parse_sexpr(r#"(D (S "a"))"#).unwrap();
//! # let new = Tree::parse_sexpr(r#"(D (S "b"))"#).unwrap();
//! let result = Differ::new()
//!     .strategy(MatchStrategy::GumTree(
//!         GumTreeParams::default().with_sim_threshold(0.3),
//!     ))
//!     .diff(&old, &new)
//!     .unwrap();
//! ```

use std::num::NonZeroUsize;

use hierdiff_edit::Matching;
use hierdiff_matching::MatchParams;
use hierdiff_obs::{PipelineObserver, Recorder, Tee};
use hierdiff_tree::{NodeValue, Tree};

use crate::batch::{diff_batch_inner, BatchOptions, BatchRun};
use crate::{audit_default, diff_observed, DiffError, DiffResult, MatchStrategy, PipelineConfig};

/// Stage-boundary invariant auditing policy for [`Differ::audit`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Audit {
    /// Never audit.
    Off,
    /// Always audit, in every build profile.
    On,
    /// The build-profile default: audit under debug assertions (or the
    /// `audit-release` feature), skip in plain release builds.
    #[default]
    Debug,
}

impl Audit {
    /// Resolves the policy to a concrete on/off for this build.
    pub fn enabled(self) -> bool {
        match self {
            Audit::Off => false,
            Audit::On => true,
            Audit::Debug => audit_default(),
        }
    }
}

/// Builder facade over the diff pipeline. Construct with [`Differ::new`],
/// chain option setters, and finish with [`diff`](Differ::diff),
/// [`diff_batch`](Differ::diff_batch), or
/// [`diff_batch_with`](Differ::diff_batch_with).
///
/// All setters are order-independent, except that strategy-scoped knobs
/// ([`prune`](Differ::prune)) configure the *current* strategy — select
/// the strategy first when combining them.
pub struct Differ<'o> {
    config: PipelineConfig,
    observer: Option<&'o mut dyn PipelineObserver>,
    profile: bool,
    workers: Option<NonZeroUsize>,
    retry: hierdiff_guard::RetryPolicy,
}

impl Default for Differ<'static> {
    fn default() -> Differ<'static> {
        Differ::new()
    }
}

impl Differ<'static> {
    /// A differ with the default pipeline (FastMatch, delta tree on, audit
    /// per build profile).
    pub fn new() -> Differ<'static> {
        Differ {
            config: PipelineConfig::default(),
            observer: None,
            profile: false,
            workers: None,
            retry: hierdiff_guard::RetryPolicy::default(),
        }
    }
}

impl<'o> Differ<'o> {
    /// Sets the matching criteria parameters `f` and `t` (Section 5.1).
    /// Used by the FastMatch and Simple strategies; GumTree has its own
    /// parameters on its [`MatchStrategy::GumTree`] variant.
    pub fn params(mut self, params: MatchParams) -> Differ<'o> {
        self.config.params = params;
        self
    }

    /// Selects the matching strategy (FastMatch by default). Each variant
    /// carries its own configuration — see [`MatchStrategy`].
    pub fn strategy(mut self, strategy: MatchStrategy) -> Differ<'o> {
        self.config.strategy = strategy;
        self
    }

    /// Uses a caller-provided matching and skips the Good Matching phase
    /// (key-based domains). Shorthand for
    /// `strategy(MatchStrategy::Provided(matching))`.
    pub fn matching(mut self, matching: Matching) -> Differ<'o> {
        self.config.strategy = MatchStrategy::Provided(matching);
        self
    }

    /// Toggles the Section 8 post-processing pass after matching.
    pub fn postprocess(mut self, postprocess: bool) -> Differ<'o> {
        self.config.postprocess = postprocess;
        self
    }

    /// Toggles delta-tree construction (Section 6). On by default.
    pub fn delta(mut self, delta: bool) -> Differ<'o> {
        self.config.build_delta = delta;
        self
    }

    /// Toggles the identical-subtree pruning pre-pass of the FastMatch
    /// strategy ([`FastMatchConfig::prune`](crate::FastMatchConfig)).
    /// A no-op under any other strategy (GumTree's top-down phase already
    /// anchors identical subtrees wholesale).
    pub fn prune(mut self, prune: bool) -> Differ<'o> {
        if let MatchStrategy::FastMatch(config) = &mut self.config.strategy {
            config.prune = prune;
        }
        self
    }

    /// Provides a pre-computed pruning seed for the FastMatch strategy:
    /// wholesale-matched pairs the matcher starts from, replacing the
    /// in-pipeline identical-subtree pre-pass. Intended for callers that
    /// maintain [`FingerprintIndex`](hierdiff_tree::FingerprintIndex)es
    /// across runs (e.g. a serving layer pruning along a version chain
    /// with `prune_identical_indexed`). The seed is audited downstream as
    /// seed ⊆ matching; ignored by non-FastMatch strategies.
    pub fn prune_seed(mut self, seed: Matching) -> Differ<'o> {
        self.config.prune_seed = Some(seed);
        self
    }

    /// Sets the stage-boundary invariant auditing policy.
    pub fn audit(mut self, audit: Audit) -> Differ<'o> {
        self.config.audit = audit.enabled();
        self
    }

    /// Sets the batch retry schedule for pairs a panicked worker never
    /// delivered (default: one retry on the calling thread, the
    /// historical behavior). Pairs that exhaust the policy surface as
    /// [`DiffError::RetryExhausted`](crate::DiffError::RetryExhausted);
    /// pairs abandoned because the cancel token fired mid-retry surface
    /// as [`DiffError::Cancelled`](crate::DiffError::Cancelled). Ignored
    /// by single-pair [`diff`](Differ::diff).
    pub fn retry(mut self, retry: hierdiff_guard::RetryPolicy) -> Differ<'o> {
        self.retry = retry;
        self
    }

    /// Sets resource budgets for the run (`max_nodes`, `max_lcs_cells`,
    /// `max_wall_time`, `max_memory_estimate`). Applies to batch runs too:
    /// each pair gets its own guard over the same ceilings.
    pub fn budget(mut self, budgets: hierdiff_guard::Budgets) -> Differ<'o> {
        self.config.budgets = budgets;
        self
    }

    /// Attaches a cancellation token (stored as a clone; firing the
    /// caller's copy cancels in-flight [`diff`](Differ::diff) runs and
    /// every pair of a batch).
    pub fn cancel(mut self, token: &hierdiff_guard::CancelToken) -> Differ<'o> {
        self.config.cancel = Some(token.clone());
        self
    }

    /// Requests a recorded [`DiffProfile`](hierdiff_obs::DiffProfile):
    /// single diffs fill [`DiffResult::profile`], batch runs fill
    /// [`BatchReport::profiles`](crate::BatchReport::profiles) per worker.
    pub fn profile(mut self, profile: bool) -> Differ<'o> {
        self.profile = profile;
        self
    }

    /// Forces the batch worker-thread count (defaults to
    /// `available_parallelism`). Ignored by single-pair [`diff`](Differ::diff).
    pub fn workers(mut self, workers: usize) -> Differ<'o> {
        self.workers = NonZeroUsize::new(workers);
        self
    }

    /// Attaches a pipeline observer that receives phase spans and work
    /// counters during [`diff`](Differ::diff). Observers are not threaded
    /// into batch runs (they are not `Sync`); use
    /// [`profile`](Differ::profile) there instead.
    pub fn observer<'b>(self, observer: &'b mut dyn PipelineObserver) -> Differ<'b>
    where
        'o: 'b,
    {
        Differ {
            config: self.config,
            observer: Some(observer),
            profile: self.profile,
            workers: self.workers,
            retry: self.retry,
        }
    }

    /// Runs the pipeline on one `(old, new)` pair.
    pub fn diff<V: NodeValue>(
        self,
        old: &Tree<V>,
        new: &Tree<V>,
    ) -> Result<DiffResult<V>, DiffError> {
        let Differ {
            config,
            observer,
            profile,
            ..
        } = self;
        if profile {
            let mut recorder = Recorder::new();
            let result = match observer {
                Some(user) => {
                    let mut tee = Tee::new(user, &mut recorder);
                    diff_observed(old, new, &config, Some(&mut tee))
                }
                None => diff_observed(old, new, &config, Some(&mut recorder)),
            };
            result.map(|mut r| {
                r.profile = Some(recorder.profile());
                r
            })
        } else {
            diff_observed(old, new, &config, observer.map(|o| o as _))
        }
    }

    /// Diffs every pair concurrently on work-stealing workers, collecting
    /// results in input order alongside the scheduling report. Slots a
    /// panicked worker never delivered carry
    /// [`DiffError::WorkerPanicked`].
    pub fn diff_batch<V: NodeValue + Send + Sync>(
        self,
        pairs: &[(&Tree<V>, &Tree<V>)],
    ) -> BatchRun<V> {
        crate::batch::diff_batch_run(pairs, &self.batch_options())
    }

    /// Diffs every pair concurrently, streaming each result to `sink` as
    /// it completes (with the pair's input index). Returns the scheduling
    /// report; worker panics surface as [`DiffError::WorkerPanicked`] in
    /// the report's [`failures`](crate::BatchReport::failures).
    pub fn diff_batch_with<V, F>(
        self,
        pairs: &[(&Tree<V>, &Tree<V>)],
        sink: F,
    ) -> crate::BatchReport
    where
        V: NodeValue + Send + Sync,
        F: FnMut(usize, Result<DiffResult<V>, DiffError>) + Send,
    {
        diff_batch_inner(pairs, &self.batch_options(), sink)
    }

    fn batch_options(&self) -> BatchOptions {
        BatchOptions {
            diff: self.config.clone(),
            workers: self.workers,
            profile: self.profile,
            retry: self.retry,
        }
    }
}
