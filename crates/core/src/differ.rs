//! The [`Differ`] builder facade — the one supported entry point into the
//! change-detection pipeline.
//!
//! The paper's pipeline has a handful of orthogonal knobs (matcher choice,
//! criteria thresholds, pruning, auditing, delta construction) plus the
//! observability layer of this workspace. [`Differ`] gathers them behind a
//! fluent builder so single-pair, observed, profiled, and batch runs all
//! start from the same expression:
//!
//! ```
//! use hierdiff_core::{Audit, Differ};
//! use hierdiff_tree::Tree;
//!
//! let old = Tree::parse_sexpr(r#"(D (S "a") (S "b"))"#).unwrap();
//! let new = Tree::parse_sexpr(r#"(D (S "b") (S "a"))"#).unwrap();
//!
//! let result = Differ::new()
//!     .prune(true)
//!     .audit(Audit::Debug)
//!     .profile(true)
//!     .diff(&old, &new)
//!     .unwrap();
//! let profile = result.profile.as_ref().unwrap();
//! assert!(profile.counter("nodes_pruned") > 0, "identical leaves pruned");
//! assert!(profile.phase("match").is_some(), "match phase was timed");
//! ```

use std::num::NonZeroUsize;

use hierdiff_edit::Matching;
use hierdiff_matching::MatchParams;
use hierdiff_obs::{PipelineObserver, Recorder, Tee};
use hierdiff_tree::{NodeValue, Tree};

use crate::batch::{diff_batch_inner, BatchRun};
use crate::{
    audit_default, diff_observed, BatchOptions, DiffError, DiffOptions, DiffResult, Matcher,
};

/// Stage-boundary invariant auditing policy for [`Differ::audit`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Audit {
    /// Never audit.
    Off,
    /// Always audit, in every build profile.
    On,
    /// The build-profile default: audit under debug assertions (or the
    /// `audit-release` feature), skip in plain release builds.
    #[default]
    Debug,
}

impl Audit {
    /// Resolves the policy to a concrete on/off for this build.
    pub fn enabled(self) -> bool {
        match self {
            Audit::Off => false,
            Audit::On => true,
            Audit::Debug => audit_default(),
        }
    }
}

/// Builder facade over the diff pipeline. Construct with [`Differ::new`],
/// chain option setters, and finish with [`diff`](Differ::diff),
/// [`diff_batch`](Differ::diff_batch), or
/// [`diff_batch_with`](Differ::diff_batch_with).
///
/// All setters are order-independent. The free function
/// [`diff`](crate::diff) and the raw [`DiffOptions`] struct remain as the
/// compatibility surface; this facade subsumes them.
pub struct Differ<'o> {
    options: DiffOptions,
    observer: Option<&'o mut dyn PipelineObserver>,
    profile: bool,
    workers: Option<NonZeroUsize>,
}

impl Default for Differ<'static> {
    fn default() -> Differ<'static> {
        Differ::new()
    }
}

impl Differ<'static> {
    /// A differ with the default options of [`DiffOptions::new`]
    /// (FastMatch, delta tree on, audit per build profile).
    pub fn new() -> Differ<'static> {
        Differ::from_options(DiffOptions::new())
    }

    /// A differ starting from pre-built options (the migration path for
    /// code that still assembles [`DiffOptions`] by hand).
    pub fn from_options(options: DiffOptions) -> Differ<'static> {
        Differ {
            options,
            observer: None,
            profile: false,
            workers: None,
        }
    }
}

impl<'o> Differ<'o> {
    /// Sets the matching criteria parameters `f` and `t` (Section 5.1).
    pub fn params(mut self, params: MatchParams) -> Differ<'o> {
        self.options.params = params;
        self
    }

    /// Selects the matching algorithm (FastMatch by default).
    pub fn matcher(mut self, matcher: Matcher) -> Differ<'o> {
        self.options.matcher = matcher;
        self
    }

    /// Uses a caller-provided matching and skips the Good Matching phase
    /// (key-based domains). Implies [`Matcher::Provided`].
    pub fn matching(mut self, matching: Matching) -> Differ<'o> {
        self.options = self.options.with_matching(matching);
        self
    }

    /// Toggles the Section 8 post-processing pass after matching.
    pub fn postprocess(mut self, postprocess: bool) -> Differ<'o> {
        self.options.postprocess = postprocess;
        self
    }

    /// Toggles delta-tree construction (Section 6). On by default.
    pub fn delta(mut self, delta: bool) -> Differ<'o> {
        self.options.build_delta = delta;
        self
    }

    /// Toggles the identical-subtree pruning pre-pass.
    pub fn prune(mut self, prune: bool) -> Differ<'o> {
        self.options.prune = prune;
        self
    }

    /// Sets the stage-boundary invariant auditing policy.
    pub fn audit(mut self, audit: Audit) -> Differ<'o> {
        self.options.audit = audit.enabled();
        self
    }

    /// Sets resource budgets for the run (`max_nodes`, `max_lcs_cells`,
    /// `max_wall_time`, `max_memory_estimate`). Applies to batch runs too:
    /// each pair gets its own guard over the same ceilings.
    pub fn budget(mut self, budgets: hierdiff_guard::Budgets) -> Differ<'o> {
        self.options.budgets = budgets;
        self
    }

    /// Attaches a cancellation token (stored as a clone; firing the
    /// caller's copy cancels in-flight [`diff`](Differ::diff) runs and
    /// every pair of a batch).
    pub fn cancel(mut self, token: &hierdiff_guard::CancelToken) -> Differ<'o> {
        self.options.cancel = Some(token.clone());
        self
    }

    /// Requests a recorded [`DiffProfile`](hierdiff_obs::DiffProfile):
    /// single diffs fill [`DiffResult::profile`], batch runs fill
    /// [`BatchReport::profiles`](crate::BatchReport::profiles) per worker.
    pub fn profile(mut self, profile: bool) -> Differ<'o> {
        self.profile = profile;
        self
    }

    /// Forces the batch worker-thread count (defaults to
    /// `available_parallelism`). Ignored by single-pair [`diff`](Differ::diff).
    pub fn workers(mut self, workers: usize) -> Differ<'o> {
        self.workers = NonZeroUsize::new(workers);
        self
    }

    /// Attaches a pipeline observer that receives phase spans and work
    /// counters during [`diff`](Differ::diff). Observers are not threaded
    /// into batch runs (they are not `Sync`); use
    /// [`profile`](Differ::profile) there instead.
    pub fn observer<'b>(self, observer: &'b mut dyn PipelineObserver) -> Differ<'b>
    where
        'o: 'b,
    {
        Differ {
            options: self.options,
            observer: Some(observer),
            profile: self.profile,
            workers: self.workers,
        }
    }

    /// The options this builder currently describes.
    pub fn options(&self) -> &DiffOptions {
        &self.options
    }

    /// Consumes the builder, yielding the raw [`DiffOptions`].
    pub fn into_options(self) -> DiffOptions {
        self.options
    }

    /// Runs the pipeline on one `(old, new)` pair.
    pub fn diff<V: NodeValue>(
        self,
        old: &Tree<V>,
        new: &Tree<V>,
    ) -> Result<DiffResult<V>, DiffError> {
        let Differ {
            options,
            observer,
            profile,
            ..
        } = self;
        if profile {
            let mut recorder = Recorder::new();
            let result = match observer {
                Some(user) => {
                    let mut tee = Tee::new(user, &mut recorder);
                    diff_observed(old, new, &options, Some(&mut tee))
                }
                None => diff_observed(old, new, &options, Some(&mut recorder)),
            };
            result.map(|mut r| {
                r.profile = Some(recorder.profile());
                r
            })
        } else {
            diff_observed(old, new, &options, observer.map(|o| o as _))
        }
    }

    /// Diffs every pair concurrently on work-stealing workers, collecting
    /// results in input order alongside the scheduling report. Slots a
    /// panicked worker never delivered carry
    /// [`DiffError::WorkerPanicked`].
    pub fn diff_batch<V: NodeValue + Send + Sync>(
        self,
        pairs: &[(&Tree<V>, &Tree<V>)],
    ) -> BatchRun<V> {
        crate::batch::diff_batch_run(pairs, &self.batch_options())
    }

    /// Diffs every pair concurrently, streaming each result to `sink` as
    /// it completes (with the pair's input index). Returns the scheduling
    /// report; worker panics surface as [`DiffError::WorkerPanicked`] in
    /// the report's [`failures`](crate::BatchReport::failures).
    pub fn diff_batch_with<V, F>(
        self,
        pairs: &[(&Tree<V>, &Tree<V>)],
        sink: F,
    ) -> crate::BatchReport
    where
        V: NodeValue + Send + Sync,
        F: FnMut(usize, Result<DiffResult<V>, DiffError>) + Send,
    {
        diff_batch_inner(pairs, &self.batch_options(), sink)
    }

    fn batch_options(&self) -> BatchOptions {
        let mut batch = BatchOptions::new(self.options.clone()).with_profile(self.profile);
        batch.workers = self.workers;
        batch
    }
}
