//! The paper's future-work item `A(k)` (Section 9): "a parameterized
//! algorithm A(k) where the parameter k specifies the desired level of
//! optimality" — trading running time for delta compactness.
//!
//! We realize the spectrum the paper sketches between its two endpoints:
//!
//! * `k = 0` — plain *FastMatch*: fastest, optimal only under Matching
//!   Criterion 3.
//! * `k = 1` — FastMatch + the Section 8 post-processing pass: repairs
//!   stray and swapped matches among siblings.
//! * `k ≥ 2` — additionally refine with the *exact* Zhang–Shasha mapping on
//!   every matched subtree pair of size ≤ `zs_budget(k)` that still
//!   contains unmatched nodes. This is the `[Zha95]` "best matching by
//!   post-processing the output of [ZS89]" idea, applied locally where it
//!   is affordable: ZS is quadratic, so the budget caps the damage while
//!   recovering optimality exactly where FastMatch went wrong.

use hierdiff_audit::{audit_matching, AuditReport};
use hierdiff_edit::Matching;
use hierdiff_matching::{fast_match, postprocess, MatchCounters, MatchError, MatchParams};
use hierdiff_tree::{NodeId, NodeValue, Tree};
use hierdiff_zs::{tree_mapping, UnitCost};

/// Result of [`match_with_optimality`].
pub struct HybridMatch {
    /// The refined matching.
    pub matching: Matching,
    /// FastMatch's comparison counters.
    pub counters: MatchCounters,
    /// Nodes re-matched by the post-processing pass (`k ≥ 1`).
    pub rematched: usize,
    /// Pairs adopted from local ZS refinements (`k ≥ 2`).
    pub zs_adopted: usize,
    /// Number of subtree pairs ZS was run on.
    pub zs_runs: usize,
    /// Validity audit of the refined matching (ZS adoption must preserve
    /// the §3.1 matching invariants), when the build-profile default
    /// enables auditing. Always clean unless the refinement has a bug.
    pub audit: Option<AuditReport>,
}

/// Maximum subtree size (nodes per side) the ZS refinement will touch at
/// level `k`: doubles per level above 2, starting at 16.
pub fn zs_budget(k: u32) -> usize {
    if k < 2 {
        0
    } else {
        16usize.saturating_mul(1 << (k - 2).min(12))
    }
}

/// The `A(k)` matcher (see module docs).
pub fn match_with_optimality<V: NodeValue>(
    t1: &Tree<V>,
    t2: &Tree<V>,
    params: MatchParams,
    k: u32,
) -> Result<HybridMatch, MatchError> {
    let base = fast_match(t1, t2, params)?;
    let mut matching = base.matching;
    let mut rematched = 0;
    if k >= 1 {
        rematched = postprocess(t1, t2, params, &mut matching)?;
    }
    let mut zs_adopted = 0;
    let mut zs_runs = 0;
    if k >= 2 {
        let budget = zs_budget(k);
        // Candidate regions: matched internal pairs whose subtrees are
        // small and still contain unmatched nodes on either side.
        let candidates: Vec<(NodeId, NodeId)> = matching
            .iter()
            .filter(|&(x, y)| !t1.is_leaf(x) || !t2.is_leaf(y))
            .collect();
        for (x, y) in candidates {
            let s1 = t1.subtree_size(x);
            let s2 = t2.subtree_size(y);
            if s1 > budget || s2 > budget {
                continue;
            }
            let unmatched1 = t1.descendants(x).any(|d| matching.partner1(d).is_none());
            let unmatched2 = t2.descendants(y).any(|d| matching.partner2(d).is_none());
            if !unmatched1 && !unmatched2 {
                continue;
            }
            // Exact mapping on the extracted subtree pair.
            let (sub1, map1) = t1.extract_subtree(x);
            let (sub2, map2) = t2.extract_subtree(y);
            zs_runs += 1;
            let zs = tree_mapping(&sub1, &sub2, &UnitCost);
            for (a, b) in zs.iter() {
                let orig1 = map1[a.index()];
                let orig2 = map2[b.index()];
                if t1.label(orig1) != t2.label(orig2) {
                    continue; // the paper's ops cannot relabel
                }
                if matching.partner1(orig1).is_none()
                    && matching.partner2(orig2).is_none()
                    && matching.insert(orig1, orig2).is_ok()
                {
                    zs_adopted += 1;
                }
            }
        }
    }
    let audit = crate::audit_default().then(|| audit_matching(t1, t2, &matching));
    Ok(HybridMatch {
        matching,
        counters: base.counters,
        rematched,
        zs_adopted,
        zs_runs,
        audit,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierdiff_edit::{edit_script, CostModel};
    use hierdiff_tree::Tree;

    fn doc(s: &str) -> Tree<String> {
        Tree::parse_sexpr(s).unwrap()
    }

    #[test]
    fn budget_schedule() {
        assert_eq!(zs_budget(0), 0);
        assert_eq!(zs_budget(1), 0);
        assert_eq!(zs_budget(2), 16);
        assert_eq!(zs_budget(3), 32);
        assert_eq!(zs_budget(4), 64);
    }

    #[test]
    fn k0_equals_fastmatch() {
        let t1 = doc(r#"(D (P (S "a") (S "b")) (P (S "c")))"#);
        let t2 = doc(r#"(D (P (S "c")) (P (S "a") (S "b")))"#);
        let h = match_with_optimality(&t1, &t2, MatchParams::default(), 0).unwrap();
        let f = hierdiff_matching::fast_match(&t1, &t2, MatchParams::default()).unwrap();
        assert_eq!(h.matching.len(), f.matching.len());
        assert_eq!(h.rematched, 0);
        assert_eq!(h.zs_runs, 0);
    }

    /// FastMatch leaves heavily reworded sentences unmatched (compare > f);
    /// the ZS refinement pairs them exactly, shortening the script.
    #[test]
    fn zs_refinement_recovers_reworded_leaves() {
        // Sentences rewritten beyond the f = 0.5 bar but structurally in
        // place: FastMatch (String compare is exact) can't match them.
        let t1 = doc(
            r#"(D (P (S "anchor one") (S "totally original phrasing here") (S "anchor two")))"#,
        );
        let t2 = doc(
            r#"(D (P (S "anchor one") (S "completely different wording now") (S "anchor two")))"#,
        );
        let fast = match_with_optimality(&t1, &t2, MatchParams::default(), 0).unwrap();
        let refined = match_with_optimality(&t1, &t2, MatchParams::default(), 2).unwrap();
        assert!(refined.matching.len() > fast.matching.len());
        assert!(refined.zs_adopted >= 1);

        // The refined matching yields a cheaper-or-equal script: one update
        // (cost 2 under exact compare) vs delete+insert (cost 2)... under
        // unit ops the *count* shrinks from 2 ops to 1.
        let r_fast = edit_script(&t1, &t2, &fast.matching).unwrap();
        let r_ref = edit_script(&t1, &t2, &refined.matching).unwrap();
        assert!(
            r_ref.script.len() < r_fast.script.len(),
            "{} !< {}",
            r_ref.script.len(),
            r_fast.script.len()
        );
        let c_fast = r_fast.cost_on(&t1, &CostModel::paper()).unwrap();
        let c_ref = r_ref.cost_on(&t1, &CostModel::paper()).unwrap();
        assert!(c_ref <= c_fast);
    }

    #[test]
    fn budget_gates_zs_runs() {
        // A big subtree (> 16 nodes per side) is skipped at k = 2.
        let body: Vec<String> = (0..30).map(|i| format!("(S \"u{i}\")")).collect();
        let t1 = doc(&format!(
            "(D (P {} (S \"changed a lot once\")))",
            body.join(" ")
        ));
        let t2 = doc(&format!(
            "(D (P {} (S \"rewritten fully now\")))",
            body.join(" ")
        ));
        let k2 = match_with_optimality(&t1, &t2, MatchParams::default(), 2).unwrap();
        assert_eq!(k2.zs_runs, 0, "31-node paragraph exceeds the k=2 budget");
        let k4 = match_with_optimality(&t1, &t2, MatchParams::default(), 4).unwrap();
        assert!(k4.zs_runs > 0);
        assert!(k4.zs_adopted >= 1);
    }

    #[test]
    fn refinement_never_shrinks_matching() {
        let t1 = doc(r#"(D (P (S "a") (S "x1")) (P (S "b") (S "x2")))"#);
        let t2 = doc(r#"(D (P (S "a") (S "y1")) (P (S "b") (S "y2")))"#);
        let mut last = 0;
        for k in 0..4 {
            let h = match_with_optimality(&t1, &t2, MatchParams::default(), k).unwrap();
            assert!(h.matching.len() >= last, "k={k}");
            last = h.matching.len();
        }
    }
}
