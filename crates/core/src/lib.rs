//! # hierdiff-core
//!
//! The high-level change-detection API for hierarchically structured
//! information — a Rust reproduction of *Chawathe, Rajaraman,
//! Garcia-Molina, Widom: "Change Detection in Hierarchically Structured
//! Information" (SIGMOD 1996)*.
//!
//! The paper splits change detection into two subproblems (Section 3):
//!
//! 1. **Good Matching** — find the correspondence between the nodes of the
//!    old and new trees. This stage is pluggable via [`MatchStrategy`]:
//!    the paper's Algorithms *Match* and *FastMatch* (Figures 10–11, in
//!    `hierdiff-matching`), a GumTree-style greedy matcher with bounded
//!    Zhang–Shasha recovery, or a caller-provided matching;
//! 2. **Minimum Conforming Edit Script** — given the matching, produce the
//!    cheapest insert/delete/update/move script transforming the old tree
//!    into the new (`hierdiff-edit`: Algorithm *EditScript*, Figures 8–9).
//!
//! The [`Differ`] facade runs both, plus the delta-tree construction of
//! Section 6:
//!
//! ```
//! use hierdiff_core::Differ;
//! use hierdiff_tree::Tree;
//!
//! let old = Tree::parse_sexpr(r#"(D (P (S "a") (S "b")) (P (S "c")))"#).unwrap();
//! let new = Tree::parse_sexpr(r#"(D (P (S "c")) (P (S "a") (S "b")))"#).unwrap();
//!
//! let result = Differ::new().diff(&old, &new).unwrap();
//! assert_eq!(result.script.len(), 1); // the paragraphs swapped: one move
//! println!("{}", result.script);      // MOV(n2, n0, 2)
//! ```
//!
//! Swapping the matching algorithm is one builder call — the edit-script
//! stage downstream is strategy-agnostic:
//!
//! ```
//! use hierdiff_core::{Differ, MatchStrategy};
//! # use hierdiff_tree::Tree;
//! # let old = Tree::parse_sexpr(r#"(D (S "a"))"#).unwrap();
//! # let new = Tree::parse_sexpr(r#"(D (S "b"))"#).unwrap();
//! let result = Differ::new()
//!     .strategy(MatchStrategy::gumtree())
//!     .diff(&old, &new)
//!     .unwrap();
//! ```
//!
//! Observability: attach a [`hierdiff_obs::PipelineObserver`] with
//! [`Differ::observer`] to receive phase spans and paper-cost work
//! counters, or call [`Differ::profile`] to get a structured
//! [`DiffProfile`](hierdiff_obs::DiffProfile) on the result.
//!
//! For structured *documents* (LaTeX/HTML text in, marked-up text out), use
//! the `hierdiff-doc` crate's `ladiff` pipeline, which layers parsing and
//! Table 2 markup on top of this API.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod differ;
mod hybrid;
mod strategy;

pub use batch::{BatchReport, BatchRun, WorkerStats};
pub use differ::{Audit, Differ};
pub use hierdiff_obs::{
    Counter, DiffProfile, NullObserver, Phase, PipelineObserver, Recorder, Tee,
};
pub use hybrid::{match_with_optimality, zs_budget, HybridMatch};
pub use strategy::{FastMatchConfig, MatchStrategy};

pub use hierdiff_audit::AuditReport;
use hierdiff_audit::{audit_delta, audit_matching, audit_prune, audit_script, audit_tree, Side};
use hierdiff_delta::{build_delta_tree, DeltaTree};
use hierdiff_edit::{
    edit_script_guarded, EditScript, EditScriptError, Matching, McesError, McesResult,
};
use hierdiff_guard::Guard;
pub use hierdiff_guard::{
    Budget, Budgets, CancelToken, ChaosObserver, Fault, GuardError, RetryPolicy,
};
pub use hierdiff_matching::{GumTreeParams, MatchError};
use hierdiff_matching::{MatchCounters, MatchParams};
use hierdiff_tree::{NodeValue, Tree};

pub use hierdiff_matching::MatchParams as Params;

use crate::strategy::run_strategy;

/// Whether stage-boundary auditing is on by default: always under debug
/// assertions, and in release builds only with the `audit-release` feature.
pub(crate) fn audit_default() -> bool {
    cfg!(debug_assertions) || cfg!(feature = "audit-release")
}

/// The resolved pipeline configuration assembled by the [`Differ`]
/// builder — the one bag of knobs `diff_observed` runs from.
#[derive(Clone, Debug)]
pub(crate) struct PipelineConfig {
    /// Matching criteria parameters `f` and `t` (Section 5.1), used by the
    /// FastMatch and Simple strategies.
    pub params: MatchParams,
    /// Which matching strategy to run.
    pub strategy: MatchStrategy,
    /// Run the Section 8 post-processing pass after matching.
    pub postprocess: bool,
    /// Also build the delta tree (Section 6).
    pub build_delta: bool,
    /// Audit the paper's formal invariants at every stage boundary.
    pub audit: bool,
    /// Resource budgets for the run.
    pub budgets: Budgets,
    /// Cooperative cancellation token.
    pub cancel: Option<CancelToken>,
    /// A caller-provided pruning seed for the FastMatch strategy
    /// ([`Differ::prune_seed`]): wholesale-matched pairs computed outside
    /// the pipeline (e.g. from cached fingerprint indexes along a version
    /// chain). Replaces the in-pipeline pruning pre-pass; ignored by the
    /// other strategies.
    pub prune_seed: Option<Matching>,
}

impl Default for PipelineConfig {
    fn default() -> PipelineConfig {
        PipelineConfig {
            params: MatchParams::default(),
            strategy: MatchStrategy::default(),
            postprocess: false,
            build_delta: true,
            audit: audit_default(),
            budgets: Budgets::unlimited(),
            cancel: None,
            prune_seed: None,
        }
    }
}

/// Errors from the diff pipeline ([`Differ::diff`] and friends).
///
/// Marked `#[non_exhaustive]`: downstream matches must carry a wildcard
/// arm, so new failure modes can be surfaced without a breaking change.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DiffError {
    /// [`MatchStrategy::Provided`] selected for a batch run — a single
    /// provided matching cannot describe multiple pairs.
    MissingProvidedMatching,
    /// The edit-script generator rejected the matching.
    Mces(McesError),
    /// Stage-boundary auditing found `Error`-severity invariant violations
    /// (only raised when [`Differ::audit`] is on).
    Audit(Box<AuditReport>),
    /// A batch worker thread panicked; pairs it had not streamed yet carry
    /// this error instead of a result. The payload is the worker index.
    WorkerPanicked(usize),
    /// The run's [`CancelToken`] fired ([`Differ::cancel`]).
    Cancelled,
    /// A resource budget with no degraded tier ran out; the payload names
    /// the exhausted dimension ([`Differ::budget`]).
    BudgetExhausted(Budget),
    /// The matcher rejected the inputs (label-schema cycle) or tripped an
    /// internal invariant. Guard trips inside the matcher surface as
    /// [`DiffError::Cancelled`] / [`DiffError::BudgetExhausted`] instead.
    Match(MatchError),
    /// Every attempt allowed by the batch [`RetryPolicy`]
    /// ([`Differ::retry`]) panicked; the payload is the number of retry
    /// attempts that were made for the pair.
    RetryExhausted(u32),
}

impl std::fmt::Display for DiffError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiffError::MissingProvidedMatching => {
                write!(
                    f,
                    "MatchStrategy::Provided cannot describe a batch of pairs"
                )
            }
            DiffError::Mces(e) => write!(f, "edit script generation failed: {e}"),
            DiffError::Audit(report) => write!(
                f,
                "invariant audit failed with {} error(s):\n{report}",
                report.error_count()
            ),
            DiffError::WorkerPanicked(worker) => {
                write!(f, "batch worker {worker} panicked")
            }
            DiffError::Cancelled => write!(f, "diff cancelled"),
            DiffError::BudgetExhausted(b) => write!(f, "budget exhausted: {b}"),
            DiffError::Match(e) => write!(f, "matching failed: {e}"),
            DiffError::RetryExhausted(attempts) => {
                write!(f, "all {attempts} retry attempt(s) panicked")
            }
        }
    }
}

impl std::error::Error for DiffError {}

impl From<McesError> for DiffError {
    fn from(e: McesError) -> DiffError {
        DiffError::Mces(e)
    }
}

impl From<GuardError> for DiffError {
    fn from(e: GuardError) -> DiffError {
        match e {
            GuardError::Cancelled => DiffError::Cancelled,
            GuardError::Budget(b) => DiffError::BudgetExhausted(b),
        }
    }
}

impl From<MatchError> for DiffError {
    fn from(e: MatchError) -> DiffError {
        match e {
            // Governance trips keep their established surface forms.
            MatchError::Guard(g) => g.into(),
            other => DiffError::Match(other),
        }
    }
}

impl From<EditScriptError> for DiffError {
    fn from(e: EditScriptError) -> DiffError {
        match e {
            EditScriptError::Mces(m) => DiffError::Mces(m),
            EditScriptError::Guard(g) => g.into(),
        }
    }
}

/// Which degraded tiers a budget-limited run fell back to. A degraded
/// result is still *correct* — the script conforms to the matching and
/// replays `T1` into a tree isomorphic to `T2` (Section 3.2), and the
/// stage-boundary audit still passes — but it is not guaranteed minimal
/// (Lemma C.1 needs the full LCS passes).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Degraded {
    /// FastMatch exhausted `max_lcs_cells`; the bounded greedy matcher
    /// produced the (valid, possibly non-maximal) matching instead.
    pub matching: bool,
    /// *AlignChildren* exhausted `max_lcs_cells`; misaligned children were
    /// moved one-by-one instead of around an LCS anchor set.
    pub alignment: bool,
}

impl Degraded {
    /// Whether any tier degraded.
    pub fn any(&self) -> bool {
        self.matching || self.alignment
    }
}

/// The full result of change detection between two trees.
#[derive(Debug)]
pub struct DiffResult<V: NodeValue> {
    /// The (partial) matching fed into edit-script generation.
    pub matching: Matching,
    /// The minimum conforming edit script.
    pub script: EditScript<V>,
    /// The raw edit-script generation result (total matching, edited tree,
    /// instrumentation).
    pub mces: McesResult<V>,
    /// The delta tree (Section 6), if requested.
    pub delta: Option<DeltaTree<V>>,
    /// Matching comparison counters (zero when a matching was provided).
    pub counters: MatchCounters,
    /// Nodes re-matched by post-processing (0 when disabled).
    pub rematched: usize,
    /// The stage-boundary audit report, when [`Differ::audit`] is on.
    /// Contains no errors (those abort with [`DiffError::Audit`]) but may
    /// carry warnings, e.g. an ancestor-order inversion (`A014`).
    pub audit: Option<AuditReport>,
    /// The recorded pipeline profile, when requested via
    /// [`Differ::profile`]. `None` otherwise.
    pub profile: Option<hierdiff_obs::DiffProfile>,
    /// Which degraded tiers this run fell back to (all-false on an
    /// ungoverned or within-budget run).
    pub degraded: Degraded,
}

impl<V: NodeValue> DiffResult<V> {
    /// The unweighted edit distance `d` (operation count).
    pub fn unweighted_distance(&self) -> usize {
        self.script.len()
    }

    /// The weighted edit distance `e` (Section 5.3).
    pub fn weighted_distance(&self) -> usize {
        self.mces.stats.weighted_distance
    }
}

/// Opens a span for `phase` on the observer, if one is attached.
pub(crate) fn span_start(obs: &mut Option<&mut dyn hierdiff_obs::PipelineObserver>, phase: Phase) {
    if let Some(o) = obs.as_mut() {
        o.phase_start(phase);
    }
}

/// Closes the span for `phase` on the observer, if one is attached.
pub(crate) fn span_end(obs: &mut Option<&mut dyn hierdiff_obs::PipelineObserver>, phase: Phase) {
    if let Some(o) = obs.as_mut() {
        o.phase_end(phase);
    }
}

/// Bulk-flushes the matching-phase counters to the observer.
pub(crate) fn flush_match_counters(
    obs: &mut dyn hierdiff_obs::PipelineObserver,
    c: &MatchCounters,
) {
    obs.add(Counter::LeafCompares, c.leaf_compares as u64);
    obs.add(Counter::PartnerChecks, c.partner_checks as u64);
    obs.add(Counter::InternalCompares, c.internal_compares as u64);
    obs.add(Counter::ChainScans, c.chain_scans as u64);
    obs.add(Counter::LcsCells, c.lcs_cells);
    obs.add(Counter::MatchCandidates, c.match_candidates as u64);
}

/// Bulk-flushes the edit-script statistics to the observer.
fn flush_mces_stats(obs: &mut dyn hierdiff_obs::PipelineObserver, s: &hierdiff_edit::McesStats) {
    obs.add(Counter::Updates, s.updates as u64);
    obs.add(Counter::Inserts, s.inserts as u64);
    obs.add(Counter::Deletes, s.deletes as u64);
    obs.add(Counter::MisalignedNodes, s.intra_moves as u64);
    obs.add(Counter::InterMoves, s.inter_moves as u64);
    obs.add(Counter::WeightedDistance, s.weighted_distance as u64);
    obs.add(Counter::MisalignedParents, s.misaligned_parents as u64);
    obs.add(Counter::LcsCells, s.lcs_cells);
}

/// The full pipeline with an optional observer attached. Phase spans wrap
/// each stage; work counters are flushed in bulk at stage boundaries, so a
/// `None` observer costs a handful of `Option` checks per diff — the hot
/// loops are untouched (they accumulate into plain integer counters either
/// way). This is the engine behind [`Differ`].
pub(crate) fn diff_observed<V: NodeValue>(
    old: &Tree<V>,
    new: &Tree<V>,
    config: &PipelineConfig,
    mut obs: Option<&mut dyn hierdiff_obs::PipelineObserver>,
) -> Result<DiffResult<V>, DiffError> {
    // Resource governance: one guard per run, threaded through every stage.
    // `max_nodes` / `max_memory_estimate` are admission checks — they
    // reject the run before any pipeline work starts.
    let guard = Guard::new(config.budgets, config.cancel.clone());
    guard.admit(old.len() + new.len())?;
    let mut degraded = Degraded::default();
    let mut audit = config.audit.then(AuditReport::new);
    if let Some(report) = audit.as_mut() {
        span_start(&mut obs, Phase::Audit);
        report.merge(audit_tree(old, Side::Old));
        report.merge(audit_tree(new, Side::New));
        span_end(&mut obs, Phase::Audit);
        if report.has_errors() {
            return Err(DiffError::Audit(Box::new(report.clone())));
        }
    }
    // The strategy owns the whole tree-pair→Matching stage (pruning
    // pre-pass, match dispatch, degradation ladder, post-processing).
    let outcome = run_strategy(old, new, config, &guard, &mut obs)?;
    degraded.matching = outcome.degraded_matching;
    let matching = outcome.matching;
    let counters = outcome.counters;
    let rematched = outcome.rematched;
    if let Some(report) = audit.as_mut() {
        span_start(&mut obs, Phase::Audit);
        if let Some((seed, _)) = &outcome.prune_seed {
            report.merge(audit_prune(old, new, seed, Some(&matching)));
        }
        report.merge(audit_matching(old, new, &matching));
        span_end(&mut obs, Phase::Audit);
        if report.has_errors() {
            return Err(DiffError::Audit(Box::new(report.clone())));
        }
    }
    guard.checkpoint()?;
    span_start(&mut obs, Phase::EditScript);
    let mces = match edit_script_guarded(old, new, &matching, &guard) {
        Ok(mces) => {
            if mces.degraded {
                degraded.alignment = true;
            }
            if let Some(o) = obs.as_mut() {
                flush_mces_stats(*o, &mces.stats);
                if mces.degraded {
                    o.add(Counter::DegradedAlignment, 1);
                }
            }
            span_end(&mut obs, Phase::EditScript);
            mces
        }
        Err(e) => {
            span_end(&mut obs, Phase::EditScript);
            return Err(e.into());
        }
    };
    if let Some(report) = audit.as_mut() {
        span_start(&mut obs, Phase::Audit);
        report.merge(audit_script(old, new, &matching, &mces));
        span_end(&mut obs, Phase::Audit);
        if report.has_errors() {
            return Err(DiffError::Audit(Box::new(report.clone())));
        }
    }
    guard.checkpoint()?;
    let delta = config.build_delta.then(|| {
        span_start(&mut obs, Phase::Delta);
        let d = build_delta_tree(old, new, &matching, &mces);
        if let Some(o) = obs.as_mut() {
            o.add(Counter::DeltaNodes, d.len() as u64);
        }
        span_end(&mut obs, Phase::Delta);
        d
    });
    if let (Some(report), Some(d)) = (audit.as_mut(), delta.as_ref()) {
        span_start(&mut obs, Phase::Audit);
        if mces.wrapped {
            // Unmatched roots: the delta overlays the dummy-wrapped trees,
            // so project against wrapped copies of the inputs.
            let dummy = hierdiff_tree::Label::intern(hierdiff_edit::DUMMY_ROOT_LABEL);
            let mut old_w = old.clone();
            old_w.wrap_root(dummy, V::null());
            let mut new_w = new.clone();
            new_w.wrap_root(dummy, V::null());
            report.merge(audit_delta(&old_w, &new_w, d));
        } else {
            report.merge(audit_delta(old, new, d));
        }
        span_end(&mut obs, Phase::Audit);
        if report.has_errors() {
            return Err(DiffError::Audit(Box::new(report.clone())));
        }
    }
    Ok(DiffResult {
        script: mces.script.clone(),
        matching,
        mces,
        delta,
        counters,
        rematched,
        audit,
        profile: None,
        degraded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierdiff_tree::isomorphic;

    fn doc(s: &str) -> Tree<String> {
        Tree::parse_sexpr(s).unwrap()
    }

    #[test]
    fn end_to_end_default() {
        let old = doc(r#"(D (P (S "a") (S "b") (S "c")) (P (S "d") (S "e")))"#);
        let new = doc(r#"(D (P (S "a") (S "c")) (P (S "d") (S "e") (S "f")))"#);
        let r = Differ::new().diff(&old, &new).unwrap();
        assert!(isomorphic(&r.mces.edited, &new));
        let c = r.script.op_counts();
        assert_eq!(c.deletes, 1);
        assert_eq!(c.inserts, 1);
        let delta = r.delta.expect("delta on by default");
        assert!(isomorphic(&delta.project_new(), &new));
        assert!(isomorphic(&delta.project_old(), &old));
    }

    #[test]
    fn provided_matching_skips_matching_phase() {
        let old = doc(r#"(D (S "x"))"#);
        let new = doc(r#"(D (S "y"))"#);
        let mut m = Matching::new();
        m.insert(old.root(), new.root()).unwrap();
        m.insert(old.children(old.root())[0], new.children(new.root())[0])
            .unwrap();
        let r = Differ::new().matching(m).diff(&old, &new).unwrap();
        assert_eq!(r.counters.total(), 0, "no comparisons with provided keys");
        assert_eq!(r.script.op_counts().updates, 1);
    }

    #[test]
    fn strategies_agree_on_clean_input() {
        let old = doc(r#"(D (P (S "u1") (S "u2")) (P (S "u3") (S "u4")))"#);
        let new = doc(r#"(D (P (S "u3") (S "u4")) (P (S "u1") (S "u2")))"#);
        let fast = Differ::new().diff(&old, &new).unwrap();
        let simple = Differ::new()
            .strategy(MatchStrategy::Simple)
            .diff(&old, &new)
            .unwrap();
        assert_eq!(fast.script, simple.script);
        let gumtree = Differ::new()
            .strategy(MatchStrategy::gumtree())
            .diff(&old, &new)
            .unwrap();
        assert_eq!(
            fast.script, gumtree.script,
            "pure swap: every strategy sees it"
        );
    }

    #[test]
    fn gumtree_strategy_end_to_end() {
        let old = doc(r#"(D (P (S "alpha") (S "beta")) (P (S "gamma") (S "delta")))"#);
        let new = doc(r#"(D (P (S "gamma") (S "delta")) (P (S "alpha") (S "beta") (S "eps")))"#);
        let r = Differ::new()
            .strategy(MatchStrategy::gumtree())
            .audit(Audit::On)
            .diff(&old, &new)
            .unwrap();
        assert!(isomorphic(&r.mces.edited, &new));
        assert!(r.audit.expect("audit on").is_clean());
    }

    #[test]
    fn gumtree_counters_surface_in_profile() {
        let old = doc(r#"(D (P (S "alpha") (S "beta")) (P (S "gamma")))"#);
        let new = doc(r#"(D (P (S "gamma")) (P (S "alpha") (S "beta")))"#);
        let r = Differ::new()
            .strategy(MatchStrategy::gumtree())
            .profile(true)
            .diff(&old, &new)
            .unwrap();
        let profile = r.profile.expect("profile requested");
        assert!(profile.counter("gumtree_anchors") > 0, "{profile:?}");
        // FastMatch runs leave the gumtree counters untouched.
        let fast = Differ::new().profile(true).diff(&old, &new).unwrap();
        assert_eq!(fast.profile.unwrap().counter("gumtree_anchors"), 0);
    }

    #[test]
    fn distances_exposed() {
        let old = doc(r#"(D (P (S "a") (S "b") (S "c")))"#);
        let new = doc(r#"(D (P (S "a") (S "b")))"#);
        let r = Differ::new().diff(&old, &new).unwrap();
        assert_eq!(r.unweighted_distance(), 1);
        assert_eq!(r.weighted_distance(), 1);
    }

    #[test]
    fn prune_option_surfaces_counters_and_agrees() {
        let old = doc(
            r#"(D (P (S "stable1") (S "stable2")) (P (S "stable3") (S "stable4")) (P (S "old")))"#,
        );
        let new = doc(
            r#"(D (P (S "stable1") (S "stable2")) (P (S "stable3") (S "stable4")) (P (S "new")))"#,
        );
        let plain = Differ::new().diff(&old, &new).unwrap();
        let pruned = Differ::new().prune(true).diff(&old, &new).unwrap();
        assert_eq!(
            plain.script.len(),
            pruned.script.len(),
            "equally good scripts"
        );
        assert!(isomorphic(&pruned.mces.edited, &new));
        assert!(
            pruned.counters.nodes_pruned > 0,
            "unchanged paragraphs pruned"
        );
        assert_eq!(plain.counters.nodes_pruned, 0, "pruning off by default");
        assert!(pruned.counters.leaf_compares <= plain.counters.leaf_compares);
    }

    #[test]
    fn prune_is_a_fastmatch_knob() {
        // prune(true) configures the FastMatch strategy in place; on any
        // other strategy it is a documented no-op.
        let old = doc(r#"(D (P (S "stable1") (S "stable2")) (P (S "old")))"#);
        let new = doc(r#"(D (P (S "stable1") (S "stable2")) (P (S "new")))"#);
        let pruned = Differ::new().prune(true).diff(&old, &new).unwrap();
        assert!(pruned.counters.nodes_pruned > 0);
        let gumtree = Differ::new()
            .strategy(MatchStrategy::gumtree())
            .prune(true)
            .profile(true)
            .diff(&old, &new)
            .unwrap();
        assert!(
            gumtree.profile.unwrap().phase("prune").is_none(),
            "gumtree has its own top-down phase; prune() does not apply"
        );
        assert!(isomorphic(&gumtree.mces.edited, &new));
    }

    #[test]
    fn audit_on_by_default_in_debug_and_clean() {
        let old = doc(r#"(D (P (S "a") (S "b")) (P (S "c")))"#);
        let new = doc(r#"(D (P (S "c")) (P (S "a") (S "b") (S "x")))"#);
        let r = Differ::new().prune(true).diff(&old, &new).unwrap();
        let report = r.audit.expect("audit defaults on under debug assertions");
        assert!(report.is_clean(), "{report}");
        assert!(report.checks_run > 0);
    }

    #[test]
    fn audit_skippable() {
        let old = doc(r#"(D (S "a"))"#);
        let new = doc(r#"(D (S "b"))"#);
        let r = Differ::new().audit(Audit::Off).diff(&old, &new).unwrap();
        assert!(r.audit.is_none());
    }

    #[test]
    fn corrupt_provided_matching_is_an_audit_error() {
        // Matching two nodes with different labels violates §3.1; with
        // auditing on this is caught at the matching boundary (A012),
        // before edit-script generation gets a chance to reject it.
        let old = doc(r#"(D (S "a"))"#);
        let new = doc(r#"(D (P (S "a")))"#);
        let mut m = Matching::new();
        m.insert(old.root(), new.root()).unwrap();
        m.insert(old.children(old.root())[0], new.children(new.root())[0])
            .unwrap(); // S matched to P
        match Differ::new().matching(m).audit(Audit::On).diff(&old, &new) {
            Err(DiffError::Audit(report)) => {
                assert!(report.has_code(hierdiff_audit::Code::A012), "{report}");
            }
            other => panic!("expected DiffError::Audit, got {other:?}"),
        }
    }

    #[test]
    fn hybrid_match_audits_clean() {
        let t1 = doc(r#"(D (P (S "anchor") (S "totally original phrasing here")))"#);
        let t2 = doc(r#"(D (P (S "anchor") (S "completely different wording now")))"#);
        let h = match_with_optimality(&t1, &t2, MatchParams::default(), 3).unwrap();
        let report = h.audit.expect("audit defaults on under debug assertions");
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn batch_surfaces_audit_findings_counter() {
        let olds: Vec<Tree<String>> = (0..4)
            .map(|i| doc(&format!(r#"(D (S "a{i}") (S "b{i}"))"#)))
            .collect();
        let news: Vec<Tree<String>> = (0..4)
            .map(|i| doc(&format!(r#"(D (S "b{i}") (S "a{i}"))"#)))
            .collect();
        let pairs: Vec<(&Tree<String>, &Tree<String>)> = olds.iter().zip(news.iter()).collect();
        let report = Differ::new()
            .audit(Audit::On)
            .diff_batch_with(&pairs, |_, r| assert!(r.is_ok()));
        assert_eq!(report.audit_findings(), 0, "clean pipelines audit clean");
    }

    #[test]
    fn pre_fired_cancel_returns_cancelled() {
        let old = doc(r#"(D (S "a"))"#);
        let new = doc(r#"(D (S "b"))"#);
        let token = CancelToken::new();
        token.cancel();
        assert!(matches!(
            Differ::new()
                .cancel(&token)
                .diff(&old, &new)
                .map(|_| ())
                .unwrap_err(),
            DiffError::Cancelled
        ));
    }

    #[test]
    fn node_budget_rejects_at_admission() {
        let old = doc(r#"(D (S "a") (S "b"))"#);
        let new = doc(r#"(D (S "a") (S "b"))"#);
        assert!(matches!(
            Differ::new()
                .budget(Budgets::unlimited().with_max_nodes(3))
                .diff(&old, &new)
                .map(|_| ())
                .unwrap_err(),
            DiffError::BudgetExhausted(Budget::Nodes)
        ));
        // At the ceiling the run is admitted.
        assert!(Differ::new()
            .budget(Budgets::unlimited().with_max_nodes(6))
            .diff(&old, &new)
            .is_ok());
    }

    #[test]
    fn zero_wall_time_budget_trips_at_first_boundary() {
        let old = doc(r#"(D (S "a"))"#);
        let new = doc(r#"(D (S "a"))"#);
        let differ = Differ::new()
            .budget(Budgets::unlimited().with_max_wall_time(std::time::Duration::ZERO));
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(matches!(
            differ.diff(&old, &new).map(|_| ()).unwrap_err(),
            DiffError::BudgetExhausted(Budget::WallTime)
        ));
    }

    #[test]
    fn lcs_budget_degrades_and_audits_clean() {
        // A large reversal makes both the FastMatch chain LCS and the
        // AlignChildren LCS expensive; a 1-cell budget forces the full
        // degradation ladder. The result must still be conforming (edited
        // tree isomorphic to T2) and pass every stage-boundary audit.
        let n = 30;
        let fwd: Vec<String> = (0..n).map(|i| format!("(S \"v{i}\")")).collect();
        let rev: Vec<String> = (0..n).rev().map(|i| format!("(S \"v{i}\")")).collect();
        let old = doc(&format!("(D {})", fwd.join(" ")));
        let new = doc(&format!("(D {})", rev.join(" ")));
        let r = Differ::new()
            .audit(Audit::On)
            .budget(Budgets::unlimited().with_max_lcs_cells(1))
            .diff(&old, &new)
            .unwrap();
        assert!(r.degraded.matching, "FastMatch must have degraded");
        assert!(r.degraded.any());
        assert!(isomorphic(&r.mces.edited, &new), "degraded yet conforming");
        let report = r.audit.expect("audit was on");
        assert!(report.is_clean(), "degraded results audit clean: {report}");
        // Ungoverned runs never degrade.
        let plain = Differ::new().diff(&old, &new).unwrap();
        assert!(!plain.degraded.any());
    }

    #[test]
    fn degraded_run_flagged_in_profile() {
        let n = 30;
        let fwd: Vec<String> = (0..n).map(|i| format!("(S \"v{i}\")")).collect();
        let rev: Vec<String> = (0..n).rev().map(|i| format!("(S \"v{i}\")")).collect();
        let old = doc(&format!("(D {})", fwd.join(" ")));
        let new = doc(&format!("(D {})", rev.join(" ")));
        let r = Differ::new()
            .budget(Budgets::unlimited().with_max_lcs_cells(1))
            .profile(true)
            .diff(&old, &new)
            .unwrap();
        let profile = r.profile.expect("profile requested");
        assert!(profile.degraded(), "profile flags the degraded tiers");
        assert_eq!(
            profile.counter("degraded_matching"),
            u64::from(r.degraded.matching)
        );
        let clean = Differ::new().profile(true).diff(&old, &new).unwrap();
        assert!(!clean.profile.unwrap().degraded());
    }

    #[test]
    fn prune_seed_survives_matching_degradation() {
        // With pruning on and the LCS budget exhausted, the greedy tier
        // starts from the prune seed, so wholesale-matched fragments stay
        // matched and the prune audit (seed ⊆ matching) holds.
        let old =
            doc(r#"(D (P (S "stable1") (S "stable2")) (P (S "a") (S "b") (S "c")) (P (S "old")))"#);
        let new =
            doc(r#"(D (P (S "stable1") (S "stable2")) (P (S "c") (S "b") (S "a")) (P (S "new")))"#);
        let r = Differ::new()
            .prune(true)
            .audit(Audit::On)
            .budget(Budgets::unlimited().with_max_lcs_cells(1))
            .diff(&old, &new)
            .unwrap();
        assert!(r.degraded.matching);
        assert!(r.counters.nodes_pruned > 0, "prune pre-pass still ran");
        assert!(r.audit.unwrap().is_clean());
        assert!(isomorphic(&r.mces.edited, &new));
    }

    #[test]
    fn provided_prune_seed_matches_in_pipeline_pruning() {
        // The serving layer's chain-reuse path: prune against cached
        // fingerprint indexes and hand the seed to the differ instead of
        // letting the pipeline rebuild both indexes per request.
        use hierdiff_matching::prune_identical_indexed;
        use hierdiff_tree::FingerprintIndex;
        let old = doc(r#"(D (P (S "keep1") (S "keep2")) (P (S "a") (S "b") (S "c")) (P (S "x")))"#);
        let new = doc(r#"(D (P (S "keep1") (S "keep2")) (P (S "a") (S "b") (S "c")) (P (S "y")))"#);
        let idx_old = FingerprintIndex::build(&old);
        let idx_new = FingerprintIndex::build(&new);
        let (seed, _) = prune_identical_indexed(&old, &idx_old, &new, &idx_new).unwrap();
        assert!(!seed.is_empty(), "the stable fragment seeds the matcher");
        let seeded = Differ::new()
            .prune_seed(seed.clone())
            .audit(Audit::On)
            .profile(true)
            .diff(&old, &new)
            .unwrap();
        assert!(seeded.audit.unwrap().is_clean(), "seed ⊆ matching holds");
        assert!(isomorphic(&seeded.mces.edited, &new));
        assert_eq!(
            seeded.profile.unwrap().counter("nodes_pruned"),
            seed.len() as u64,
            "the provided seed is credited to the prune phase"
        );
        // The seeded run agrees with the in-pipeline pruning pre-pass.
        let inline = Differ::new().prune(true).diff(&old, &new).unwrap();
        assert_eq!(seeded.script, inline.script);
        // Non-FastMatch strategies ignore the seed rather than feeding an
        // unconsumed seed to the seed ⊆ matching audit.
        let gum = Differ::new()
            .prune_seed(seed)
            .strategy(MatchStrategy::gumtree())
            .audit(Audit::On)
            .diff(&old, &new)
            .unwrap();
        assert!(gum.audit.unwrap().is_clean());
    }

    #[test]
    fn gumtree_recovery_truncation_surfaces_as_degraded() {
        // Distinct leaf multisets under similar containers force the
        // bounded-ZS recovery pass; a 1-cell LCS budget truncates it. The
        // run must stay valid (not error), flag the matching tier, and
        // audit clean — the serve ladder keys off exactly this flag.
        let n = 14;
        let left: Vec<String> = (0..n).map(|i| format!("(S \"l{i}\")")).collect();
        let right: Vec<String> = (0..n).map(|i| format!("(S \"r{i}\")")).collect();
        let old = doc(&format!("(D (P {}) (P (S \"anchor\")))", left.join(" ")));
        let new = doc(&format!("(D (P {}) (P (S \"anchor\")))", right.join(" ")));
        let r = Differ::new()
            .strategy(MatchStrategy::gumtree())
            .audit(Audit::On)
            .budget(Budgets::unlimited().with_max_lcs_cells(1))
            .diff(&old, &new)
            .unwrap();
        assert!(r.degraded.matching, "truncated recovery flags the tier");
        assert!(r.audit.unwrap().is_clean());
        assert!(isomorphic(&r.mces.edited, &new), "degraded yet conforming");
        // With room to run, the same input does not degrade.
        let full = Differ::new()
            .strategy(MatchStrategy::gumtree())
            .diff(&old, &new)
            .unwrap();
        assert!(!full.degraded.matching);
    }

    #[test]
    fn delta_skippable() {
        let old = doc(r#"(D (S "a"))"#);
        let new = doc(r#"(D (S "a"))"#);
        let r = Differ::new().delta(false).diff(&old, &new).unwrap();
        assert!(r.delta.is_none());
    }

    #[test]
    fn strategy_names_are_stable() {
        assert_eq!(MatchStrategy::fast().name(), "fastmatch");
        assert_eq!(MatchStrategy::fast_pruned().name(), "fastmatch");
        assert_eq!(MatchStrategy::Simple.name(), "simple");
        assert_eq!(MatchStrategy::gumtree().name(), "gumtree");
        assert_eq!(MatchStrategy::Provided(Matching::new()).name(), "provided");
        assert!(matches!(
            MatchStrategy::default(),
            MatchStrategy::FastMatch(FastMatchConfig { prune: false })
        ));
    }
}
