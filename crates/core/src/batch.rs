//! Batch change detection — the data-warehousing scenario of Section 1
//! ("detecting changes given old and new versions of the data" across many
//! snapshot pairs from "uncooperative legacy databases"). Pairs are
//! independent, so they diff concurrently.
//!
//! Scheduling is **work-stealing**: each worker owns a deque seeded with a
//! contiguous block of pairs and steals from its siblings when its own
//! block runs dry. Unlike the static `i % workers` assignment this
//! replaces, a skewed batch (a few giant pairs among many small ones)
//! cannot strand one worker with all the heavy work while the rest idle —
//! idle workers pull the excess over. [`BatchReport`] exposes per-worker
//! completion/steal counts and busy-time utilization so the rebalancing is
//! observable, and — with [`Differ::profile`](crate::Differ::profile) — per-worker
//! [`DiffProfile`]s whose phase timings and paper-cost counters aggregate
//! across the whole batch.
//!
//! Worker failure is a *typed* outcome, not a panic: a worker that dies
//! mid-batch surfaces as [`DiffError::WorkerPanicked`] on the pairs it
//! never delivered and in [`BatchReport::failures`].

use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use crossbeam::deque::{Steal, Stealer, Worker};
use hierdiff_guard::RetryPolicy;
use hierdiff_obs::{CounterSample, DiffProfile, Recorder};
use hierdiff_tree::{NodeValue, Tree};

use crate::{diff_observed, AuditReport, DiffError, DiffResult, MatchStrategy, PipelineConfig};

/// Options for a batch run, assembled by
/// [`Differ::diff_batch`](crate::Differ::diff_batch) /
/// [`diff_batch_with`](crate::Differ::diff_batch_with).
#[derive(Clone, Debug, Default)]
pub(crate) struct BatchOptions {
    /// Per-pair pipeline configuration; [`MatchStrategy::Provided`] is
    /// rejected (a single provided matching cannot describe multiple
    /// pairs).
    pub diff: PipelineConfig,
    /// Worker-thread count; defaults to `available_parallelism` (capped at
    /// the number of pairs).
    pub workers: Option<NonZeroUsize>,
    /// Record a per-worker [`DiffProfile`] (phase timings + work counters
    /// across the worker's pairs) into [`BatchReport::profiles`].
    pub profile: bool,
    /// Retry schedule for pairs a panicked worker never delivered
    /// ([`Differ::retry`](crate::Differ::retry)). The default —
    /// [`RetryPolicy::default`], one retry — matches the historical
    /// retry-once-on-the-calling-thread behavior.
    pub retry: RetryPolicy,
}

impl BatchOptions {
    /// Forces a specific worker count.
    #[cfg(test)]
    pub fn with_workers(mut self, workers: usize) -> BatchOptions {
        self.workers = NonZeroUsize::new(workers);
        self
    }

    /// Toggles per-worker profile recording.
    #[cfg(test)]
    pub fn with_profile(mut self, profile: bool) -> BatchOptions {
        self.profile = profile;
        self
    }

    /// Sets the retry schedule.
    #[cfg(test)]
    pub fn with_retry(mut self, retry: RetryPolicy) -> BatchOptions {
        self.retry = retry;
        self
    }
}

/// What one worker did during a batch run.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkerStats {
    /// Pairs this worker completed.
    pub completed: usize,
    /// Of those, pairs stolen from another worker's deque.
    pub stolen: usize,
    /// Time spent diffing (as opposed to looking for work).
    pub busy: Duration,
    /// Total audit findings (warnings and errors) across this worker's
    /// pairs; always 0 when [`Differ::audit`](crate::Differ::audit) is off.
    pub audit_findings: usize,
}

/// Scheduling telemetry for one batch run.
#[derive(Clone, Debug, Default)]
pub struct BatchReport {
    /// Per-worker statistics, indexed by worker id.
    pub workers: Vec<WorkerStats>,
    /// Wall-clock duration of the parallel section.
    pub wall: Duration,
    /// Per-worker pipeline profiles, present (parallel to
    /// [`workers`](BatchReport::workers)) when
    /// per-worker profiling was requested
    /// ([`Differ::profile`](crate::Differ::profile)).
    pub profiles: Vec<DiffProfile>,
    /// Worker-level failures ([`DiffError::WorkerPanicked`]); empty on a
    /// healthy run. Pairs a failed worker never streamed are re-run on
    /// the calling thread per the configured
    /// [`RetryPolicy`](crate::RetryPolicy).
    pub failures: Vec<DiffError>,
    /// Pairs re-run (successfully) on the calling thread after a worker
    /// panic. Also surfaced as the `batch_retries` counter on
    /// [`profile`](BatchReport::profile).
    pub retries: u64,
    /// Input indexes of pairs whose every allowed retry attempt panicked;
    /// each was delivered to the sink as
    /// [`DiffError::RetryExhausted`] (never conflated with cancellation).
    pub retry_failed: Vec<usize>,
    /// Input indexes of pairs abandoned mid-retry because the run's
    /// cancel token fired; each was delivered as
    /// [`DiffError::Cancelled`] (never conflated with retry exhaustion).
    pub retry_cancelled: Vec<usize>,
}

impl BatchReport {
    /// Total pairs completed across workers.
    pub fn completed(&self) -> usize {
        self.workers.iter().map(|w| w.completed).sum()
    }

    /// Total pairs that moved between workers.
    pub fn steals(&self) -> usize {
        self.workers.iter().map(|w| w.stolen).sum()
    }

    /// Total audit findings across workers (0 when auditing is off).
    pub fn audit_findings(&self) -> usize {
        self.workers.iter().map(|w| w.audit_findings).sum()
    }

    /// Mean worker busy fraction in `[0, 1]`: total busy time over
    /// `workers × wall`. Near 1 means no worker starved; static chunking of
    /// a skewed batch drives this toward `1/workers`.
    pub fn utilization(&self) -> f64 {
        if self.workers.is_empty() || self.wall.is_zero() {
            return 1.0;
        }
        let busy: Duration = self.workers.iter().map(|w| w.busy).sum();
        (busy.as_secs_f64() / (self.wall.as_secs_f64() * self.workers.len() as f64)).min(1.0)
    }

    /// The batch-wide aggregate of the per-worker profiles (phase times
    /// and counters summed), or `None` when profiling was off.
    pub fn profile(&self) -> Option<DiffProfile> {
        if self.profiles.is_empty() {
            return None;
        }
        let mut total = DiffProfile::default();
        for p in &self.profiles {
            total.merge(p);
        }
        if self.retries > 0 {
            match total
                .counters
                .iter_mut()
                .find(|c| c.name == "batch_retries")
            {
                Some(c) => c.value += self.retries,
                None => total.counters.push(CounterSample {
                    name: "batch_retries".to_string(),
                    value: self.retries,
                }),
            }
        }
        Some(total)
    }
}

/// A collected batch run: per-pair results in input order plus the
/// scheduling report. Returned by [`Differ::diff_batch`](crate::Differ::diff_batch).
#[derive(Debug, Default)]
pub struct BatchRun<V: NodeValue> {
    /// One result per input pair, in input order.
    pub results: Vec<Result<DiffResult<V>, DiffError>>,
    /// Scheduling and profiling telemetry.
    pub report: BatchReport,
}

fn worker_count(requested: Option<NonZeroUsize>, pairs: usize) -> usize {
    requested
        .or_else(|| std::thread::available_parallelism().ok())
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(pairs)
        .max(1)
}

/// Diffs every `(old, new)` pair concurrently on work-stealing workers,
/// streaming each result to `sink` as it completes (in completion order —
/// the pair's input index is passed alongside). Returns the scheduling
/// report.
///
/// A worker that panics does not take the batch down: its failure is
/// recorded in [`BatchReport::failures`], the remaining workers drain the
/// queue, and pairs the dead worker never streamed are re-run on the
/// calling thread per the configured retry policy
/// ([`Differ::retry`](crate::Differ::retry); [`BatchReport::retries`]).
/// Pairs that exhaust the policy are streamed as
/// [`DiffError::RetryExhausted`]; pairs abandoned because the cancel token
/// fired mid-retry are streamed as [`DiffError::Cancelled`] — the report
/// indexes each group separately ([`BatchReport::retry_failed`] /
/// [`BatchReport::retry_cancelled`]).
///
/// `sink` is shared by all workers behind a lock; keep it cheap (push to a
/// channel or vector) or it becomes the bottleneck.
pub(crate) fn diff_batch_inner<V, F>(
    pairs: &[(&Tree<V>, &Tree<V>)],
    options: &BatchOptions,
    sink: F,
) -> BatchReport
where
    V: NodeValue + Send + Sync,
    F: FnMut(usize, Result<DiffResult<V>, DiffError>) + Send,
{
    // The sink shares a lock with a delivered-index bitmap so the retry
    // pass below knows exactly which pairs a dead worker never streamed.
    let state = Mutex::new((vec![false; pairs.len()], sink));
    if matches!(options.diff.strategy, MatchStrategy::Provided(_)) {
        let (_, mut sink) = state.into_inner().unwrap_or_else(PoisonError::into_inner);
        for i in 0..pairs.len() {
            sink(i, Err(DiffError::MissingProvidedMatching));
        }
        return BatchReport::default();
    }
    if pairs.is_empty() {
        return BatchReport::default();
    }

    let workers = worker_count(options.workers, pairs.len());
    // Seed each deque with a contiguous block of the input: the owner
    // drains it front-to-back, thieves take from the front of the heaviest
    // remainder.
    let deques: Vec<Worker<usize>> = (0..workers).map(|_| Worker::new_fifo()).collect();
    for (i, _) in pairs.iter().enumerate() {
        deques[i * workers / pairs.len()].push(i);
    }
    let stealers: Vec<Stealer<usize>> = deques.iter().map(Worker::stealer).collect();

    let start = Instant::now();
    let mut report = BatchReport::default();
    let outcomes: Vec<(WorkerStats, Option<DiffProfile>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = deques
            .into_iter()
            .enumerate()
            .map(|(me, local)| {
                let stealers = &stealers;
                let state = &state;
                scope.spawn(move || {
                    let mut stats = WorkerStats::default();
                    let mut recorder = options.profile.then(Recorder::new);
                    loop {
                        let (i, stolen) = match local.pop() {
                            Some(i) => (i, false),
                            None => match steal_any(stealers, me) {
                                Some(i) => (i, true),
                                None => break,
                            },
                        };
                        let (old, new) = pairs[i];
                        let t0 = Instant::now();
                        let result = diff_observed(
                            old,
                            new,
                            &options.diff,
                            recorder
                                .as_mut()
                                .map(|r| r as &mut dyn hierdiff_obs::PipelineObserver),
                        );
                        stats.busy += t0.elapsed();
                        stats.completed += 1;
                        stats.stolen += usize::from(stolen);
                        stats.audit_findings += match &result {
                            Ok(r) => r.audit.as_ref().map_or(0, AuditReport::len),
                            Err(DiffError::Audit(report)) => report.len(),
                            Err(_) => 0,
                        };
                        // A panic in another worker's sink call poisons the
                        // lock; the data is still coherent, keep streaming.
                        // Delivery is marked before the sink runs: a sink
                        // that panics mid-call has still observed the pair,
                        // so the retry pass must not hand it over twice.
                        let mut s = state.lock().unwrap_or_else(PoisonError::into_inner);
                        s.0[i] = true;
                        (s.1)(i, result);
                    }
                    (stats, recorder.map(|r| r.profile()))
                })
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(worker, h)| match h.join() {
                Ok(outcome) => outcome,
                Err(_payload) => {
                    // The worker died mid-batch. Record a typed failure and
                    // keep the report coherent — no resume_unwind.
                    report.failures.push(DiffError::WorkerPanicked(worker));
                    (
                        WorkerStats::default(),
                        options.profile.then(DiffProfile::default),
                    )
                }
            })
            .collect()
    });

    for (stats, profile) in outcomes {
        report.workers.push(stats);
        if let Some(p) = profile {
            report.profiles.push(p);
        }
    }

    // Batch resilience: pairs a dead worker never streamed are re-run on
    // this thread per the configured retry policy, ungoverned by the dead
    // worker's fate (the per-pair guard inside diff_observed still
    // applies). Attempts beyond the first back off per the policy's
    // deterministic jittered schedule. Every terminal outcome is typed and
    // kept distinct: success streams the result, exhausting the policy
    // streams RetryExhausted, a cancel token firing mid-retry streams
    // Cancelled. A sink that panics stops the pass (it is the sink that is
    // broken, not the pairs).
    if !report.failures.is_empty() {
        let policy = options.retry;
        let cancel = options.diff.cancel.as_ref();
        let (mut delivered, mut sink) = state.into_inner().unwrap_or_else(PoisonError::into_inner);
        'pairs: for (i, done) in delivered.iter_mut().enumerate() {
            if *done || policy.retry_limit() == 0 {
                continue;
            }
            let (old, new) = pairs[i];
            for attempt in 1..=policy.retry_limit() {
                if cancel.is_some_and(hierdiff_guard::CancelToken::is_cancelled) {
                    report.retry_cancelled.push(i);
                    *done = true;
                    if catch_unwind(AssertUnwindSafe(|| sink(i, Err(DiffError::Cancelled))))
                        .is_err()
                    {
                        break 'pairs;
                    }
                    continue 'pairs;
                }
                if attempt > 1 {
                    std::thread::sleep(policy.backoff(attempt - 1, i as u64));
                }
                let run = catch_unwind(AssertUnwindSafe(|| {
                    diff_observed(old, new, &options.diff, None)
                }));
                if let Ok(result) = run {
                    *done = true;
                    if catch_unwind(AssertUnwindSafe(|| sink(i, result))).is_err() {
                        break 'pairs;
                    }
                    report.retries += 1;
                    continue 'pairs;
                }
            }
            // Every allowed attempt panicked: a typed terminal outcome,
            // distinct from cancellation.
            report.retry_failed.push(i);
            *done = true;
            let exhausted = Err(DiffError::RetryExhausted(policy.retry_limit()));
            if catch_unwind(AssertUnwindSafe(|| sink(i, exhausted))).is_err() {
                break 'pairs;
            }
        }
    }
    report.wall = start.elapsed();
    report
}

/// Collects a batch run into per-pair results (input order) plus the
/// report. Pairs a panicked worker never delivered are retried on the
/// calling thread per the retry policy; only pairs the policy never got
/// to re-run (e.g. [`RetryPolicy::none`]) carry
/// [`DiffError::WorkerPanicked`].
pub(crate) fn diff_batch_run<V: NodeValue + Send + Sync>(
    pairs: &[(&Tree<V>, &Tree<V>)],
    options: &BatchOptions,
) -> BatchRun<V> {
    let mut slots: Vec<Option<Result<DiffResult<V>, DiffError>>> =
        (0..pairs.len()).map(|_| None).collect();
    let report = diff_batch_inner(pairs, options, |i, result| slots[i] = Some(result));
    let fallback = report
        .failures
        .first()
        .cloned()
        .unwrap_or(DiffError::WorkerPanicked(usize::MAX));
    let results = slots
        .into_iter()
        .map(|slot| slot.unwrap_or_else(|| Err(fallback.clone())))
        .collect();
    BatchRun { results, report }
}

/// One round-robin steal attempt over every sibling deque.
fn steal_any(stealers: &[Stealer<usize>], me: usize) -> Option<usize> {
    // Retry while any sibling reports a racy `Steal::Retry`.
    loop {
        let mut retry = false;
        for (w, stealer) in stealers.iter().enumerate() {
            if w == me {
                continue;
            }
            match stealer.steal() {
                Steal::Success(i) => return Some(i),
                Steal::Retry => retry = true,
                Steal::Empty => {}
            }
        }
        if !retry {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Differ;
    use hierdiff_edit::Matching;
    use hierdiff_tree::isomorphic;

    fn doc(s: &str) -> Tree<String> {
        Tree::parse_sexpr(s).unwrap()
    }

    #[test]
    fn batch_matches_sequential() {
        let olds: Vec<Tree<String>> = (0..6)
            .map(|i| doc(&format!(r#"(D (P (S "a{i}") (S "b{i}") (S "c{i}")))"#)))
            .collect();
        let news: Vec<Tree<String>> = (0..6)
            .map(|i| doc(&format!(r#"(D (P (S "a{i}") (S "c{i}") (S "d{i}")))"#)))
            .collect();
        let pairs: Vec<(&Tree<String>, &Tree<String>)> = olds.iter().zip(news.iter()).collect();
        let batch = Differ::new().diff_batch(&pairs).results;
        assert_eq!(batch.len(), 6);
        for (i, r) in batch.iter().enumerate() {
            let r = r.as_ref().unwrap();
            let seq = Differ::new().diff(&olds[i], &news[i]).unwrap();
            assert_eq!(r.script, seq.script, "pair {i}");
            assert!(isomorphic(&r.mces.edited, &news[i]));
        }
    }

    #[test]
    fn empty_batch() {
        let pairs: Vec<(&Tree<String>, &Tree<String>)> = Vec::new();
        assert!(Differ::new().diff_batch(&pairs).results.is_empty());
    }

    #[test]
    fn provided_strategy_rejected() {
        let a = doc(r#"(D)"#);
        let b = doc(r#"(D)"#);
        let pairs = vec![(&a, &b)];
        let out = Differ::new().matching(Matching::new()).diff_batch(&pairs);
        assert!(matches!(
            out.results[0],
            Err(DiffError::MissingProvidedMatching)
        ));
    }

    #[test]
    fn more_pairs_than_cores() {
        let olds: Vec<Tree<String>> = (0..40)
            .map(|i| doc(&format!(r#"(D (S "x{i}") (S "z{i}") (S "w{i}"))"#)))
            .collect();
        let news: Vec<Tree<String>> = (0..40)
            .map(|i| {
                doc(&format!(
                    r#"(D (S "x{i}") (S "y{i}") (S "z{i}") (S "w{i}"))"#
                ))
            })
            .collect();
        let pairs: Vec<(&Tree<String>, &Tree<String>)> = olds.iter().zip(news.iter()).collect();
        let out = Differ::new().diff_batch(&pairs).results;
        for (i, r) in out.into_iter().enumerate() {
            let r = r.unwrap();
            assert_eq!(r.script.op_counts().inserts, 1, "pair {i}");
        }
    }

    #[test]
    fn streaming_sink_sees_every_pair_once() {
        let olds: Vec<Tree<String>> = (0..10)
            .map(|i| doc(&format!(r#"(D (S "a{i}"))"#)))
            .collect();
        let news: Vec<Tree<String>> = (0..10)
            .map(|i| doc(&format!(r#"(D (S "a{i}") (S "b{i}"))"#)))
            .collect();
        let pairs: Vec<(&Tree<String>, &Tree<String>)> = olds.iter().zip(news.iter()).collect();
        let mut seen = vec![0usize; pairs.len()];
        let report = Differ::new().workers(3).diff_batch_with(&pairs, |i, r| {
            seen[i] += 1;
            assert!(r.is_ok());
        });
        assert!(
            seen.iter().all(|&c| c == 1),
            "each pair exactly once: {seen:?}"
        );
        assert_eq!(report.completed(), pairs.len());
        assert_eq!(report.workers.len(), 3);
        assert!(report.utilization() > 0.0);
        assert!(report.failures.is_empty());
        assert!(report.profiles.is_empty(), "profiling off by default");
        assert!(report.profile().is_none());
    }

    #[test]
    fn forced_single_worker_is_sequential() {
        let a = doc(r#"(D (S "p") (S "q"))"#);
        let b = doc(r#"(D (S "q") (S "p"))"#);
        let pairs = vec![(&a, &b); 5];
        let mut count = 0;
        let report = Differ::new().workers(1).diff_batch_with(&pairs, |_, r| {
            assert!(r.is_ok());
            count += 1;
        });
        assert_eq!(count, 5);
        assert_eq!(report.workers.len(), 1);
        assert_eq!(report.steals(), 0, "nothing to steal from");
    }

    #[test]
    fn skewed_batch_gets_stolen() {
        // All pairs land in worker 0's block except a trailing trivial one;
        // with 2 workers, worker 1 must steal to do anything.
        let big: Vec<String> = (0..60).map(|i| format!(r#"(S "s{i}")"#)).collect();
        let old_big = doc(&format!("(D {})", big.join(" ")));
        let new_big = doc(&format!("(D {} (S \"extra\"))", big.join(" ")));
        let olds: Vec<&Tree<String>> = vec![&old_big; 8];
        let news: Vec<&Tree<String>> = vec![&new_big; 8];
        let pairs: Vec<(&Tree<String>, &Tree<String>)> = olds.into_iter().zip(news).collect();
        let report = Differ::new()
            .workers(2)
            .diff_batch_with(&pairs, |_, r| assert!(r.is_ok()));
        assert_eq!(report.completed(), 8);
        assert_eq!(report.workers.len(), 2);
        // If a worker did nothing, its block was drained by the other via
        // stealing — either way work moved rather than stranding.
        if report.workers.iter().any(|w| w.completed == 0) {
            assert!(report.steals() > 0, "idle worker but nothing stolen");
        }
    }

    #[test]
    fn profiled_batch_aggregates_per_worker_profiles() {
        let olds: Vec<Tree<String>> = (0..8)
            .map(|i| doc(&format!(r#"(D (P (S "a{i}") (S "b{i}")))"#)))
            .collect();
        let news: Vec<Tree<String>> = (0..8)
            .map(|i| doc(&format!(r#"(D (P (S "b{i}") (S "a{i}")))"#)))
            .collect();
        let pairs: Vec<(&Tree<String>, &Tree<String>)> = olds.iter().zip(news.iter()).collect();
        let report = Differ::new()
            .workers(2)
            .profile(true)
            .diff_batch_with(&pairs, |_, r| assert!(r.is_ok()));
        assert_eq!(report.profiles.len(), 2, "one profile per worker");
        let total = report.profile().expect("profiling was on");
        // Every pair entered the match phase exactly once.
        assert_eq!(total.phase("match").unwrap().entries, 8);
        assert!(total.counter("leaf_compares") > 0);
        // Aggregate equals the sum of the parts.
        let by_hand: u64 = report
            .profiles
            .iter()
            .map(|p| p.counter("leaf_compares"))
            .sum();
        assert_eq!(total.counter("leaf_compares"), by_hand);
    }

    #[test]
    fn sink_panic_is_a_typed_failure_not_a_process_abort() {
        let a = doc(r#"(D (S "x"))"#);
        let b = doc(r#"(D (S "y"))"#);
        let pairs = vec![(&a, &b); 4];
        let run = diff_batch_run(&pairs, &BatchOptions::default().with_workers(1));
        assert!(run.report.failures.is_empty());
        assert_eq!(run.results.len(), 4);

        // Now a sink that panics on the first delivery: the worker dies,
        // the batch still returns, and undelivered pairs carry the typed
        // worker error.
        let mut first = true;
        let report = diff_batch_inner(
            &pairs,
            &BatchOptions::default().with_workers(1),
            move |_, _: Result<DiffResult<String>, DiffError>| {
                if first {
                    first = false;
                    panic!("sink exploded");
                }
            },
        );
        assert_eq!(report.failures, vec![DiffError::WorkerPanicked(0)]);
        assert_eq!(report.workers.len(), 1, "report stays coherent");
    }

    #[test]
    fn panicked_worker_pairs_are_retried_once() {
        // Single worker whose sink panics on the first delivery: the worker
        // dies, and the remaining pairs are re-run once on the calling
        // thread instead of surfacing WorkerPanicked.
        let a = doc(r#"(D (S "x"))"#);
        let b = doc(r#"(D (S "y"))"#);
        let pairs = vec![(&a, &b); 3];
        let mut slots: Vec<Option<Result<DiffResult<String>, DiffError>>> =
            (0..pairs.len()).map(|_| None).collect();
        let mut first = true;
        let report = diff_batch_inner(&pairs, &BatchOptions::default().with_workers(1), |i, r| {
            if first {
                first = false;
                panic!("boom");
            }
            slots[i] = Some(r);
        });
        assert_eq!(report.failures, vec![DiffError::WorkerPanicked(0)]);
        assert_eq!(report.retries, 2, "undelivered pairs re-run");
        // The pair consumed by the panicking sink call is not re-delivered
        // (the sink observed it); the rest arrive via the retry pass.
        assert!(slots[0].is_none());
        assert!(matches!(slots[1], Some(Ok(_))));
        assert!(matches!(slots[2], Some(Ok(_))));
    }

    #[test]
    fn retried_pairs_surface_in_collected_run_and_profile() {
        let a = doc(r#"(D (S "x"))"#);
        let b = doc(r#"(D (S "y"))"#);
        let pairs = vec![(&a, &b); 4];
        // A worker killed by its first sink call, with profiling on: the
        // collected run should still hold a real result for every retried
        // pair, and the aggregate profile should count the retries.
        type Slots = Mutex<Vec<Option<Result<DiffResult<String>, DiffError>>>>;
        let slots: Slots = Mutex::new((0..pairs.len()).map(|_| None).collect());
        let mut first = true;
        let report = diff_batch_inner(
            &pairs,
            &BatchOptions::default().with_workers(1).with_profile(true),
            |i, r| {
                if first {
                    first = false;
                    panic!("boom");
                }
                slots.lock().unwrap_or_else(PoisonError::into_inner)[i] = Some(r);
            },
        );
        assert_eq!(report.retries, 3);
        let delivered = slots.into_inner().unwrap_or_else(PoisonError::into_inner);
        assert_eq!(delivered.iter().filter(|s| s.is_some()).count(), 3);
        let profile = report.profile().expect("profiling was on");
        assert_eq!(profile.retries(), 3, "batch_retries surfaced in profile");
    }

    /// A node value whose criteria comparison panics when armed — the
    /// only way to make the *diff itself* (not just the sink) die
    /// deterministically, exercising the retry-exhaustion path.
    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    struct Volatile {
        text: String,
        armed: bool,
    }

    impl hierdiff_tree::NodeValue for Volatile {
        fn null() -> Self {
            Volatile {
                text: String::new(),
                armed: false,
            }
        }
        fn compare(&self, other: &Self) -> f64 {
            assert!(!(self.armed || other.armed), "armed value compared");
            if self == other {
                0.0
            } else {
                2.0
            }
        }
    }

    fn volatile_pair(text: &str, armed: bool) -> Tree<Volatile> {
        use hierdiff_tree::Label;
        let mut t = Tree::new(Label::intern("D"), Volatile::null());
        t.push_child(
            t.root(),
            Label::intern("S"),
            Volatile {
                text: text.to_string(),
                armed,
            },
        );
        t
    }

    #[test]
    fn retry_exhaustion_is_typed_and_indexed() {
        let ok_old = volatile_pair("a", false);
        let ok_new = volatile_pair("b", false);
        let bad_old = volatile_pair("x", true);
        let bad_new = volatile_pair("y", true);
        let pairs = vec![(&ok_old, &ok_new), (&bad_old, &bad_new), (&ok_old, &ok_new)];
        let opts = BatchOptions::default()
            .with_workers(1)
            .with_retry(RetryPolicy::retries(2).with_base_backoff(Duration::ZERO));
        let slots = Mutex::new((0..pairs.len()).map(|_| None).collect::<Vec<_>>());
        let report = diff_batch_inner(&pairs, &opts, |i, r| {
            slots.lock().unwrap_or_else(PoisonError::into_inner)[i] = Some(r);
        });
        assert_eq!(report.failures, vec![DiffError::WorkerPanicked(0)]);
        assert_eq!(report.retry_failed, vec![1], "the armed pair exhausted");
        assert!(report.retry_cancelled.is_empty(), "no conflation");
        assert_eq!(report.retries, 1, "the healthy trailing pair recovered");
        let slots = slots.into_inner().unwrap_or_else(PoisonError::into_inner);
        assert!(
            matches!(slots[0], Some(Ok(_))),
            "delivered before the panic"
        );
        assert!(
            matches!(slots[1], Some(Err(DiffError::RetryExhausted(2)))),
            "typed exhaustion after 2 attempts: {:?}",
            slots[1]
        );
        assert!(matches!(slots[2], Some(Ok(_))), "retried successfully");
    }

    #[test]
    fn cancel_mid_retry_is_typed_cancelled_not_exhausted() {
        use hierdiff_guard::CancelToken;
        let a = doc(r#"(D (S "x"))"#);
        let b = doc(r#"(D (S "y"))"#);
        let pairs = vec![(&a, &b); 3];
        let token = CancelToken::new();
        let opts = BatchOptions {
            diff: PipelineConfig {
                cancel: Some(token.clone()),
                ..Default::default()
            },
            ..Default::default()
        }
        .with_workers(1);
        // The sink fires the cancel token and then kills the worker on its
        // first delivery: the remaining pairs enter the retry pass with the
        // token already fired and must surface as Cancelled, not as retry
        // exhaustion.
        let mut first = true;
        let slots = Mutex::new((0..pairs.len()).map(|_| None).collect::<Vec<_>>());
        let report = diff_batch_inner(&pairs, &opts, |i, r| {
            if first {
                first = false;
                token.cancel();
                panic!("worker dies after cancelling");
            }
            slots.lock().unwrap_or_else(PoisonError::into_inner)[i] = Some(r);
        });
        assert_eq!(report.failures, vec![DiffError::WorkerPanicked(0)]);
        assert_eq!(report.retry_cancelled, vec![1, 2]);
        assert!(report.retry_failed.is_empty(), "no conflation");
        assert_eq!(report.retries, 0);
        let slots = slots.into_inner().unwrap_or_else(PoisonError::into_inner);
        for i in [1, 2] {
            assert!(
                matches!(slots[i], Some(Err(DiffError::Cancelled))),
                "pair {i}: {:?}",
                slots[i]
            );
        }
    }

    #[test]
    fn retry_none_leaves_pairs_as_worker_panicked() {
        let ok_old = volatile_pair("a", false);
        let ok_new = volatile_pair("b", false);
        let bad_old = volatile_pair("x", true);
        let bad_new = volatile_pair("y", true);
        let pairs = vec![(&bad_old, &bad_new), (&ok_old, &ok_new)];
        let run = diff_batch_run(
            &pairs,
            &BatchOptions::default()
                .with_workers(1)
                .with_retry(RetryPolicy::none()),
        );
        assert_eq!(run.report.failures, vec![DiffError::WorkerPanicked(0)]);
        assert_eq!(run.report.retries, 0, "policy forbids retrying");
        assert!(matches!(run.results[0], Err(DiffError::WorkerPanicked(0))));
    }

    #[test]
    fn cancelled_batch_pairs_carry_typed_error() {
        use hierdiff_guard::CancelToken;
        let a = doc(r#"(D (S "x"))"#);
        let b = doc(r#"(D (S "y"))"#);
        let pairs = vec![(&a, &b); 4];
        let token = CancelToken::new();
        token.cancel();
        let opts = BatchOptions {
            diff: PipelineConfig {
                cancel: Some(token),
                ..Default::default()
            },
            ..Default::default()
        }
        .with_workers(2);
        let run = diff_batch_run(&pairs, &opts);
        assert!(
            run.report.failures.is_empty(),
            "cancellation is not a panic"
        );
        for r in &run.results {
            assert!(matches!(r, Err(DiffError::Cancelled)), "{r:?}");
        }
    }
}
