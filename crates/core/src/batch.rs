//! Batch change detection — the data-warehousing scenario of Section 1
//! ("detecting changes given old and new versions of the data" across many
//! snapshot pairs from "uncooperative legacy databases"). Pairs are
//! independent, so they diff concurrently on scoped threads.

use std::num::NonZeroUsize;

use hierdiff_tree::{NodeValue, Tree};

use crate::{diff, DiffError, DiffOptions, DiffResult, Matcher};

/// One batch slot being filled by a worker.
type Slot<'s, V> = (usize, &'s mut Option<Result<DiffResult<V>, DiffError>>);

/// Diffs every `(old, new)` pair concurrently, preserving input order.
///
/// `options` applies to every pair; [`Matcher::Provided`] is rejected (a
/// single provided matching cannot describe multiple pairs — run [`diff`]
/// per pair instead).
pub fn diff_batch<V: NodeValue + Send + Sync + 'static>(
    pairs: &[(&Tree<V>, &Tree<V>)],
    options: &DiffOptions,
) -> Vec<Result<DiffResult<V>, DiffError>> {
    if options.matcher == Matcher::Provided {
        return pairs
            .iter()
            .map(|_| Err(DiffError::MissingProvidedMatching))
            .collect();
    }
    if pairs.is_empty() {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(pairs.len());
    let mut results: Vec<Option<Result<DiffResult<V>, DiffError>>> =
        (0..pairs.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        // Static chunking: pair i goes to worker i % workers. Each worker
        // gets a disjoint mutable view of the results.
        let mut slots: Vec<Vec<Slot<'_, V>>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, slot) in results.iter_mut().enumerate() {
            slots[i % workers].push((i, slot));
        }
        for worker in slots {
            scope.spawn(move || {
                for (i, slot) in worker {
                    let (old, new) = pairs[i];
                    *slot = Some(diff(old, new, options));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every slot filled by its worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierdiff_tree::isomorphic;

    fn doc(s: &str) -> Tree<String> {
        Tree::parse_sexpr(s).unwrap()
    }

    #[test]
    fn batch_matches_sequential() {
        let olds: Vec<Tree<String>> = (0..6)
            .map(|i| doc(&format!(r#"(D (P (S "a{i}") (S "b{i}") (S "c{i}")))"#)))
            .collect();
        let news: Vec<Tree<String>> = (0..6)
            .map(|i| doc(&format!(r#"(D (P (S "a{i}") (S "c{i}") (S "d{i}")))"#)))
            .collect();
        let pairs: Vec<(&Tree<String>, &Tree<String>)> =
            olds.iter().zip(news.iter()).collect();
        let batch = diff_batch(&pairs, &DiffOptions::new());
        assert_eq!(batch.len(), 6);
        for (i, r) in batch.iter().enumerate() {
            let r = r.as_ref().unwrap();
            let seq = diff(&olds[i], &news[i], &DiffOptions::new()).unwrap();
            assert_eq!(r.script, seq.script, "pair {i}");
            assert!(isomorphic(&r.mces.edited, &news[i]));
        }
    }

    #[test]
    fn empty_batch() {
        let pairs: Vec<(&Tree<String>, &Tree<String>)> = Vec::new();
        assert!(diff_batch(&pairs, &DiffOptions::new()).is_empty());
    }

    #[test]
    fn provided_matcher_rejected() {
        let a = doc(r#"(D)"#);
        let b = doc(r#"(D)"#);
        let pairs = vec![(&a, &b)];
        let opts = DiffOptions {
            matcher: Matcher::Provided,
            ..DiffOptions::default()
        };
        let out = diff_batch(&pairs, &opts);
        assert!(matches!(out[0], Err(DiffError::MissingProvidedMatching)));
    }

    #[test]
    fn more_pairs_than_cores() {
        let olds: Vec<Tree<String>> = (0..40)
            .map(|i| doc(&format!(r#"(D (S "x{i}") (S "z{i}") (S "w{i}"))"#)))
            .collect();
        let news: Vec<Tree<String>> = (0..40)
            .map(|i| doc(&format!(r#"(D (S "x{i}") (S "y{i}") (S "z{i}") (S "w{i}"))"#)))
            .collect();
        let pairs: Vec<(&Tree<String>, &Tree<String>)> =
            olds.iter().zip(news.iter()).collect();
        let out = diff_batch(&pairs, &DiffOptions::default());
        for (i, r) in out.into_iter().enumerate() {
            let r = r.unwrap();
            assert_eq!(r.script.op_counts().inserts, 1, "pair {i}");
        }
    }
}
