//! Batch change detection — the data-warehousing scenario of Section 1
//! ("detecting changes given old and new versions of the data" across many
//! snapshot pairs from "uncooperative legacy databases"). Pairs are
//! independent, so they diff concurrently.
//!
//! Scheduling is **work-stealing**: each worker owns a deque seeded with a
//! contiguous block of pairs and steals from its siblings when its own
//! block runs dry. Unlike the static `i % workers` assignment this
//! replaces, a skewed batch (a few giant pairs among many small ones)
//! cannot strand one worker with all the heavy work while the rest idle —
//! idle workers pull the excess over. [`BatchReport`] exposes per-worker
//! completion/steal counts and busy-time utilization so the rebalancing is
//! observable.

use std::num::NonZeroUsize;
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use crossbeam::deque::{Steal, Stealer, Worker};
use hierdiff_tree::{NodeValue, Tree};

use crate::{diff, AuditReport, DiffError, DiffOptions, DiffResult, Matcher};

/// Options for [`diff_batch_with`].
#[derive(Clone, Debug, Default)]
pub struct BatchOptions {
    /// Per-pair diff options; [`Matcher::Provided`] is rejected (a single
    /// provided matching cannot describe multiple pairs).
    pub diff: DiffOptions,
    /// Worker-thread count; defaults to `available_parallelism` (capped at
    /// the number of pairs).
    pub workers: Option<NonZeroUsize>,
}

impl BatchOptions {
    /// Batch options wrapping `diff` options, with default worker count.
    pub fn new(diff: DiffOptions) -> BatchOptions {
        BatchOptions {
            diff,
            workers: None,
        }
    }

    /// Forces a specific worker count.
    pub fn with_workers(mut self, workers: usize) -> BatchOptions {
        self.workers = NonZeroUsize::new(workers);
        self
    }
}

/// What one worker did during a batch run.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkerStats {
    /// Pairs this worker completed.
    pub completed: usize,
    /// Of those, pairs stolen from another worker's deque.
    pub stolen: usize,
    /// Time spent diffing (as opposed to looking for work).
    pub busy: Duration,
    /// Total audit findings (warnings and errors) across this worker's
    /// pairs; always 0 when [`DiffOptions::audit`] is off.
    pub audit_findings: usize,
}

/// Scheduling telemetry for one batch run.
#[derive(Clone, Debug, Default)]
pub struct BatchReport {
    /// Per-worker statistics, indexed by worker id.
    pub workers: Vec<WorkerStats>,
    /// Wall-clock duration of the parallel section.
    pub wall: Duration,
}

impl BatchReport {
    /// Total pairs completed across workers.
    pub fn completed(&self) -> usize {
        self.workers.iter().map(|w| w.completed).sum()
    }

    /// Total pairs that moved between workers.
    pub fn steals(&self) -> usize {
        self.workers.iter().map(|w| w.stolen).sum()
    }

    /// Total audit findings across workers (0 when auditing is off).
    pub fn audit_findings(&self) -> usize {
        self.workers.iter().map(|w| w.audit_findings).sum()
    }

    /// Mean worker busy fraction in `[0, 1]`: total busy time over
    /// `workers × wall`. Near 1 means no worker starved; static chunking of
    /// a skewed batch drives this toward `1/workers`.
    pub fn utilization(&self) -> f64 {
        if self.workers.is_empty() || self.wall.is_zero() {
            return 1.0;
        }
        let busy: Duration = self.workers.iter().map(|w| w.busy).sum();
        (busy.as_secs_f64() / (self.wall.as_secs_f64() * self.workers.len() as f64)).min(1.0)
    }
}

fn worker_count(requested: Option<NonZeroUsize>, pairs: usize) -> usize {
    requested
        .or_else(|| std::thread::available_parallelism().ok())
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(pairs)
        .max(1)
}

/// Diffs every `(old, new)` pair concurrently on work-stealing workers,
/// streaming each result to `sink` as it completes (in completion order —
/// the pair's input index is passed alongside). Returns the scheduling
/// report.
///
/// `sink` is shared by all workers behind a lock; keep it cheap (push to a
/// channel or vector) or it becomes the bottleneck.
pub fn diff_batch_with<V, F>(
    pairs: &[(&Tree<V>, &Tree<V>)],
    options: &BatchOptions,
    sink: F,
) -> BatchReport
where
    V: NodeValue + Send + Sync,
    F: FnMut(usize, Result<DiffResult<V>, DiffError>) + Send,
{
    let sink = Mutex::new(sink);
    if options.diff.matcher == Matcher::Provided {
        let mut sink = sink.into_inner().unwrap_or_else(PoisonError::into_inner);
        for i in 0..pairs.len() {
            sink(i, Err(DiffError::MissingProvidedMatching));
        }
        return BatchReport::default();
    }
    if pairs.is_empty() {
        return BatchReport::default();
    }

    let workers = worker_count(options.workers, pairs.len());
    // Seed each deque with a contiguous block of the input: the owner
    // drains it front-to-back, thieves take from the front of the heaviest
    // remainder.
    let deques: Vec<Worker<usize>> = (0..workers).map(|_| Worker::new_fifo()).collect();
    for (i, _) in pairs.iter().enumerate() {
        deques[i * workers / pairs.len()].push(i);
    }
    let stealers: Vec<Stealer<usize>> = deques.iter().map(Worker::stealer).collect();

    let start = Instant::now();
    let stats: Vec<WorkerStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = deques
            .into_iter()
            .enumerate()
            .map(|(me, local)| {
                let stealers = &stealers;
                let sink = &sink;
                scope.spawn(move || {
                    let mut stats = WorkerStats::default();
                    loop {
                        let (i, stolen) = match local.pop() {
                            Some(i) => (i, false),
                            None => match steal_any(stealers, me) {
                                Some(i) => (i, true),
                                None => break,
                            },
                        };
                        let (old, new) = pairs[i];
                        let t0 = Instant::now();
                        let result = diff(old, new, &options.diff);
                        stats.busy += t0.elapsed();
                        stats.completed += 1;
                        stats.stolen += usize::from(stolen);
                        stats.audit_findings += match &result {
                            Ok(r) => r.audit.as_ref().map_or(0, AuditReport::len),
                            Err(DiffError::Audit(report)) => report.len(),
                            Err(_) => 0,
                        };
                        // A panic in another worker's sink call poisons the
                        // lock; the data is still coherent, keep streaming.
                        (sink.lock().unwrap_or_else(PoisonError::into_inner))(i, result);
                    }
                    stats
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(stats) => stats,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });

    BatchReport {
        workers: stats,
        wall: start.elapsed(),
    }
}

/// One round-robin steal attempt over every sibling deque.
fn steal_any(stealers: &[Stealer<usize>], me: usize) -> Option<usize> {
    // Retry while any sibling reports a racy `Steal::Retry`.
    loop {
        let mut retry = false;
        for (w, stealer) in stealers.iter().enumerate() {
            if w == me {
                continue;
            }
            match stealer.steal() {
                Steal::Success(i) => return Some(i),
                Steal::Retry => retry = true,
                Steal::Empty => {}
            }
        }
        if !retry {
            return None;
        }
    }
}

/// Diffs every `(old, new)` pair concurrently, preserving input order.
///
/// `options` applies to every pair; [`Matcher::Provided`] is rejected (a
/// single provided matching cannot describe multiple pairs — run [`diff`]
/// per pair instead). This is [`diff_batch_with`] collecting into a vector;
/// use the `_with` variant to stream results or control worker count.
pub fn diff_batch<V: NodeValue + Send + Sync>(
    pairs: &[(&Tree<V>, &Tree<V>)],
    options: &DiffOptions,
) -> Vec<Result<DiffResult<V>, DiffError>> {
    let mut slots: Vec<Option<Result<DiffResult<V>, DiffError>>> =
        (0..pairs.len()).map(|_| None).collect();
    diff_batch_with(pairs, &BatchOptions::new(options.clone()), |i, result| {
        slots[i] = Some(result)
    });
    let out: Vec<Result<DiffResult<V>, DiffError>> = slots.into_iter().flatten().collect();
    assert_eq!(out.len(), pairs.len(), "every pair visited exactly once");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierdiff_tree::isomorphic;

    fn doc(s: &str) -> Tree<String> {
        Tree::parse_sexpr(s).unwrap()
    }

    #[test]
    fn batch_matches_sequential() {
        let olds: Vec<Tree<String>> = (0..6)
            .map(|i| doc(&format!(r#"(D (P (S "a{i}") (S "b{i}") (S "c{i}")))"#)))
            .collect();
        let news: Vec<Tree<String>> = (0..6)
            .map(|i| doc(&format!(r#"(D (P (S "a{i}") (S "c{i}") (S "d{i}")))"#)))
            .collect();
        let pairs: Vec<(&Tree<String>, &Tree<String>)> = olds.iter().zip(news.iter()).collect();
        let batch = diff_batch(&pairs, &DiffOptions::new());
        assert_eq!(batch.len(), 6);
        for (i, r) in batch.iter().enumerate() {
            let r = r.as_ref().unwrap();
            let seq = diff(&olds[i], &news[i], &DiffOptions::new()).unwrap();
            assert_eq!(r.script, seq.script, "pair {i}");
            assert!(isomorphic(&r.mces.edited, &news[i]));
        }
    }

    #[test]
    fn empty_batch() {
        let pairs: Vec<(&Tree<String>, &Tree<String>)> = Vec::new();
        assert!(diff_batch(&pairs, &DiffOptions::new()).is_empty());
    }

    #[test]
    fn provided_matcher_rejected() {
        let a = doc(r#"(D)"#);
        let b = doc(r#"(D)"#);
        let pairs = vec![(&a, &b)];
        let opts = DiffOptions {
            matcher: Matcher::Provided,
            ..DiffOptions::default()
        };
        let out = diff_batch(&pairs, &opts);
        assert!(matches!(out[0], Err(DiffError::MissingProvidedMatching)));
    }

    #[test]
    fn more_pairs_than_cores() {
        let olds: Vec<Tree<String>> = (0..40)
            .map(|i| doc(&format!(r#"(D (S "x{i}") (S "z{i}") (S "w{i}"))"#)))
            .collect();
        let news: Vec<Tree<String>> = (0..40)
            .map(|i| {
                doc(&format!(
                    r#"(D (S "x{i}") (S "y{i}") (S "z{i}") (S "w{i}"))"#
                ))
            })
            .collect();
        let pairs: Vec<(&Tree<String>, &Tree<String>)> = olds.iter().zip(news.iter()).collect();
        let out = diff_batch(&pairs, &DiffOptions::default());
        for (i, r) in out.into_iter().enumerate() {
            let r = r.unwrap();
            assert_eq!(r.script.op_counts().inserts, 1, "pair {i}");
        }
    }

    #[test]
    fn streaming_sink_sees_every_pair_once() {
        let olds: Vec<Tree<String>> = (0..10)
            .map(|i| doc(&format!(r#"(D (S "a{i}"))"#)))
            .collect();
        let news: Vec<Tree<String>> = (0..10)
            .map(|i| doc(&format!(r#"(D (S "a{i}") (S "b{i}"))"#)))
            .collect();
        let pairs: Vec<(&Tree<String>, &Tree<String>)> = olds.iter().zip(news.iter()).collect();
        let mut seen = vec![0usize; pairs.len()];
        let report = diff_batch_with(
            &pairs,
            &BatchOptions::new(DiffOptions::default()).with_workers(3),
            |i, r| {
                seen[i] += 1;
                assert!(r.is_ok());
            },
        );
        assert!(
            seen.iter().all(|&c| c == 1),
            "each pair exactly once: {seen:?}"
        );
        assert_eq!(report.completed(), pairs.len());
        assert_eq!(report.workers.len(), 3);
        assert!(report.utilization() > 0.0);
    }

    #[test]
    fn forced_single_worker_is_sequential() {
        let a = doc(r#"(D (S "p") (S "q"))"#);
        let b = doc(r#"(D (S "q") (S "p"))"#);
        let pairs = vec![(&a, &b); 5];
        let mut count = 0;
        let report = diff_batch_with(
            &pairs,
            &BatchOptions::new(DiffOptions::default()).with_workers(1),
            |_, r| {
                assert!(r.is_ok());
                count += 1;
            },
        );
        assert_eq!(count, 5);
        assert_eq!(report.workers.len(), 1);
        assert_eq!(report.steals(), 0, "nothing to steal from");
    }

    #[test]
    fn skewed_batch_gets_stolen() {
        // All pairs land in worker 0's block except a trailing trivial one;
        // with 2 workers, worker 1 must steal to do anything.
        let big: Vec<String> = (0..60).map(|i| format!(r#"(S "s{i}")"#)).collect();
        let old_big = doc(&format!("(D {})", big.join(" ")));
        let new_big = doc(&format!("(D {} (S \"extra\"))", big.join(" ")));
        let olds: Vec<&Tree<String>> = vec![&old_big; 8];
        let news: Vec<&Tree<String>> = vec![&new_big; 8];
        let pairs: Vec<(&Tree<String>, &Tree<String>)> = olds.into_iter().zip(news).collect();
        let report = diff_batch_with(
            &pairs,
            &BatchOptions::new(DiffOptions::default()).with_workers(2),
            |_, r| assert!(r.is_ok()),
        );
        assert_eq!(report.completed(), 8);
        assert_eq!(report.workers.len(), 2);
        // If a worker did nothing, its block was drained by the other via
        // stealing — either way work moved rather than stranding.
        if report.workers.iter().any(|w| w.completed == 0) {
            assert!(report.steals() > 0, "idle worker but nothing stolen");
        }
    }
}
