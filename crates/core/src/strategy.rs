//! The [`MatchStrategy`] axis — pluggable Good-Matching algorithms behind
//! the [`Differ`](crate::Differ) facade.
//!
//! The paper's FastMatch (Figure 11) is one point in a space of tree
//! matchers. This module owns the full tree-pair→[`Matching`] stage of the
//! pipeline: strategy dispatch, the pruning pre-pass, the budget
//! degradation ladder, the Section 8 post-processing pass, and the
//! observer flushes for the matching phase. Every strategy produces a
//! matching that feeds the *unchanged* edit-script stage and passes the
//! same stage-boundary audits.
//!
//! Strategies:
//!
//! * [`MatchStrategy::FastMatch`] — Algorithm *FastMatch* (Figure 11) with
//!   the criteria parameters of [`MatchParams`]; optionally seeded by the
//!   identical-subtree pruning pre-pass ([`FastMatchConfig::prune`]).
//! * [`MatchStrategy::Simple`] — Algorithm *Match* (Figure 10), the
//!   quadratic reference matcher.
//! * [`MatchStrategy::GumTree`] — GumTree-style greedy top-down/bottom-up
//!   matching with bounded Zhang–Shasha recovery (Falleri et al.,
//!   ASE 2014), configured by [`GumTreeParams`].
//! * [`MatchStrategy::Provided`] — a caller-supplied matching; the Good
//!   Matching phase is skipped entirely (the paper's "unique identifiers"
//!   fast path).

use hierdiff_edit::Matching;
use hierdiff_guard::{Budget, Guard, GuardError};
use hierdiff_matching::{
    bounded_greedy_match, fast_match_seeded_guarded, gumtree_match_guarded, match_simple,
    postprocess, prune_identical, GumTreeParams, MatchCounters, MatchError, PruneStats,
    GREEDY_WINDOW,
};
use hierdiff_obs::{Counter, Phase, PipelineObserver};
use hierdiff_tree::{NodeValue, Tree};

use crate::{flush_match_counters, span_end, span_start, DiffError, PipelineConfig};

/// Configuration for the [`MatchStrategy::FastMatch`] strategy.
///
/// The criteria thresholds `f` and `t` live in
/// [`Differ::params`](crate::Differ::params) (they are shared with
/// [`MatchStrategy::Simple`]); this struct holds the knobs specific to
/// FastMatch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FastMatchConfig {
    /// Run the identical-subtree pruning pre-pass before matching
    /// ([`hierdiff_matching::prune_identical`]): maximal unchanged
    /// fragments are fingerprint-matched wholesale and skipped by the
    /// criteria. Counters surface as `nodes_pruned` / `prune_candidates` /
    /// `prune_collisions`. Off by default.
    pub prune: bool,
}

/// Matching-algorithm selection for [`Differ::strategy`](crate::Differ::strategy).
///
/// Each variant carries its own configuration and owns the full
/// tree-pair→[`Matching`] stage; the edit-script, delta, and audit stages
/// downstream are strategy-agnostic. See the DESIGN.md "Matching
/// strategies" section for a selection guide.
#[derive(Clone, Debug)]
pub enum MatchStrategy {
    /// Algorithm *FastMatch* (Figure 11) — the paper's recommendation:
    /// `O((ne + e²)c + 2lne)`. The default.
    FastMatch(FastMatchConfig),
    /// Algorithm *Match* (Figure 10) — the simple `O(n²c + mn)` matcher.
    Simple,
    /// GumTree-style greedy matching (Falleri et al., ASE 2014): top-down
    /// isomorphic-subtree anchoring, bottom-up container adoption by dice
    /// similarity, and a bounded Zhang–Shasha recovery pass.
    GumTree(GumTreeParams),
    /// Use this caller-provided matching and skip the Good Matching phase
    /// entirely — the paper's "if the information ... does have unique
    /// identifiers, then our algorithms can take advantage of them"
    /// fast path.
    Provided(Matching),
}

impl Default for MatchStrategy {
    fn default() -> MatchStrategy {
        MatchStrategy::FastMatch(FastMatchConfig::default())
    }
}

impl MatchStrategy {
    /// FastMatch with default configuration (no pruning pre-pass).
    pub fn fast() -> MatchStrategy {
        MatchStrategy::FastMatch(FastMatchConfig::default())
    }

    /// FastMatch with the identical-subtree pruning pre-pass enabled.
    pub fn fast_pruned() -> MatchStrategy {
        MatchStrategy::FastMatch(FastMatchConfig { prune: true })
    }

    /// GumTree with default parameters (`min_height` 1, `sim_threshold`
    /// 0.5, `max_recovery_size` 100).
    pub fn gumtree() -> MatchStrategy {
        MatchStrategy::GumTree(GumTreeParams::default())
    }

    /// Stable lowercase strategy name, as accepted by the CLI
    /// `--strategy` flags and shown in profiles.
    pub fn name(&self) -> &'static str {
        match self {
            MatchStrategy::FastMatch(_) => "fastmatch",
            MatchStrategy::Simple => "simple",
            MatchStrategy::GumTree(_) => "gumtree",
            MatchStrategy::Provided(_) => "provided",
        }
    }
}

/// What the matching stage produced, for the downstream pipeline.
pub(crate) struct StrategyOutcome {
    /// The (partial) matching to feed edit-script generation.
    pub matching: Matching,
    /// Matching comparison counters (zero for a provided matching).
    pub counters: MatchCounters,
    /// Nodes re-matched by post-processing (0 when disabled).
    pub rematched: usize,
    /// FastMatch fell back to the bounded greedy tier (LCS budget).
    pub degraded_matching: bool,
    /// The pruning pre-pass seed and its stats, when the pre-pass ran
    /// (audited downstream as seed ⊆ matching).
    pub prune_seed: Option<(Matching, PruneStats)>,
}

/// Runs the configured strategy's full tree-pair→[`Matching`] stage:
/// pruning pre-pass, match dispatch (with the FastMatch degradation
/// ladder), post-processing, and the matching-phase observer flushes.
pub(crate) fn run_strategy<V: NodeValue>(
    old: &Tree<V>,
    new: &Tree<V>,
    config: &PipelineConfig,
    guard: &Guard,
    obs: &mut Option<&mut dyn PipelineObserver>,
) -> Result<StrategyOutcome, DiffError> {
    // The pruning pre-pass runs as its own phase; keeping the seed around
    // also lets the audit check the exact pairs the matcher started from
    // instead of re-deriving them.
    let provided_seed = config
        .prune_seed
        .as_ref()
        .filter(|_| matches!(&config.strategy, MatchStrategy::FastMatch(_)));
    let prune_seed = if let Some(seed) = provided_seed {
        // A caller-provided seed (e.g. the serving layer pruning against
        // cached fingerprint indexes along a version chain): adopt it as
        // the pre-pass result without rebuilding any index. The audit
        // still checks seed ⊆ matching downstream, so a stale or corrupt
        // seed cannot silently survive.
        span_start(obs, Phase::Prune);
        let stats = PruneStats {
            nodes_pruned: seed.len(),
            ..PruneStats::default()
        };
        if let Some(o) = obs.as_mut() {
            o.add(Counter::NodesPruned, stats.nodes_pruned as u64);
        }
        span_end(obs, Phase::Prune);
        Some((seed.clone(), stats))
    } else if matches!(&config.strategy, MatchStrategy::FastMatch(c) if c.prune) {
        span_start(obs, Phase::Prune);
        let (seed, stats) = match prune_identical(old, new) {
            Ok(v) => v,
            Err(e) => {
                span_end(obs, Phase::Prune);
                return Err(e.into());
            }
        };
        if let Some(o) = obs.as_mut() {
            o.add(Counter::NodesPruned, stats.nodes_pruned as u64);
            o.add(Counter::PruneCandidates, stats.candidates as u64);
            o.add(Counter::PruneCollisions, stats.collisions as u64);
        }
        span_end(obs, Phase::Prune);
        Some((seed, stats))
    } else {
        None
    };
    guard.checkpoint()?;
    span_start(obs, Phase::Match);
    let mut degraded_matching = false;
    let mut gumtree_stats = None;
    let match_outcome: Result<(Matching, MatchCounters), DiffError> = match &config.strategy {
        MatchStrategy::FastMatch(_) => {
            let seed = || {
                prune_seed
                    .as_ref()
                    .map(|(seed, _)| seed.clone())
                    .unwrap_or_default()
            };
            match fast_match_seeded_guarded(old, new, config.params, seed(), guard) {
                Ok(r) => Ok((r.matching, r.counters)),
                Err(MatchError::Guard(GuardError::Budget(Budget::LcsCells))) => {
                    // The degradation ladder: FastMatch ran out of LCS
                    // cells, so rerun the chains through the LCS-free
                    // bounded greedy matcher — a valid (criteria-enforcing)
                    // but possibly non-maximal matching.
                    degraded_matching = true;
                    bounded_greedy_match(old, new, config.params, seed(), guard, GREEDY_WINDOW)
                        .map(|r| (r.matching, r.counters))
                        .map_err(DiffError::from)
                }
                Err(e) => Err(e.into()),
            }
        }
        MatchStrategy::Simple => match_simple(old, new, config.params)
            .map(|r| (r.matching, r.counters))
            .map_err(DiffError::from),
        MatchStrategy::GumTree(params) => match gumtree_match_guarded(old, new, *params, guard) {
            Ok(r) => {
                // GumTree's own degradation rung: the LCS-cell budget ran
                // out inside the bounded-ZS recovery pass, which was
                // truncated (phases 1–2 completed; valid, non-maximal).
                degraded_matching = r.stats.recovery_truncated;
                gumtree_stats = Some(r.stats);
                Ok((r.matching, r.counters))
            }
            Err(e) => Err(e.into()),
        },
        MatchStrategy::Provided(m) => Ok((m.clone(), MatchCounters::default())),
    };
    let (mut matching, mut counters) = match match_outcome {
        Ok(v) => v,
        Err(e) => {
            span_end(obs, Phase::Match);
            return Err(e);
        }
    };
    if let Some((_, stats)) = &prune_seed {
        counters.absorb_prune(stats);
    }
    let rematched = if config.postprocess {
        match postprocess(old, new, config.params, &mut matching) {
            Ok(n) => n,
            Err(e) => {
                span_end(obs, Phase::Match);
                return Err(e.into());
            }
        }
    } else {
        0
    };
    if let Some(o) = obs.as_mut() {
        flush_match_counters(*o, &counters);
        if degraded_matching {
            o.add(Counter::DegradedMatching, 1);
        }
        if let Some(s) = &gumtree_stats {
            o.add(Counter::GumtreeAnchors, s.anchors as u64);
            o.add(Counter::GumtreeContainers, s.containers as u64);
            o.add(Counter::GumtreeRecovered, s.recovered as u64);
        }
    }
    span_end(obs, Phase::Match);
    Ok(StrategyOutcome {
        matching,
        counters,
        rematched,
        degraded_matching,
        prune_seed,
    })
}
