//! `treediff` — generic change detection between two tree files in the
//! workspace's s-expression notation (see `hierdiff_tree::Tree::parse_sexpr`).
//!
//! ```text
//! treediff [OPTIONS] <OLD.sexpr> <NEW.sexpr>
//! treediff audit [OPTIONS] <OLD.sexpr> <NEW.sexpr>
//!
//!   -t, --threshold <0.5..1>    inner-node match threshold   [default 0.6]
//!   -f, --leaf-threshold <0..1> leaf compare threshold       [default 0.5]
//!   -k, --optimality <N>        A(k) optimality level        [default 0]
//!   -s, --strategy <NAME>       fastmatch|simple|gumtree     [default fastmatch]
//!       --min-height <n>        gumtree top-down height floor    [default 1]
//!       --sim-threshold <0..1>  gumtree bottom-up dice threshold [default 0.5]
//!       --max-recovery <n>      gumtree TED recovery size bound  [default 100]
//!   -p, --prune                 identical-subtree pruning pre-pass (fastmatch)
//!       --audit / --no-audit    stage-boundary invariant auditing
//!       --profile[=json]        per-phase timings + paper-cost counters
//!                               on stderr (table, or JSON DiffProfile)
//!       --timeout <secs>        wall-clock budget for the run
//!       --max-nodes <n>         combined input-size budget
//!       --output script|delta|stats|json                     [default script]
//! ```
//!
//! Exit codes: 0 success, 1 usage/parse/pipeline error, 4 budget exhausted
//! or cancelled.
//!
//! The `audit` subcommand runs the full pipeline with auditing forced on
//! and prints every `A0xx` finding; it exits non-zero when any finding has
//! `Error` severity.

#![forbid(unsafe_code)]

use std::process::ExitCode;

use hierdiff_core::{
    match_with_optimality, Budgets, DiffError, Differ, FastMatchConfig, GumTreeParams,
    MatchStrategy, Phase, PipelineObserver, Recorder,
};
use hierdiff_matching::MatchParams;
use hierdiff_tree::Tree;

const USAGE: &str = "usage: treediff [OPTIONS] <OLD.sexpr> <NEW.sexpr>\n\
\x20      treediff audit [OPTIONS] <OLD.sexpr> <NEW.sexpr>\n\
  -t, --threshold <0.5..1>      inner-node match threshold (default 0.6)\n\
  -f, --leaf-threshold <0..1>   leaf compare threshold (default 0.5)\n\
  -k, --optimality <N>          A(k) optimality level (default 0)\n\
  -s, --strategy <NAME>         matching strategy: fastmatch (the paper's\n\
                                FastMatch), simple (unanchored baseline), or\n\
                                gumtree (top-down/bottom-up with bounded TED\n\
                                recovery) (default fastmatch)\n\
      --min-height <n>          gumtree: minimum subtree height anchored by\n\
                                the top-down phase (default 1)\n\
      --sim-threshold <0..1>    gumtree: dice similarity a container pair\n\
                                must exceed in the bottom-up phase\n\
                                (default 0.5)\n\
      --max-recovery <n>        gumtree: largest container pair handed to\n\
                                the TED recovery pass; 0 disables recovery\n\
                                (default 100)\n\
  -p, --prune                   match identical subtrees wholesale first\n\
                                (fastmatch only)\n\
      --audit                   audit the paper's invariants at every stage\n\
                                boundary; error findings abort with a\n\
                                diagnostic (default in debug builds)\n\
      --no-audit                disable stage-boundary auditing\n\
      --profile                 print per-phase timings and the paper's\n\
                                cost-model counters to stderr\n\
      --profile=json            same, as a JSON DiffProfile document\n\
      --timeout <secs>          give up (exit 4) after this much wall time\n\
      --max-nodes <n>           reject inputs larger than n combined nodes\n\
                                (exit 4)\n\
      --output script|delta|stats|json   what to print (default script)\n\
  -h, --help                    show this help\n\
\n\
subcommands:\n\
  audit    run the full diff pipeline with auditing forced on, print every\n\
           A0xx finding with its paper reference, and exit non-zero when\n\
           any finding has Error severity";

#[derive(Clone, Copy, PartialEq, Eq)]
enum ProfileFormat {
    Table,
    Json,
}

/// A CLI failure: diagnostic plus process exit code. Budget exhaustion and
/// cancellation exit with 4 so callers can tell "too expensive" from
/// "wrong" (1) without parsing stderr.
struct Failure {
    msg: String,
    code: u8,
}

impl From<String> for Failure {
    fn from(msg: String) -> Failure {
        Failure { msg, code: 1 }
    }
}

impl From<&str> for Failure {
    fn from(msg: &str) -> Failure {
        Failure {
            msg: msg.to_string(),
            code: 1,
        }
    }
}

fn fail_for(e: DiffError) -> Failure {
    let code = match e {
        DiffError::Cancelled | DiffError::BudgetExhausted(_) => 4,
        _ => 1,
    };
    Failure {
        msg: e.to_string(),
        code,
    }
}

struct Cli {
    params: MatchParams,
    k: u32,
    strategy: MatchStrategy,
    /// Whether `--strategy` appeared on the command line (as opposed to the
    /// fastmatch default), so `-k`'s hybrid matcher can reject the combination.
    strategy_explicit: bool,
    budgets: Budgets,
    audit: Option<bool>,
    profile: Option<ProfileFormat>,
    output: String,
    old: Tree<String>,
    new: Tree<String>,
}

impl Cli {
    fn prune(&self) -> bool {
        matches!(&self.strategy, MatchStrategy::FastMatch(c) if c.prune)
    }
}

/// Parses arguments and loads both input trees. When `--profile` is on,
/// the returned [`Recorder`] already carries the `parse` phase (file read
/// and s-expression parse), so the final profile spans the entire
/// pipeline of Section 2, not just the in-memory stages.
fn parse_cli(args: impl Iterator<Item = String>) -> Result<(Cli, Option<Recorder>), String> {
    let mut t = 0.6f64;
    let mut f = 0.5f64;
    let mut k = 0u32;
    let mut prune = false;
    let mut strategy_name: Option<String> = None;
    let mut gumtree = GumTreeParams::default();
    let mut gumtree_flags: Vec<&str> = Vec::new();
    let mut budgets = Budgets::unlimited();
    let mut audit = None;
    let mut profile = None;
    let mut output = "script".to_string();
    let mut positional: Vec<String> = Vec::new();
    let mut it = args;
    while let Some(a) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "-h" | "--help" => return Err(USAGE.to_string()),
            "-t" | "--threshold" => t = take("-t")?.parse().map_err(|e| format!("bad -t: {e}"))?,
            "-f" | "--leaf-threshold" => {
                f = take("-f")?.parse().map_err(|e| format!("bad -f: {e}"))?
            }
            "-k" | "--optimality" => k = take("-k")?.parse().map_err(|e| format!("bad -k: {e}"))?,
            "-s" | "--strategy" => {
                let v = take("--strategy")?;
                match v.as_str() {
                    "fastmatch" | "simple" | "gumtree" => strategy_name = Some(v),
                    other => {
                        return Err(format!(
                            "unknown strategy {other:?} (expected fastmatch, simple, or gumtree)"
                        ))
                    }
                }
            }
            "--min-height" => {
                gumtree = gumtree.with_min_height(
                    take("--min-height")?
                        .parse()
                        .map_err(|e| format!("bad --min-height: {e}"))?,
                );
                gumtree_flags.push("--min-height");
            }
            "--sim-threshold" => {
                let s: f64 = take("--sim-threshold")?
                    .parse()
                    .map_err(|e| format!("bad --sim-threshold: {e}"))?;
                if !(0.0..=1.0).contains(&s) {
                    return Err("bad --sim-threshold: need a value in 0..=1".to_string());
                }
                gumtree = gumtree.with_sim_threshold(s);
                gumtree_flags.push("--sim-threshold");
            }
            "--max-recovery" => {
                gumtree = gumtree.with_max_recovery_size(
                    take("--max-recovery")?
                        .parse()
                        .map_err(|e| format!("bad --max-recovery: {e}"))?,
                );
                gumtree_flags.push("--max-recovery");
            }
            "-p" | "--prune" => prune = true,
            "--audit" => audit = Some(true),
            "--no-audit" => audit = Some(false),
            "--profile" => profile = Some(ProfileFormat::Table),
            "--profile=json" => profile = Some(ProfileFormat::Json),
            other if other.starts_with("--profile=") => {
                return Err(format!(
                    "unknown profile format {:?} (expected json)",
                    &other["--profile=".len()..]
                ))
            }
            "--timeout" => {
                let secs: f64 = take("--timeout")?
                    .parse()
                    .map_err(|e| format!("bad --timeout: {e}"))?;
                if !secs.is_finite() || secs < 0.0 {
                    return Err("bad --timeout: need a non-negative number of seconds".to_string());
                }
                budgets = budgets.with_max_wall_time(std::time::Duration::from_secs_f64(secs));
            }
            "--max-nodes" => {
                budgets = budgets.with_max_nodes(
                    take("--max-nodes")?
                        .parse()
                        .map_err(|e| format!("bad --max-nodes: {e}"))?,
                )
            }
            "--output" => output = take("--output")?,
            other if other.starts_with('-') => return Err(format!("unknown option {other:?}")),
            other => positional.push(other.to_string()),
        }
    }
    if positional.len() != 2 {
        return Err(format!(
            "expected 2 input files, got {}\n{USAGE}",
            positional.len()
        ));
    }
    let name = strategy_name.as_deref().unwrap_or("fastmatch");
    if name != "gumtree" {
        if let Some(flag) = gumtree_flags.first() {
            return Err(format!("{flag} applies to --strategy gumtree"));
        }
    }
    if prune && name != "fastmatch" {
        return Err("--prune applies to --strategy fastmatch".to_string());
    }
    let strategy = match name {
        "simple" => MatchStrategy::Simple,
        "gumtree" => MatchStrategy::GumTree(gumtree),
        _ => MatchStrategy::FastMatch(FastMatchConfig { prune }),
    };
    let mut recorder = profile.map(|_| Recorder::new());
    if let Some(rec) = recorder.as_mut() {
        rec.phase_start(Phase::Parse);
    }
    let read = |p: &str| std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"));
    let old =
        Tree::parse_sexpr(&read(&positional[0])?).map_err(|e| format!("{}: {e}", positional[0]))?;
    let new =
        Tree::parse_sexpr(&read(&positional[1])?).map_err(|e| format!("{}: {e}", positional[1]))?;
    if let Some(rec) = recorder.as_mut() {
        rec.phase_end(Phase::Parse);
    }
    let cli = Cli {
        params: MatchParams::with_inner_threshold(t).with_leaf_threshold(f),
        k,
        strategy,
        strategy_explicit: strategy_name.is_some(),
        budgets,
        audit,
        profile,
        output,
        old,
        new,
    };
    Ok((cli, recorder))
}

fn differ_for(cli: &Cli) -> Result<Differ<'static>, String> {
    let mut differ = if cli.k == 0 {
        Differ::new()
            .params(cli.params)
            .strategy(cli.strategy.clone())
    } else {
        if cli.strategy_explicit {
            return Err("--strategy picks the built-in matcher; drop it or use -k 0".to_string());
        }
        if cli.prune() {
            return Err("--prune applies to the built-in matcher; drop it or use -k 0".to_string());
        }
        let hybrid = match_with_optimality(&cli.old, &cli.new, cli.params, cli.k)
            .map_err(|e| format!("matching failed: {e}"))?;
        Differ::new().params(cli.params).matching(hybrid.matching)
    };
    differ = differ.budget(cli.budgets);
    if let Some(audit) = cli.audit {
        differ = differ.audit(if audit {
            hierdiff_core::Audit::On
        } else {
            hierdiff_core::Audit::Off
        });
    }
    Ok(differ)
}

/// Renders the recorded profile to stderr in the requested format, keeping
/// stdout reserved for the diff output proper.
fn emit_profile(recorder: Option<Recorder>, format: Option<ProfileFormat>) -> Result<(), String> {
    let (Some(recorder), Some(format)) = (recorder, format) else {
        return Ok(());
    };
    let profile = recorder.profile();
    match format {
        ProfileFormat::Table => eprint!("{profile}"),
        ProfileFormat::Json => eprintln!("{}", profile.to_json()),
    }
    Ok(())
}

/// `treediff audit`: force auditing on, render every finding, and report
/// whether the pipeline's artifacts satisfy the paper's invariants.
fn run_audit(cli: Cli, mut recorder: Option<Recorder>) -> Result<(), Failure> {
    let differ = differ_for(&cli)?.audit(hierdiff_core::Audit::On);
    let outcome = match recorder.as_mut() {
        Some(rec) => differ
            .observer(rec as &mut dyn PipelineObserver)
            .diff(&cli.old, &cli.new),
        None => differ.diff(&cli.old, &cli.new),
    };
    emit_profile(recorder, cli.profile)?;
    match outcome {
        Ok(result) => {
            let report = result
                .audit
                .ok_or("audit requested but no report produced")?;
            for d in report.diagnostics() {
                println!("{d}");
            }
            println!(
                "audit: {} checks, {} finding(s), 0 errors",
                report.checks_run,
                report.len()
            );
            Ok(())
        }
        Err(DiffError::Audit(report)) => {
            for d in report.diagnostics() {
                eprintln!("{d}");
            }
            Err(format!(
                "audit: {} checks, {} finding(s), {} error(s)",
                report.checks_run,
                report.len(),
                report.error_count()
            )
            .into())
        }
        Err(e) => Err(fail_for(e)),
    }
}

fn run_diff(cli: Cli, mut recorder: Option<Recorder>) -> Result<(), Failure> {
    let differ = differ_for(&cli)?;
    let outcome = match recorder.as_mut() {
        Some(rec) => differ
            .observer(rec as &mut dyn PipelineObserver)
            .diff(&cli.old, &cli.new),
        None => differ.diff(&cli.old, &cli.new),
    };
    emit_profile(recorder, cli.profile)?;
    let result = outcome.map_err(fail_for)?;

    match cli.output.as_str() {
        "script" => println!("{}", result.script),
        "delta" => {
            let delta = result
                .delta
                .as_ref()
                .ok_or("delta tree was not built for this run")?;
            print!("{}", hierdiff_delta::render_text(delta));
        }
        "stats" => {
            let c = result.script.op_counts();
            let strategy = if cli.k == 0 {
                cli.strategy.name()
            } else {
                "hybrid A(k)"
            };
            println!("strategy:           {strategy}");
            println!("old nodes:          {}", cli.old.len());
            println!("new nodes:          {}", cli.new.len());
            println!("matched pairs:      {}", result.matching.len());
            println!(
                "script:             {} ops (ins {}, del {}, upd {}, mov {})",
                c.total(),
                c.inserts,
                c.deletes,
                c.updates,
                c.moves
            );
            println!("weighted distance:  {}", result.weighted_distance());
            println!(
                "comparisons:        {} leaf compares + {} partner checks",
                result.counters.leaf_compares, result.counters.partner_checks
            );
            if cli.prune() {
                println!(
                    "pruned wholesale:   {} nodes ({} verified subtree pairs, {} hash collisions)",
                    result.counters.nodes_pruned,
                    result.counters.prune_candidates,
                    result.counters.prune_collisions
                );
            }
            if let Some(report) = &result.audit {
                println!(
                    "audit:              {} checks, {} finding(s)",
                    report.checks_run,
                    report.len()
                );
            }
        }
        "json" => {
            let json = serde_json::json!({
                "old_nodes": cli.old.len(),
                "new_nodes": cli.new.len(),
                "matched": result.matching.len(),
                "weighted_distance": result.weighted_distance(),
                "unweighted_distance": result.unweighted_distance(),
                "audit_checks": result.audit.as_ref().map(|r| r.checks_run),
                "audit_findings": result.audit.as_ref().map(hierdiff_core::AuditReport::len),
                "script": result.script,
            });
            println!(
                "{}",
                serde_json::to_string_pretty(&json).map_err(|e| format!("render json: {e}"))?
            );
        }
        other => return Err(format!("unknown output {other:?}").into()),
    }
    Ok(())
}

fn run() -> Result<(), Failure> {
    let mut args = std::env::args().skip(1).peekable();
    let audit_mode = args.peek().map(String::as_str) == Some("audit");
    if audit_mode {
        args.next();
    }
    let (cli, recorder) = parse_cli(args)?;
    if audit_mode {
        run_audit(cli, recorder)
    } else {
        run_diff(cli, recorder)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(f) => {
            eprintln!("{}", f.msg);
            ExitCode::from(f.code)
        }
    }
}
