//! `treediff` — generic change detection between two tree files in the
//! workspace's s-expression notation (see `hierdiff_tree::Tree::parse_sexpr`).
//!
//! ```text
//! treediff [OPTIONS] <OLD.sexpr> <NEW.sexpr>
//!
//!   -t, --threshold <0.5..1>    inner-node match threshold   [default 0.6]
//!   -f, --leaf-threshold <0..1> leaf compare threshold       [default 0.5]
//!   -k, --optimality <N>        A(k) optimality level        [default 0]
//!   -p, --prune                 identical-subtree pruning pre-pass
//!       --output script|delta|stats|json                     [default script]
//! ```

use std::process::ExitCode;

use hierdiff_core::{diff, match_with_optimality, DiffOptions, Matcher};
use hierdiff_matching::MatchParams;
use hierdiff_tree::Tree;

const USAGE: &str = "usage: treediff [OPTIONS] <OLD.sexpr> <NEW.sexpr>\n\
  -t, --threshold <0.5..1>      inner-node match threshold (default 0.6)\n\
  -f, --leaf-threshold <0..1>   leaf compare threshold (default 0.5)\n\
  -k, --optimality <N>          A(k) optimality level (default 0)\n\
  -p, --prune                   match identical subtrees wholesale first\n\
      --output script|delta|stats|json   what to print (default script)\n\
  -h, --help                    show this help";

fn run() -> Result<(), String> {
    let mut t = 0.6f64;
    let mut f = 0.5f64;
    let mut k = 0u32;
    let mut prune = false;
    let mut output = "script".to_string();
    let mut positional: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "-h" | "--help" => return Err(USAGE.to_string()),
            "-t" | "--threshold" => t = take("-t")?.parse().map_err(|e| format!("bad -t: {e}"))?,
            "-f" | "--leaf-threshold" => {
                f = take("-f")?.parse().map_err(|e| format!("bad -f: {e}"))?
            }
            "-k" | "--optimality" => k = take("-k")?.parse().map_err(|e| format!("bad -k: {e}"))?,
            "-p" | "--prune" => prune = true,
            "--output" => output = take("--output")?,
            other if other.starts_with('-') => return Err(format!("unknown option {other:?}")),
            other => positional.push(other.to_string()),
        }
    }
    if positional.len() != 2 {
        return Err(format!(
            "expected 2 input files, got {}\n{USAGE}",
            positional.len()
        ));
    }
    let read = |p: &str| std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"));
    let old =
        Tree::parse_sexpr(&read(&positional[0])?).map_err(|e| format!("{}: {e}", positional[0]))?;
    let new =
        Tree::parse_sexpr(&read(&positional[1])?).map_err(|e| format!("{}: {e}", positional[1]))?;

    let params = MatchParams::with_inner_threshold(t).with_leaf_threshold(f);
    let options = if k == 0 {
        DiffOptions {
            params,
            prune,
            ..DiffOptions::new()
        }
    } else {
        if prune {
            return Err("--prune applies to the built-in matcher; drop it or use -k 0".to_string());
        }
        let hybrid = match_with_optimality(&old, &new, params, k);
        DiffOptions {
            params,
            matcher: Matcher::Provided,
            provided: Some(hybrid.matching),
            build_delta: true,
            ..DiffOptions::default()
        }
    };
    let result = diff(&old, &new, &options).map_err(|e| e.to_string())?;

    match output.as_str() {
        "script" => println!("{}", result.script),
        "delta" => {
            let delta = result.delta.as_ref().expect("delta built");
            print!("{}", hierdiff_delta::render_text(delta));
        }
        "stats" => {
            let c = result.script.op_counts();
            println!("old nodes:          {}", old.len());
            println!("new nodes:          {}", new.len());
            println!("matched pairs:      {}", result.matching.len());
            println!(
                "script:             {} ops (ins {}, del {}, upd {}, mov {})",
                c.total(),
                c.inserts,
                c.deletes,
                c.updates,
                c.moves
            );
            println!("weighted distance:  {}", result.weighted_distance());
            println!(
                "comparisons:        {} leaf compares + {} partner checks",
                result.counters.leaf_compares, result.counters.partner_checks
            );
            if prune {
                println!(
                    "pruned wholesale:   {} nodes ({} verified subtree pairs, {} hash collisions)",
                    result.counters.nodes_pruned,
                    result.counters.prune_candidates,
                    result.counters.prune_collisions
                );
            }
        }
        "json" => {
            let json = serde_json::json!({
                "old_nodes": old.len(),
                "new_nodes": new.len(),
                "matched": result.matching.len(),
                "weighted_distance": result.weighted_distance(),
                "unweighted_distance": result.unweighted_distance(),
                "script": result.script,
            });
            println!(
                "{}",
                serde_json::to_string_pretty(&json).expect("serializable")
            );
        }
        other => return Err(format!("unknown output {other:?}")),
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
