//! End-to-end tests of the `treediff` binary.

use std::io::Write as _;
use std::process::Command;

fn treediff() -> Command {
    Command::new(env!("CARGO_BIN_EXE_treediff"))
}

fn write_temp(name: &str, content: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("hierdiff-treediff-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(content.as_bytes()).unwrap();
    path
}

const OLD: &str = r#"(D (P (S "a") (S "b")) (P (S "c")))"#;
const NEW: &str = r#"(D (P (S "c")) (P (S "a") (S "b") (S "new")))"#;

#[test]
fn script_output_default() {
    let old = write_temp("old.sexpr", OLD);
    let new = write_temp("new.sexpr", NEW);
    let out = treediff().arg(&old).arg(&new).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("MOV("), "{stdout}");
    assert!(stdout.contains("INS("), "{stdout}");
}

#[test]
fn delta_output() {
    let old = write_temp("d_old.sexpr", OLD);
    let new = write_temp("d_new.sexpr", NEW);
    let out = treediff()
        .args(["--output", "delta"])
        .arg(&old)
        .arg(&new)
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("+ S \"new\""), "{stdout}");
}

#[test]
fn json_output_parses() {
    let old = write_temp("j_old.sexpr", OLD);
    let new = write_temp("j_new.sexpr", NEW);
    let out = treediff()
        .args(["--output", "json"])
        .arg(&old)
        .arg(&new)
        .output()
        .unwrap();
    assert!(out.status.success());
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    assert_eq!(v["unweighted_distance"], 2);
    assert_eq!(v["old_nodes"], 6);
}

#[test]
fn optimality_flag() {
    // Heavily reworded sentence: k=0 reports del+ins, k=2 recovers an
    // update via the local ZS refinement.
    let old = write_temp(
        "k_old.sexpr",
        r#"(D (P (S "anchor one") (S "totally original phrasing here") (S "anchor two")))"#,
    );
    let new = write_temp(
        "k_new.sexpr",
        r#"(D (P (S "anchor one") (S "completely different wording now") (S "anchor two")))"#,
    );
    let run = |k: &str| {
        let out = treediff()
            .args(["-k", k, "--output", "json"])
            .arg(&old)
            .arg(&new)
            .output()
            .unwrap();
        assert!(out.status.success());
        let v: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
        v["unweighted_distance"].as_u64().unwrap()
    };
    assert_eq!(run("0"), 2);
    assert_eq!(run("2"), 1);
}

#[test]
fn audit_subcommand_clean_pipeline() {
    let old = write_temp("a_old.sexpr", OLD);
    let new = write_temp("a_new.sexpr", NEW);
    let out = treediff()
        .arg("audit")
        .arg(&old)
        .arg(&new)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 errors"), "{stdout}");
}

#[test]
fn audit_subcommand_with_prune_and_optimality() {
    let old = write_temp("ap_old.sexpr", OLD);
    let new = write_temp("ap_new.sexpr", NEW);
    for extra in [vec!["--prune"], vec!["-k", "2"]] {
        let out = treediff()
            .arg("audit")
            .args(&extra)
            .arg(&old)
            .arg(&new)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{extra:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn audit_flag_surfaces_in_json() {
    let old = write_temp("af_old.sexpr", OLD);
    let new = write_temp("af_new.sexpr", NEW);
    let out = treediff()
        .args(["--audit", "--output", "json"])
        .arg(&old)
        .arg(&new)
        .output()
        .unwrap();
    assert!(out.status.success());
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    assert_eq!(v["audit_findings"], 0, "{v:?}");
    assert!(v["audit_checks"].as_u64().unwrap() > 0, "{v:?}");
}

#[test]
fn no_audit_flag_skips_auditing() {
    let old = write_temp("na_old.sexpr", OLD);
    let new = write_temp("na_new.sexpr", NEW);
    let out = treediff()
        .args(["--no-audit", "--output", "json"])
        .arg(&old)
        .arg(&new)
        .output()
        .unwrap();
    assert!(out.status.success());
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    assert!(v["audit_checks"].is_null(), "{v:?}");
}

#[test]
fn help_documents_all_flags() {
    let out = treediff().arg("--help").output().unwrap();
    let text = String::from_utf8_lossy(&out.stderr);
    for flag in [
        "--prune",
        "--audit",
        "--no-audit",
        "--output",
        "--strategy",
        "--min-height",
        "--sim-threshold",
        "--max-recovery",
        "audit ",
    ] {
        assert!(text.contains(flag), "help is missing {flag}: {text}");
    }
}

#[test]
fn strategy_flag_selects_gumtree() {
    let old = write_temp("sg_old.sexpr", OLD);
    let new = write_temp("sg_new.sexpr", NEW);
    let out = treediff()
        .args(["--strategy", "gumtree", "--output", "stats"])
        .args(["--min-height", "1", "--sim-threshold", "0.3"])
        .arg(&old)
        .arg(&new)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("strategy:           gumtree"), "{stdout}");
}

#[test]
fn strategy_choice_visible_in_profile_counters() {
    let old = write_temp("sp_old.sexpr", OLD);
    let new = write_temp("sp_new.sexpr", NEW);
    let run = |strategy: &str| {
        let out = treediff()
            .args(["--strategy", strategy, "--profile=json"])
            .arg(&old)
            .arg(&new)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        hierdiff_core::DiffProfile::from_json(&String::from_utf8_lossy(&out.stderr)).unwrap()
    };
    // The gumtree run anchors isomorphic subtrees top-down; the fastmatch
    // run never touches the gumtree counters.
    assert!(run("gumtree").counter("gumtree_anchors") > 0);
    assert_eq!(run("fastmatch").counter("gumtree_anchors"), 0);
}

#[test]
fn audit_subcommand_clean_under_every_strategy() {
    let old = write_temp("as_old.sexpr", OLD);
    let new = write_temp("as_new.sexpr", NEW);
    for strategy in ["fastmatch", "simple", "gumtree"] {
        let out = treediff()
            .args(["audit", "--strategy", strategy])
            .arg(&old)
            .arg(&new)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{strategy}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn gumtree_knobs_and_prune_rejected_off_strategy() {
    let old = write_temp("gr_old.sexpr", OLD);
    let new = write_temp("gr_new.sexpr", NEW);
    for (extra, needle) in [
        (vec!["--min-height", "2"], "--min-height"),
        (vec!["--strategy", "gumtree", "--prune"], "--prune"),
        (vec!["--strategy", "gumtree", "-k", "2"], "--strategy"),
        (vec!["--strategy", "mystery"], "mystery"),
    ] {
        let out = treediff()
            .args(&extra)
            .arg(&old)
            .arg(&new)
            .output()
            .unwrap();
        assert!(!out.status.success(), "{extra:?} should be rejected");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(needle), "{extra:?}: {stderr}");
    }
}

#[test]
fn profile_table_on_stderr_keeps_stdout_clean() {
    let old = write_temp("p_old.sexpr", OLD);
    let new = write_temp("p_new.sexpr", NEW);
    let out = treediff()
        .arg("--profile")
        .arg(&old)
        .arg(&new)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    // stdout is still the plain edit script…
    assert!(stdout.contains("MOV("), "{stdout}");
    assert!(!stdout.contains("leaf_compares"), "{stdout}");
    // …and stderr carries phase timings plus the paper-cost counters.
    for needle in ["parse", "match", "edit_script", "delta", "total"] {
        assert!(
            stderr.contains(needle),
            "profile missing {needle}: {stderr}"
        );
    }
    for needle in [
        "leaf_compares",
        "lcs_cells",
        "weighted_distance",
        "r1",
        "§8",
    ] {
        assert!(
            stderr.contains(needle),
            "profile missing {needle}: {stderr}"
        );
    }
}

#[test]
fn profile_json_round_trips() {
    let old = write_temp("pj_old.sexpr", OLD);
    let new = write_temp("pj_new.sexpr", NEW);
    let out = treediff()
        .args(["--profile=json", "--output", "json"])
        .arg(&old)
        .arg(&new)
        .output()
        .unwrap();
    assert!(out.status.success());
    // stdout is the diff JSON, stderr the DiffProfile JSON — both parse.
    let diff_json: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    assert_eq!(diff_json["old_nodes"], 6);
    let stderr = String::from_utf8_lossy(&out.stderr);
    let profile = hierdiff_core::DiffProfile::from_json(&stderr).expect("profile JSON parses");
    assert!(profile.counter("leaf_compares") > 0);
    assert!(
        profile.phase("parse").is_some(),
        "CLI times the parse phase"
    );
    assert!(profile.total_nanos() > 0);
    // Round trip: serialize → parse → identical structure.
    let again = hierdiff_core::DiffProfile::from_json(&profile.to_json()).unwrap();
    assert_eq!(again, profile);
}

#[test]
fn profile_counters_deterministic_across_runs() {
    let old = write_temp("pd_old.sexpr", OLD);
    let new = write_temp("pd_new.sexpr", NEW);
    let run = || {
        let out = treediff()
            .args(["--profile=json", "--output", "json"])
            .arg(&old)
            .arg(&new)
            .output()
            .unwrap();
        assert!(out.status.success());
        hierdiff_core::DiffProfile::from_json(&String::from_utf8_lossy(&out.stderr)).unwrap()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.counters, b.counters, "work counters must not wobble");
}

#[test]
fn bad_profile_format_rejected() {
    let old = write_temp("pb_old.sexpr", OLD);
    let new = write_temp("pb_new.sexpr", NEW);
    let out = treediff()
        .arg("--profile=yaml")
        .arg(&old)
        .arg(&new)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("yaml"));
}

#[test]
fn parse_error_reported() {
    let bad = write_temp("bad.sexpr", "(D (S \"unterminated");
    let good = write_temp("good.sexpr", OLD);
    let out = treediff().arg(&bad).arg(&good).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad.sexpr"));
}
